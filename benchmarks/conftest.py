"""Shared state for the benchmark harness.

One :class:`ExperimentContext` per session: the world, the Alexa
subdomains dataset, the packet capture, and the WAN campaign are built
once, then each bench regenerates its table/figure from them.  The
scale is reduced from the paper's (1M domains → 2,500; 288 probe
rounds → 24); every percentage-based comparison is scale-free.
"""

import pytest

from repro.analysis.wan import WanConfig
from repro.experiments import ExperimentContext
from repro.world import WorldConfig

BENCH_SEED = 7
BENCH_DOMAINS = 2500


@pytest.fixture(scope="session")
def ctx() -> ExperimentContext:
    context = ExperimentContext(
        WorldConfig(seed=BENCH_SEED, num_domains=BENCH_DOMAINS),
        WanConfig(rounds=24),
    )
    # Prewarm the expensive shared artifacts so individual benches time
    # their analysis, not world construction.
    _ = context.dataset
    _ = context.traffic.trace
    return context


def run_once(benchmark, fn):
    """Run an experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
