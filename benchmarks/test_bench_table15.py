"""Table 15: zone usage of the top EC2-using domains.

Shape: even highly ranked domains leave many subdomains in a single
zone, exposed to single-zone failures.
"""

from conftest import run_once
from repro.experiments import get_experiment


def test_bench_table15(ctx, benchmark):
    result = run_once(benchmark, lambda: get_experiment("table15").run(ctx))
    assert "pinterest.com" in result.rendered
    assert result.measured["single_zone_fraction_pct"] > 5.0
    print()
    print(result.summary())
