"""Extension bench: §5's routing-policy trade-off, quantified.

The paper proposes either global request scheduling or parallel
requests to exploit regional diversity.  The bench prices all four
policies over the Figure 12 measurement campaign: the oracle buys
little over simple geo-pinning on calm paths, parallel racing pays
k× server load for the same latency, and everything beats
single-region.
"""

from repro.analysis.scheduling import RequestScheduler


def test_bench_routing_policies(ctx, benchmark):
    scheduler = RequestScheduler(ctx.wan)
    outcomes = benchmark.pedantic(
        scheduler.compare, rounds=1, iterations=1
    )
    print()
    for outcome in outcomes:
        print(f"{outcome.policy:14s} mean {outcome.mean_latency_ms:7.1f} ms"
              f"  p95 {outcome.p95_latency_ms:7.1f} ms"
              f"  load x{outcome.server_load_factor:.0f}")
    by_name = {o.policy: o for o in outcomes}
    assert by_name["geo-nearest"].mean_latency_ms < (
        by_name["static-home"].mean_latency_ms
    )
    assert by_name["dynamic-best"].mean_latency_ms <= (
        by_name["geo-nearest"].mean_latency_ms
    )
    assert by_name["parallel-k"].server_load_factor >= 3.0
