"""Figure 5: name servers per subdomain and where they live.

Shape: most subdomains use 3-10 authoritative servers; the vast
majority of those servers live outside the clouds, with Route53
(served from CloudFront's range) and EC2-hosted BIND boxes as the
cloud-resident minority.
"""

from conftest import run_once
from repro.experiments import get_experiment


def test_bench_figure05(ctx, benchmark):
    result = run_once(benchmark, lambda: get_experiment("figure05").run(ctx))
    measured = result.measured
    assert measured["three_to_ten_pct"] > 55.0
    assert measured["outside_ns_share_pct"] > 60.0
    assert measured["cloudfront_ns_share_pct"] < 25.0
    assert measured["ec2_vm_ns_share_pct"] < 15.0
    print()
    print(result.summary())
