"""Ablation: brute-force wordlist size (§2.1's lower-bound caveat).

"This brute-force approach misses some subdomains, but it allows us
to provide a lower bound."  We quantify the caveat: enumerate the same
population with a stunted wordlist and with the full one, and compare
against what zone transfers reveal.
"""

from repro.dns.enumeration import SubdomainEnumerator, default_wordlist
from repro.dns.resolver import StubResolver
from repro.world import World, WorldConfig


def _discovered_total(world, wordlist):
    resolver = StubResolver(world.dns)
    enumerator = SubdomainEnumerator(
        world.dns, resolver, wordlist=wordlist
    )
    total = 0
    for site in world.alexa:
        total += len(enumerator.enumerate(site.domain).subdomains)
    return total


def test_ablation_wordlist(benchmark):
    world = World(WorldConfig(seed=7, num_domains=600))
    full = default_wordlist()
    stunted = full[:20]
    # Ground truth is everything that exists in DNS under each domain
    # (planned subdomains plus infrastructure names like ns1.*).
    ground_truth = 0
    for plan in world.plans:
        zone = world.dns.get_zone(plan.domain)
        ground_truth += sum(
            1 for name in zone.names() if name != plan.domain
        )
    small, big = benchmark.pedantic(
        lambda: (
            _discovered_total(world, stunted),
            _discovered_total(world, full),
        ),
        rounds=1, iterations=1,
    )
    print(f"\nground truth subdomains: {ground_truth}")
    print(f"20-word list discovers:  {small} "
          f"({100 * small / ground_truth:.1f}%)")
    print(f"full list discovers:     {big} "
          f"({100 * big / ground_truth:.1f}%)")
    assert small < big <= ground_truth
