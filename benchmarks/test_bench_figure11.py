"""Figure 11: the best region changes over time for some clients.

Shape: for a client roughly equidistant from the US regions (Boulder),
congestion episodes flip which region is best over the measurement
window; for a client pinned to one coast (Seattle) the best region
never changes.
"""

from conftest import run_once
from repro.experiments import get_experiment


def test_bench_figure11(ctx, benchmark):
    result = run_once(benchmark, lambda: get_experiment("figure11").run(ctx))
    measured = result.measured
    assert measured["boulder_distinct_best"] >= 2
    assert measured["boulder_best_region_flips"] >= 1
    assert measured["seattle_distinct_best"] == 1
    print()
    print(result.summary())
