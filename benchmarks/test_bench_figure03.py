"""Figure 3: CDFs of HTTP/HTTPS flow counts and sizes per domain.

Shape: per-domain flow counts are heavy-tailed (the top domains hold
most flows); HTTPS flows are larger than HTTP flows (storage traffic),
with HTTP medians near 2 KB.
"""

from conftest import run_once
from repro.experiments import get_experiment


def test_bench_figure03(ctx, benchmark):
    result = run_once(benchmark, lambda: get_experiment("figure03").run(ctx))
    measured = result.measured
    assert measured["https_flows_larger"]
    assert 500 < measured["http_median_flow_bytes"] < 8000
    assert measured["top100_http_flow_share_pct"] > 60.0
    print()
    print(result.summary())
