"""Figure 6: regions used per subdomain and per domain.

Shape: single-region deployment is overwhelming — ≥95% of EC2-using
and ~90% of Azure-using subdomains sit in exactly one region, leaving
them exposed to whole-region outages.
"""

from conftest import run_once
from repro.experiments import get_experiment


def test_bench_figure06(ctx, benchmark):
    result = run_once(benchmark, lambda: get_experiment("figure06").run(ctx))
    measured = result.measured
    assert measured["ec2_single_region_pct"] > 90.0
    assert measured["azure_single_region_pct"] > 80.0
    assert (
        measured["azure_single_region_pct"]
        <= measured["ec2_single_region_pct"] + 3.0
    )
    print()
    print(result.summary())
