"""Figure 12: optimal k-region deployments.

Shape: us-east-1 is the best single region; adding regions yields a
large latency improvement (the paper: 33% at k=3) with clearly
diminishing returns after k≈3-4; throughput rises monotonically with k.
"""

from conftest import run_once
from repro.experiments import get_experiment


def test_bench_figure12(ctx, benchmark):
    result = run_once(benchmark, lambda: get_experiment("figure12").run(ctx))
    measured = result.measured
    assert measured["k1_best_region"] == "us-east-1"
    assert measured["latency_gain_at_k3_pct"] > 20.0
    assert measured["diminishing_after_k3"]
    assert (
        measured["latency_gain_at_k4_pct"]
        >= measured["latency_gain_at_k3_pct"]
    )
    print()
    print(result.summary())
