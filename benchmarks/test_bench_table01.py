"""Table 1: traffic volume and flows per cloud.

Paper: EC2 81.73% of bytes / 80.70% of flows; Azure the rest.  The
shape that must hold: EC2 dominates on both axes, by roughly 4:1.
"""

from conftest import run_once
from repro.experiments import get_experiment


def test_bench_table01(ctx, benchmark):
    result = run_once(benchmark, lambda: get_experiment("table01").run(ctx))
    measured = result.measured
    assert measured["ec2_bytes_pct"] > 70.0
    assert measured["ec2_flows_pct"] > 70.0
    assert measured["azure_bytes_pct"] < 30.0
    assert abs(
        measured["ec2_bytes_pct"] + measured["azure_bytes_pct"] - 100.0
    ) < 0.1
    print()
    print(result.summary())
