"""Table 7: cloud feature usage summary.

Shape: VM front ends dominate EC2 use (~72% of subdomains); ELB and
PaaS fronts are small minorities; Heroku multiplexes its subdomains
over a tiny shared IP fleet; most Azure subdomains front through
Cloud Services and very few through Traffic Manager.
"""

from conftest import run_once
from repro.experiments import get_experiment


def test_bench_table07(ctx, benchmark):
    result = run_once(benchmark, lambda: get_experiment("table07").run(ctx))
    measured = result.measured
    assert measured["vm_sub_pct"] > 55.0
    assert measured["elb_sub_pct"] < 15.0
    assert measured["heroku_sub_pct"] < 25.0
    assert measured["cs_sub_pct"] > 50.0
    assert measured["heroku_unique_ips"] <= 94
    print()
    print(result.summary())
