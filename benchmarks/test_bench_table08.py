"""Table 8: feature usage of the top EC2-using domains.

Shape: amazon.com fronts with ELBs (Beanstalk), pinterest.com runs
plain VMs, fc2.com holds the widest physical-ELB footprint.
"""

from conftest import run_once
from repro.experiments import get_experiment


def test_bench_table08(ctx, benchmark):
    result = run_once(benchmark, lambda: get_experiment("table08").run(ctx))
    measured = result.measured
    assert measured["amazon_uses_elb"]
    assert measured["pinterest_vm_only"]
    assert measured["fc2_elb_ips"] >= 20
    print()
    print(result.summary())
