"""Table 10: region usage of the top cloud-using domains.

Shape: nearly all top domains keep every subdomain in a single
region; no subdomain uses three or more regions; multi-region domains
(msn.com, microsoft.com) split different subdomains across regions.
"""

from conftest import run_once
from repro.experiments import get_experiment


def test_bench_table10(ctx, benchmark):
    result = run_once(benchmark, lambda: get_experiment("table10").run(ctx))
    measured = result.measured
    assert measured["domains_reported"] >= 10
    assert measured["all_single_region_domains"] >= (
        measured["domains_reported"] - 4
    )
    assert measured["max_regions_per_subdomain"] <= 2
    print()
    print(result.summary())
