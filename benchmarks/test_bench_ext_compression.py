"""Extension bench: §3.3's compression implication, quantified.

"The predominance of plain text and HTML traffic points to the fact
that compression could be employed to save WAN bandwidth."  The bench
verifies the saving is substantial and text-led on the regenerated
capture.
"""

from conftest import run_once
from repro.experiments import get_experiment


def test_bench_ext_compression(ctx, benchmark):
    result = run_once(
        benchmark, lambda: get_experiment("ext-compression").run(ctx)
    )
    assert result.measured["overall_saving_pct"] > 25.0
    assert result.measured["text_is_top_saver"]
    print()
    print(result.summary())
