"""Table 2: protocol mix by bytes and flows.

Shape: HTTPS dominates bytes overall (driven by EC2 storage traffic),
HTTP dominates flows, DNS is ~11% of flows but negligible bytes, and
the clouds differ (EC2 bytes mostly HTTPS, Azure bytes mostly HTTP).
"""

from conftest import run_once
from repro.experiments import get_experiment


def test_bench_table02(ctx, benchmark):
    result = run_once(benchmark, lambda: get_experiment("table02").run(ctx))
    measured = result.measured
    assert measured["https_bytes_pct"] > 55.0
    assert measured["http_flows_pct"] > 55.0
    assert 5.0 < measured["dns_flows_pct"] < 20.0
    assert measured["ec2_https_bytes_pct"] > 70.0
    assert measured["azure_http_bytes_pct"] > 45.0
    print()
    print(result.summary())
