"""Table 4: top-10 EC2-using domains by Alexa rank.

Shape: the paper's named tenants (amazon.com, linkedin.com,
pinterest.com, fc2.com, ...) are recovered by the pipeline at their
planted ranks, interleaved with whatever sampled domains happen to be
cloud-using above rank ~50.
"""

from conftest import run_once
from repro.experiments import get_experiment


def test_bench_table04(ctx, benchmark):
    result = run_once(benchmark, lambda: get_experiment("table04").run(ctx))
    assert result.measured["paper_top10_recovered"] >= 5
    rendered = result.rendered
    for domain in ("amazon.com", "pinterest.com", "fc2.com"):
        assert domain in rendered
    print()
    print(result.summary())
