"""Figure 7: internal-address banding by availability zone.

Shape: /16 blocks of the internal 10/8 space belong to exactly one
zone (no conflicts in the sampled data) — the invariant the proximity
cartography method rests on.
"""

from conftest import run_once
from repro.experiments import get_experiment


def test_bench_figure07(ctx, benchmark):
    result = run_once(benchmark, lambda: get_experiment("figure07").run(ctx))
    measured = result.measured
    assert measured["slash16_zone_conflicts"] == 0
    assert measured["zones_sampled"] >= 3
    print()
    print(result.summary())
