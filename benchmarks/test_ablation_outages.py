"""Extension bench: the paper's availability claims as outage drills.

§4.2: "an outage of EC2's US East region would take down critical
components of at least 2.3% of the domains on Alexa's list"; §4.3:
zone failures have asymmetric blast radius.  The drills execute both
claims against the measured dataset and add the service-failure case
the paper cites from the 2012 ELB incidents.
"""

import pytest

from repro.analysis.availability import AvailabilityAnalysis
from repro.analysis.dataset import DatasetBuilder
from repro.faults import region_outage, service_outage
from repro.world import World, WorldConfig


@pytest.fixture(scope="module")
def availability():
    world = World(WorldConfig(seed=7, num_domains=2000))
    dataset = DatasetBuilder(world).build()
    return AvailabilityAnalysis(world, dataset)


def test_bench_outage_drills(availability, benchmark):
    def drills():
        return {
            "us-east-1": availability.evaluate(
                region_outage("ec2", "us-east-1")
            ),
            "zones": availability.zone_blast_radius("us-east-1"),
            "elb": availability.evaluate(service_outage("elb")),
        }

    results = benchmark.pedantic(drills, rounds=1, iterations=1)
    region = results["us-east-1"]
    print(f"\nus-east-1 outage: {region.unavailable} subdomains dark "
          f"({100 * region.unavailable_fraction:.1f}%), "
          f"{100 * region.alexa_share_hit:.2f}% of the ranking hit")
    for zone, report in sorted(results["zones"].items()):
        print(f"  zone {zone} alone: {report.unavailable} dark")
    elb = results["elb"]
    print(f"ELB service outage: {elb.unavailable} dark, "
          f"{elb.unaffected} unaffected")

    # Paper: >= 2.3% of the ranking loses critical components.
    assert region.alexa_share_hit > 0.015
    # Zone failures are asymmetric and strictly smaller than region.
    zone_counts = [r.unavailable for r in results["zones"].values()]
    assert max(zone_counts) > min(zone_counts)
    assert max(zone_counts) < region.unavailable
    # VM-dominant deployments ride out an ELB-only event.
    assert elb.unavailable < region.unavailable / 3
