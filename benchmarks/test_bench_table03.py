"""Table 3: domains/subdomains by provider mix.

Shape: ~4% of the ranking is cloud-using with rank skew toward the
top quartile; EC2 carries the overwhelming majority of both domains
and subdomains; most EC2 domains also host subdomains elsewhere.
"""

from conftest import run_once
from repro.experiments import get_experiment


def test_bench_table03(ctx, benchmark):
    result = run_once(benchmark, lambda: get_experiment("table03").run(ctx))
    measured = result.measured
    assert 2.5 < measured["cloud_domain_pct_of_alexa"] < 7.5
    assert measured["ec2_domain_share_pct"] > 80.0
    assert measured["azure_domain_share_pct"] < 20.0
    assert measured["ec2_only_sub_pct"] > 60.0
    assert measured["top_quartile_share_pct"] > 30.0
    print()
    print(result.summary())
