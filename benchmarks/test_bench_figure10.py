"""Figure 10: average latency between clients and US regions.

Shape: Seattle reaches us-west-2 ~6x faster than us-east-1; west-coast
clients strongly prefer the west regions and vice versa; us-west-1
averages lower latency than us-west-2 across all clients.
"""

from conftest import run_once
from repro.experiments import get_experiment


def test_bench_figure10(ctx, benchmark):
    result = run_once(benchmark, lambda: get_experiment("figure10").run(ctx))
    measured = result.measured
    assert measured["west1_beats_west2"]
    assert measured["seattle_east_vs_west2_factor"] > 3.0
    print()
    print(result.summary())
