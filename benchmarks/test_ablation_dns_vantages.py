"""Ablation: how many DNS vantage points does the dataset need?

§2.1 claims the 200-node distributed lookups "ensure we gather a
comprehensive set of DNS records... and capture any geo-specific
usage".  We rebuild the dataset with 1, 4, and 24 vantages and measure
what single-vantage probing misses: rotating ELB proxy addresses and
Traffic Manager's per-geography answers.
"""

import pytest

from repro.analysis.dataset import DatasetBuilder
from repro.world import World, WorldConfig


def _mean_elb_addresses(world, dataset):
    sizes = [
        len(record.addresses)
        for record in dataset.records
        if record.cname_contains("elb.amazonaws.com")
    ]
    return sum(sizes) / len(sizes) if sizes else 0.0


@pytest.mark.parametrize("vantages", [1, 4, 24])
def test_ablation_dns_vantages(benchmark, vantages):
    world = World(WorldConfig(
        seed=7, num_domains=1200, num_dns_vantages=vantages
    ))
    dataset = benchmark.pedantic(
        lambda: DatasetBuilder(world).build(), rounds=1, iterations=1
    )
    mean_elb = _mean_elb_addresses(world, dataset)
    print(f"\nvantages={vantages}: cloud subdomains={len(dataset)}, "
          f"mean ELB addresses per subdomain={mean_elb:.2f}")
    assert len(dataset) > 0


def test_ablation_vantage_coverage_grows():
    """More vantages never shrink the address sets (the claim itself)."""
    few = World(WorldConfig(seed=7, num_domains=1200, num_dns_vantages=2))
    many = World(WorldConfig(seed=7, num_domains=1200, num_dns_vantages=24))
    ds_few = DatasetBuilder(few).build()
    ds_many = DatasetBuilder(many).build()
    assert _mean_elb_addresses(many, ds_many) >= _mean_elb_addresses(
        few, ds_few
    )
