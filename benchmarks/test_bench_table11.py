"""Table 11: same-zone vs cross-zone RTT calibration.

Shape: same-zone minimum RTTs sit near 0.5 ms regardless of instance
type; cross-zone RTTs are ~3x higher — the separation that makes the
latency cartography method work at all.
"""

from conftest import run_once
from repro.experiments import get_experiment


def test_bench_table11(ctx, benchmark):
    result = run_once(benchmark, lambda: get_experiment("table11").run(ctx))
    measured = result.measured
    assert measured["same_zone_min_ms"] < 0.8
    assert measured["separation_holds"]
    print()
    print(result.summary())
