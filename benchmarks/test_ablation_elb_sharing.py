"""Ablation: ELB's shared-proxy pool (§4.1).

The paper finds 27K ELB-using subdomains resolving to only 15.7K
physical proxies, ~4% of which serve 10+ subdomains.  That only
happens because Amazon multiplexes proxies across tenants.  We rebuild
the ELB fleet with sharing disabled and enabled and compare the
physical-proxy economics.
"""

from repro.cloud.ec2 import EC2Cloud
from repro.cloud.elb import ELBFleet
from repro.dns.infrastructure import DnsInfrastructure
from repro.sim import StreamRegistry


def _build_fleet(reuse_probability, n_elbs=300):
    streams = StreamRegistry(seed=7)
    ec2 = EC2Cloud(streams, DnsInfrastructure())
    fleet = ELBFleet(ec2)
    for i in range(n_elbs):
        fleet.create_load_balancer(
            "us-east-1", [i % 3, (i + 1) % 3],
            total_proxies=2,
            reuse_probability=reuse_probability,
        )
    proxies = fleet.physical_proxies()
    shared_10plus = sum(
        1 for p in proxies if fleet.share_count(p.instance_id) >= 10
    )
    return len(proxies), shared_10plus


def test_ablation_elb_sharing(benchmark):
    (dedicated, dedicated_shared), (shared, shared_heavy) = (
        benchmark.pedantic(
            lambda: (_build_fleet(0.0), _build_fleet(0.7)),
            rounds=1, iterations=1,
        )
    )
    print(f"\nno sharing: {dedicated} proxies, {dedicated_shared} "
          f"serve 10+ tenants")
    print(f"with sharing: {shared} proxies, {shared_heavy} "
          f"serve 10+ tenants")
    # Sharing shrinks the fleet and produces the heavy-tailed proxies
    # the paper observed; dedicated provisioning produces neither.
    assert shared < dedicated
    assert dedicated_shared == 0
    assert shared_heavy > 0
