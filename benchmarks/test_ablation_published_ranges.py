"""Ablation: how complete do the published IP range lists need to be?

§2.1, footnote 2: "We assume the IP address ranges published by EC2
and Azure are relatively complete."  Every count in the paper is a
lower bound gated on that assumption.  We rebuild the dataset with the
classification seeing only a fraction of the published blocks and
measure how fast the cloud-using counts decay — quantifying the
methodology's sensitivity to stale range lists.
"""

import pytest

from repro.analysis.dataset import DatasetBuilder
from repro.world import World, WorldConfig


def test_ablation_published_ranges(benchmark):
    world = World(WorldConfig(seed=7, num_domains=1200))

    def sweep():
        results = {}
        for coverage in (1.0, 0.75, 0.5):
            dataset = DatasetBuilder(
                world, range_coverage=coverage
            ).build()
            results[coverage] = {
                "subdomains": len(dataset),
                "domains": len(dataset.domains()),
            }
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    full = results[1.0]["subdomains"]
    for coverage, counts in results.items():
        print(f"range coverage {100 * coverage:.0f}%: "
              f"{counts['subdomains']} cloud subdomains "
              f"({100 * counts['subdomains'] / full:.0f}% of full), "
              f"{counts['domains']} domains")
    # Stale lists strictly undercount — the lower-bound property.
    assert results[0.75]["subdomains"] <= results[1.0]["subdomains"]
    assert results[0.5]["subdomains"] <= results[0.75]["subdomains"]
    # And the decay is material: half the list loses a real chunk.
    assert results[0.5]["subdomains"] < results[1.0]["subdomains"]


def test_range_coverage_validation():
    world = World(WorldConfig(seed=7, num_domains=200))
    with pytest.raises(ValueError):
        DatasetBuilder(world, range_coverage=0.0)
    with pytest.raises(ValueError):
        DatasetBuilder(world, range_coverage=1.5)
