"""Extension bench: the abstract's headline numbers, regenerated.

The tightest end-to-end check of the reproduction: the five
quantitative claims of the paper's abstract, re-derived from measured
data in one pass.
"""

from conftest import run_once
from repro.experiments import get_experiment


def test_bench_ext_headline(ctx, benchmark):
    result = run_once(
        benchmark, lambda: get_experiment("ext-headline").run(ctx)
    )
    measured = result.measured
    assert 2.5 < measured["cloud_share_pct"] < 7.5
    assert measured["vm_front_share_pct"] > 55.0
    assert measured["single_region_pct"] > 90.0
    assert measured["k3_latency_gain_pct"] > 20.0
    print()
    print(result.summary())
