"""Table 12: latency-method zone estimates per region.

Shape: estimates cover all eight regions; a quarter-ish of targets
never answer probes; the noisy regions (eu-west-1 especially) leave a
substantial unknown fraction.
"""

from conftest import run_once
from repro.experiments import get_experiment


def test_bench_table12(ctx, benchmark):
    result = run_once(benchmark, lambda: get_experiment("table12").run(ctx))
    measured = result.measured
    # ap-southeast-2 holds 0.08% of subdomains and can be empty at
    # bench scale; every populated region must be estimated.
    assert measured["regions_estimated"] >= 7
    assert 60.0 < measured["us_east_response_rate_pct"] < 95.0
    print()
    print(result.summary())
