"""Figure 4: feature instances per subdomain.

Shape: most VM-front subdomains run 1-2 front-end VMs; nearly all
ELB-using subdomains resolve to at most a handful of physical proxies,
with a few very wide outliers.
"""

from conftest import run_once
from repro.experiments import get_experiment


def test_bench_figure04(ctx, benchmark):
    result = run_once(benchmark, lambda: get_experiment("figure04").run(ctx))
    measured = result.measured
    assert measured["vm_two_or_fewer_pct"] > 60.0
    assert measured["elb_five_or_fewer_pct"] > 70.0
    assert measured["elb_max"] >= 10
    print()
    print(result.summary())
