"""Table 5: domains with the highest HTTP(S) traffic volumes.

Shape: a handful of tenants carry most of the traffic, with
dropbox.com alone near 68% of HTTP(S) bytes; Azure's list is led by
Microsoft properties.
"""

from conftest import run_once
from repro.experiments import get_experiment


def test_bench_table05(ctx, benchmark):
    result = run_once(benchmark, lambda: get_experiment("table05").run(ctx))
    measured = result.measured
    assert measured["top_ec2_domain"] == "dropbox.com"
    assert measured["top_ec2_share_pct"] > 50.0
    assert "atdmt.com" in result.rendered or "msn.com" in result.rendered
    print()
    print(result.summary())
