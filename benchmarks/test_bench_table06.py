"""Table 6: HTTP content types by byte count.

Shape: html + plain text make up roughly half the HTTP bytes and are
small objects; images/flash/binaries follow with larger means.
"""

from conftest import run_once
from repro.experiments import get_experiment


def test_bench_table06(ctx, benchmark):
    result = run_once(benchmark, lambda: get_experiment("table06").run(ctx))
    assert result.measured["text_dominates"]
    assert result.measured["top_type"] in ("text/html", "text/plain")
    print()
    print(result.summary())
