"""Table 14: (sub)domains per availability zone.

Shape: within a region, zone usage is skewed — the most popular
us-east-1 zone hosts substantially more subdomains than the least
popular one, so zone-specific failures have asymmetric blast radius.
"""

from conftest import run_once
from repro.experiments import get_experiment


def test_bench_table14(ctx, benchmark):
    result = run_once(benchmark, lambda: get_experiment("table14").run(ctx))
    measured = result.measured
    assert measured["us_east_zone_skew_pct"] > 15.0
    assert measured["regions_with_skew"] >= 3
    print()
    print(result.summary())
