"""Figure 8: zones used per subdomain and per domain.

Shape: roughly a third of subdomains use one zone, the plurality two,
and a fifth three or more; of the multi-zone subdomains only a few
percent cross regions — so most front ends die with one region.
"""

from conftest import run_once
from repro.experiments import get_experiment


def test_bench_figure08(ctx, benchmark):
    result = run_once(benchmark, lambda: get_experiment("figure08").run(ctx))
    measured = result.measured
    assert 15.0 < measured["one_zone_pct"] < 55.0
    assert measured["two_zone_pct"] > 25.0
    assert 5.0 < measured["three_plus_zone_pct"] < 40.0
    assert measured["multi_zone_cross_region_pct"] < 12.0
    print()
    print(result.summary())
