"""Table 13: veracity of the latency-based zone identification.

Shape: scored against address-proximity ground truth, the latency
method's overall error is in the single digits, with eu-west-1 (the
noisiest region) clearly the worst.
"""

from conftest import run_once
from repro.experiments import get_experiment


def test_bench_table13(ctx, benchmark):
    result = run_once(benchmark, lambda: get_experiment("table13").run(ctx))
    measured = result.measured
    assert measured["overall_error_pct"] < 15.0
    if measured["eu_west_error_pct"] is not None:
        assert measured["eu_west_error_pct"] >= measured["overall_error_pct"]
    print()
    print(result.summary())
