"""Figure 9: average throughput between clients and US regions.

Shape: region choice moves throughput by integer factors for edge
clients (Seattle to Oregon vs Virginia); us-west-1 delivers better
average throughput than the younger us-west-2.
"""

from conftest import run_once
from repro.experiments import get_experiment


def test_bench_figure09(ctx, benchmark):
    result = run_once(benchmark, lambda: get_experiment("figure09").run(ctx))
    measured = result.measured
    assert measured["west1_beats_west2"]
    assert measured["seattle_west2_vs_east_factor"] > 2.0
    print()
    print(result.summary())
