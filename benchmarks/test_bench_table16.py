"""Table 16: downstream ISP diversity per region and zone.

Shape: multihoming varies enormously — us-east-1 peers with far more
downstream ISPs than sa-east-1 or ap-southeast-2 (both ~4); zones of
one region see (almost) the same ISP set; the route spread over those
ISPs is uneven, with the top ISP carrying a quarter-plus of routes.
"""

from conftest import run_once
from repro.experiments import get_experiment


def test_bench_table16(ctx, benchmark):
    result = run_once(benchmark, lambda: get_experiment("table16").run(ctx))
    measured = result.measured
    assert measured["us_east_isps"] >= 2 * measured["sa_east_isps"]
    assert measured["sa_east_isps"] <= 6
    assert measured["ap_southeast_2_isps"] <= 6
    assert measured["max_top_isp_share_pct"] > 15.0
    print()
    print(result.summary())
