"""Table 9: region usage.

Shape: EC2 usage is heavily skewed to us-east-1 (~74% of subdomains),
with eu-west-1 a distant second; Azure's spread is much flatter with
the US regions most used.
"""

from conftest import run_once
from repro.experiments import get_experiment


def test_bench_table09(ctx, benchmark):
    result = run_once(benchmark, lambda: get_experiment("table09").run(ctx))
    measured = result.measured
    assert measured["us_east_share_pct"] > 50.0
    assert measured["eu_west_share_pct"] < measured["us_east_share_pct"]
    print()
    print(result.summary())
