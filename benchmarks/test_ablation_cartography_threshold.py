"""Ablation: the latency method's threshold T (§4.3).

The paper sets T = 1.1 ms.  Sweeping T shows the trade-off the choice
sits on: a tight threshold refuses to answer (more unknowns, fewer
errors), a loose one guesses (fewer unknowns, more errors).  The
sweet spot is just above the same-zone floor and below cross-zone
RTTs.
"""

import pytest

from repro.analysis.dataset import DatasetBuilder
from repro.analysis.zones import ZoneAnalysis
from repro.world import World, WorldConfig


@pytest.fixture(scope="module")
def zone_setup():
    world = World(WorldConfig(seed=7, num_domains=1200))
    dataset = DatasetBuilder(world).build()
    return world, dataset


def _sweep(world, dataset, threshold):
    zones = ZoneAnalysis(world, dataset)
    zones.latency.threshold_ms = threshold
    targets = zones.targets_by_region().get("us-east-1", [])
    estimates = zones.latency.identify_all("us-east-1", targets)
    responded = [e for e in estimates if e.responded]
    unknown = sum(1 for e in responded if e.zone_label is None)
    wrong = 0
    known = 0
    for estimate in responded:
        if estimate.zone_label is None:
            continue
        known += 1
        physical = zones.latency.label_to_physical(
            "us-east-1", estimate.zone_label
        )
        if physical != world.ec2.zone_of_instance_ip(estimate.target):
            wrong += 1
    return {
        "unknown_rate": unknown / len(responded) if responded else 0.0,
        "error_rate": wrong / known if known else 0.0,
    }


def test_ablation_cartography_threshold(zone_setup, benchmark):
    world, dataset = zone_setup
    results = benchmark.pedantic(
        lambda: {
            t: _sweep(world, dataset, t) for t in (0.7, 1.1, 1.6, 2.6)
        },
        rounds=1, iterations=1,
    )
    print()
    for threshold, stats in results.items():
        print(f"T={threshold}: unknown {100 * stats['unknown_rate']:.1f}% "
              f"error {100 * stats['error_rate']:.1f}%")
    # Tightening the threshold trades unknowns for correctness.
    assert results[0.7]["unknown_rate"] >= results[2.6]["unknown_rate"]
    assert results[0.7]["error_rate"] <= results[2.6]["error_rate"] + 0.02
    # The paper's 1.1 ms keeps both failure modes small.
    assert results[1.1]["error_rate"] < 0.1
