"""Plain-text table rendering for the experiment harness."""

from __future__ import annotations

from typing import List, Optional, Sequence


def format_percent(value: float, digits: int = 2) -> str:
    return f"{100.0 * value:.{digits}f}%"


class TextTable:
    """A fixed-column text table with an optional title.

    >>> t = TextTable(["a", "b"], title="demo")
    >>> t.add_row(["x", 1])
    >>> print(t.render())  # doctest: +ELLIPSIS
    demo...
    """

    def __init__(self, headers: Sequence[str], title: Optional[str] = None):
        self.title = title
        self.headers = [str(h) for h in headers]
        self.rows: List[List[str]] = []

    def add_row(self, row: Sequence[object]) -> None:
        cells = [
            f"{cell:.2f}" if isinstance(cell, float) else str(cell)
            for cell in row
        ]
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells, expected {len(self.headers)}"
            )
        self.rows.append(cells)

    def render(self) -> str:
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def fmt(cells: Sequence[str]) -> str:
            return "  ".join(
                cell.ljust(width) for cell, width in zip(cells, widths)
            ).rstrip()

        lines = []
        if self.title:
            lines.append(self.title)
            lines.append("=" * len(self.title))
        lines.append(fmt(self.headers))
        lines.append(fmt(["-" * w for w in widths]))
        lines.extend(fmt(row) for row in self.rows)
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()
