"""Minimal ASCII plots so figure benches can show shapes in a terminal."""

from __future__ import annotations

import math
from typing import Sequence, Tuple

#: Eight block heights, empty to full — the sparkline alphabet.
SPARK_BLOCKS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: int = 0) -> str:
    """One-line block-character trajectory of ``values``.

    Heights are normalised to the series' own min/max (a flat series
    renders mid-height); ``width`` > 0 keeps only the freshest points.
    """
    values = [float(v) for v in values]
    if width and len(values) > width:
        values = values[-width:]
    if not values:
        return ""
    lo, hi = min(values), max(values)
    span = hi - lo
    if span <= 0:
        return SPARK_BLOCKS[3] * len(values)
    top = len(SPARK_BLOCKS) - 1
    return "".join(
        SPARK_BLOCKS[round((v - lo) / span * top)] for v in values
    )


def ascii_cdf(
    points: Sequence[Tuple[float, float]],
    width: int = 60,
    height: int = 12,
    log_x: bool = False,
    label: str = "",
) -> str:
    """Render (x, F(x)) points as a small ASCII chart."""
    if not points:
        return "(empty)"
    xs = [p[0] for p in points]
    if log_x:
        xs = [math.log10(max(x, 1e-9)) for x in xs]
    x_min, x_max = min(xs), max(xs)
    span = (x_max - x_min) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for (x, y), lx in zip(points, xs):
        col = int((lx - x_min) / span * (width - 1))
        row = height - 1 - int(y * (height - 1))
        grid[row][col] = "*"
    lines = ["".join(row) for row in grid]
    axis = f"x: {points[0][0]:.3g} .. {points[-1][0]:.3g}"
    if log_x:
        axis += " (log)"
    header = [label] if label else []
    return "\n".join(header + lines + [axis])


def ascii_series(
    series: Sequence[Tuple[str, Sequence[float]]],
    width: int = 60,
    height: int = 12,
) -> str:
    """Overlay several named series (index on x, value on y)."""
    if not series:
        return "(empty)"
    all_values = [v for _, values in series for v in values]
    if not all_values:
        return "(empty)"
    v_min, v_max = min(all_values), max(all_values)
    span = (v_max - v_min) or 1.0
    n = max(len(values) for _, values in series)
    grid = [[" "] * width for _ in range(height)]
    markers = "*+ox#@"
    for s_idx, (_name, values) in enumerate(series):
        marker = markers[s_idx % len(markers)]
        for i, value in enumerate(values):
            col = int(i / max(1, n - 1) * (width - 1))
            row = height - 1 - int((value - v_min) / span * (height - 1))
            grid[row][col] = marker
    legend = "  ".join(
        f"{markers[i % len(markers)]}={name}"
        for i, (name, _) in enumerate(series)
    )
    lines = ["".join(row) for row in grid]
    return "\n".join(lines + [f"y: {v_min:.3g} .. {v_max:.3g}", legend])
