"""Reporting utilities: CDFs, text tables, and ASCII plots for the
experiment harness."""

from repro.report.cdf import CDF
from repro.report.table import TextTable, format_percent
from repro.report.ascii_plot import ascii_cdf, ascii_series
from repro.report.format import (
    fmt_kb,
    fmt_mb,
    fmt_ms,
    fmt_num,
    fmt_pct,
    fmt_share,
)

__all__ = [
    "CDF",
    "TextTable",
    "format_percent",
    "ascii_cdf",
    "ascii_series",
    "fmt_kb",
    "fmt_mb",
    "fmt_ms",
    "fmt_num",
    "fmt_pct",
    "fmt_share",
]
