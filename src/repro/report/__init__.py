"""Reporting utilities: CDFs, text tables, and ASCII plots for the
experiment harness."""

from repro.report.cdf import CDF
from repro.report.table import TextTable, format_percent
from repro.report.ascii_plot import ascii_cdf, ascii_series

__all__ = [
    "CDF",
    "TextTable",
    "format_percent",
    "ascii_cdf",
    "ascii_series",
]
