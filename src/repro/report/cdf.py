"""Empirical CDFs — the paper's favourite figure type."""

from __future__ import annotations

from bisect import bisect_right
from typing import Iterable, List, Tuple


class CDF:
    """An empirical cumulative distribution over numeric samples."""

    def __init__(self, samples: Iterable[float]):
        self.samples: List[float] = sorted(samples)

    def __len__(self) -> int:
        return len(self.samples)

    def __bool__(self) -> bool:
        return bool(self.samples)

    def at(self, x: float) -> float:
        """P(X <= x)."""
        if not self.samples:
            raise ValueError("empty CDF")
        return bisect_right(self.samples, x) / len(self.samples)

    def quantile(self, q: float) -> float:
        """The q-quantile (0 <= q <= 1)."""
        if not self.samples:
            raise ValueError("empty CDF")
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile out of range: {q}")
        if q == 1.0:
            return self.samples[-1]
        index = int(q * len(self.samples))
        return self.samples[min(index, len(self.samples) - 1)]

    @property
    def median(self) -> float:
        return self.quantile(0.5)

    @property
    def mean(self) -> float:
        if not self.samples:
            raise ValueError("empty CDF")
        return sum(self.samples) / len(self.samples)

    def points(self, max_points: int = 200) -> List[Tuple[float, float]]:
        """(x, P(X<=x)) pairs, decimated for plotting."""
        n = len(self.samples)
        if n == 0:
            return []
        step = max(1, n // max_points)
        pts = [
            (self.samples[i], (i + 1) / n)
            for i in range(0, n, step)
        ]
        if pts[-1][0] != self.samples[-1]:
            pts.append((self.samples[-1], 1.0))
        return pts

    def fraction_below(self, x: float) -> float:
        """Alias of :meth:`at`, reads better in assertions."""
        return self.at(x)
