"""Shared number formatting for rendered tables and figures.

One home for the helpers the table and figure experiments used to
duplicate: percentages arrive either already scaled to 0–100
(:func:`fmt_pct`) or as 0–1 fractions (:func:`fmt_share`), byte
counts render in KB/MB, and latencies in whole milliseconds.
"""

from __future__ import annotations


def fmt_pct(value: float, digits: int = 2) -> str:
    """A percentage that is already on the 0–100 scale."""
    return f"{value:.{digits}f}"


def fmt_share(fraction: float, digits: int = 2) -> str:
    """A 0–1 fraction rendered as a 0–100 percentage."""
    return fmt_pct(100.0 * fraction, digits)


def fmt_kb(nbytes: float, digits: int = 0) -> str:
    """A byte count in kilobytes."""
    return f"{nbytes / 1e3:.{digits}f}"


def fmt_mb(nbytes: float, digits: int = 1) -> str:
    """A byte count in megabytes."""
    return f"{nbytes / 1e6:.{digits}f}"


def fmt_num(value: float, digits: int = 0) -> str:
    """A plain decimal with a fixed digit count."""
    return f"{value:.{digits}f}"


def fmt_ms(value: float, digits: int = 0) -> str:
    """A latency in milliseconds."""
    return fmt_num(value, digits)
