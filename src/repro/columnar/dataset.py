"""Vectorized classification for the §2.1 dataset filter.

The filter step digs every discovered subdomain (stateful, order-
preserving — digs write caches and advance rotation counters) and then
classifies each answer's addresses against the EC2/Azure and
CloudFront :class:`~repro.net.prefixset.PrefixSet` tables.  The digs
cannot be batched; the classification can.  :func:`prefix_membership`
is ``PrefixSet.__contains__`` over a whole address array — the same
``bisect_right(starts) - 1`` index arithmetic via ``np.searchsorted``,
so every boolean is bit-identical to the scalar bisect — and
:func:`segment_any` folds the flat per-address booleans back into
per-response ``any(...)`` results with one cumulative sum.
"""

from __future__ import annotations

import numpy as np

from repro.net.prefixset import PrefixSet


def prefix_membership(prefixes: PrefixSet, values: np.ndarray) -> (
    np.ndarray
):
    """Boolean membership of each address value in ``prefixes``.

    ``values`` is an int64 array of IPv4 address integers.  Matches
    ``value in prefixes`` element-wise: ``searchsorted(side="right")``
    is exactly ``bisect_right``, and the interval check compares
    against the merged ``_ends`` table the scalar path uses.
    """
    starts = prefixes._starts
    if not starts:
        return np.zeros(len(values), dtype=bool)
    start_arr = np.asarray(starts, dtype=np.int64)
    end_arr = np.asarray(prefixes._ends, dtype=np.int64)
    idx = np.searchsorted(start_arr, values, side="right") - 1
    inside = idx >= 0
    safe = np.where(inside, idx, 0)
    return inside & (values <= end_arr[safe])


def segment_any(
    mask: np.ndarray, lo: np.ndarray, hi: np.ndarray
) -> np.ndarray:
    """Per-segment ``any(mask[lo[i]:hi[i]])`` (empty segments → False)."""
    csum = np.zeros(len(mask) + 1, dtype=np.int64)
    np.cumsum(mask, out=csum[1:])
    return (csum[hi] - csum[lo]) > 0
