"""Columnar capture generation: the flow loops without the row objects.

Mirrors :meth:`repro.capture.generator.CaptureGenerator.generate` draw
for draw — every RNG consumption happens on the same stream in the
same order, through the generator's own helpers — but lands rows
directly in a :class:`FlowTableBuilder` instead of allocating a
``FlowRecord`` per flow, and orders the capture with one stable
``argsort`` on the timestamp column instead of sorting an object list.
The result is a :class:`ColumnarTrace`: bit-identical to the scalar
trace in content and order, answering ``len``/``total_bytes`` (all the
pipeline digest reads) without ever materializing rows, and pickling
to a compact digest-stable columnar payload for the artifact store.

The capture draw program is rejection-heavy (lognormal sizes via
``normalvariate``'s accept/reject loop, ``choice``'s ``_randbelow``),
so the draws themselves stay on the C-backed scalar generator — the
bulk-prefetch :class:`~repro.columnar.rng.WordLedger` replays the same
program and is what the equivalence suite uses to prove the layout,
but for the capture's flow count the direct draw is faster than any
Python-level cursor.  The columnar win here is the data plane (no row
objects, array sort, cheap serialization) plus the static-index DNS
resolution the target lookup rides on.
"""

from __future__ import annotations

import math
from typing import List, Sequence

from repro.capture.generator import (
    BYTE_MIX,
    CLOUD_BYTE_SPLIT,
    CLOUD_FLOW_SPLIT,
    FLOW_MIX,
    _HEADER_BYTES,
    _MIN_FLOW_BYTES,
    CaptureGenerator,
    TrafficDomain,
)
from repro.columnar.tables import ColumnarTrace, FlowTableBuilder


def generate_columnar(
    generator: CaptureGenerator, domains: Sequence[TrafficDomain]
) -> ColumnarTrace:
    """Drop-in replacement for ``CaptureGenerator.generate``."""
    builder = FlowTableBuilder()
    for provider in ("ec2", "azure"):
        cloud_bytes = (
            generator.config.total_bytes * CLOUD_BYTE_SPLIT[provider]
        )
        cloud_flows = (
            generator.config.total_flows * CLOUD_FLOW_SPLIT[provider]
        )
        members = [d for d in domains if d.provider == provider]
        _generate_httpx(
            generator, builder, members, provider, cloud_bytes,
            cloud_flows,
        )
        _generate_background(
            generator, builder, provider, cloud_bytes, cloud_flows
        )
    # build() orders by ts with a stable argsort — the same permutation
    # Trace.sort_by_time's stable list sort produces.
    return ColumnarTrace(builder.build())


def _generate_httpx(
    gen: CaptureGenerator,
    builder: FlowTableBuilder,
    domains: List[TrafficDomain],
    provider: str,
    cloud_bytes: float,
    cloud_flows: float,
) -> None:
    mix_f = FLOW_MIX[provider]
    mix_b = BYTE_MIX[provider]
    targets_by_domain = {
        td.domain: gen._resolve_targets(td) for td in domains
    }
    for proto in ("http", "https"):
        proto_bytes = cloud_bytes * mix_b[proto]
        proto_flows = max(1, round(cloud_flows * mix_f[proto]))
        budgets = gen._domain_budgets(
            domains, provider, proto, proto_bytes
        )
        budget_total = sum(budgets.values()) or 1.0
        for td in domains:
            targets = targets_by_domain[td.domain]
            budget = budgets.get(td.domain, 0.0)
            if not targets or budget <= 0:
                continue
            n_flows = max(1, round(proto_flows * budget / budget_total))
            if proto == "http":
                _emit_http(gen, builder, td, targets, budget, n_flows)
            else:
                _emit_https(gen, builder, td, targets, budget, n_flows)


def _emit_http(
    gen: CaptureGenerator, builder: FlowTableBuilder, td, targets,
    budget: float, n_flows: int,
) -> None:
    draws = gen._http_shape(n_flows)
    drawn_total = sum(size for _, size in draws) or 1
    scale = max(0.0, budget - n_flows * _HEADER_BYTES) / drawn_total
    rng = gen.rng
    for content_type, raw_size in draws:
        size = max(1, int(raw_size * scale))
        size = min(size, gen._ct_max[content_type])
        # Draw order matches the scalar FlowRecord argument order:
        # ts, duration, src, dst, http_host.
        ts = gen._timestamp()
        duration = gen._duration_for(size)
        src = gen._client()
        dst = rng.choice(targets)
        host = rng.choice(td.hostnames)
        builder.add(
            ts, duration, src, dst.value, "tcp", 80,
            size + _HEADER_BYTES,
            http_host=host,
            content_type=content_type,
            content_length=size,
        )


def _emit_https(
    gen: CaptureGenerator, builder: FlowTableBuilder, td, targets,
    budget: float, n_flows: int,
) -> None:
    sizes = gen._https_shape(n_flows, td.storage_profile)
    drawn_total = sum(sizes) or 1
    scale = max(0.0, budget - n_flows * _HEADER_BYTES) / drawn_total
    rng = gen.rng
    for raw_size in sizes:
        size = max(1, int(raw_size * scale)) + _HEADER_BYTES
        ts = gen._timestamp()
        duration = gen._duration_for(size, persistent_ok=True)
        src = gen._client()
        dst = rng.choice(targets)
        builder.add(
            ts, duration, src, dst.value, "tcp", 443, size,
            tls_common_name=td.domain,
        )


def _generate_background(
    gen: CaptureGenerator,
    builder: FlowTableBuilder,
    provider: str,
    cloud_bytes: float,
    cloud_flows: float,
) -> None:
    targets = gen._fallback_ips.get(provider)
    if not targets:
        return
    mix_f = FLOW_MIX[provider]
    mix_b = BYTE_MIX[provider]
    rng = gen.rng
    for kind in ("dns", "icmp", "other_tcp", "other_udp"):
        n_flows = round(cloud_flows * mix_f[kind])
        if n_flows <= 0:
            continue
        byte_budget = cloud_bytes * mix_b[kind]
        proto = {"dns": "udp", "icmp": "icmp",
                 "other_tcp": "tcp", "other_udp": "udp"}[kind]
        sizes = [
            max(
                _MIN_FLOW_BYTES,
                int(rng.lognormvariate(math.log(300), 0.8)),
            )
            for _ in range(n_flows)
        ]
        scale = byte_budget / (sum(sizes) or 1)
        for raw_size in sizes:
            # Scalar evaluation order: dport first, then the
            # FlowRecord arguments.
            if kind == "dns":
                dport = 53
            elif kind == "other_tcp":
                dport = rng.choice((25, 21, 22, 6667, 8080, 41))
            elif kind == "other_udp":
                dport = rng.choice((123, 4500, 5004, 3478))
            else:
                dport = 0
            size = max(_MIN_FLOW_BYTES, int(raw_size * scale))
            ts = gen._timestamp()
            duration = gen._duration_for(size)
            src = gen._client()
            dst = rng.choice(targets)
            builder.add(
                ts, duration, src, dst.value, proto, dport, size
            )
