"""Vectorized deterministic RNG: bulk replay of CPython draw programs.

``random.Random`` is a Mersenne Twister.  Its state transplants
losslessly into ``numpy.random.RandomState`` (same MT19937 core), and
the two produce **bit-identical** primitive streams:

* ``RandomState.random_sample(n)`` == ``n`` calls of ``Random.random()``
  (both build each double from two 32-bit words as
  ``((w1 >> 5) * 2**26 + (w2 >> 6)) * 2**-53``);
* ``RandomState.randint(0, 2**32, dtype=uint32)`` == ``getrandbits(32)``
  (one raw word each).

Everything here builds on that transplant, in two shapes:

* **Block transforms** (:func:`gauss_block`, :func:`uniform_block`,
  :func:`advance_gauss_bulk`) for draw programs with a fixed
  words-per-draw layout.  ``gauss`` consumes uniforms in Box–Muller
  pairs and caches the odd value, so a block of ``n`` draws is two
  vectorized uniform lanes plus ``gauss_next`` bookkeeping at the ends.
* The **word ledger** (:class:`WordLedger`) for draw programs whose
  word layout is data-dependent (rejection sampling in
  ``normalvariate``/``_randbelow``).  The ledger bulk-fetches raw MT
  words, precomputes the uniform/bits view at every word offset, and a
  cheap Python cursor walks the exact scalar control flow — rejections
  just advance the cursor.  ``close()`` fast-forwards the owning
  ``Random`` past exactly the words consumed.

The fast-forward contract: after any helper returns, the owning
``random.Random`` — state vector, position, *and* ``gauss_next`` cache —
is byte-equal to what the equivalent scalar loop would have left.
Transcendentals route through :mod:`repro.columnar.parity`.
"""

from __future__ import annotations

import math
import random as _random
from typing import List, Optional

import numpy as np

from repro.columnar.parity import vec_cos, vec_log, vec_sin, vec_sqrt

TWOPI = 2.0 * math.pi
#: Kinderman–Monahan constant, exactly as the stdlib computes it.
NV_MAGICCONST = getattr(
    _random, "NV_MAGICCONST", 4.0 * math.exp(-0.5) / math.sqrt(2.0)
)

_WORD_HIGH = 1 << 32


def randstate_from(rng: _random.Random) -> np.random.RandomState:
    """A ``RandomState`` positioned exactly where ``rng`` is."""
    version, internal, _gauss_next = rng.getstate()
    if version != 3:  # pragma: no cover - CPython-version guard
        raise RuntimeError(
            f"unsupported random.Random state version: {version}"
        )
    rs = np.random.RandomState()
    rs.set_state((
        "MT19937",
        np.array(internal[:-1], dtype=np.uint32),
        int(internal[-1]),
    ))
    return rs


def sync_py_rng(
    rng: _random.Random,
    rs: np.random.RandomState,
    gauss_next: Optional[float],
) -> None:
    """Write ``rs``'s position back into ``rng`` (with ``gauss_next``)."""
    state = rs.get_state()
    keys, pos = state[1], state[2]
    rng.setstate(
        (3, tuple(int(k) for k in keys) + (int(pos),), gauss_next)
    )


def uniform_block(rng: _random.Random, n: int) -> np.ndarray:
    """``n`` consecutive ``rng.random()`` values; advances ``rng``."""
    if n <= 0:
        return np.empty(0, dtype=np.float64)
    rs = randstate_from(rng)
    u = rs.random_sample(n)
    sync_py_rng(rng, rs, rng.gauss_next)
    return u


def gauss_block(rng: _random.Random, n: int) -> np.ndarray:
    """``n`` consecutive ``rng.gauss(0, 1)`` z-values; advances ``rng``.

    Honors an incoming cached ``gauss_next`` as the first value and
    leaves the trailing half-pair cached, exactly like scalar ``gauss``.
    Callers apply ``mu + z*sigma`` themselves (for the ``mu=0.0`` paths
    in this repository, ``z*sigma`` alone is bit-safe: the only way
    ``0.0 + x`` differs from ``x`` is ``-0.0`` → ``+0.0``, and every
    consumer here either takes ``abs`` or exponentiates).
    """
    out = np.empty(n, dtype=np.float64)
    if n <= 0:
        return out
    i = 0
    cached = rng.gauss_next
    if cached is not None:
        out[0] = cached
        rng.gauss_next = None
        i = 1
    m = n - i
    if m == 0:
        return out
    pairs = (m + 1) // 2
    rs = randstate_from(rng)
    u = rs.random_sample(2 * pairs)
    x2pi = u[0::2] * TWOPI
    g2rad = vec_sqrt(-2.0 * vec_log(1.0 - u[1::2]))
    z_cos = vec_cos(x2pi) * g2rad
    z_sin = vec_sin(x2pi) * g2rad
    out[i::2] = z_cos
    if m % 2:
        out[i + 1:: 2] = z_sin[:-1]
        trailing: Optional[float] = float(z_sin[-1])
    else:
        out[i + 1:: 2] = z_sin
        trailing = None
    sync_py_rng(rng, rs, trailing)
    return out


def advance_gauss_bulk(rng: _random.Random, count: int) -> None:
    """Fast-forward ``rng`` past ``count`` ``gauss`` draws.

    State-equal to ``count`` scalar ``gauss(0.0, 1.0)`` calls: the same
    uniforms are consumed and the same trailing ``gauss_next`` is
    cached (computed through scalar ``math`` — the exact functions the
    scalar path would have used).
    """
    if count <= 0:
        return
    if rng.gauss_next is not None:
        rng.gauss_next = None
        count -= 1
        if count == 0:
            return
    pairs = (count + 1) // 2
    rs = randstate_from(rng)
    u = rs.random_sample(2 * pairs)
    if count % 2:
        x2pi = float(u[-2]) * TWOPI
        g2rad = math.sqrt(-2.0 * math.log(1.0 - float(u[-1])))
        trailing: Optional[float] = math.sin(x2pi) * g2rad
    else:
        trailing = None
    sync_py_rng(rng, rs, trailing)


class WordLedger:
    """A bulk-prefetched cursor over one ``random.Random`` word stream.

    While a ledger is open it *owns* the stream: the Python ``Random``
    object is left untouched until :meth:`close`, which fast-forwards
    it past exactly the words the cursor consumed.  Interleave other
    consumers of the same ``Random`` between ledgers, never within one.

    Primitives mirror the CPython draw programs word-for-word:
    ``uniform`` (2 words), ``getrandbits(k≤32)`` (1 word),
    ``randbelow`` (1 word per rejection round), ``shuffle`` (reverse
    Fisher–Yates), ``normalvariate_z`` / ``expovariate`` (the stdlib
    rejection/log transforms with scalar ``math`` calls, one per
    iteration — the same count the scalar path pays).
    """

    CHUNK = 1 << 15

    def __init__(self, rng: _random.Random, chunk: int = CHUNK):
        self.rng = rng
        self._chunk = max(int(chunk), 16)
        self._gauss_next = rng.gauss_next
        self._rs = randstate_from(rng)
        self._consumed = 0
        self._words: Optional[np.ndarray] = None
        self._u: List[float] = []
        self._bits: dict = {}
        self._pos = 0
        self._len = 0
        self._closed = False
        self._fill(self._chunk)

    # -- buffer management -------------------------------------------

    def _fill(self, need: int) -> None:
        tail = (
            self._words[self._pos:] if self._words is not None else None
        )
        fresh = self._rs.randint(
            0, _WORD_HIGH, size=max(need, self._chunk), dtype=np.uint32
        )
        if tail is not None and len(tail):
            self._words = np.concatenate([tail, fresh])
        else:
            self._words = fresh
        self._pos = 0
        self._len = len(self._words)
        w = self._words
        # Uniform starting at word offset c: CPython's genrand_res53.
        a = (w >> np.uint32(5)).astype(np.float64) * 67108864.0
        b = (w >> np.uint32(6)).astype(np.float64)
        u = np.empty(self._len, dtype=np.float64)
        u[:-1] = (a[:-1] + b[1:]) * (1.0 / 9007199254740992.0)
        u[-1] = 0.0  # half a pair; _ensure keeps it unreachable
        self._u = u.tolist()
        self._bits = {}

    def _ensure(self, words: int) -> None:
        if self._len - self._pos < words:
            self._fill(words)

    # -- primitives ---------------------------------------------------

    def uniform(self) -> float:
        """One ``rng.random()`` (2 words)."""
        self._ensure(2)
        v = self._u[self._pos]
        self._pos += 2
        self._consumed += 2
        return v

    def getrandbits(self, k: int) -> int:
        """One ``rng.getrandbits(k)`` for ``k <= 32`` (1 word)."""
        self._ensure(1)
        lst = self._bits.get(k)
        if lst is None:
            lst = (self._words >> np.uint32(32 - k)).tolist()
            self._bits[k] = lst
        r = lst[self._pos]
        self._pos += 1
        self._consumed += 1
        return r

    def randbelow(self, n: int) -> int:
        """``rng._randbelow(n)``: top-bits rejection sampling."""
        k = n.bit_length()
        r = self.getrandbits(k)
        while r >= n:
            r = self.getrandbits(k)
        return r

    def randrange(self, n: int) -> int:
        """``rng.randrange(n)`` for a positive int ``n``."""
        return self.randbelow(n)

    def choice_index(self, length: int) -> int:
        """The index ``rng.choice(seq)`` would pick from ``seq``."""
        return self.randbelow(length)

    def shuffle(self, x: list) -> None:
        """In-place ``rng.shuffle(x)`` (reverse Fisher–Yates)."""
        for i in reversed(range(1, len(x))):
            j = self.randbelow(i + 1)
            x[i], x[j] = x[j], x[i]

    def normalvariate_z(self) -> float:
        """The z of one ``rng.normalvariate(mu, sigma)`` draw.

        The Kinderman–Monahan acceptance test is mu/sigma-independent,
        so callers apply ``mu + z*sigma`` (then ``exp`` for the
        lognormal paths) exactly as the stdlib does.
        """
        while True:
            u1 = self.uniform()
            u2 = 1.0 - self.uniform()
            z = NV_MAGICCONST * (u1 - 0.5) / u2
            zz = z * z / 4.0
            if zz <= -math.log(u2):
                return z

    def expovariate(self, lambd: float) -> float:
        """One ``rng.expovariate(lambd)`` draw."""
        return -math.log(1.0 - self.uniform()) / lambd

    # -- hand-back ----------------------------------------------------

    @property
    def words_consumed(self) -> int:
        return self._consumed

    def close(self) -> None:
        """Advance the owning ``Random`` past every consumed word."""
        if self._closed:
            return
        self._closed = True
        rs = randstate_from(self.rng)
        if self._consumed:
            rs.randint(
                0, _WORD_HIGH, size=self._consumed, dtype=np.uint32
            )
        sync_py_rng(self.rng, rs, self._gauss_next)

    def __enter__(self) -> "WordLedger":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
