"""Struct-of-arrays flow storage behind the ``Trace`` interface.

A week-long capture is hundreds of thousands of rows with a handful of
small-cardinality string fields.  :class:`FlowTable` stores it as flat
NumPy columns plus interning pools (clients, hostnames, content types,
TLS names, protocols), and :class:`ColumnarTrace` wraps a table in the
exact :class:`repro.capture.flow.Trace` interface: ``len``/
``total_bytes`` answer straight off the columns (which is all the
pipeline digest reads), while iteration materializes
:class:`FlowRecord` objects lazily for the Bro analyzer and any other
row-oriented consumer.

Serialization is digest-stable by construction: ``__reduce__`` encodes
each column via ``ndarray.tobytes`` (little-endian fixed dtypes) plus
the pools, so equal captures pickle to equal bytes regardless of how
the arrays were produced — and the payload is a fraction of a pickled
``FlowRecord`` list.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.capture.flow import FlowRecord, Trace
from repro.net.ipv4 import IPv4Address

_ENCODING_VERSION = 1

#: (attribute, dtype) for every numeric/coded column, in encode order.
_COLUMN_DTYPES = (
    ("ts", "<f8"),
    ("duration", "<f8"),
    ("dst_value", "<u4"),
    ("dport", "<i4"),
    ("total_bytes", "<i8"),
    ("content_length", "<i8"),  # -1 encodes None
    ("proto_code", "<i1"),
    ("src_code", "<i4"),
    ("host_code", "<i4"),       # -1 encodes None
    ("ct_code", "<i2"),         # -1 encodes None
    ("tls_code", "<i4"),        # -1 encodes None
)
_POOL_NAMES = ("proto_pool", "src_pool", "host_pool", "ct_pool",
               "tls_pool")


class _Interner:
    """Appends-only string pool: value -> stable small code."""

    __slots__ = ("pool", "_codes")

    def __init__(self) -> None:
        self.pool: List[str] = []
        self._codes: Dict[str, int] = {}

    def code(self, value: Optional[str]) -> int:
        if value is None:
            return -1
        code = self._codes.get(value)
        if code is None:
            code = len(self.pool)
            self.pool.append(value)
            self._codes[value] = code
        return code


class FlowTableBuilder:
    """Row-at-a-time accumulator for a :class:`FlowTable`."""

    def __init__(self) -> None:
        self.ts: List[float] = []
        self.duration: List[float] = []
        self.dst_value: List[int] = []
        self.dport: List[int] = []
        self.total_bytes: List[int] = []
        self.content_length: List[int] = []
        self.proto_code: List[int] = []
        self.src_code: List[int] = []
        self.host_code: List[int] = []
        self.ct_code: List[int] = []
        self.tls_code: List[int] = []
        self._proto = _Interner()
        self._src = _Interner()
        self._host = _Interner()
        self._ct = _Interner()
        self._tls = _Interner()

    def add(
        self,
        ts: float,
        duration: float,
        src: str,
        dst_value: int,
        proto: str,
        dport: int,
        total_bytes: int,
        http_host: Optional[str] = None,
        content_type: Optional[str] = None,
        content_length: Optional[int] = None,
        tls_common_name: Optional[str] = None,
    ) -> None:
        self.ts.append(ts)
        self.duration.append(duration)
        self.dst_value.append(dst_value)
        self.dport.append(dport)
        self.total_bytes.append(total_bytes)
        self.content_length.append(
            -1 if content_length is None else content_length
        )
        self.proto_code.append(self._proto.code(proto))
        self.src_code.append(self._src.code(src))
        self.host_code.append(self._host.code(http_host))
        self.ct_code.append(self._ct.code(content_type))
        self.tls_code.append(self._tls.code(tls_common_name))

    def build(self, sort_by_ts: bool = True) -> "FlowTable":
        table = FlowTable(
            **{
                name: np.asarray(getattr(self, name), dtype=dtype)
                for name, dtype in _COLUMN_DTYPES
            },
            proto_pool=list(self._proto.pool),
            src_pool=list(self._src.pool),
            host_pool=list(self._host.pool),
            ct_pool=list(self._ct.pool),
            tls_pool=list(self._tls.pool),
        )
        if sort_by_ts:
            table = table.sorted_by_ts()
        return table


class FlowTable:
    """Immutable SoA columns for one set of flows."""

    def __init__(self, **fields) -> None:
        for name, _ in _COLUMN_DTYPES:
            setattr(self, name, fields[name])
        for name in _POOL_NAMES:
            setattr(self, name, fields[name])

    def __len__(self) -> int:
        return len(self.ts)

    def sorted_by_ts(self) -> "FlowTable":
        """A copy ordered by timestamp.

        ``kind="stable"`` reproduces ``list.sort(key=lambda f: f.ts)``
        — Timsort is stable too, so equal timestamps keep insertion
        order and the permutation is identical.
        """
        order = np.argsort(self.ts, kind="stable")
        fields = {
            name: getattr(self, name)[order]
            for name, _ in _COLUMN_DTYPES
        }
        for name in _POOL_NAMES:
            fields[name] = getattr(self, name)
        return FlowTable(**fields)

    def total_bytes_sum(self) -> int:
        # int64 column sum == Python int sum (values far below 2**63).
        return int(self.total_bytes.sum())

    def record(self, i: int, _addr_cache: Optional[dict] = None) -> (
        FlowRecord
    ):
        dst_value = int(self.dst_value[i])
        if _addr_cache is not None:
            dst = _addr_cache.get(dst_value)
            if dst is None:
                dst = IPv4Address(dst_value)
                _addr_cache[dst_value] = dst
        else:
            dst = IPv4Address(dst_value)
        host = int(self.host_code[i])
        ct = int(self.ct_code[i])
        tls = int(self.tls_code[i])
        length = int(self.content_length[i])
        return FlowRecord(
            ts=float(self.ts[i]),
            duration=float(self.duration[i]),
            src=self.src_pool[int(self.src_code[i])],
            dst=dst,
            proto=self.proto_pool[int(self.proto_code[i])],
            dport=int(self.dport[i]),
            total_bytes=int(self.total_bytes[i]),
            http_host=self.host_pool[host] if host >= 0 else None,
            content_type=self.ct_pool[ct] if ct >= 0 else None,
            content_length=length if length >= 0 else None,
            tls_common_name=self.tls_pool[tls] if tls >= 0 else None,
        )

    def materialize(self) -> List[FlowRecord]:
        addr_cache: dict = {}
        return [
            self.record(i, addr_cache) for i in range(len(self))
        ]

    # -- digest-stable encoding ---------------------------------------

    def encode(self) -> dict:
        payload = {
            "version": _ENCODING_VERSION,
            "n": len(self),
        }
        for name, dtype in _COLUMN_DTYPES:
            payload[name] = getattr(self, name).astype(
                dtype, copy=False
            ).tobytes()
        for name in _POOL_NAMES:
            payload[name] = list(getattr(self, name))
        return payload

    @classmethod
    def decode(cls, payload: dict) -> "FlowTable":
        if payload.get("version") != _ENCODING_VERSION:
            raise ValueError(
                f"unknown FlowTable encoding: {payload.get('version')!r}"
            )
        fields = {
            name: np.frombuffer(payload[name], dtype=dtype).copy()
            for name, dtype in _COLUMN_DTYPES
        }
        for name in _POOL_NAMES:
            fields[name] = list(payload[name])
        return cls(**fields)


def _rebuild_columnar_trace(payload: dict) -> "ColumnarTrace":
    return ColumnarTrace(FlowTable.decode(payload))


class ColumnarTrace(Trace):
    """A :class:`Trace` served from a :class:`FlowTable`.

    Length and byte totals come straight off the columns; ``.flows``
    materializes row objects on first access (then behaves exactly
    like the base class, including mutation via :meth:`add`).
    """

    def __init__(self, table: FlowTable):
        # Deliberately no super().__init__(): `flows` is a lazy
        # property here, not an instance list.
        self._table = table
        self._materialized: Optional[List[FlowRecord]] = None
        self._dirty = False

    @property
    def flows(self) -> List[FlowRecord]:
        if self._materialized is None:
            self._materialized = self._table.materialize()
        return self._materialized

    @flows.setter
    def flows(self, value: List[FlowRecord]) -> None:
        self._materialized = list(value)
        self._dirty = True

    def add(self, flow: FlowRecord) -> None:
        self.flows.append(flow)
        self._dirty = True

    def __len__(self) -> int:
        if self._dirty:
            return len(self._materialized)
        return len(self._table)

    def total_bytes(self) -> int:
        if self._dirty:
            return sum(flow.total_bytes for flow in self._materialized)
        return self._table.total_bytes_sum()

    def sort_by_time(self) -> None:
        # The builder already ordered the table by ts; only a mutated
        # materialized list can be out of order.
        if self._materialized is not None:
            self._materialized.sort(key=lambda flow: flow.ts)

    def __reduce__(self):
        if self._dirty:
            # Mutated after materialization: fall back to the plain
            # row-list representation.
            return (Trace, (tuple(self._materialized),))
        return (_rebuild_columnar_trace, (self._table.encode(),))
