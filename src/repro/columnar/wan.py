"""Columnar WAN campaign: batched latency/throughput matrices.

Replaces the per-cell engine walk of
:meth:`repro.analysis.wan.WanAnalysis._measure` with block
computations over the whole (round × client × pair) grid, producing
bit-identical matrices and leaving the world in the identical state:

* The shared jitter and noise streams are separate ``StreamRegistry``
  lanes, so each can be drawn as one :func:`gauss_block` — the scalar
  cell loop interleaves them per probe, but interleaving across
  *different* generators does not change what either generator yields.
* The base RTT for a (client, instance) pair depends on the instance
  only through its ``("cloud", provider, region)`` path key, so it is
  computed once per (round, client, region) through the *scalar*
  latency model — filling its persistent-path caches in the exact
  order the sequential campaign would (first instance of each region
  first) and charging the hash-derived path randomness identically.
* The slow-start ramp is a tiny integer recurrence per
  (round, client, region); the per-pair work is then pure elementwise
  arithmetic (IEEE-exact in NumPy) with the scalar code's
  parenthesization replicated term by term.

The caller (``WanAnalysis._columnar_measure``) gates this path to the
engine-equivalent configuration: no outage scenario, default probe
policy, event sink disabled.  Campaign span and deterministic metrics
(``probes_total`` per sorted kind) are emitted exactly as
``CampaignEngine.run`` would.
"""

from __future__ import annotations

import time
from typing import Dict, List, Tuple

import numpy as np

from repro.columnar.parity import vec_exp
from repro.columnar.rng import gauss_block
from repro.internet.throughput import INIT_CWND_BYTES, WINDOW_BYTES
from repro.probing.httpget import DEFAULT_OBJECT_BYTES, DEFAULT_TIMEOUT_S


def measure_columnar(analysis) -> None:
    """Fill ``analysis._latency`` / ``_throughput`` bit-identically."""
    start = time.perf_counter()
    config = analysis.config
    world = analysis.world
    campaign = analysis._campaign()  # launches the fleet, same as scalar
    clients = analysis.clients
    regions = analysis.regions
    pairs = campaign.pairs
    rounds = config.rounds
    pings = config.pings_per_round
    n_clients = len(clients)
    n_pairs = len(pairs)
    records_total = 2 * rounds * n_clients * n_pairs

    with analysis.obs.tracer.span(
        campaign.name,
        category="campaign",
        rounds=rounds,
        vantages=n_clients,
        targets=n_pairs,
        workers=config.workers,
    ):
        latency, throughput = _compute_matrices(
            world, campaign, clients, regions, pairs, rounds, pings
        )
    analysis._latency = latency
    analysis._throughput = throughput

    elapsed = time.perf_counter() - start
    metrics = analysis.obs.metrics
    if metrics.enabled:
        per_kind = rounds * n_clients * n_pairs
        # sorted(kind) order, exactly like _observe_records.
        metrics.counter("probes_total", kind="http-get").inc(per_kind)
        metrics.counter("probes_total", kind="tcp-ping").inc(per_kind)
        if elapsed > 0:
            metrics.gauge(
                "campaign_records_per_s",
                campaign=campaign.name,
                volatile=True,
            ).set(records_total / elapsed)


def _compute_matrices(
    world, campaign, clients, regions, pairs, rounds: int, pings: int
) -> Tuple[Dict, Dict]:
    latency_model = world.latency
    throughput_model = world.throughput
    n_clients = len(clients)
    n_regions = len(regions)
    n_pairs = len(pairs)
    size = DEFAULT_OBJECT_BYTES
    timeout = DEFAULT_TIMEOUT_S

    # Region blocks along the pair axis (pairs are region-major).
    blocks: List[Tuple[int, int]] = []
    cursor = 0
    for region in regions:
        count = sum(1 for name, _ in pairs if name == region)
        blocks.append((cursor, cursor + count))
        cursor += count
    first_instance = {}
    for region_name, instance in pairs:
        first_instance.setdefault(region_name, instance)

    client_descs = [latency_model._describe(c) for c in clients]
    region_descs = [
        latency_model._describe(first_instance[r])
        if r in first_instance else None
        for r in regions
    ]

    # Base RTT and deterministic download duration per
    # (round, client, region) — scalar model calls, engine cell order.
    base = np.empty((rounds, n_clients, n_regions), dtype=np.float64)
    duration_det = np.empty_like(base)
    bottleneck_cache: Dict[Tuple[int, int], float] = {}
    for r in range(rounds):
        t = campaign.time_of_round(r)
        for ci, desc_c in enumerate(client_descs):
            for ri, desc_r in enumerate(region_descs):
                if desc_r is None:
                    base[r, ci, ri] = 0.0
                    duration_det[r, ci, ri] = 0.0
                    continue
                b = latency_model._base_rtt_from(desc_c, desc_r, t)
                base[r, ci, ri] = b
                bn = bottleneck_cache.get((ci, ri))
                if bn is None:
                    bn = throughput_model._bottleneck_bps(
                        desc_c[0], desc_r[0]
                    )
                    bottleneck_cache[(ci, ri)] = bn
                # throughput.download's deterministic part, term for
                # term (parenthesization is part of the output).
                rtt_s = b / 1000.0
                steady = min(bn, WINDOW_BYTES / rtt_s)
                ramp_rounds = 0
                ramp_bytes = 0
                cwnd = INIT_CWND_BYTES
                while ramp_bytes < size and cwnd < steady * rtt_s:
                    ramp_bytes += cwnd
                    cwnd *= 2
                    ramp_rounds += 1
                remaining = max(0, size - ramp_bytes)
                duration_det[r, ci, ri] = (
                    rtt_s + ramp_rounds * rtt_s + remaining / steady
                )

    # Expand per-region values to the pair axis.
    pair_counts = [hi - lo for lo, hi in blocks]
    base_p = np.repeat(base, pair_counts, axis=2)
    duration_p = np.repeat(duration_det, pair_counts, axis=2)

    # One bulk draw per stream, in the scalar consumption order:
    # jitter (round → client → pair → ping → [mult, fixed]) and noise
    # (round → client → pair) are independent lanes, so the scalar
    # interleave between them is immaterial.
    jitter_z = gauss_block(
        latency_model._jitter_rng,
        rounds * n_clients * n_pairs * pings * 2,
    ).reshape(rounds, n_clients, n_pairs, pings, 2)
    noise_z = gauss_block(
        throughput_model._noise_rng, rounds * n_clients * n_pairs
    ).reshape(rounds, n_clients, n_pairs)

    # probe_rtts_ms: base + (abs(g1) + abs(g2)), g1 ~ N(0, 0.04*base),
    # g2 ~ N(0, 0.4).  |z*sigma| == |z|*sigma exactly.
    base_b = base_p[..., None]
    rtt = base_b + (
        np.abs(jitter_z[..., 0]) * (0.04 * base_b)
        + np.abs(jitter_z[..., 1]) * 0.4
    )
    # Mean over pings: sequential adds, like sum(valid)/len(valid).
    acc = rtt[..., 0]
    for k in range(1, pings):
        acc = acc + rtt[..., k]
    ping_mean = acc / pings

    # download: duration *= exp(gauss(0, 0.18)); completed iff within
    # the timeout; rate_kb = (size/duration)/1024.
    duration = duration_p * vec_exp(noise_z * 0.18)
    completed = duration <= timeout
    rate_kb = (size / duration) / 1024.0

    # Region folds, pair-sequential like the scalar defaultdict walk.
    lat_out = np.empty((rounds, n_clients, n_regions), dtype=np.float64)
    thr_out = np.empty_like(lat_out)
    for ri, (lo, hi) in enumerate(blocks):
        if hi == lo:
            lat_out[:, :, ri] = float("nan")
            thr_out[:, :, ri] = 0.0
            continue
        acc_l = ping_mean[:, :, lo]
        for p in range(lo + 1, hi):
            acc_l = acc_l + ping_mean[:, :, p]
        lat_out[:, :, ri] = acc_l / (hi - lo)
        # Masked sequential sum: adding 0.0 for a failed download is
        # the identity, so partial sums match the scalar skip exactly.
        acc_t = np.where(completed[:, :, lo], rate_kb[:, :, lo], 0.0)
        cnt = completed[:, :, lo].astype(np.int64)
        for p in range(lo + 1, hi):
            acc_t = acc_t + np.where(
                completed[:, :, p], rate_kb[:, :, p], 0.0
            )
            cnt = cnt + completed[:, :, p]
        thr_out[:, :, ri] = np.where(
            cnt > 0, acc_t / np.maximum(cnt, 1), 0.0
        )

    latency: Dict[Tuple[str, str], List[float]] = {}
    throughput: Dict[Tuple[str, str], List[float]] = {}
    for ci, client in enumerate(clients):
        for ri, region in enumerate(regions):
            key = (client.name, region)
            latency[key] = lat_out[:, ci, ri].tolist()
            throughput[key] = thr_out[:, ci, ri].tolist()
    return latency, throughput
