"""repro.columnar — the NumPy-backed columnar data plane.

Struct-of-arrays tables plus vectorized deterministic RNG that replays
the scalar draw program of the hot pipeline loops (dataset lookups,
capture generation, WAN matrices) in bulk.  Every columnar path is
**bit-identical** to its scalar counterpart: the vectorized RNG
consumes the underlying Mersenne Twister word stream in exactly the
order the scalar code would, transcendental functions go through a
parity-probed dispatch (:mod:`repro.columnar.parity`) that falls back
to ``math`` when this NumPy build's ufuncs are not bit-equal, and the
per-lane stream objects are left in exactly the state sequential
execution produces.

See ``docs/PERFORMANCE.md`` ("The columnar data plane") for the layout
and the RNG fast-forward contract.
"""

from __future__ import annotations

try:
    import numpy  # noqa: F401  (re-exported availability probe)
except ImportError as exc:  # pragma: no cover - depends on environment
    raise ImportError(
        "repro.columnar requires NumPy, which is not installed. "
        "Install the package with its declared dependencies "
        "(`pip install -e .` pulls in numpy per pyproject.toml / "
        "setup.py), or run with REPRO_COLUMNAR=0 to stay on the "
        "scalar paths."
    ) from exc

from repro.flags import columnar_runtime_enabled, set_columnar_enabled

__all__ = [
    "enabled",
    "set_columnar_enabled",
]


def enabled() -> bool:
    """Whether columnar fast paths are active (NumPy imported fine if
    you can call this; the runtime switch has the final word)."""
    return columnar_runtime_enabled()
