"""Parity-probed transcendental dispatch.

CPython's scalar RNG transforms (``gauss``, ``lognormvariate``,
``expovariate``) go through libm's ``log``/``exp``/``sqrt``/``cos``/
``sin``.  NumPy's ufuncs are *usually* bit-equal to libm but not
guaranteed to be — SIMD kernels for ``log``/``exp`` differ by an ulp on
some builds — and one flipped bit anywhere breaks the repository's
digest contract.

So each function is probed once per process: a deterministic sample
(fixed-seed Mersenne words, mapped into the domain the pipeline
actually uses) is evaluated through both the ufunc and ``math``, and
the vectorized entry point commits to the ufunc only on exact bitwise
agreement.  Otherwise it falls back to ``map(math.f, ...)`` — still
far cheaper than the scalar draw loops it replaces, and bit-identical
by construction.  :func:`parity_report` exposes the verdicts (the docs
and tests surface them; they are *not* part of any digest).
"""

from __future__ import annotations

import math
from typing import Callable, Dict

import numpy as np

_PROBE_SEED = 0xC01A57A7
_PROBE_SIZE = 1 << 16

_verdicts: Dict[str, bool] = {}


def _probe_samples() -> np.ndarray:
    rs = np.random.RandomState(_PROBE_SEED)
    return rs.random_sample(_PROBE_SIZE)


def _bit_equal(np_fn, math_fn, operands: np.ndarray) -> bool:
    vec = np_fn(operands)
    ref = np.fromiter(
        map(math_fn, operands.tolist()),
        dtype=np.float64,
        count=len(operands),
    )
    return bool(np.array_equal(vec, ref))


def _probe(name: str) -> bool:
    """Probe one function over the domain the pipeline feeds it."""
    u = _probe_samples()
    if name == "log":
        # log(1 - u) and log(u2) operands: (0, 1]; add near-0/near-1
        # extremes the uniform sample under-covers.
        operands = np.concatenate([
            1.0 - u,
            np.array([1.0, 2.0 ** -52, 1e-300, 0.5, 1.0 - 2.0 ** -53]),
        ])
        return _bit_equal(np.log, math.log, operands)
    if name == "exp":
        # mu + z*sigma operands for lognormal sizes/rates: roughly
        # [-25, 30]; also the WAN noise exponent [-1.5, 1.5].
        operands = np.concatenate([
            (u - 0.5) * 60.0,
            (u - 0.5) * 3.0,
            np.array([0.0, -0.0, 1.0, -1.0]),
        ])
        return _bit_equal(np.exp, math.exp, operands)
    if name == "sqrt":
        # -2*log(1-u) operands: [0, ~75].
        operands = np.concatenate([
            u * 80.0, np.array([0.0, 1.0, 2.0, 0.25])
        ])
        return _bit_equal(np.sqrt, math.sqrt, operands)
    if name in ("cos", "sin"):
        operands = u * (2.0 * math.pi)
        np_fn = np.cos if name == "cos" else np.sin
        math_fn = math.cos if name == "cos" else math.sin
        return _bit_equal(np_fn, math_fn, operands)
    raise ValueError(f"unknown parity probe: {name}")


def has_parity(name: str) -> bool:
    verdict = _verdicts.get(name)
    if verdict is None:
        verdict = _probe(name)
        _verdicts[name] = verdict
    return verdict


def parity_report() -> Dict[str, bool]:
    """Verdict per function on this NumPy build (probes all five)."""
    return {
        name: has_parity(name)
        for name in ("log", "exp", "sqrt", "cos", "sin")
    }


def _dispatch(
    name: str, np_fn, math_fn
) -> Callable[[np.ndarray], np.ndarray]:
    def vec(arr: np.ndarray) -> np.ndarray:
        if has_parity(name):
            return np_fn(arr)
        flat = np.fromiter(
            map(math_fn, arr.ravel().tolist()),
            dtype=np.float64,
            count=arr.size,
        )
        return flat.reshape(arr.shape)

    vec.__name__ = f"vec_{name}"
    return vec


vec_log = _dispatch("log", np.log, math.log)
vec_exp = _dispatch("exp", np.exp, math.exp)
vec_sqrt = _dispatch("sqrt", np.sqrt, math.sqrt)
vec_cos = _dispatch("cos", np.cos, math.cos)
vec_sin = _dispatch("sin", np.sin, math.sin)
