"""repro — a full reproduction of "Next Stop, the Cloud" (IMC 2013).

The package builds a simulated 2013 Internet (DNS, EC2, Azure, the
wide area) and runs the paper's complete measurement methodology over
it.  The curated top-level API:

>>> from repro import World, WorldConfig, DatasetBuilder
>>> world = World(WorldConfig(seed=7, num_domains=2000))
>>> dataset = DatasetBuilder(world).build()

Per-section analyses live in :mod:`repro.analysis`; runnable
paper-table/figure experiments in :mod:`repro.experiments` (also via
the ``repro-experiments`` CLI).
"""

import logging as _logging

# Library-safe logging: the package logger stays silent unless an
# application (e.g. the CLI's --verbose/--quiet flags via
# repro.obs.configure_logging) attaches a real handler.
_logging.getLogger("repro").addHandler(_logging.NullHandler())

from repro.analysis.dataset import AlexaSubdomainsDataset, DatasetBuilder
from repro.world import World, WorldConfig

__version__ = "1.0.0"

__all__ = [
    "World",
    "WorldConfig",
    "DatasetBuilder",
    "AlexaSubdomainsDataset",
    "__version__",
]
