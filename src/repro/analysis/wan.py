"""Wide-area performance and fault tolerance (§5).

Reproduces the paper's active-measurement campaign: m1.medium
instances in every EC2 zone, geographically spread PlanetLab clients
pinging them and fetching a 2 MB object repeatedly over several days,
plus traceroutes from every zone to count downstream ISPs.

Products: per-client per-region latency/throughput averages (Figures
9-10), a best-region-over-time series (Figure 11), the optimal
k-region deployment frontier (Figure 12), and the downstream-ISP
diversity table (Table 16).
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from itertools import combinations
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.campaign.engine import CampaignEngine
from repro.campaign.model import ProbeKind, ProbePolicy
from repro.campaign.probes import TracerouteCampaign, WanMeasurementCampaign
from repro.cloud.base import Instance, InstanceRole, InstanceType
from repro.faults.scenarios import OutageScenario
from repro.internet.vantage import VantagePoint
from repro.obs import NOOP, Observability
from repro.probing.traceroute import TracerouteTool
from repro.sim import advance_gauss
from repro.world import World

#: Account the measurement instances run under.
WAN_ACCOUNT = "wan-measurement"

US_REGIONS = ("us-east-1", "us-west-1", "us-west-2")


@dataclass
class WanConfig:
    """Scale knobs for the WAN campaign (paper values in comments)."""

    rounds: int = 36            # paper: 288 (every 15 min for 3 days)
    round_seconds: float = 7200.0   # paper: 900
    pings_per_round: int = 3    # paper: 5
    instances_per_zone: int = 2  # paper: 2
    traceroute_instances_per_zone: int = 3  # paper: 3
    #: Fan the measurement rounds out over this many forked workers.
    #: 0 or 1 keeps the campaign sequential; any value produces
    #: bit-identical series.  (The DNS dataset stage shards the same
    #: way — see ``repro.analysis.shards`` — so one ``--workers`` knob
    #: drives both campaigns.)
    workers: int = 0


class WanAnalysis:
    """Runs the §5 measurements over a world.

    ``world`` may be a built :class:`World` or a zero-argument provider
    returning one; with a provider, the world is only constructed when
    something actually needs it.  Combined with ``clients``/``regions``
    overrides and :meth:`preload_measurements`, an analysis revived from
    cached matrices answers every matrix-derived question — figures
    9-12, headline statistics — without ever building a world.

    All active measurement runs through the
    :class:`~repro.campaign.engine.CampaignEngine`; ``scenario`` puts
    every campaign under an outage drill (down regions/zones time the
    probes out, failed ISPs strand traceroutes) and ``policy`` sets the
    engine's retry/timeout/loss semantics.
    """

    def __init__(
        self,
        world: Union[World, Callable[[], World]],
        config: Optional[WanConfig] = None,
        clients: Optional[Sequence[VantagePoint]] = None,
        regions: Optional[Sequence[str]] = None,
        scenario: Optional[OutageScenario] = None,
        policy: Optional[ProbePolicy] = None,
        obs: Observability = NOOP,
    ):
        if callable(world):
            self._world: Optional[World] = None
            self._world_provider = world
        else:
            self._world = world
            self._world_provider = None
        self.config = config or WanConfig()
        self.scenario = scenario
        self.policy = policy
        #: Observability plane, threaded into every engine campaign
        #: this analysis runs (campaign spans, probe counters, events).
        self.obs = obs
        self._clients = list(clients) if clients is not None else None
        self._regions = list(regions) if regions is not None else None
        self._instances: Optional[Dict[str, List[Instance]]] = None
        self._latency: Optional[Dict[Tuple[str, str], List[float]]] = None
        self._throughput: Optional[Dict[Tuple[str, str], List[float]]] = None
        #: Called once with (latency, throughput) right after a campaign
        #: fills the matrices; the artifact cache stores them from here.
        self.on_measured: Optional[Callable] = None

    @property
    def world(self) -> World:
        if self._world is None:
            self._world = self._world_provider()
        return self._world

    @property
    def clients(self) -> List[VantagePoint]:
        if self._clients is None:
            self._clients = self.world.probe_vantages()
        return self._clients

    @property
    def regions(self) -> List[str]:
        if self._regions is None:
            self._regions = list(self.world.ec2.region_names())
        return self._regions

    def preload_measurements(
        self,
        latency: Dict[Tuple[str, str], List[float]],
        throughput: Dict[Tuple[str, str], List[float]],
    ) -> None:
        """Adopt cached campaign matrices; :meth:`_measure` becomes a
        no-op, so neither the fleet nor the world is ever built."""
        self._latency = dict(latency)
        self._throughput = dict(throughput)

    def replay_side_effects(self) -> None:
        """Reproduce the world mutations a real campaign would make.

        Serving the matrices from the artifact cache skips
        :meth:`_measure`, but the campaign's *world* side effects — the
        launched measurement fleet and the jitter/noise stream draws —
        are state later direct consumers of the world may depend on.
        Launching the fleet and fast-forwarding the streams past the
        campaign (the per-round draw counts are exact, see
        :meth:`~repro.campaign.probes.WanMeasurementCampaign.stream_advances`)
        restores that state at a fraction of the measurement cost.
        """
        campaign = self._campaign()
        rounds = self.config.rounds
        for stream, per_round in campaign.stream_advances(self.scenario):
            advance_gauss(stream, rounds * per_round)

    # -- instance fleet ----------------------------------------------------

    def instances(self) -> Dict[str, List[Instance]]:
        """Measurement instances per region (N per zone)."""
        if self._instances is None:
            fleet: Dict[str, List[Instance]] = defaultdict(list)
            for region_name in self.regions:
                region = self.world.ec2.region(region_name)
                for zone in range(region.num_zones):
                    for _ in range(self.config.instances_per_zone):
                        fleet[region_name].append(
                            self.world.ec2.launch_instance(
                                account_id=WAN_ACCOUNT,
                                region_name=region_name,
                                physical_zone=zone,
                                itype=InstanceType.M1_MEDIUM,
                                role=InstanceRole.PROBE,
                            )
                        )
            self._instances = dict(fleet)
        return self._instances

    # -- the measurement campaign ----------------------------------------------

    def _engine(self) -> CampaignEngine:
        return CampaignEngine(
            self.world.streams.seed,
            scenario=self.scenario,
            policy=self.policy,
            obs=self.obs,
        )

    def _campaign(self) -> WanMeasurementCampaign:
        """The §5 grid: clients × the flattened region-ordered fleet."""
        fleet = self.instances()
        pairs = [
            (region_name, instance)
            for region_name in self.regions
            for instance in fleet[region_name]
        ]
        return WanMeasurementCampaign(
            self.world,
            self.clients,
            pairs,
            rounds=self.config.rounds,
            round_seconds=self.config.round_seconds,
            pings_per_round=self.config.pings_per_round,
        )

    def _columnar_measure(self) -> bool:
        """Run the batched matrix fill when it is engine-equivalent.

        The columnar path reproduces the plain campaign bit for bit
        (matrices, stream positions, span and deterministic metrics) —
        see :mod:`repro.columnar.wan` — but it does not model outage
        scenarios, non-default probe policies, or per-record event
        emission, so any of those falls back to the engine.  Worker
        fan-out is ignored on purpose: the engine's sharding is
        bit-identical to sequential, and the batched fill outruns it.
        """
        if self.scenario is not None or self.obs.events.enabled:
            return False
        if self.policy is not None and not self.policy.is_default:
            return False
        from repro.flags import columnar_runtime_enabled

        if not columnar_runtime_enabled():
            return False
        try:
            from repro.columnar.wan import measure_columnar
        except ImportError:
            return False
        measure_columnar(self)
        return True

    def _measure(self) -> None:
        """Fill the latency and throughput matrices.

        Keys are (client name, region); values are one sample per
        round: the mean ping RTT (ms) and the measured download rate
        (KB/s) averaged over the region's instances.  The engine fans
        the rounds out over ``config.workers`` forked workers; the
        matrices are bit-identical to a sequential campaign.
        """
        if self._latency is not None:
            return
        if self._columnar_measure():
            if self.on_measured is not None:
                self.on_measured(self._latency, self._throughput)
            return
        campaign = self._campaign()
        result = self._engine().run(campaign, workers=self.config.workers)
        latency: Dict[Tuple[str, str], List[float]] = defaultdict(list)
        throughput: Dict[Tuple[str, str], List[float]] = defaultdict(list)
        records = result.records
        index = 0
        for _round in range(campaign.rounds):
            for client in self.clients:
                rtts_by_region: Dict[str, List[float]] = defaultdict(list)
                rates_by_region: Dict[str, List[float]] = defaultdict(list)
                for region_name, _instance in campaign.pairs:
                    ping_record = records[index]
                    get_record = records[index + 1]
                    index += 2
                    ping = ping_record.payload
                    if ping_record.observed and ping.responded:
                        valid = [r for r in ping.rtts_ms if r is not None]
                        rtts_by_region[region_name].append(
                            sum(valid) / len(valid)
                        )
                    download = get_record.payload
                    if get_record.observed and download.completed:
                        rates_by_region[region_name].append(
                            download.rate_kb_per_s
                        )
                for region_name in self.regions:
                    key = (client.name, region_name)
                    rtts = rtts_by_region.get(region_name, [])
                    rates = rates_by_region.get(region_name, [])
                    latency[key].append(
                        sum(rtts) / len(rtts) if rtts else float("nan")
                    )
                    throughput[key].append(
                        sum(rates) / len(rates) if rates else 0.0
                    )
        self._latency = dict(latency)
        self._throughput = dict(throughput)
        if self.on_measured is not None:
            self.on_measured(self._latency, self._throughput)

    def latency_series(self, client_name: str, region: str) -> List[float]:
        self._measure()
        return self._latency[(client_name, region)]

    def throughput_series(self, client_name: str, region: str) -> List[float]:
        self._measure()
        return self._throughput[(client_name, region)]

    # -- Figures 9 and 10 ------------------------------------------------------------

    def per_client_region_averages(
        self,
        regions: Sequence[str] = US_REGIONS,
        max_clients: int = 15,
    ) -> List[dict]:
        """Average latency/throughput per (client, US region)."""
        self._measure()
        rows = []
        for client in self.clients[:max_clients]:
            entry = {"client": client.name}
            for region in regions:
                lat = self._latency[(client.name, region)]
                thr = self._throughput[(client.name, region)]
                valid = [v for v in lat if v == v]  # drop NaNs
                entry[f"latency_ms:{region}"] = (
                    sum(valid) / len(valid) if valid else float("nan")
                )
                entry[f"throughput_kbps:{region}"] = (
                    sum(thr) / len(thr) if thr else 0.0
                )
            rows.append(entry)
        return rows

    def region_average(self, region: str, metric: str = "latency") -> float:
        """Average across all clients and rounds for one region."""
        self._measure()
        table = self._latency if metric == "latency" else self._throughput
        values = [
            v
            for (_, r), series in table.items()
            if r == region
            for v in series
            if v == v
        ]
        return sum(values) / len(values) if values else float("nan")

    # -- Figure 11 ----------------------------------------------------------------------

    def best_region_flips(
        self,
        client_name: str,
        regions: Sequence[str] = US_REGIONS,
    ) -> dict:
        """Per-round best region for one client, and how often it flips."""
        self._measure()
        best: List[str] = []
        for round_index in range(self.config.rounds):
            candidates = [
                (self._latency[(client_name, region)][round_index], region)
                for region in regions
            ]
            candidates = [(v, r) for v, r in candidates if v == v]
            best.append(min(candidates)[1] if candidates else "none")
        flips = sum(
            1 for a, b in zip(best, best[1:]) if a != b
        )
        return {
            "best_by_round": best,
            "flips": flips,
            "distinct_best": len(set(best)),
        }

    # -- Figure 12 ---------------------------------------------------------------------------

    def optimal_k_regions(self, metric: str = "latency") -> List[dict]:
        """The optimal k-region deployment frontier.

        For each k, enumerate all size-k region subsets, score each by
        the mean over clients and rounds of the per-round best region
        in the subset, and keep the best subset.
        """
        self._measure()
        table = self._latency if metric == "latency" else self._throughput
        better = min if metric == "latency" else max
        frontier = []
        for k in range(1, len(self.regions) + 1):
            best_score: Optional[float] = None
            best_subset: Optional[Tuple[str, ...]] = None
            for subset in combinations(self.regions, k):
                total = 0.0
                count = 0
                for client in self.clients:
                    for round_index in range(self.config.rounds):
                        values = [
                            table[(client.name, region)][round_index]
                            for region in subset
                        ]
                        values = [v for v in values if v == v]
                        if not values:
                            continue
                        total += better(values)
                        count += 1
                if count == 0:
                    continue
                score = total / count
                if best_score is None or (
                    score < best_score
                    if metric == "latency"
                    else score > best_score
                ):
                    best_score = score
                    best_subset = subset
            frontier.append({
                "k": k,
                "score": best_score,
                "regions": best_subset,
            })
        return frontier

    @staticmethod
    def improvement_at_k(frontier: List[dict], k: int) -> float:
        """Relative change of the metric at k versus k=1."""
        base = frontier[0]["score"]
        at_k = frontier[k - 1]["score"]
        return (base - at_k) / base

    # -- §5.1: performance across zones of one region ----------------------------

    def zone_performance_comparison(self, region_name: str) -> dict:
        """Per-zone latency/throughput averages within one region.

        The paper found "the zone has little impact on latency" while
        throughput varied somewhat more (local contention).  Returns
        per-zone means and the relative spread of each metric.
        """
        self._measure()
        fleet = self.instances()[region_name]
        by_zone: Dict[int, List[Instance]] = defaultdict(list)
        for instance in fleet:
            by_zone[instance.zone_index].append(instance)
        engine = self._engine()
        latency_means: Dict[int, float] = {}
        throughput_means: Dict[int, float] = {}
        for zone, instances in sorted(by_zone.items()):
            campaign = WanMeasurementCampaign(
                self.world,
                self.clients[:20],
                [(region_name, instance) for instance in instances],
                rounds=self.config.rounds,
                round_seconds=self.config.round_seconds,
                pings_per_round=1,
                name=f"wan-zone:{region_name}#{zone}",
            )
            result = engine.run(campaign, workers=self.config.workers)
            rtts: List[float] = []
            rates: List[float] = []
            for record in result.records:
                if not record.observed:
                    continue
                if record.task.kind is ProbeKind.TCP_PING:
                    if record.payload.min_ms is not None:
                        rtts.append(record.payload.min_ms)
                elif record.payload.completed:
                    rates.append(record.payload.rate_kb_per_s)
            latency_means[zone] = sum(rtts) / len(rtts) if rtts else 0.0
            throughput_means[zone] = (
                sum(rates) / len(rates) if rates else 0.0
            )

        def relative_spread(values: Dict[int, float]) -> float:
            numbers = list(values.values())
            mean = sum(numbers) / len(numbers)
            return (max(numbers) - min(numbers)) / mean if mean else 0.0

        return {
            "latency_ms_by_zone": latency_means,
            "throughput_kbps_by_zone": throughput_means,
            "latency_relative_spread": relative_spread(latency_means),
            "throughput_relative_spread": relative_spread(
                throughput_means
            ),
        }

    # -- Table 16: ISP diversity ----------------------------------------------------------------

    def isp_diversity(self) -> Dict[str, dict]:
        """Distinct downstream ISPs per region and zone, plus the
        unevenness of the route spread."""
        vantages = self.world.traceroute_vantages()
        tool = TracerouteTool(
            self.world.routing, self.world.ec2.published_range_set()
        )
        engine = self._engine()
        result: Dict[str, dict] = {}
        for region_name in self.regions:
            region = self.world.ec2.region(region_name)
            instances: List[Instance] = []
            zone_of: Dict[str, int] = {}
            for zone in range(region.num_zones):
                for _ in range(self.config.traceroute_instances_per_zone):
                    instance = self.world.ec2.launch_instance(
                        account_id=WAN_ACCOUNT,
                        region_name=region_name,
                        physical_zone=zone,
                        itype=InstanceType.M1_MEDIUM,
                        role=InstanceRole.PROBE,
                    )
                    instances.append(instance)
                    zone_of[instance.instance_id] = zone
            campaign = TracerouteCampaign(
                tool, instances, vantages,
                name=f"traceroute:{region_name}",
            )
            sweep = engine.run(campaign, workers=self.config.workers)
            zone_ases: Dict[int, set] = defaultdict(set)
            route_counter: Counter = Counter()
            for record in sweep.records:
                if not record.observed:
                    continue
                asn = record.payload.first_external_asn
                if asn is None:
                    continue
                zone = zone_of[record.task.target]
                zone_ases[zone].add(asn)
                route_counter[asn] += 1
            total_routes = sum(route_counter.values()) or 1
            top_share = (
                route_counter.most_common(1)[0][1] / total_routes
                if route_counter else 0.0
            )
            result[region_name] = {
                "per_zone": {
                    zone: len(ases) for zone, ases in zone_ases.items()
                },
                "region_total": len(
                    set().union(*zone_ases.values()) if zone_ases else set()
                ),
                "top_isp_route_share": top_share,
            }
        return result
