"""Front-end deployment patterns (§4.1): Tables 7-8, Figures 4-5.

Detection uses exactly the paper's CNAME/IP heuristics:

* EC2 VM front end — the query returns addresses directly (no CNAME);
* ELB — a CNAME containing ``elb.amazonaws.com``; each distinct CNAME
  is a logical ELB, each resolved address a physical one;
* Elastic Beanstalk — a CNAME containing ``elasticbeanstalk``;
* Heroku — a CNAME containing heroku.com / herokuapp / herokucom /
  herokussl, split by whether an ELB CNAME also appears in the chain;
* Azure Cloud Service — a direct address or a ``cloudapp.net`` CNAME;
* Traffic Manager — a ``trafficmanager.net`` CNAME;
* CloudFront — addresses inside CloudFront's published range;
* Azure CDN — a ``msecnd.net`` CNAME.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.analysis.clouduse import CloudUseAnalysis
from repro.analysis.dataset import AlexaSubdomainsDataset, SubdomainRecord
from repro.net.ipv4 import IPv4Address
from repro.report.cdf import CDF
from repro.world import World

_HEROKU_FRAGMENTS = ("heroku.com", "herokuapp", "herokucom", "herokussl")


@dataclass
class SubdomainPattern:
    """Detected front-end features for one subdomain."""

    fqdn: str
    domain: str
    provider: str  # 'ec2' | 'azure' | 'both'
    vm_front: bool = False
    elb: bool = False
    beanstalk: bool = False
    heroku: bool = False
    traffic_manager: bool = False
    cloud_service: bool = False
    azure_cdn: bool = False
    unknown_cname: bool = False
    front_vm_ips: Set[IPv4Address] = field(default_factory=set)
    elb_cnames: Set[str] = field(default_factory=set)
    elb_ips: Set[IPv4Address] = field(default_factory=set)
    heroku_ips: Set[IPv4Address] = field(default_factory=set)
    cs_ips: Set[IPv4Address] = field(default_factory=set)
    tm_cnames: Set[str] = field(default_factory=set)

    @property
    def heroku_with_elb(self) -> bool:
        return self.heroku and self.elb

    @property
    def heroku_no_elb(self) -> bool:
        return self.heroku and not self.elb


class PatternAnalysis:
    """Runs the §4.1 detection over the Alexa subdomains dataset."""

    def __init__(self, world: World, dataset: AlexaSubdomainsDataset):
        self.world = world
        self.dataset = dataset
        self.clouduse = CloudUseAnalysis(world, dataset)
        self.ec2_ranges = world.ec2.published_range_set()
        self.azure_ranges = world.azure.published_range_set()
        self.cloudfront_ranges = world.cloudfront.published_range_set()
        self._patterns: Optional[List[SubdomainPattern]] = None

    # -- per-subdomain detection ----------------------------------------------

    def detect(self, record: SubdomainRecord) -> Optional[SubdomainPattern]:
        provider = self.clouduse.subdomain_provider(record)
        if provider is None:
            return None
        pattern = SubdomainPattern(
            fqdn=record.fqdn, domain=record.domain, provider=provider
        )
        ec2_addrs = {a for a in record.addresses if a in self.ec2_ranges}
        azure_addrs = {a for a in record.addresses if a in self.azure_ranges}
        if provider in ("ec2", "both"):
            self._detect_ec2(record, pattern, ec2_addrs)
        if provider in ("azure", "both"):
            self._detect_azure(record, pattern, azure_addrs)
        return pattern

    def _detect_ec2(
        self,
        record: SubdomainRecord,
        pattern: SubdomainPattern,
        ec2_addrs: Set[IPv4Address],
    ) -> None:
        elb_cnames = {
            c for c in record.cnames if c.endswith("elb.amazonaws.com")
        }
        beanstalk = record.cname_contains("elasticbeanstalk")
        heroku = record.cname_contains(*_HEROKU_FRAGMENTS)
        if elb_cnames:
            pattern.elb = True
            pattern.elb_cnames = elb_cnames
            pattern.elb_ips = ec2_addrs
        pattern.beanstalk = beanstalk
        pattern.heroku = heroku
        if heroku and not elb_cnames:
            pattern.heroku_ips = ec2_addrs
        if not record.has_cname and ec2_addrs:
            pattern.vm_front = True
            pattern.front_vm_ips = ec2_addrs
        elif record.has_cname and not (elb_cnames or beanstalk or heroku):
            pattern.unknown_cname = True

    def _detect_azure(
        self,
        record: SubdomainRecord,
        pattern: SubdomainPattern,
        azure_addrs: Set[IPv4Address],
    ) -> None:
        tm_cnames = {
            c for c in record.cnames if c.endswith("trafficmanager.net")
        }
        cs_cnames = {
            c for c in record.cnames if c.endswith("cloudapp.net")
        }
        azure_cdn = record.cname_contains("msecnd.net")
        if tm_cnames:
            pattern.traffic_manager = True
            pattern.tm_cnames = tm_cnames
        if cs_cnames or (not record.has_cname and azure_addrs):
            pattern.cloud_service = True
            pattern.cs_ips = azure_addrs
        pattern.azure_cdn = azure_cdn
        if record.has_cname and not (
            tm_cnames or cs_cnames or azure_cdn
        ):
            pattern.unknown_cname = True

    def patterns(self) -> List[SubdomainPattern]:
        if self._patterns is None:
            self._patterns = [
                p for p in (
                    self.detect(record) for record in self.dataset.records
                )
                if p is not None
            ]
        return self._patterns

    # -- Table 7 ------------------------------------------------------------------

    def feature_summary(self) -> Dict[str, dict]:
        """Feature → {domains, subdomains, instances} (Table 7)."""
        rows: Dict[str, dict] = {
            name: {"domains": set(), "subdomains": 0, "instances": set()}
            for name in (
                "vm", "elb", "beanstalk_elb", "heroku_elb",
                "heroku_no_elb", "cs", "tm",
            )
        }

        def mark(name: str, pattern: SubdomainPattern, instances) -> None:
            rows[name]["domains"].add(pattern.domain)
            rows[name]["subdomains"] += 1
            rows[name]["instances"].update(instances)

        for pattern in self.patterns():
            if pattern.vm_front:
                mark("vm", pattern, pattern.front_vm_ips)
            if pattern.elb and not pattern.beanstalk and not pattern.heroku:
                mark("elb", pattern, pattern.elb_ips)
            if pattern.beanstalk:
                mark("beanstalk_elb", pattern, pattern.elb_ips)
            if pattern.heroku_with_elb:
                mark("heroku_elb", pattern, pattern.elb_ips)
            if pattern.heroku_no_elb:
                mark("heroku_no_elb", pattern, pattern.heroku_ips)
            if pattern.cloud_service:
                mark("cs", pattern, pattern.cs_ips)
            if pattern.traffic_manager:
                mark("tm", pattern, pattern.tm_cnames)
        return {
            name: {
                "domains": len(data["domains"]),
                "subdomains": data["subdomains"],
                "instances": len(data["instances"]),
            }
            for name, data in rows.items()
        }

    # -- ELB physical sharing ----------------------------------------------------

    def elb_statistics(self) -> dict:
        """Physical/logical ELB counts and proxy-sharing stats."""
        subdomains_per_physical: Counter = Counter()
        logical: Set[str] = set()
        physical: Set[IPv4Address] = set()
        using = 0
        for pattern in self.patterns():
            if not pattern.elb:
                continue
            using += 1
            logical.update(pattern.elb_cnames)
            physical.update(pattern.elb_ips)
            for ip in pattern.elb_ips:
                subdomains_per_physical[ip] += 1
        shared_10plus = sum(
            1 for count in subdomains_per_physical.values() if count >= 10
        )
        return {
            "subdomains_using_elb": using,
            "logical_elbs": len(logical),
            "physical_elbs": len(physical),
            "physical_shared_by_10plus": shared_10plus,
            "physical_shared_fraction": (
                shared_10plus / len(physical) if physical else 0.0
            ),
        }

    # -- Heroku multiplexing --------------------------------------------------------

    def heroku_statistics(self) -> dict:
        unique_ips: Set[IPv4Address] = set()
        shared_proxy = 0
        total = 0
        for pattern in self.patterns():
            if not pattern.heroku_no_elb:
                continue
            total += 1
            unique_ips.update(pattern.heroku_ips)
        for record in self.dataset.records:
            if record.cname_contains(*_HEROKU_FRAGMENTS) and (
                "proxy.heroku.com" in record.cnames
            ):
                shared_proxy += 1
        return {
            "subdomains": total,
            "unique_ips": len(unique_ips),
            "shared_proxy_subdomains": shared_proxy,
            "shared_proxy_fraction": (
                shared_proxy / total if total else 0.0
            ),
        }

    # -- CDNs ----------------------------------------------------------------------------

    def cdn_statistics(self) -> dict:
        cf_subs = {r.fqdn for r in self.dataset.cloudfront_records}
        cf_domains = {r.domain for r in self.dataset.cloudfront_records}
        azure_cdn_subs = {
            p.fqdn for p in self.patterns() if p.azure_cdn
        }
        azure_cdn_domains = {
            p.domain for p in self.patterns() if p.azure_cdn
        }
        other = self.dataset.other_cdn_subdomains
        return {
            "cloudfront_subdomains": len(cf_subs),
            "cloudfront_domains": len(cf_domains),
            "azure_cdn_subdomains": len(azure_cdn_subs),
            "azure_cdn_domains": len(azure_cdn_domains),
            "other_cdn_subdomains": sum(len(v) for v in other.values()),
            "other_cdn_domains": len(other),
        }

    # -- DNS survey (Figure 5 + the location split) -----------------------------------

    def dns_statistics(self) -> dict:
        per_subdomain_counts = [
            len(record.ns_names)
            for record in self.dataset.records
            if record.ns_names
        ]
        location: Counter = Counter()
        for hostname, address in self.dataset.ns_addresses.items():
            if address is None:
                location["unresolved"] += 1
            elif address in self.cloudfront_ranges:
                location["cloudfront"] += 1
            elif address in self.ec2_ranges:
                location["ec2_vm"] += 1
            elif address in self.azure_ranges:
                location["azure"] += 1
            else:
                location["outside"] += 1
        return {
            "total_nameservers": len(self.dataset.ns_addresses),
            "location_counts": dict(location),
            "ns_per_subdomain_cdf": CDF(per_subdomain_counts),
        }

    # -- Figures 4a / 4b -------------------------------------------------------------------

    def vm_instances_cdf(self) -> CDF:
        return CDF([
            len(p.front_vm_ips) for p in self.patterns() if p.vm_front
        ])

    def elb_instances_cdf(self) -> CDF:
        return CDF([
            len(p.elb_ips) for p in self.patterns() if p.elb
        ])

    # -- Table 8 -------------------------------------------------------------------------------

    def top_domain_features(self, count: int = 10) -> List[dict]:
        """Feature usage rows for the highest-ranked EC2 domains."""
        top = self.clouduse.top_cloud_domains("ec2", count)
        by_domain: Dict[str, List[SubdomainPattern]] = defaultdict(list)
        for pattern in self.patterns():
            by_domain[pattern.domain].append(pattern)
        rows = []
        cf_by_domain: Counter = Counter(
            r.domain for r in self.dataset.cloudfront_records
        )
        for entry in top:
            domain = entry["domain"]
            patterns = by_domain.get(domain, [])
            elb_ips: Set[IPv4Address] = set()
            for p in patterns:
                elb_ips.update(p.elb_ips)
            other_cdn = len(
                self.dataset.other_cdn_subdomains.get(domain, [])
            )
            rows.append({
                "rank": entry["rank"],
                "domain": domain,
                "cloud_subdomains": entry["cloud_subdomains"],
                "vm": sum(1 for p in patterns if p.vm_front),
                "paas": sum(
                    1 for p in patterns if p.beanstalk or p.heroku
                ),
                "elb": sum(1 for p in patterns if p.elb),
                "elb_ips": len(elb_ips),
                "cdn": cf_by_domain.get(domain, 0) + other_cdn,
                "cdn_other": other_cdn > 0,
            })
        return rows
