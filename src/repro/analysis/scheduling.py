"""Client request routing over multi-region deployments (§5 follow-up).

The paper observes that exploiting regional diversity "could be
achieved via global request scheduling (effective, but complex) or
requesting from multiple regions in parallel (simple, but increases
server load)".  This module implements and compares the candidate
policies over the same measurement campaign Figure 12 uses:

* ``static-home`` — everything to one region (the measured status quo);
* ``geo-nearest`` — each client pinned to its geographically nearest
  deployed region (what DNS-based geo load balancing achieves);
* ``dynamic-best`` — per-round best region (the oracle a global
  request scheduler approaches);
* ``parallel-k`` — race the request to every deployed region and take
  the first answer (latency of the min, at k× the server load).

Outputs per policy: average latency, 95th-percentile latency, and
server-load multiplier — the trade-off frontier the paper gestures at.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.analysis.wan import WanAnalysis
from repro.net.geo import haversine_km
from repro.report.cdf import CDF


@dataclass(frozen=True)
class PolicyOutcome:
    """How one routing policy performs over the campaign."""

    policy: str
    regions: Tuple[str, ...]
    mean_latency_ms: float
    p95_latency_ms: float
    #: Requests sent per client request (1.0 except parallel racing).
    server_load_factor: float


class RequestScheduler:
    """Evaluates routing policies over a WAN measurement campaign."""

    def __init__(self, wan: WanAnalysis):
        self.wan = wan
        self.wan._measure()

    # -- helpers -----------------------------------------------------------

    def _samples(
        self, pick
    ) -> List[float]:
        """One latency sample per (client, round), chosen by ``pick``.

        ``pick(client_name, round_index)`` returns the latency the
        policy achieves for that request.
        """
        samples = []
        for client in self.wan.clients:
            for round_index in range(self.wan.config.rounds):
                value = pick(client, round_index)
                if value is not None and value == value:
                    samples.append(value)
        return samples

    def _latency(self, client_name: str, region: str, round_index: int):
        return self.wan._latency[(client_name, region)][round_index]

    def _nearest_region(self, client, regions: Sequence[str]) -> str:
        return min(
            regions,
            key=lambda r: haversine_km(
                self.wan.world.ec2.region(r).location, client.location
            ),
        )

    def _outcome(
        self, policy: str, regions: Sequence[str], samples: List[float],
        load: float,
    ) -> PolicyOutcome:
        cdf = CDF(samples)
        return PolicyOutcome(
            policy=policy,
            regions=tuple(regions),
            mean_latency_ms=cdf.mean,
            p95_latency_ms=cdf.quantile(0.95),
            server_load_factor=load,
        )

    # -- the policies --------------------------------------------------------

    def static_home(self, region: str = "us-east-1") -> PolicyOutcome:
        samples = self._samples(
            lambda client, r: self._latency(client.name, region, r)
        )
        return self._outcome("static-home", [region], samples, 1.0)

    def geo_nearest(self, regions: Sequence[str]) -> PolicyOutcome:
        assignment = {
            client.name: self._nearest_region(client, regions)
            for client in self.wan.clients
        }
        samples = self._samples(
            lambda client, r: self._latency(
                client.name, assignment[client.name], r
            )
        )
        return self._outcome("geo-nearest", regions, samples, 1.0)

    def dynamic_best(self, regions: Sequence[str]) -> PolicyOutcome:
        def pick(client, round_index):
            values = [
                self._latency(client.name, region, round_index)
                for region in regions
            ]
            values = [v for v in values if v == v]
            return min(values) if values else None

        samples = self._samples(pick)
        return self._outcome("dynamic-best", regions, samples, 1.0)

    def parallel_race(self, regions: Sequence[str]) -> PolicyOutcome:
        """Same latency as dynamic-best, but honestly priced: every
        region serves every request."""
        best = self.dynamic_best(regions)
        return PolicyOutcome(
            policy="parallel-k",
            regions=tuple(regions),
            mean_latency_ms=best.mean_latency_ms,
            p95_latency_ms=best.p95_latency_ms,
            server_load_factor=float(len(regions)),
        )

    # -- the comparison table ---------------------------------------------------

    def compare(
        self, regions: Optional[Sequence[str]] = None
    ) -> List[PolicyOutcome]:
        """All policies over one deployment footprint.

        Defaults to the latency-optimal k=3 footprint from Figure 12.
        """
        if regions is None:
            frontier = self.wan.optimal_k_regions("latency")
            regions = frontier[2]["regions"]
        return [
            self.static_home(),
            self.geo_nearest(regions),
            self.dynamic_best(regions),
            self.parallel_race(regions),
        ]

    def geo_penalty(self, regions: Sequence[str]) -> float:
        """How much geo-pinning loses to the dynamic oracle (the cost
        of not adapting to congestion episodes), as a fraction."""
        geo = self.geo_nearest(regions).mean_latency_ms
        best = self.dynamic_best(regions).mean_latency_ms
        return (geo - best) / geo if geo else 0.0
