"""Availability-zone usage (§4.3): Tables 11-15 and Figures 7-8.

Collects every EC2 "physical instance" address from the Alexa dataset
(front-end VM IPs, physical ELB IPs, Heroku routing IPs), identifies
each one's zone with the combined cartography method, and aggregates
zone usage per subdomain and per domain.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.dataset import AlexaSubdomainsDataset
from repro.analysis.patterns import PatternAnalysis
from repro.cartography.combined import CombinedZoneIdentifier, CombinedResult
from repro.cartography.latency_method import (
    LatencyZoneIdentifier,
    PROBE_ACCOUNT,
)
from repro.cartography.proximity_method import ProximityZoneIdentifier
from repro.cloud.base import InstanceRole, InstanceType
from repro.net.ipv4 import IPv4Address
from repro.report.cdf import CDF
from repro.world import World


@dataclass
class CalibrationCell:
    """Table 11 cell: RTTs from the reference probe to one target."""

    instance_type: str
    zone_label: int
    min_ms: float
    median_ms: float


class ZoneAnalysis:
    """Runs cartography over the dataset's EC2 instance addresses."""

    def __init__(
        self,
        world: World,
        dataset: AlexaSubdomainsDataset,
        patterns: Optional[PatternAnalysis] = None,
    ):
        self.world = world
        self.dataset = dataset
        self.patterns = patterns or PatternAnalysis(world, dataset)
        self.latency = LatencyZoneIdentifier(world.ec2, world.prober)
        self.proximity = ProximityZoneIdentifier(world.ec2)
        self.combined = CombinedZoneIdentifier(self.latency, self.proximity)
        self._region_results: Dict[str, CombinedResult] = {}
        self._targets: Optional[Dict[str, List[IPv4Address]]] = None

    # -- Table 11: the calibration experiment -------------------------------

    def rtt_calibration(
        self, region_name: str = "us-east-1"
    ) -> List[CalibrationCell]:
        """Same-zone vs cross-zone RTTs by instance type (Table 11)."""
        ec2 = self.world.ec2
        reference = ec2.launch_instance(
            account_id=PROBE_ACCOUNT,
            region_name=region_name,
            zone_label_pos=0,
            itype=InstanceType.T1_MICRO,
            role=InstanceRole.PROBE,
        )
        cells = []
        num_zones = ec2.region(region_name).num_zones
        for itype in (
            InstanceType.T1_MICRO,
            InstanceType.M1_MEDIUM,
            InstanceType.M1_XLARGE,
            InstanceType.M3_2XLARGE,
        ):
            for zone_label in range(num_zones):
                # A controlled experiment: several idle targets per
                # cell, keeping the best-behaved pair (a single noisy
                # co-tenant pair must not poison the calibration).
                best_min = best_median = None
                for _ in range(3):
                    target = ec2.launch_instance(
                        account_id=PROBE_ACCOUNT,
                        region_name=region_name,
                        zone_label_pos=zone_label,
                        itype=itype,
                        role=InstanceRole.PROBE,
                    )
                    result = self.world.prober.tcp_ping(
                        reference, target, count=10
                    )
                    if best_min is None or result.min_ms < best_min:
                        best_min = result.min_ms
                        best_median = result.median_ms
                cells.append(CalibrationCell(
                    instance_type=itype.label,
                    zone_label=zone_label,
                    min_ms=best_min,
                    median_ms=best_median,
                ))
        return cells

    # -- target collection -----------------------------------------------------

    def targets_by_region(self) -> Dict[str, List[IPv4Address]]:
        """Every physical EC2 instance address in the dataset, grouped
        by the region its published range places it in."""
        if self._targets is not None:
            return self._targets
        region_ranges = self.world.ec2.plan.prefix_set()
        addresses: Set[IPv4Address] = set()
        for pattern in self.patterns.patterns():
            addresses.update(pattern.front_vm_ips)
            addresses.update(pattern.elb_ips)
            addresses.update(pattern.heroku_ips)
        targets: Dict[str, List[IPv4Address]] = defaultdict(list)
        for address in addresses:
            region = region_ranges.lookup(address)
            if region is not None:
                targets[region].append(address)
        for bucket in targets.values():
            bucket.sort()
        self._targets = dict(targets)
        return self._targets

    def region_result(self, region_name: str) -> CombinedResult:
        result = self._region_results.get(region_name)
        if result is None:
            targets = self.targets_by_region().get(region_name, [])
            result = self.combined.identify_region(region_name, targets)
            self._region_results[region_name] = result
        return result

    # -- Table 12: latency-only estimates ------------------------------------------

    def latency_estimates(self, region_name: str) -> dict:
        targets = self.targets_by_region().get(region_name, [])
        estimates = self.latency.identify_all(region_name, targets)
        responded = [e for e in estimates if e.responded]
        zone_counter: Counter = Counter()
        unknown = 0
        for est in responded:
            if est.zone_label is None:
                unknown += 1
            else:
                zone_counter[est.zone_label] += 1
        return {
            "region": region_name,
            "targets": len(targets),
            "responded": len(responded),
            "zone_counts": dict(zone_counter),
            "unknown": unknown,
            "unknown_fraction": (
                unknown / len(responded) if responded else 0.0
            ),
        }

    # -- Table 13: accuracy ------------------------------------------------------------

    def accuracy_table(self) -> List[dict]:
        rows = []
        for region_name in sorted(self.targets_by_region()):
            result = self.region_result(region_name)
            acc = result.accuracy
            rows.append({
                "region": region_name,
                "count": acc.count,
                "match": acc.match,
                "unknown": acc.unknown,
                "mismatch": acc.mismatch,
                "error_rate": acc.error_rate,
            })
        return rows

    # -- zone usage per subdomain / domain --------------------------------------------------

    def identified_fraction(self) -> float:
        total = known = 0
        for region_name in self.targets_by_region():
            result = self.region_result(region_name)
            for zone in result.zones.values():
                total += 1
                if zone is not None:
                    known += 1
        return known / total if total else 0.0

    def _zone_of(self, region_name: str, address: IPv4Address):
        return self.region_result(region_name).zones.get(address)

    def subdomain_zones(self) -> Dict[str, Set[Tuple[str, int]]]:
        """fqdn → set of (region, zone label) its front ends span."""
        region_ranges = self.world.ec2.plan.prefix_set()
        result: Dict[str, Set[Tuple[str, int]]] = {}
        for pattern in self.patterns.patterns():
            addresses = (
                pattern.front_vm_ips | pattern.elb_ips | pattern.heroku_ips
            )
            if not addresses:
                continue
            zones: Set[Tuple[str, int]] = set()
            for address in addresses:
                region = region_ranges.lookup(address)
                if region is None:
                    continue
                zone = self._zone_of(region, address)
                if zone is not None:
                    zones.add((region, zone))
            if zones:
                result[pattern.fqdn] = zones
        return result

    def zones_per_subdomain_cdf(self) -> CDF:
        return CDF([
            len(zones) for zones in self.subdomain_zones().values()
        ])

    def zones_per_domain_cdf(self) -> CDF:
        per_domain: Dict[str, List[int]] = defaultdict(list)
        fqdn_domain = {
            p.fqdn: p.domain for p in self.patterns.patterns()
        }
        for fqdn, zones in self.subdomain_zones().items():
            per_domain[fqdn_domain[fqdn]].append(len(zones))
        return CDF([
            sum(counts) / len(counts) for counts in per_domain.values()
        ])

    def multi_region_zone_fraction(self) -> float:
        """Of subdomains using 2+ zones, the share whose zones span
        more than one region (the paper's 3.1%)."""
        multi = cross = 0
        for zones in self.subdomain_zones().values():
            if len(zones) < 2:
                continue
            multi += 1
            if len({region for region, _ in zones}) > 1:
                cross += 1
        return cross / multi if multi else 0.0

    # -- Table 14 ---------------------------------------------------------------------------

    def zone_usage_table(self) -> Dict[str, Dict[int, dict]]:
        """region → zone label → {domains, subdomains}."""
        fqdn_domain = {
            p.fqdn: p.domain for p in self.patterns.patterns()
        }
        result: Dict[str, Dict[int, dict]] = defaultdict(
            lambda: defaultdict(lambda: {"domains": set(), "subdomains": 0})
        )
        for fqdn, zones in self.subdomain_zones().items():
            for region, zone in zones:
                entry = result[region][zone]
                entry["domains"].add(fqdn_domain[fqdn])
                entry["subdomains"] += 1
        return {
            region: {
                zone: {
                    "domains": len(data["domains"]),
                    "subdomains": data["subdomains"],
                }
                for zone, data in zones.items()
            }
            for region, zones in result.items()
        }

    # -- Table 15 ---------------------------------------------------------------------------

    def top_domain_zones(self, count: int = 10) -> List[dict]:
        top = self.patterns.clouduse.top_cloud_domains("ec2", count)
        subdomain_zones = self.subdomain_zones()
        fqdn_domain = {
            p.fqdn: p.domain for p in self.patterns.patterns()
        }
        by_domain: Dict[str, List[Set]] = defaultdict(list)
        for fqdn, zones in subdomain_zones.items():
            by_domain[fqdn_domain[fqdn]].append(zones)
        rows = []
        for entry in top:
            domain = entry["domain"]
            zone_sets = by_domain.get(domain, [])
            all_zones: Set = set()
            k_counter: Counter = Counter()
            for zones in zone_sets:
                all_zones.update(zones)
                k_counter[min(len(zones), 3)] += 1
            rows.append({
                "rank": entry["rank"],
                "domain": domain,
                "cloud_subdomains": entry["cloud_subdomains"],
                "total_zones": len(all_zones),
                "k1": k_counter.get(1, 0),
                "k2": k_counter.get(2, 0),
                "k3": k_counter.get(3, 0),
            })
        return rows

    # -- Figure 7 ----------------------------------------------------------------------------

    def proximity_scatter(
        self, region_name: str = "us-east-1"
    ) -> List[Tuple[int, int]]:
        """(internal IP as int, merged zone label) sample points."""
        return [
            (ip.value, label)
            for ip, label in self.proximity.sample_points(region_name)
        ]

    # -- ground-truth scoring (validation only) --------------------------------------------------

    def ground_truth_accuracy(self) -> dict:
        """Fraction of combined identifications that match the world's
        actual zone placement (never available to a real measurement)."""
        total = correct = 0
        for region_name in self.targets_by_region():
            result = self.region_result(region_name)
            for address, label in result.zones.items():
                if label is None:
                    continue
                actual = self.world.ec2.zone_of_instance_ip(address)
                if actual is None:
                    continue
                total += 1
                predicted = self.combined.label_to_physical(
                    region_name, label
                )
                if predicted == actual:
                    correct += 1
        return {
            "scored": total,
            "correct": correct,
            "accuracy": correct / total if total else 0.0,
        }
