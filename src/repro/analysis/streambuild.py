"""Chunked, constant-memory §2.1 dataset builds (build → reduce → release).

A batch build deploys every ranked tenant before measuring any of
them, so peak RSS grows linearly with the domain count — resource
records alone dominate at paper scale.  This module pipelines the
build instead: deploy a *group* of fixed-size rank chunks, fork one
worker per chunk to run the full enumerate → filter → lookups → NS-dig
pipeline over its slice, merge the chunk outputs, and release every
tenant the capture will never revisit before deploying the next group.
Peak memory is bounded by one group's tenants plus the dataset itself,
whatever the domain count.

Correctness rests on the same rotation discipline as
:mod:`repro.analysis.shards`, with three twists:

* the parent must stay dig-pristine for the whole build, so even
  single-worker groups fork (``force_fork``) — chunk digs never
  advance the parent's rotation counters or write its caches, which is
  what lets one ``counter_baseline`` serve every group and the replay
  run once at the end;
* chunk-crossing dynamic names are flagged *conservatively* per group
  (:meth:`DnsInfrastructure.cross_chunk_dynamic_names`): unlike the
  all-at-once shard fan-out, future chunks have not deployed yet, so
  shared-ness cannot be computed from the final alias graph.  Flagged
  digs are logged and replayed against the finalized world — sound
  because every dynamic name lives in a global provider zone that
  tenant releases never touch;
* the final reconcile adds a cross-chunk check: a dynamic name whose
  counter advanced in two or more chunks without replay descriptors is
  a hard error, so a name the conservative analysis missed fails loud,
  never drifts silently.

Name-server resolution (the survey's global, first-seen-deduped half)
runs on the parent per chunk, *before* the chunk's zones are released
— NS targets are static A records, so these digs rotate nothing, and
the persistent dedup set preserves the sequential visit order exactly.

What the streaming dataset gives up, by design (documented in
docs/PERFORMANCE.md): vantage-resolver caches are not retained (cache
keys are domain-unique fqdns no later stage re-digs), and the
``discovered`` map keeps only domains that appear in the dataset's
records (every analysis consumer joins it through ``by_domain``); the
total discovered count stays exact.  Records, NS addresses, dynamic
query counters, and resolver query counts are bit-identical to a batch
build's.
"""

from __future__ import annotations

import time
from typing import Dict, List, Tuple

from repro.analysis.shards import (
    _PHASE_RANK,
    _build_shard,
    replay_shared_rotations,
)
from repro.campaign.fanout import fork_map
from repro.flags import streaming_chunk_size, streaming_runtime_enabled
from repro.sim import fork_pool_available


def chunked_build_eligible(builder) -> bool:
    """Whether the constant-memory chunked build may run.

    Mirrors :meth:`DatasetBuilder.can_shard`'s preconditions (fork
    isolation, full range coverage so classification is
    rotation-independent) plus the streaming switch, no outage
    scenario (drills assume the batch engine loop), and no live event
    sink (forked chunk workers cannot stream probe events).  Callers
    fall back to :meth:`World.catch_up_tenants` + the batch build when
    this declines.
    """
    return (
        streaming_runtime_enabled()
        and fork_pool_available()
        and builder.range_coverage >= 1.0
        and builder.scenario is None
        and not builder.obs.events.enabled
    )


def build_chunked(builder, workers: int = 0):
    """Build the §2.1 dataset over a deferred world in rank chunks.

    Callers go through :meth:`DatasetBuilder.build`, which gates on
    :func:`chunked_build_eligible` and a world with pending tenants.
    """
    from repro.analysis.dataset import AlexaSubdomainsDataset

    world = builder.world
    if not world.pending_tenants:
        raise RuntimeError("build_chunked needs a deferred world")
    sites = world.alexa.sites
    chunk = streaming_chunk_size()
    group_size = max(1, workers)
    bounds = [
        (lo, min(lo + chunk, len(sites)))
        for lo in range(0, len(sites), chunk)
    ]
    counter_baseline = world.dns.dynamic_query_counts()

    records: list = []
    cloudfront_records: list = []
    record_offsets: List[int] = []
    cloudfront_offsets: List[int] = []
    discovered: Dict[str, List[str]] = {}
    other_cdn: Dict[str, List[str]] = {}
    ns_addresses: Dict[str, object] = {}
    total = 0
    kept_results: list = []
    step_totals: Dict[str, float] = {}
    released_zones = 0
    metrics = builder.obs.metrics
    tracer = builder.obs.tracer
    vantage_by_name = {v.name: v for v in world.dns_vantages()}
    resolve_s = 0.0

    with tracer.span(
        "dataset:chunked", category="shard",
        chunks=len(bounds), group=group_size,
    ):
        for group_lo in range(0, len(bounds), group_size):
            group = bounds[group_lo:group_lo + group_size]
            window = world.ensure_deployed_through(group[-1][1])
            shared = world.dns.cross_chunk_dynamic_names(
                deployed.plan.domain for deployed in window
            )
            resolver_baselines = {
                name: (resolver.query_count, frozenset())
                for name, resolver in world._resolvers.items()
            }
            results = fork_map(
                lambda index: _build_shard(
                    builder, bounds, shared, resolver_baselines,
                    counter_baseline, group_lo + index,
                    export_caches=False,
                ),
                len(group), group_size, force_fork=True,
            )
            for result in results:
                record_offsets.append(len(records))
                cloudfront_offsets.append(len(cloudfront_records))
                records.extend(result.records)
                cloudfront_records.extend(result.cloudfront_records)
                other_cdn.update(result.other_cdn)
                total += result.total
                wanted = {record.domain for record in result.records}
                wanted.update(
                    record.domain for record in result.cloudfront_records
                )
                wanted.update(result.other_cdn)
                for domain in wanted:
                    if domain in result.discovered:
                        discovered[domain] = result.discovered[domain]
                resolve_start = time.perf_counter()
                builder.resolve_ns_hostnames(
                    result.ns_name_lists, into=ns_addresses
                )
                resolve_s += time.perf_counter() - resolve_start
                if metrics.enabled:
                    metrics.apply_counter_deltas(result.metric_deltas)
                for vantage_name, (query_delta, _entries) in (
                    result.resolver_payload.items()
                ):
                    resolver = world.resolver_for(
                        vantage_by_name[vantage_name]
                    )
                    resolver.query_count += query_delta
                # Keep only what the replay and reconcile need; the
                # heavy outputs were merged above.
                result.records = ()
                result.cloudfront_records = ()
                result.discovered = {}
                result.other_cdn = {}
                result.ns_name_lists = []
                result.resolver_payload = {}
                kept_results.append(result)
            for step in (
                "enumerate", "filter", "distributed_lookups", "ns_survey",
            ):
                step_totals[step] = step_totals.get(step, 0.0) + max(
                    result.step_timings.get(f"{step}_s", 0.0)
                    for result in results
                )
            released_zones += world.release_window()

        # The parent must still be dig-pristine: any parent-side
        # rotation would shift the replay's index assignment away from
        # the sequential one.
        if world.dns.dynamic_query_counts() != counter_baseline:
            raise RuntimeError(
                "chunked build: parent advanced dynamic counters "
                "mid-build (NS resolution hit a rotating name?)"
            )
        world.finalize_tenants()

        # -- replay shared rotations in sequential global order --------
        tagged = sorted(
            (
                (_PHASE_RANK[entry.phase], result.shard_index, entry.seq,
                 result, entry)
                for result in kept_results
                for entry in result.entries
            ),
            key=lambda item: item[:3],
        )

        def patch_record(result, entry, addresses):
            offsets = (
                record_offsets
                if entry.phase == "lookup"
                else cloudfront_offsets
            )
            target = (
                records if entry.phase == "lookup" else cloudfront_records
            )
            target[
                offsets[result.shard_index] + entry.position
            ].addresses.update(addresses)

        replay_counts = replay_shared_rotations(
            world, tagged, counter_baseline, None, patch_record
        )

        # -- reconcile rotation counters -------------------------------
        total_deltas: Dict[Tuple[str, str], int] = {}
        chunks_touching: Dict[Tuple[str, str], int] = {}
        for result in kept_results:
            for key, delta in result.counter_deltas.items():
                total_deltas[key] = total_deltas.get(key, 0) + delta
                chunks_touching[key] = chunks_touching.get(key, 0) + 1
        for key, count in replay_counts.items():
            if total_deltas.get(key, 0) != count:
                raise RuntimeError(
                    f"chunk replay drift for {key[1]}: replayed {count} "
                    f"queries, workers reported "
                    f"{total_deltas.get(key, 0)}"
                )
        for key, touched in chunks_touching.items():
            if touched >= 2 and key not in replay_counts:
                raise RuntimeError(
                    f"dynamic name {key[1]} rotated in {touched} chunks "
                    f"with no replay descriptors — cross-chunk analysis "
                    f"missed it"
                )
        world.dns.apply_dynamic_query_deltas(total_deltas)

    if metrics.enabled:
        metrics.counter(
            "dataset_chunks_merged_total", volatile=True
        ).inc(len(kept_results))
        metrics.gauge(
            "dataset_zones_released", volatile=True
        ).set(released_zones)
    if tracer.enabled:
        for step, label in (
            ("enumerate", "enumerate"),
            ("filter", "filter"),
            ("distributed_lookups", "distributed_lookups"),
        ):
            tracer.record(
                label, category="dataset-step",
                seconds=step_totals.get(step, 0.0),
                chunks=len(kept_results),
            )
        tracer.record(
            "ns_survey", category="dataset-step",
            seconds=step_totals.get("ns_survey", 0.0) + resolve_s,
            chunks=len(kept_results),
        )

    return AlexaSubdomainsDataset(
        records=records,
        discovered=discovered,
        ns_addresses=ns_addresses,
        total_discovered_subdomains=total,
        cloudfront_records=cloudfront_records,
        other_cdn_subdomains=other_cdn,
    )
