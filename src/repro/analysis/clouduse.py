"""Who is using the cloud (§3.2): Tables 3 and 4, rank skew, prefixes.

Classification follows the paper exactly: a subdomain is *EC2 only* if
every address it ever resolved to lies in EC2's published ranges,
*EC2 + Other* if it mixes EC2 and non-cloud addresses, and so on;
domains inherit the union of their subdomains' providers, with "other"
set when any subdomain (cloud-using or not) resolves outside the
clouds.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.dataset import AlexaSubdomainsDataset, SubdomainRecord
from repro.world import World

CATEGORIES = (
    "EC2 only", "EC2 + Other", "Azure only", "Azure + Other", "EC2 + Azure",
)


@dataclass
class CloudUseReport:
    """Table 3 plus the supporting §3.2 statistics."""

    #: category → (domain count, subdomain count).
    domain_counts: Dict[str, int] = field(default_factory=dict)
    subdomain_counts: Dict[str, int] = field(default_factory=dict)
    total_domains: int = 0
    total_subdomains: int = 0
    ec2_total_domains: int = 0
    azure_total_domains: int = 0
    ec2_total_subdomains: int = 0
    azure_total_subdomains: int = 0
    #: fraction of cloud-using domains per rank quartile.
    quartile_shares: Tuple[float, ...] = ()
    #: most common subdomain prefixes among cloud-using subdomains.
    top_prefixes: List[Tuple[str, float]] = field(default_factory=list)


class CloudUseAnalysis:
    """Classifies the dataset's records against published ranges."""

    def __init__(self, world: World, dataset: AlexaSubdomainsDataset):
        self.world = world
        self.dataset = dataset
        self.ec2_ranges = world.ec2.published_range_set()
        self.azure_ranges = world.azure.published_range_set()

    # -- classification ------------------------------------------------------

    def subdomain_category(self, record: SubdomainRecord) -> Optional[str]:
        """One of CATEGORIES, or None for a record with no addresses."""
        uses_ec2 = uses_azure = uses_other = False
        for address in record.addresses:
            if address in self.ec2_ranges:
                uses_ec2 = True
            elif address in self.azure_ranges:
                uses_azure = True
            else:
                uses_other = True
        if uses_ec2 and uses_azure:
            return "EC2 + Azure"
        if uses_ec2:
            return "EC2 + Other" if uses_other else "EC2 only"
        if uses_azure:
            return "Azure + Other" if uses_other else "Azure only"
        return None

    def subdomain_provider(self, record: SubdomainRecord) -> Optional[str]:
        """'ec2', 'azure', or 'both' for a cloud-using record."""
        category = self.subdomain_category(record)
        if category is None:
            return None
        if category.startswith("EC2 + Azure"):
            return "both"
        return "ec2" if category.startswith("EC2") else "azure"

    def domain_category(self, domain: str) -> Optional[str]:
        """Domain-level classification.

        A domain is EC2-only only when *all* of its discovered
        subdomains resolve exclusively to EC2; the presence of any
        non-cloud subdomain makes it EC2 + Other, etc.
        """
        records = self.dataset.by_domain.get(domain, [])
        if not records:
            return None
        uses_ec2 = uses_azure = uses_other = False
        cloud_fqdns = set()
        for record in records:
            cloud_fqdns.add(record.fqdn)
            category = self.subdomain_category(record)
            if category is None:
                continue
            if "EC2" in category:
                uses_ec2 = True
            if "Azure" in category:
                uses_azure = True
            if "Other" in category:
                uses_other = True
        # Subdomains discovered but never flagged cloud-using resolve
        # elsewhere: they make the domain "+ Other".
        for fqdn in self.dataset.discovered.get(domain, []):
            if fqdn not in cloud_fqdns:
                uses_other = True
                break
        if uses_ec2 and uses_azure:
            return "EC2 + Azure"
        if uses_ec2:
            return "EC2 + Other" if uses_other else "EC2 only"
        if uses_azure:
            return "Azure + Other" if uses_other else "Azure only"
        return None

    # -- Table 3 -----------------------------------------------------------------

    def report(self) -> CloudUseReport:
        report = CloudUseReport()
        domain_counter: Counter = Counter()
        subdomain_counter: Counter = Counter()
        quartiles: Counter = Counter()
        prefix_counter: Counter = Counter()
        for domain in self.dataset.domains():
            category = self.domain_category(domain)
            if category is None:
                continue
            domain_counter[category] += 1
            rank = self.world.alexa.rank_of(domain)
            if rank is not None:
                quartiles[self.world.alexa.quartile_of(rank)] += 1
        for record in self.dataset.records:
            category = self.subdomain_category(record)
            if category is None:
                continue
            subdomain_counter[category] += 1
            prefix = record.fqdn.split(".", 1)[0]
            prefix_counter[prefix] += 1
        report.domain_counts = {c: domain_counter.get(c, 0) for c in CATEGORIES}
        report.subdomain_counts = {
            c: subdomain_counter.get(c, 0) for c in CATEGORIES
        }
        report.total_domains = sum(report.domain_counts.values())
        report.total_subdomains = sum(report.subdomain_counts.values())
        report.ec2_total_domains = sum(
            count for cat, count in report.domain_counts.items()
            if "EC2" in cat
        )
        report.azure_total_domains = sum(
            count for cat, count in report.domain_counts.items()
            if "Azure" in cat
        )
        report.ec2_total_subdomains = sum(
            count for cat, count in report.subdomain_counts.items()
            if "EC2" in cat
        )
        report.azure_total_subdomains = sum(
            count for cat, count in report.subdomain_counts.items()
            if "Azure" in cat
        )
        total_cloud_domains = sum(quartiles.values()) or 1
        report.quartile_shares = tuple(
            quartiles.get(q, 0) / total_cloud_domains for q in range(4)
        )
        total_subs = report.total_subdomains or 1
        report.top_prefixes = [
            (prefix, count / total_subs)
            for prefix, count in prefix_counter.most_common(10)
        ]
        return report

    # -- Table 4 ---------------------------------------------------------------------

    def top_cloud_domains(
        self, provider: str = "ec2", count: int = 10
    ) -> List[dict]:
        """The highest-ranked domains using ``provider``.

        Each row carries the domain's rank, total discovered
        subdomains, and its cloud-using subdomain count — Table 4's
        columns.
        """
        rows = []
        for domain in self.dataset.domains():
            category = self.domain_category(domain)
            if category is None:
                continue
            wanted = "EC2" if provider == "ec2" else "Azure"
            if wanted not in category:
                continue
            rank = self.world.alexa.rank_of(domain)
            if rank is None:
                continue
            cloud_subs = sum(
                1 for record in self.dataset.by_domain[domain]
                if self.subdomain_category(record) is not None
                and wanted in self.subdomain_category(record)
            )
            rows.append({
                "rank": rank,
                "domain": domain,
                "total_subdomains": len(
                    self.dataset.discovered.get(domain, [])
                ),
                "cloud_subdomains": cloud_subs,
            })
        rows.sort(key=lambda row: row["rank"])
        return rows[:count]
