"""Capture-side traffic analysis (§3.1 and §3.3).

Thin orchestration over :class:`repro.capture.BroAnalyzer`, shaping its
aggregates into the paper's tables: per-cloud shares (Table 1),
protocol mix with percentage columns (Table 2), top domains by volume
(Table 5), content types with mean/max object sizes (Table 6), and the
Figure 3 flow-count/size CDFs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.capture.analyzer import BroAnalyzer
from repro.capture.flow import Trace
from repro.report.cdf import CDF
from repro.world import World

PROTOCOL_ORDER = (
    "ICMP", "HTTP (TCP)", "HTTPS (TCP)", "DNS (UDP)",
    "Other (TCP)", "Other (UDP)",
)


@dataclass
class TrafficReport:
    """All §3 capture statistics in one bundle."""

    #: provider → (byte %, flow %) of the capture total (Table 1).
    cloud_shares: Dict[str, tuple] = field(default_factory=dict)
    #: scope ('ec2'|'azure'|'overall') → protocol → (byte %, flow %)
    #: relative to the scope's totals (Table 2).
    protocol_mix: Dict[str, Dict[str, tuple]] = field(default_factory=dict)
    #: provider → ranked rows (Table 5).
    top_domains: Dict[str, List[dict]] = field(default_factory=dict)
    #: Table 6 rows.
    content_types: List[dict] = field(default_factory=list)
    #: unique cloud-using domains seen in the capture, per provider.
    unique_domains: Dict[str, int] = field(default_factory=dict)


class TrafficAnalysis:
    """Runs the capture analyses."""

    def __init__(self, world: World, trace: Optional[Trace] = None):
        self.world = world
        self.trace = trace if trace is not None else world.capture_trace()
        self.analyzer = BroAnalyzer({
            "ec2": world.ec2.published_range_set(),
            "azure": world.azure.published_range_set(),
        })

    # -- Tables 1, 2 -----------------------------------------------------------

    def table1(self) -> Dict[str, tuple]:
        shares = self.analyzer.cloud_shares(self.trace)
        total_bytes = sum(s.bytes for s in shares.values()) or 1
        total_flows = sum(s.flows for s in shares.values()) or 1
        return {
            provider: (
                100.0 * stats.bytes / total_bytes,
                100.0 * stats.flows / total_flows,
            )
            for provider, stats in shares.items()
        }

    def table2(self) -> Dict[str, Dict[str, tuple]]:
        breakdown = self.analyzer.protocol_breakdown(self.trace)
        result: Dict[str, Dict[str, tuple]] = {}
        for scope, protocols in breakdown.items():
            scope_bytes = sum(s.bytes for s in protocols.values()) or 1
            scope_flows = sum(s.flows for s in protocols.values()) or 1
            result[scope] = {
                label: (
                    100.0 * protocols[label].bytes / scope_bytes,
                    100.0 * protocols[label].flows / scope_flows,
                )
                for label in PROTOCOL_ORDER
                if label in protocols
            }
        return result

    # -- Table 5 ------------------------------------------------------------------

    def table5(self, count: int = 15) -> Dict[str, List[dict]]:
        httpx_bytes = self._total_httpx_bytes()
        result: Dict[str, List[dict]] = {}
        for provider in ("ec2", "azure"):
            rows = []
            for entry in self.analyzer.top_domains_by_volume(
                self.trace, provider, count
            ):
                rows.append({
                    "domain": entry.domain,
                    "rank": self.world.alexa.rank_of(entry.domain),
                    "bytes": entry.total_bytes,
                    "percent_of_httpx": (
                        100.0 * entry.total_bytes / httpx_bytes
                    ),
                })
            result[provider] = rows
        return result

    def _total_httpx_bytes(self) -> int:
        breakdown = self.analyzer.protocol_breakdown(self.trace)
        overall = breakdown["overall"]
        total = 0
        for label in ("HTTP (TCP)", "HTTPS (TCP)"):
            if label in overall:
                total += overall[label].bytes
        return total or 1

    def unique_cloud_domains(self) -> Dict[str, int]:
        domains = self.analyzer.domain_traffic(self.trace)
        counts = {"ec2": 0, "azure": 0}
        for entry in domains.values():
            counts[entry.provider] = counts.get(entry.provider, 0) + 1
        counts["total"] = sum(counts.values())
        return counts

    # -- Table 6 -------------------------------------------------------------------

    def table6(self, count: int = 10) -> List[dict]:
        rows = []
        for stats in self.analyzer.content_types(self.trace)[:count]:
            rows.append({
                "content_type": stats.content_type,
                "bytes": stats.bytes,
                "mean_bytes": stats.mean_bytes,
                "max_bytes": stats.max_bytes,
            })
        return rows

    # -- Figure 3 ---------------------------------------------------------------------

    def flow_count_cdf(self, provider: str, protocol: str) -> CDF:
        return CDF(self.analyzer.flow_count_distribution(
            self.trace, provider, protocol
        ))

    def flow_size_cdf(self, provider: str, protocol: str) -> CDF:
        return CDF(self.analyzer.flow_size_distribution(
            self.trace, provider, protocol
        ))

    def flow_duration_cdf(self, provider: str, protocol: str) -> CDF:
        return CDF(self.analyzer.flow_duration_distribution(
            self.trace, provider, protocol
        ))

    def report(self) -> TrafficReport:
        return TrafficReport(
            cloud_shares=self.table1(),
            protocol_mix=self.table2(),
            top_domains=self.table5(),
            content_types=self.table6(),
            unique_domains=self.unique_cloud_domains(),
        )
