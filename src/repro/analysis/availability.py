"""Availability analysis: executing the paper's outage hypotheticals.

§4.2/§4.3 argue that single-region, single-zone deployments make even
popular services fragile ("an outage of EC2's US East region would
take down critical components of at least 2.3% of the top million";
"a failure of ec2.us-east-1a would impact ~419K subdomains").  This
module evaluates any :class:`repro.faults.OutageScenario` against the
*measured* dataset: a subdomain's fate is judged from the front-end
endpoints and service dependencies the DNS survey observed, with
availability zones expressed in the cartography's measured label
space (exactly the information position of the paper's authors).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.dataset import AlexaSubdomainsDataset
from repro.analysis.patterns import PatternAnalysis
from repro.analysis.zones import ZoneAnalysis
from repro.campaign.engine import CampaignEngine
from repro.campaign.probes import TracerouteCampaign
from repro.cloud.base import InstanceRole
from repro.faults.scenarios import OutageScenario
from repro.net.ipv4 import IPv4Address
from repro.probing.traceroute import TracerouteTool
from repro.world import World

UNAFFECTED = "unaffected"
DEGRADED = "degraded"
UNAVAILABLE = "unavailable"


@dataclass
class SubdomainDependencies:
    """What one subdomain's front end needs to stay up."""

    fqdn: str
    domain: str
    #: (provider, region, zone-label-or-None) per serving endpoint.
    endpoints: List[Tuple[str, str, Optional[int]]] = field(
        default_factory=list
    )
    #: Value-added services in the serving path.
    services: Set[str] = field(default_factory=set)
    #: True if the subdomain also resolves outside the clouds (hybrid
    #: deployments keep limping along through their external hosting).
    has_external_fallback: bool = False


@dataclass
class ImpactReport:
    """The outcome of one outage drill."""

    scenario_name: str
    total_subdomains: int = 0
    unavailable: int = 0
    degraded: int = 0
    unaffected: int = 0
    #: Domains with at least one unavailable subdomain.
    domains_hit: int = 0
    #: Share of the whole ranking with an unavailable subdomain.
    alexa_share_hit: float = 0.0
    #: Highest-ranked affected domains, for the post-mortem headline.
    notable_casualties: List[Tuple[int, str]] = field(default_factory=list)

    @property
    def unavailable_fraction(self) -> float:
        return (
            self.unavailable / self.total_subdomains
            if self.total_subdomains else 0.0
        )


class AvailabilityAnalysis:
    """Evaluates outage scenarios against the measured deployments."""

    def __init__(
        self,
        world: World,
        dataset: AlexaSubdomainsDataset,
        patterns: Optional[PatternAnalysis] = None,
        zones: Optional[ZoneAnalysis] = None,
    ):
        self.world = world
        self.dataset = dataset
        self.patterns = patterns or PatternAnalysis(world, dataset)
        self.zones = zones or ZoneAnalysis(world, dataset, self.patterns)
        self._ec2_regions = world.ec2.plan.prefix_set()
        self._azure_regions = world.azure.plan.prefix_set()
        self._dependencies: Optional[List[SubdomainDependencies]] = None

    # -- dependency extraction ------------------------------------------------

    def _endpoint_of(
        self, address: IPv4Address
    ) -> Optional[Tuple[str, str, Optional[int]]]:
        region = self._ec2_regions.lookup(address)
        if region is not None:
            zone = self.zones.region_result(region).zones.get(address)
            return ("ec2", region, zone)
        region = self._azure_regions.lookup(address)
        if region is not None:
            return ("azure", region, None)
        return None

    def dependencies(self) -> List[SubdomainDependencies]:
        """Serving dependencies for every cloud-using subdomain."""
        if self._dependencies is not None:
            return self._dependencies
        result = []
        for pattern in self.patterns.patterns():
            record = self.dataset.by_fqdn[pattern.fqdn]
            deps = SubdomainDependencies(
                fqdn=pattern.fqdn, domain=pattern.domain
            )
            for address in record.addresses:
                endpoint = self._endpoint_of(address)
                if endpoint is None:
                    deps.has_external_fallback = True
                else:
                    deps.endpoints.append(endpoint)
            if pattern.elb:
                deps.services.add("elb")
            if pattern.heroku:
                deps.services.add("heroku")
            if pattern.beanstalk:
                deps.services.add("beanstalk")
            if pattern.traffic_manager:
                deps.services.add("traffic-manager")
            result.append(deps)
        self._dependencies = result
        return result

    # -- evaluation --------------------------------------------------------------

    @staticmethod
    def _endpoint_survives(
        endpoint: Tuple[str, str, Optional[int]],
        scenario: OutageScenario,
    ) -> bool:
        provider, region, zone = endpoint
        if scenario.region_down(provider, region):
            return False
        if zone is not None and scenario.zone_down(provider, region, zone):
            return False
        return True

    def evaluate(self, scenario: OutageScenario) -> ImpactReport:
        report = ImpactReport(scenario_name=scenario.name)
        hit_domains: Set[str] = set()
        for deps in self.dependencies():
            report.total_subdomains += 1
            status = self._status_of(deps, scenario)
            if status == UNAVAILABLE:
                report.unavailable += 1
                hit_domains.add(deps.domain)
            elif status == DEGRADED:
                report.degraded += 1
            else:
                report.unaffected += 1
        report.domains_hit = len(hit_domains)
        report.alexa_share_hit = len(hit_domains) / len(self.world.alexa)
        ranked = sorted(
            (
                (self.world.alexa.rank_of(domain), domain)
                for domain in hit_domains
                if self.world.alexa.rank_of(domain) is not None
            ),
        )
        report.notable_casualties = ranked[:10]
        return report

    def _status_of(
        self, deps: SubdomainDependencies, scenario: OutageScenario
    ) -> str:
        # A failed value-added service in the serving path takes the
        # front end down regardless of where the instances live.
        if any(scenario.service_down(s) for s in deps.services):
            return (
                DEGRADED if deps.has_external_fallback else UNAVAILABLE
            )
        if not deps.endpoints:
            return UNAFFECTED
        surviving = [
            e for e in deps.endpoints
            if self._endpoint_survives(e, scenario)
        ]
        if len(surviving) == len(deps.endpoints):
            return UNAFFECTED
        if surviving or deps.has_external_fallback:
            return DEGRADED
        return UNAVAILABLE

    # -- the paper's headline drills ----------------------------------------------

    def region_blast_radius(self) -> Dict[str, ImpactReport]:
        """Impact of losing each EC2 region, one at a time."""
        from repro.faults.scenarios import region_outage
        return {
            region: self.evaluate(region_outage("ec2", region))
            for region in self.world.ec2.region_names()
        }

    def zone_blast_radius(self, region: str) -> Dict[int, ImpactReport]:
        """Impact of losing each zone of one region (measured labels)."""
        from repro.faults.scenarios import zone_outage
        num_zones = self.world.ec2.region(region).num_zones
        return {
            zone: self.evaluate(zone_outage("ec2", region, zone))
            for zone in range(num_zones)
        }

    # -- ISP failures (§5.2) ---------------------------------------------------------

    def _probe_instance(self, region: str):
        return self.world.ec2.launch_instance(
            "availability-probe", region, role=InstanceRole.PROBE
        )

    def _traceroute_sweep(
        self,
        instance,
        vantages,
        scenario: Optional[OutageScenario] = None,
    ):
        """One engine traceroute campaign: a probe instance against
        ``vantages``, optionally under an outage drill."""
        tool = TracerouteTool(
            self.world.routing, self.world.ec2.published_range_set()
        )
        engine = CampaignEngine(
            self.world.streams.seed, scenario=scenario
        )
        campaign = TracerouteCampaign(
            tool, [instance], vantages,
            name=f"traceroute:availability:{instance.region_name}",
        )
        return engine.run(campaign)

    def isp_failover_analysis(
        self, provider: str, region: str, as_number: int
    ) -> dict:
        """One downstream ISP fails: stranded clients with and without
        BGP re-convergence.

        §5.2's remedy, quantified: without re-routing the ISP's whole
        route share is stranded; with re-convergence only clients for
        whom *no* surviving downstream exists stay dark (zero in a
        multihomed region).  Both sweeps are engine campaigns — the
        second simply runs the same grid under an
        :func:`~repro.faults.isp_outage` scenario.
        """
        from repro.faults.scenarios import isp_outage

        vantages = self.world.traceroute_vantages()
        instance = self._probe_instance(region)
        healthy = self._traceroute_sweep(instance, vantages)
        stranded = [
            record.task.vantage
            for record in healthy.records
            if record.observed
            and record.payload.first_external_asn == as_number
        ]
        stranded_set = set(stranded)
        rerouted = self._traceroute_sweep(
            instance,
            [v for v in vantages if v.name in stranded_set],
            scenario=isp_outage(as_number),
        )
        stranded_reconverged = sum(
            1 for record in rerouted.records if not record.ok
        )
        total = len(vantages)
        return {
            "as_number": as_number,
            "stranded_fraction_static": len(stranded) / total,
            "stranded_fraction_reconverged": (
                stranded_reconverged / total
            ),
        }

    def isp_blast_radius(
        self, provider: str, region: str
    ) -> List[Tuple[int, float]]:
        """Per downstream ISP: the fraction of clients cut off from the
        region if that ISP fails and routes do not re-converge.

        Sorted worst-first; the paper's point is that the spread is
        uneven, so one ISP can strand a third of clients.
        """
        vantages = self.world.traceroute_vantages()
        sweep = self._traceroute_sweep(
            self._probe_instance(region), vantages
        )
        per_isp: Counter = Counter()
        for record in sweep.records:
            if not record.observed:
                continue
            asn = record.payload.first_external_asn
            if asn is not None:
                per_isp[asn] += 1
        total = sum(per_isp.values()) or 1
        return sorted(
            ((asn, count / total) for asn, count in per_isp.items()),
            key=lambda pair: -pair[1],
        )
