"""Compression-opportunity analysis (§3.3's closing implication).

"The predominance of plain text and HTML traffic ... points to the
fact that compression could be employed to save WAN bandwidth and
improve content delivery latency."  This module quantifies that
observation over the capture: per content type, how many HTTP bytes
are compressible and at what typical ratio, and what the total WAN
saving would be if cloud tenants deflated their text.

Ratios are the well-known field values for DEFLATE on each media
class (text ~4:1, XML ~5:1; JPEG/PNG/video/zip are already entropy
coded and yield nothing).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.capture.analyzer import BroAnalyzer
from repro.capture.flow import Trace

#: Media class → typical DEFLATE compression ratio (compressed/original).
COMPRESSION_RATIOS: Dict[str, float] = {
    "text/html": 0.25,
    "text/plain": 0.30,
    "text/xml": 0.20,
    "text/css": 0.25,
    "application/javascript": 0.33,
    "application/pdf": 0.90,
    "application/octet-stream": 0.85,
    "application/x-shockwave-flash": 0.95,
    # Already-compressed media: no gain.
    "image/jpeg": 1.0,
    "image/png": 1.0,
    "image/gif": 1.0,
    "application/zip": 1.0,
    "video/mp4": 1.0,
}
_DEFAULT_RATIO = 0.8


@dataclass
class CompressionOpportunity:
    """Per-content-type savings estimate."""

    content_type: str
    original_bytes: int
    compressed_bytes: int

    @property
    def saved_bytes(self) -> int:
        return self.original_bytes - self.compressed_bytes

    @property
    def saving_fraction(self) -> float:
        if not self.original_bytes:
            return 0.0
        return self.saved_bytes / self.original_bytes


@dataclass
class CompressionReport:
    """The whole-capture estimate."""

    per_type: List[CompressionOpportunity]
    total_http_bytes: int
    total_saved_bytes: int

    @property
    def overall_saving_fraction(self) -> float:
        if not self.total_http_bytes:
            return 0.0
        return self.total_saved_bytes / self.total_http_bytes


class CompressionAnalysis:
    """Estimates WAN savings from compressing HTTP responses."""

    def __init__(self, analyzer: BroAnalyzer):
        self.analyzer = analyzer

    def report(self, trace: Trace) -> CompressionReport:
        per_type: List[CompressionOpportunity] = []
        total = saved = 0
        for stats in self.analyzer.content_types(trace):
            ratio = COMPRESSION_RATIOS.get(
                stats.content_type, _DEFAULT_RATIO
            )
            compressed = int(stats.bytes * ratio)
            per_type.append(CompressionOpportunity(
                content_type=stats.content_type,
                original_bytes=stats.bytes,
                compressed_bytes=compressed,
            ))
            total += stats.bytes
            saved += stats.bytes - compressed
        per_type.sort(key=lambda o: -o.saved_bytes)
        return CompressionReport(
            per_type=per_type,
            total_http_bytes=total,
            total_saved_bytes=saved,
        )
