"""Sharded, bit-identical §2.1 dataset builds.

The ranked domain list is partitioned into contiguous shards, and each
shard runs the full enumerate → filter → distributed-lookups → NS-dig
pipeline in a forked worker process against a copy-on-write view of the
world (the same worker discipline as the parallel WAN campaign: nothing
heavy is pickled, closures never cross the process boundary).

What makes naive sharding wrong is rotation state.  Dynamic DNS names
answer from a monotonically increasing per-name query counter, and one
of them — ``proxy.heroku.com``-style shared proxies — is reachable from
*many* tenant domains, so its counter interleaves queries across shards.
The fix has three parts:

1. before forking, a static reverse-CNAME alias-graph analysis
   (:meth:`DnsInfrastructure.shared_dynamic_names`) finds every dynamic
   name reachable from two or more tenant domains;
2. workers detect digs that terminated on a shared name (possible
   post-hoc: dynamic answers are alias-graph terminals, so a response's
   addresses are either entirely static or entirely the terminal's),
   exclude those answers from their outputs, and log a compact
   descriptor instead;
3. the parent replays the logged queries against the real answer
   functions in exact sequential global order — phase-major, then shard
   order, then per-shard sequence — with query indices seeded from its
   own counters, patching the merged records and exported cache entries
   with the replayed answers.

Names reachable from at most one tenant domain need none of this: the
owning tenant lives in exactly one shard, so the worker's locally
observed rotation already matches the sequential one, and the parent
only has to advance its counters by the workers' reported deltas.

The NS survey is split: workers do the per-record NS digs (fresh, no
cache or rotation side effects), while the parent resolves the distinct
NS hostnames — that step's first-seen dedup is global, so shard-local
copies would both re-pay and re-side-effect duplicate resolutions.

The result is bit-identical to a sequential build for any worker count:
records, discovered map, NS addresses, dynamic query counters, resolver
caches and query counts.  ``tests/test_determinism_caching.py`` holds
the fresh-vs-sharded equivalence to the same standard as the
fresh-vs-warmed one.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.campaign.fanout import fork_map, partition, partition_weighted
from repro.dns.records import DnsResponse, RRType
from repro.net.ipv4 import IPv4Address

#: Pipeline phases in sequential execution order; the replay sorts
#: logged descriptors phase-major so cross-shard rotations are assigned
#: the indices sequential execution would have used.
PHASES = ("enumerate", "filter", "lookup", "cloudfront_lookup", "ns_dig")
_PHASE_RANK = {phase: rank for rank, phase in enumerate(PHASES)}


@dataclass(slots=True)
class ShardLogEntry:
    """One worker dig whose answer came from a shared dynamic name.

    ``kind`` says what the replayed answer must patch: a ``"cache"``
    entry the dig wrote, a merged ``"record"``'s address set, or — for
    ``"counter"`` — nothing beyond consuming one query index.
    """

    phase: str
    seq: int
    kind: str
    name: str
    vantage_name: str
    qname: str
    position: int = -1


class ShardRecorder:
    """Collects shared-rotation descriptors inside one shard worker."""

    def __init__(self, shared_names: Set[str]):
        self.shared = shared_names
        self.entries: List[ShardLogEntry] = []
        self.phase: str = PHASES[0]

    def set_phase(self, phase: str) -> None:
        self.phase = phase

    def shared_terminal(
        self, qname: str, response: DnsResponse
    ) -> Optional[str]:
        """The shared dynamic name this executed dig terminated on.

        Cache hits never advance rotation state; an executed A dig
        touches a dynamic counter exactly when its chain terminal (or
        the qname itself) is dynamic, since dynamic answers never
        contain CNAMEs.
        """
        if response.from_cache or not self.shared:
            return None
        if response.chain and response.chain[-1] in self.shared:
            return response.chain[-1]
        if qname in self.shared:
            return qname
        return None

    def _log(self, kind: str, name: str, vantage_name: str, qname: str,
             position: int = -1) -> None:
        self.entries.append(
            ShardLogEntry(
                phase=self.phase,
                seq=len(self.entries),
                kind=kind,
                name=name,
                vantage_name=vantage_name,
                qname=qname,
                position=position,
            )
        )

    def note_cached_dig(
        self, vantage_name: str, qname: str, response: DnsResponse
    ) -> None:
        """A non-fresh dig (enumeration or filter) just executed.

        If it rotated a shared name, the addresses it observed — and, if
        it cached, the cache entry it wrote — belong to a query index
        only the merge can assign.  Classification stays local: at full
        range coverage every rotation of a given name classifies
        identically, which is exactly the :meth:`DatasetBuilder.can_shard`
        precondition.
        """
        name = self.shared_terminal(qname, response)
        if name is None:
            return
        if response.exists and response.ttl > 0:
            self._log("cache", name, vantage_name, qname)
        else:
            self._log("counter", name, vantage_name, qname)

    def note_lookup(
        self, position: int, vantage_name: str, qname: str,
        response: DnsResponse,
    ) -> bool:
        """A fresh distributed-lookup dig executed; True when its
        addresses must be withheld for the parent replay."""
        name = self.shared_terminal(qname, response)
        if name is None:
            return False
        self._log("record", name, vantage_name, qname, position)
        return True

    def note_counter_dig(self, qname: str, response: DnsResponse) -> None:
        """A fresh NS dig executed; only the consumed index matters."""
        name = self.shared_terminal(qname, response)
        if name is not None:
            self._log("counter", name, qname, qname)


@dataclass
class ShardResult:
    """Everything one worker sends back for reconciliation."""

    shard_index: int
    discovered: Dict[str, List[str]]
    total: int
    records: list
    cloudfront_records: list
    other_cdn: Dict[str, List[str]]
    ns_name_lists: List[List[str]]
    entries: List[ShardLogEntry]
    #: (zone origin, dynamic name) → how far this shard's queries
    #: advanced the counter.
    counter_deltas: Dict[Tuple[str, str], int] = field(default_factory=dict)
    #: vantage name → (query-count delta, cache entries this shard wrote).
    resolver_payload: Dict[str, tuple] = field(default_factory=dict)
    step_timings: Dict[str, float] = field(default_factory=dict)
    #: Probe-level events the shard's engine campaigns emitted, kept
    #: per phase so the parent can merge them phase-major (the order a
    #: sequential build logs them in).  Empty when the sink is off.
    lookup_events: list = field(default_factory=list)
    cloudfront_events: list = field(default_factory=list)
    #: Metrics counter increments this shard's campaigns made
    #: (``MetricsRegistry.take_counter_deltas`` tuples) — a forked
    #: child's registry dies with it, so counts ride back here.
    metric_deltas: list = field(default_factory=list)


def partition_ranks(count: int, shards: int) -> List[Tuple[int, int]]:
    """Near-equal contiguous ``[lo, hi)`` rank slices, in rank order.

    The arithmetic lives in :func:`repro.campaign.fanout.partition` —
    the same slicing every engine campaign shards by.
    """
    return partition(count, shards)


def partition_sites(sites, infra, shards: int) -> List[Tuple[int, int]]:
    """Work-balanced contiguous rank slices for a site list.

    Equal-count slices skew badly at paper scale: an AXFR-able domain's
    shard enumerates, filters, and digs every name in its zone, while a
    wordlist-only domain costs a near-constant screening pass — so a
    handful of large zones can serialize the whole fan-out behind one
    worker.  Each site is weighted by its own zone's name count (one
    registry probe, no digs, no side effects), and the cut points come
    from :func:`repro.campaign.fanout.partition_weighted`.  Boundaries
    only affect scheduling — any contiguous partition merges
    bit-identically — so this is pure wall-clock balance.
    """
    weights = []
    for site in sites:
        zone = infra.get_zone(site.domain)
        weights.append(1 + (len(zone.names()) if zone is not None else 0))
    return partition_weighted(weights, shards)


def _build_shard(
    builder,
    bounds: List[Tuple[int, int]],
    shared: Set[str],
    resolver_baselines: Dict[str, tuple],
    counter_baseline: Dict[Tuple[str, str], int],
    shard_index: int,
    export_caches: bool = True,
) -> ShardResult:
    """Worker body: run the pipeline over one contiguous rank slice.

    ``export_caches=False`` (the chunked streaming build) skips the
    resolver cache export: the parent drops worker caches by design, so
    shipping them back through the pool would only cost pickling and
    transient memory.  Query-count deltas still ride back.
    """
    lo, hi = bounds[shard_index]
    world = builder.world
    recorder = ShardRecorder(shared)
    builder._recorder = recorder
    timings: Dict[str, float] = {}
    metrics_checkpoint = builder.obs.metrics.counter_checkpoint()

    start = time.perf_counter()
    recorder.set_phase("enumerate")
    discovered, total = builder.discover_subdomains(
        world.alexa.sites[lo:hi], offset=lo
    )
    timings["enumerate_s"] = time.perf_counter() - start

    start = time.perf_counter()
    recorder.set_phase("filter")
    cloud_using, cloudfront_using, other_cdn = builder.filter_cloud_using(
        discovered
    )
    timings["filter_s"] = time.perf_counter() - start

    sink = builder.obs.events
    start = time.perf_counter()
    recorder.set_phase("lookup")
    mark = sink.mark()
    records = builder.distributed_lookups(cloud_using)
    lookup_events = sink.take_since(mark) if sink.enabled else []
    recorder.set_phase("cloudfront_lookup")
    mark = sink.mark()
    cloudfront_records = builder.distributed_lookups(cloudfront_using)
    cloudfront_events = sink.take_since(mark) if sink.enabled else []
    timings["distributed_lookups_s"] = time.perf_counter() - start

    start = time.perf_counter()
    recorder.set_phase("ns_dig")
    ns_name_lists = builder.ns_dig_survey(records)
    timings["ns_survey_s"] = time.perf_counter() - start

    counter_deltas: Dict[Tuple[str, str], int] = {}
    for key, count in world.dns.dynamic_query_counts().items():
        delta = count - counter_baseline.get(key, 0)
        if delta:
            counter_deltas[key] = delta

    resolver_payload: Dict[str, tuple] = {}
    for vantage in world.dns_vantages():
        resolver = world._resolvers.get(vantage.name)
        if resolver is None:
            continue
        baseline_count, baseline_keys = resolver_baselines.get(
            vantage.name, (0, frozenset())
        )
        new_entries = (
            resolver.export_cache_entries(baseline_keys)
            if export_caches else ()
        )
        query_delta = resolver.query_count - baseline_count
        if new_entries or query_delta:
            resolver_payload[vantage.name] = (query_delta, new_entries)

    return ShardResult(
        shard_index=shard_index,
        discovered=discovered,
        total=total,
        records=records,
        cloudfront_records=cloudfront_records,
        other_cdn=other_cdn,
        ns_name_lists=ns_name_lists,
        entries=recorder.entries,
        counter_deltas=counter_deltas,
        resolver_payload=resolver_payload,
        step_timings=timings,
        lookup_events=lookup_events,
        cloudfront_events=cloudfront_events,
        metric_deltas=builder.obs.metrics.take_counter_deltas(
            metrics_checkpoint
        ),
    )


def replay_shared_rotations(
    world,
    tagged: List[tuple],
    counter_baseline: Dict[Tuple[str, str], int],
    patch_cache,
    patch_record,
) -> Dict[Tuple[str, str], int]:
    """Replay logged shared-rotation digs in sequential global order.

    ``tagged`` is the already-sorted ``(phase rank, shard/chunk index,
    seq, result, entry)`` list; sorting it phase-major puts every
    logged dig at the position sequential execution would have run it,
    so each shared name's query indices are assigned exactly as a
    one-process build assigns them.  ``patch_cache(result, entry,
    addresses)`` and ``patch_record(result, entry, addresses)`` apply
    the replayed answers (either may be None to only consume indices —
    the chunked build drops worker caches, so its ``"cache"`` entries
    reduce to counter advances).  Returns per-``(origin, name)`` replay
    counts for the caller's delta reconciliation.
    """
    dynamic_zone = {
        name: (origin, zone)
        for origin, zone in ((z.origin, z) for z in world.dns.zones())
        for name in zone.dynamic_names()
    }
    vantage_by_name = {v.name: v for v in world.dns_vantages()}
    next_index: Dict[str, int] = {}
    replay_counts: Dict[Tuple[str, str], int] = {}
    for _, _, _, result, entry in tagged:
        origin, zone = dynamic_zone[entry.name]
        index = next_index.get(entry.name)
        if index is None:
            index = counter_baseline.get((origin, entry.name), 0)
        next_index[entry.name] = index + 1
        replay_counts[(origin, entry.name)] = (
            replay_counts.get((origin, entry.name), 0) + 1
        )
        if entry.kind == "counter":
            continue
        answers = zone.dynamic_answer(
            entry.name, RRType.A, vantage_by_name[entry.vantage_name],
            index,
        )
        addresses = [r.value for r in answers if r.rtype is RRType.A]
        if entry.kind == "cache":
            if patch_cache is not None:
                patch_cache(result, entry, addresses)
        elif patch_record is not None:
            patch_record(result, entry, addresses)
    return replay_counts


def build_sharded(builder, workers: int):
    """Build the §2.1 dataset with a fork pool, bit-identically.

    See the module docstring for the full merge/replay/reconcile
    contract.  Callers go through :meth:`DatasetBuilder.build`, which
    gates on :meth:`DatasetBuilder.can_shard`.
    """
    from repro.analysis.dataset import AlexaSubdomainsDataset

    world = builder.world
    sites = world.alexa.sites
    bounds = partition_sites(sites, world.dns, workers)

    setup_start = time.perf_counter()
    shared = world.dns.shared_dynamic_names(
        site.domain for site in sites
    )
    counter_baseline = world.dns.dynamic_query_counts()
    resolver_baselines = {
        name: (resolver.query_count, resolver.cache_keys())
        for name, resolver in world._resolvers.items()
    }
    setup_s = time.perf_counter() - setup_start

    # One shard per fork via the engine's single fan-out path; the
    # closure (builder, world, bounds, baselines) reaches workers by
    # copy-on-write, never by pickling.
    with builder.obs.tracer.span(
        "dataset:fanout", category="shard", shards=len(bounds),
    ):
        results = fork_map(
            lambda shard_index: _build_shard(
                builder, bounds, shared, resolver_baselines,
                counter_baseline, shard_index,
            ),
            len(bounds),
            len(bounds),
        )

    # Workers buffered their engine events locally (the parent sink
    # never sees a forked child's emissions); replaying them phase-major
    # in shard order reproduces the sequential log byte-for-byte,
    # because each shard's campaign covers a contiguous rank slice in
    # the same relative order.
    sink = builder.obs.events
    if sink.enabled:
        for result in results:
            sink.emit_many(result.lookup_events)
        for result in results:
            sink.emit_many(result.cloudfront_events)

    metrics = builder.obs.metrics
    if metrics.enabled:
        # Re-apply each shard's counter increments in shard order: the
        # totals come out identical to a sequential build's.
        for result in results:
            metrics.apply_counter_deltas(result.metric_deltas)
        metrics.counter(
            "dataset_shards_merged_total", volatile=True
        ).inc(len(results))
        merge_histogram = metrics.histogram(
            "shard_merge_records", volatile=True, campaign="dataset"
        )
        for result in results:
            merge_histogram.observe(len(result.records))

    merge_start = time.perf_counter()

    # -- merge outputs in rank (= shard) order -------------------------
    discovered: Dict[str, List[str]] = {}
    other_cdn: Dict[str, List[str]] = {}
    records: list = []
    cloudfront_records: list = []
    ns_name_lists: List[List[str]] = []
    total = 0
    record_offsets: List[int] = []
    cloudfront_offsets: List[int] = []
    for result in results:
        record_offsets.append(len(records))
        cloudfront_offsets.append(len(cloudfront_records))
        discovered.update(result.discovered)
        other_cdn.update(result.other_cdn)
        records.extend(result.records)
        cloudfront_records.extend(result.cloudfront_records)
        ns_name_lists.extend(result.ns_name_lists)
        total += result.total

    # -- replay shared rotations in sequential global order ------------
    replay = sorted(
        (
            (_PHASE_RANK[entry.phase], result.shard_index, entry.seq,
             result, entry)
            for result in results
            for entry in result.entries
        ),
        key=lambda item: item[:3],
    )

    def patch_cache(result, entry, addresses):
        payload = result.resolver_payload[entry.vantage_name][1]
        cached = payload.get((entry.qname, RRType.A))
        if cached is None:
            raise RuntimeError(
                f"shard {result.shard_index} logged a cache patch for "
                f"{entry.qname} but exported no matching entry"
            )
        cached.response.addresses = list(addresses)

    def patch_record(result, entry, addresses):
        offsets = (
            record_offsets
            if entry.phase == "lookup"
            else cloudfront_offsets
        )
        target = (
            records if entry.phase == "lookup" else cloudfront_records
        )
        target[offsets[result.shard_index] + entry.position].addresses.update(
            addresses
        )

    replay_counts = replay_shared_rotations(
        world, replay, counter_baseline, patch_cache, patch_record
    )

    # -- reconcile rotation counters -----------------------------------
    total_deltas: Dict[Tuple[str, str], int] = {}
    for result in results:
        for key, delta in result.counter_deltas.items():
            total_deltas[key] = total_deltas.get(key, 0) + delta
    for (origin, name), count in replay_counts.items():
        if total_deltas.get((origin, name), 0) != count:
            raise RuntimeError(
                f"shared-name replay drift for {name}: replayed {count} "
                f"queries, workers reported "
                f"{total_deltas.get((origin, name), 0)}"
            )
    for (origin, name), delta in total_deltas.items():
        if name in shared and (origin, name) not in replay_counts:
            raise RuntimeError(
                f"shared name {name} advanced {delta} queries that no "
                f"worker descriptor accounts for"
            )
    world.dns.apply_dynamic_query_deltas(total_deltas)

    # -- reconcile resolver caches and query counts --------------------
    # Cache keys are (fqdn, rtype) and fqdns are domain-unique, so the
    # per-shard exports are disjoint and their union is exactly the
    # sequential cache state at this point in the pipeline.
    vantage_by_name = {v.name: v for v in world.dns_vantages()}
    for vantage in world.dns_vantages():
        world.resolver_for(vantage)
    for result in results:
        for vantage_name, (query_delta, entries) in (
            result.resolver_payload.items()
        ):
            resolver = world.resolver_for(vantage_by_name[vantage_name])
            resolver.query_count += query_delta
            resolver.adopt_cache_entries(entries)
    merge_s = time.perf_counter() - merge_start

    # -- the global half of the NS survey ------------------------------
    resolve_start = time.perf_counter()
    ns_addresses = builder.resolve_ns_hostnames(ns_name_lists)
    resolve_s = time.perf_counter() - resolve_start

    # Per-step spans for the parent tracer: forked workers' own spans
    # die with them, so the parent records the critical-path (max over
    # shards) duration each step contributed, plus the parent-only
    # setup/merge work.
    tracer = builder.obs.tracer
    if tracer.enabled:
        for step in ("enumerate", "filter", "distributed_lookups"):
            tracer.record(
                step, category="dataset-step",
                seconds=max(
                    result.step_timings.get(f"{step}_s", 0.0)
                    for result in results
                ),
                shards=len(results),
            )
        tracer.record(
            "ns_survey", category="dataset-step",
            seconds=(
                max(
                    result.step_timings.get("ns_survey_s", 0.0)
                    for result in results
                )
                + resolve_s
            ),
            shards=len(results),
        )
        tracer.record(
            "shard_setup", category="dataset-step", seconds=setup_s
        )
        tracer.record("merge", category="dataset-step", seconds=merge_s)

    return AlexaSubdomainsDataset(
        records=records,
        discovered=discovered,
        ns_addresses=ns_addresses,
        total_discovered_subdomains=total,
        cloudfront_records=cloudfront_records,
        other_cdn_subdomains=other_cdn,
    )
