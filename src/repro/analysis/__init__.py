"""The paper's measurement pipeline.

Every module here works **only from external observations** — DNS
answers, published IP range lists, active probes — never from the
world's ground truth.  The modules map one-to-one onto the paper's
sections:

* :mod:`repro.analysis.dataset` — building the Alexa subdomains
  dataset (§2.1): enumeration, cloud classification, distributed
  lookups, the NS survey;
* :mod:`repro.analysis.clouduse` — who uses the cloud (§3.2,
  Tables 3-4);
* :mod:`repro.analysis.traffic` — capture analysis (§3.1/3.3,
  Tables 1-2, 5-6, Figure 3);
* :mod:`repro.analysis.patterns` — front-end deployment patterns
  (§4.1, Tables 7-8, Figures 4-5);
* :mod:`repro.analysis.regions` — region usage and customer locality
  (§4.2, Tables 9-10, Figure 6);
* :mod:`repro.analysis.zones` — availability-zone usage via
  cartography (§4.3, Tables 11-15, Figures 7-8);
* :mod:`repro.analysis.wan` — wide-area performance and ISP diversity
  (§5, Figures 9-12, Table 16).

Extensions past the printed evaluation:

* :mod:`repro.analysis.availability` — outage drills executing
  §4.2/§4.3's hypotheticals against the measured deployments;
* :mod:`repro.analysis.scheduling` — the §5.1 routing proposals
  (global scheduling vs parallel requests), priced;
* :mod:`repro.analysis.compression` — §3.3's compression implication,
  quantified;
* :mod:`repro.analysis.headline` — the abstract, regenerated.
"""

from repro.analysis.dataset import (
    AlexaSubdomainsDataset,
    DatasetBuilder,
    SubdomainRecord,
)

__all__ = [
    "AlexaSubdomainsDataset",
    "DatasetBuilder",
    "SubdomainRecord",
]
