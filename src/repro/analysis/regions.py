"""Region usage (§4.2): Tables 9-10, Figure 6, and customer locality.

A subdomain's regions are determined exactly as in the paper: every
front-end address (VM, PaaS, ELB proxy, or TM-selected Cloud Service)
is matched against the *per-region* published IP ranges; CloudFront
addresses are excluded.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.clouduse import CloudUseAnalysis
from repro.analysis.dataset import AlexaSubdomainsDataset, SubdomainRecord
from repro.report.cdf import CDF
from repro.workload.customers import CustomerModel
from repro.world import World


@dataclass
class RegionUsage:
    """Regions used by one subdomain, split by provider."""

    fqdn: str
    domain: str
    ec2_regions: Set[str] = field(default_factory=set)
    azure_regions: Set[str] = field(default_factory=set)

    @property
    def all_regions(self) -> Set[str]:
        return {("ec2", r) for r in self.ec2_regions} | {
            ("azure", r) for r in self.azure_regions
        }

    @property
    def num_regions(self) -> int:
        return len(self.ec2_regions) + len(self.azure_regions)


class RegionAnalysis:
    """Region usage over the Alexa subdomains dataset."""

    def __init__(self, world: World, dataset: AlexaSubdomainsDataset):
        self.world = world
        self.dataset = dataset
        self.clouduse = CloudUseAnalysis(world, dataset)
        self._ec2_regions = world.ec2.plan.prefix_set()
        self._azure_regions = world.azure.plan.prefix_set()
        self._usages: Optional[List[RegionUsage]] = None

    def usage_of(self, record: SubdomainRecord) -> Optional[RegionUsage]:
        usage = RegionUsage(fqdn=record.fqdn, domain=record.domain)
        for address in record.addresses:
            region = self._ec2_regions.lookup(address)
            if region is not None:
                usage.ec2_regions.add(region)
                continue
            region = self._azure_regions.lookup(address)
            if region is not None:
                usage.azure_regions.add(region)
        if usage.num_regions == 0:
            return None
        return usage

    def usages(self) -> List[RegionUsage]:
        if self._usages is None:
            self._usages = [
                u for u in (
                    self.usage_of(record) for record in self.dataset.records
                )
                if u is not None
            ]
        return self._usages

    # -- Figure 6 -----------------------------------------------------------

    def regions_per_subdomain_cdf(self, provider: str) -> CDF:
        counts = []
        for usage in self.usages():
            regions = (
                usage.ec2_regions if provider == "ec2"
                else usage.azure_regions
            )
            if regions:
                counts.append(len(regions))
        return CDF(counts)

    def regions_per_domain_cdf(self, provider: str) -> CDF:
        """Average regions used by each domain's subdomains (Fig 6b)."""
        per_domain: Dict[str, List[int]] = defaultdict(list)
        for usage in self.usages():
            regions = (
                usage.ec2_regions if provider == "ec2"
                else usage.azure_regions
            )
            if regions:
                per_domain[usage.domain].append(len(regions))
        return CDF([
            sum(counts) / len(counts) for counts in per_domain.values()
        ])

    def single_region_fraction(self, provider: str) -> float:
        cdf = self.regions_per_subdomain_cdf(provider)
        if not cdf:
            return 0.0
        return cdf.at(1)

    # -- Table 9 ---------------------------------------------------------------

    def region_counts(self) -> Dict[Tuple[str, str], dict]:
        """(provider, region) → {domains, subdomains} (Table 9)."""
        result: Dict[Tuple[str, str], dict] = defaultdict(
            lambda: {"domains": set(), "subdomains": 0}
        )
        for usage in self.usages():
            for region in usage.ec2_regions:
                entry = result[("ec2", region)]
                entry["domains"].add(usage.domain)
                entry["subdomains"] += 1
            for region in usage.azure_regions:
                entry = result[("azure", region)]
                entry["domains"].add(usage.domain)
                entry["subdomains"] += 1
        return {
            key: {
                "domains": len(value["domains"]),
                "subdomains": value["subdomains"],
            }
            for key, value in result.items()
        }

    # -- Table 10 ---------------------------------------------------------------

    def top_domain_regions(self, count: int = 14) -> List[dict]:
        """Region usage of the highest-ranked cloud-using domains."""
        ranked = []
        for domain in self.dataset.domains():
            rank = self.world.alexa.rank_of(domain)
            if rank is not None and self.clouduse.domain_category(domain):
                ranked.append((rank, domain))
        ranked.sort()
        by_domain: Dict[str, List[RegionUsage]] = defaultdict(list)
        for usage in self.usages():
            by_domain[usage.domain].append(usage)
        rows = []
        for rank, domain in ranked[:count]:
            usages = by_domain.get(domain, [])
            if not usages:
                continue
            all_regions: Set = set()
            k_counter: Counter = Counter()
            for usage in usages:
                all_regions.update(usage.all_regions)
                k_counter[usage.num_regions] += 1
            rows.append({
                "rank": rank,
                "domain": domain,
                "cloud_subdomains": len(usages),
                "total_regions": len(all_regions),
                "k1": k_counter.get(1, 0),
                "k2": k_counter.get(2, 0),
                "k3plus": sum(
                    v for k, v in k_counter.items() if k >= 3
                ),
            })
        return rows

    # -- customer locality (§4.2) ---------------------------------------------------

    def customer_locality(self) -> dict:
        """Subdomain hosting country/continent vs customer country.

        The paper identified customer countries for 75% of subdomains
        and found 47% hosted outside the customer country, 32% outside
        the customer continent.
        """
        total = 0
        identified = 0
        country_mismatch = 0
        continent_mismatch = 0
        for usage in self.usages():
            total += 1
            customer = self.world.customers.customer_country(usage.domain)
            if customer is None:
                continue
            identified += 1
            host_countries = set()
            host_continents = set()
            for region in usage.ec2_regions | usage.azure_regions:
                country = CustomerModel.region_country(region)
                if country:
                    host_countries.add(country)
                    host_continents.add(
                        CustomerModel.continent_of(country)
                    )
            if customer not in host_countries:
                country_mismatch += 1
                if CustomerModel.continent_of(customer) not in host_continents:
                    continent_mismatch += 1
        return {
            "total_subdomains": total,
            "identified": identified,
            "identified_fraction": identified / total if total else 0.0,
            "country_mismatch": country_mismatch,
            "country_mismatch_fraction": (
                country_mismatch / identified if identified else 0.0
            ),
            "continent_mismatch": continent_mismatch,
            "continent_mismatch_fraction": (
                continent_mismatch / identified if identified else 0.0
            ),
        }
