"""Dataset export: the paper's public data release, reproduced.

"We make all data sets used in this paper publicly available [10],
with the exception of the packet capture."  This module writes the
Alexa subdomains dataset in the same spirit: tab-separated files a
downstream researcher can load without this library —

* ``subdomains.tsv`` — one row per cloud-using subdomain: domain,
  rank, every resolved address, every CNAME seen;
* ``nameservers.tsv`` — the NS survey: hostname, resolved address;
* ``published_ranges.tsv`` — the cloud IP range lists the
  classification used, so results are re-checkable.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Union

from repro.analysis.dataset import AlexaSubdomainsDataset
from repro.world import World


def export_dataset(
    world: World,
    dataset: AlexaSubdomainsDataset,
    directory: Union[str, Path],
) -> Dict[str, Path]:
    """Write the dataset release files; returns {name: path}."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    paths = {
        "subdomains": directory / "subdomains.tsv",
        "nameservers": directory / "nameservers.tsv",
        "published_ranges": directory / "published_ranges.tsv",
    }
    with paths["subdomains"].open("w") as fh:
        fh.write("#subdomain\tdomain\trank\taddresses\tcnames\n")
        for record in dataset.records:
            fh.write("\t".join((
                record.fqdn,
                record.domain,
                str(record.rank) if record.rank is not None else "-",
                ",".join(sorted(str(a) for a in record.addresses)),
                ",".join(sorted(record.cnames)) or "-",
            )) + "\n")
    with paths["nameservers"].open("w") as fh:
        fh.write("#nameserver\taddress\n")
        for hostname in sorted(dataset.ns_addresses):
            address = dataset.ns_addresses[hostname]
            fh.write(
                f"{hostname}\t{address if address else '-'}\n"
            )
    with paths["published_ranges"].open("w") as fh:
        fh.write("#provider\tregion\tcidr\n")
        for provider_name, plan in (
            ("ec2", world.ec2.plan),
            ("azure", world.azure.plan),
            ("cloudfront", world.cloudfront.plan),
        ):
            for net, region in plan.published_ranges():
                fh.write(f"{provider_name}\t{region}\t{net}\n")
    return paths


def load_subdomains_tsv(path: Union[str, Path]):
    """Parse a ``subdomains.tsv`` back into plain dicts (no library
    types), demonstrating the files stand alone."""
    rows = []
    with Path(path).open() as fh:
        header = fh.readline()
        if not header.startswith("#subdomain"):
            raise ValueError(f"{path} is not a subdomains export")
        for line in fh:
            fqdn, domain, rank, addresses, cnames = (
                line.rstrip("\n").split("\t")
            )
            rows.append({
                "subdomain": fqdn,
                "domain": domain,
                "rank": None if rank == "-" else int(rank),
                "addresses": addresses.split(",") if addresses else [],
                "cnames": [] if cnames == "-" else cnames.split(","),
            })
    return rows


def load_nameservers_tsv(path: Union[str, Path]):
    """Parse a ``nameservers.tsv`` back into {hostname: address-or-None}."""
    survey = {}
    with Path(path).open() as fh:
        header = fh.readline()
        if not header.startswith("#nameserver"):
            raise ValueError(f"{path} is not a nameservers export")
        for line in fh:
            hostname, address = line.rstrip("\n").split("\t")
            survey[hostname] = None if address == "-" else address
    return survey


def load_published_ranges_tsv(path: Union[str, Path]):
    """Parse a ``published_ranges.tsv`` back into
    [{provider, region, cidr}] rows."""
    rows = []
    with Path(path).open() as fh:
        header = fh.readline()
        if not header.startswith("#provider"):
            raise ValueError(f"{path} is not a published-ranges export")
        for line in fh:
            provider, region, cidr = line.rstrip("\n").split("\t")
            rows.append({
                "provider": provider,
                "region": region,
                "cidr": cidr,
            })
    return rows
