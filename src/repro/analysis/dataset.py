"""Building the Alexa subdomains dataset (§2.1).

The pipeline:

1. for every ranked domain, attempt a zone transfer; fall back to
   dnsmap-style wordlist brute forcing (150 enumeration nodes in the
   paper — we round-robin over the configured vantage set);
2. one DNS lookup per discovered subdomain from a single node; keep
   subdomains whose answers contain an EC2/Azure published-range
   address — the *cloud-using subdomains*;
3. look every cloud-using subdomain up from all distributed vantage
   points, accumulating addresses and CNAME chains (geo-dependent and
   rotating answers make multiple vantages matter);
4. the NS survey: collect NS names per cloud-using subdomain and
   resolve each name server's address with flushed caches.
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.campaign.engine import CampaignEngine
from repro.campaign.probes import DnsLookupCampaign
from repro.dns.enumeration import SubdomainEnumerator
from repro.dns.records import RRType
from repro.faults.scenarios import OutageScenario
from repro.flags import columnar_runtime_enabled
from repro.net.ipv4 import IPv4Address
from repro.net.prefixset import PrefixSet
from repro.obs import NOOP, Observability
from repro.sim import fork_pool_available
from repro.world import World

log = logging.getLogger("repro.analysis.dataset")


@dataclass(slots=True)
class SubdomainRecord:
    """Everything the distributed lookups learned about one subdomain."""

    fqdn: str
    domain: str
    rank: Optional[int]
    addresses: Set[IPv4Address] = field(default_factory=set)
    cnames: Set[str] = field(default_factory=set)
    ns_names: Set[str] = field(default_factory=set)
    lookups: int = 0

    def cname_contains(self, *fragments: str) -> bool:
        return any(
            fragment in cname
            for cname in self.cnames
            for fragment in fragments
        )

    @property
    def has_cname(self) -> bool:
        return bool(self.cnames)


@dataclass
class AlexaSubdomainsDataset:
    """The §2.1 dataset: cloud-using subdomains with their DNS records."""

    records: List[SubdomainRecord]
    #: fqdn → record, for joins.
    by_fqdn: Dict[str, SubdomainRecord] = field(default_factory=dict)
    #: domain → its cloud-using subdomain records.
    by_domain: Dict[str, List[SubdomainRecord]] = field(default_factory=dict)
    #: domain → all discovered subdomains (cloud-using or not).
    discovered: Dict[str, List[str]] = field(default_factory=dict)
    #: name-server hostname → resolved address (None if unresolvable).
    ns_addresses: Dict[str, Optional[IPv4Address]] = field(
        default_factory=dict
    )
    total_discovered_subdomains: int = 0
    #: Subdomains resolving into CloudFront's (separate) address range,
    #: found while filtering; not part of the EC2/Azure-using records.
    cloudfront_records: List[SubdomainRecord] = field(default_factory=list)
    #: domain → subdomains whose CNAMEs look like a third-party CDN.
    other_cdn_subdomains: Dict[str, List[str]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.by_fqdn:
            self.by_fqdn = {r.fqdn: r for r in self.records}
        if not self.by_domain:
            for record in self.records:
                self.by_domain.setdefault(record.domain, []).append(record)

    def domains(self) -> List[str]:
        return list(self.by_domain)

    def __len__(self) -> int:
        return len(self.records)


class DatasetBuilder:
    """Runs the §2.1 methodology against a world.

    ``range_coverage`` models the paper's footnote-2 assumption ("we
    assume the IP address ranges published by EC2 and Azure are
    relatively complete"): values below 1.0 deterministically drop a
    fraction of the published blocks from the classification, so the
    sensitivity of every downstream count to stale range lists can be
    measured.
    """

    def __init__(
        self,
        world: World,
        range_coverage: float = 1.0,
        scenario: Optional[OutageScenario] = None,
        obs: Observability = NOOP,
    ):
        if not 0.0 < range_coverage <= 1.0:
            raise ValueError(
                f"range_coverage must be in (0, 1]: {range_coverage}"
            )
        self.world = world
        self.range_coverage = range_coverage
        #: Outage drill the lookup campaigns run under.  DNS probes are
        #: deliberately scenario-transparent (see
        #: :mod:`repro.campaign.probes`), so today this only tags the
        #: engine runs; it is threaded for uniformity with the WAN side.
        self.scenario = scenario
        #: Observability plane: ``dataset-step`` spans around the four
        #: pipeline phases, campaign spans via the engine, and — when
        #: the sink is live — probe-level events that the sharded build
        #: merges back phase-major (see :mod:`repro.analysis.shards`),
        #: byte-identically to a sequential build.
        self.obs = obs
        self.ranges = world.published_ranges()
        labelled = (
            [(net, "ec2") for net in world.ec2.published_ranges()]
            + [(net, "azure") for net in world.azure.published_ranges()]
        )
        if range_coverage < 1.0:
            keep = max(1, int(len(labelled) * range_coverage))
            labelled = labelled[:keep]
        self._cloud_membership = PrefixSet(labelled)
        #: Shard-build hook: a ``ShardRecorder`` tagging digs whose
        #: rotation state crosses shard boundaries (None when sequential).
        self._recorder = None

    def _engine(self) -> CampaignEngine:
        return CampaignEngine(
            self.world.streams.seed, scenario=self.scenario,
            obs=self.obs,
        )

    def _is_cloud_address(self, address: IPv4Address) -> bool:
        return address in self._cloud_membership

    # -- step 1+2: enumerate and filter ------------------------------------

    def discover_subdomains(
        self, sites: Optional[Sequence] = None, offset: int = 0
    ) -> Tuple[Dict[str, List[str]], int]:
        """Enumerate subdomains for every ranked domain.

        ``sites``/``offset`` let shard workers enumerate a contiguous
        rank slice while keeping the vantage round-robin aligned with
        each site's *global* rank position, so every domain is brute
        forced from the same enumeration node as in a sequential build.
        """
        vantages = self.world.dns_vantages()
        recorder = self._recorder
        observer = None
        if recorder is not None:
            observer = (
                lambda resolver, qname, response:
                recorder.note_cached_dig(resolver.vantage.name, qname, response)
            )
        enumerators = [
            SubdomainEnumerator(
                self.world.dns,
                self.world.resolver_for(vantage),
                dig_observer=observer,
            )
            for vantage in vantages[: min(6, len(vantages))]
        ]
        if sites is None:
            sites = self.world.alexa.sites
        discovered: Dict[str, List[str]] = {}
        total = 0
        for i, site in enumerate(sites, start=offset):
            enumerator = enumerators[i % len(enumerators)]
            result = enumerator.enumerate(site.domain)
            discovered[site.domain] = result.subdomains
            total += len(result.subdomains)
        return discovered, total

    def filter_cloud_using(
        self, discovered: Dict[str, List[str]]
    ) -> Tuple[
        List[Tuple[str, str]],
        List[Tuple[str, str]],
        Dict[str, List[str]],
    ]:
        """Classify every discovered subdomain from one vantage.

        Returns (cloud_using, cloudfront_using, other_cdn) where
        cloud_using are (domain, fqdn) pairs resolving into EC2/Azure
        ranges, cloudfront_using resolve into CloudFront's range, and
        other_cdn maps domains to subdomains whose CNAME chain names a
        CDN outside the clouds.
        """
        fast = self._classify_columnar(discovered)
        if fast is not None:
            return fast
        vantage = self.world.dns_vantages()[0]
        resolver = self.world.resolver_for(vantage)
        recorder = self._recorder
        cloudfront_ranges = self.ranges["cloudfront"]
        cloud_using: List[Tuple[str, str]] = []
        cloudfront_using: List[Tuple[str, str]] = []
        other_cdn: Dict[str, List[str]] = {}
        for domain, subdomains in discovered.items():
            for fqdn in subdomains:
                response = resolver.dig(fqdn)
                if recorder is not None:
                    recorder.note_cached_dig(vantage.name, fqdn, response)
                if any(
                    self._is_cloud_address(addr)
                    for addr in response.addresses
                ):
                    cloud_using.append((domain, fqdn))
                elif any(
                    addr in cloudfront_ranges
                    for addr in response.addresses
                ):
                    cloudfront_using.append((domain, fqdn))
                elif any("cdn" in cname for cname in response.chain):
                    other_cdn.setdefault(domain, []).append(fqdn)
        return cloud_using, cloudfront_using, other_cdn

    def _classify_columnar(self, discovered: Dict[str, List[str]]):
        """Vectorized :meth:`filter_cloud_using` body, or None.

        Runs the exact same digs in the exact same order (digs write
        caches and advance rotation counters, so they cannot move),
        then classifies every answered address in one batched
        ``searchsorted`` per range table instead of two bisects per
        address.  Unavailable (None) when the columnar plane is off or
        NumPy is absent.
        """
        if not columnar_runtime_enabled():
            return None
        try:
            import numpy as np

            from repro.columnar.dataset import (
                prefix_membership,
                segment_any,
            )
        except ImportError:
            return None
        vantage = self.world.dns_vantages()[0]
        resolver = self.world.resolver_for(vantage)
        recorder = self._recorder
        index = self.world.dns.static_index
        n_static = 0
        rows: List[Tuple[str, str, List[str]]] = []
        values: List[int] = []
        bounds_lo: List[int] = []
        bounds_hi: List[int] = []
        for domain, subdomains in discovered.items():
            for fqdn in subdomains:
                # Static fqdns read the shared index memo instead of a
                # full dig: the values are identical (whether the
                # scalar dig would have hit the resolver cache or
                # re-resolved), nothing rotates, the recorder is
                # provably a no-op, and the skipped cache write is
                # value-neutral (see the enumeration screening path).
                memo = (
                    index.peek(fqdn, RRType.A, resolver)
                    if index is not None else None
                )
                if memo is not None:
                    n_static += 1
                    response = memo
                else:
                    response = resolver.dig(fqdn)
                    if recorder is not None:
                        recorder.note_cached_dig(
                            vantage.name, fqdn, response
                        )
                bounds_lo.append(len(values))
                values.extend(a.value for a in response.addresses)
                bounds_hi.append(len(values))
                rows.append((domain, fqdn, response.chain))
        resolver.query_count += n_static
        value_arr = np.asarray(values, dtype=np.int64)
        lo = np.asarray(bounds_lo, dtype=np.int64)
        hi = np.asarray(bounds_hi, dtype=np.int64)
        in_cloud = segment_any(
            prefix_membership(self._cloud_membership, value_arr), lo, hi
        )
        in_cloudfront = segment_any(
            prefix_membership(self.ranges["cloudfront"], value_arr),
            lo, hi,
        )
        cloud_using: List[Tuple[str, str]] = []
        cloudfront_using: List[Tuple[str, str]] = []
        other_cdn: Dict[str, List[str]] = {}
        for i, (domain, fqdn, chain) in enumerate(rows):
            if in_cloud[i]:
                cloud_using.append((domain, fqdn))
            elif in_cloudfront[i]:
                cloudfront_using.append((domain, fqdn))
            elif any("cdn" in cname for cname in chain):
                other_cdn.setdefault(domain, []).append(fqdn)
        return cloud_using, cloudfront_using, other_cdn

    # -- step 3: distributed lookups --------------------------------------------

    def distributed_lookups(
        self, cloud_using: Iterable[Tuple[str, str]]
    ) -> List[SubdomainRecord]:
        """Dig every cloud-using subdomain from all DNS vantages.

        Runs as a target-major :class:`~repro.campaign.DnsLookupCampaign`
        through the engine (digs advance rotation counters, so the
        campaign itself never forks; rank-sliced shard workers run it
        per slice instead) and folds the probe records into
        :class:`SubdomainRecord` accumulators.
        """
        targets = list(cloud_using)
        fast = self._lookups_columnar(targets)
        if fast is not None:
            return fast
        campaign = DnsLookupCampaign(
            self.world, targets, recorder=self._recorder
        )
        result = self._engine().run(campaign)
        vantage_count = result.num_vantages
        records: List[SubdomainRecord] = []
        for position, (domain, fqdn) in enumerate(targets):
            record = SubdomainRecord(
                fqdn=fqdn,
                domain=domain,
                rank=self.world.alexa.rank_of(domain),
            )
            lo = position * vantage_count
            for probe in result.records[lo:lo + vantage_count]:
                response, withheld = probe.payload
                record.lookups += 1
                if withheld:
                    # Shared-rotation answer: the addresses belong to a
                    # query index only the merge can assign; the parent
                    # replays them onto the merged record.
                    record.cnames.update(response.chain)
                    continue
                record.addresses.update(response.addresses)
                record.cnames.update(response.chain)
            records.append(record)
        return records

    def _lookups_columnar(
        self, targets: List[Tuple[str, str]]
    ) -> Optional[List[SubdomainRecord]]:
        """Static-name bypass for :meth:`distributed_lookups`, or None.

        A provably static fqdn (see :mod:`repro.dns.staticindex`)
        answers identically from every vantage at every time, so its
        V fresh digs collapse to one shared resolution: the record is
        built directly from the memo, per-resolver query counters are
        advanced in one batched add, and — inside shard workers — the
        recorder provably never flags it (a static chain cannot
        terminate on a shared dynamic name).  Dynamic-reaching fqdns
        keep the exact per-vantage dig sequence, so rotation counters
        and caches evolve as in the engine run.  The engine's
        campaign span and probe metrics are emulated; a live probe
        event sink needs the real per-probe engine loop, so the
        bypass declines (returns None) and the caller falls through.
        """
        if not columnar_runtime_enabled() or self.obs.events.enabled:
            return None
        index = self.world.dns.static_index
        if index is None:
            return None
        start = time.perf_counter()
        vantages = self.world.dns_vantages()
        resolvers = [self.world.resolver_for(v) for v in vantages]
        recorder = self._recorder
        rank_of = self.world.alexa.rank_of
        records: List[SubdomainRecord] = []
        n_static = 0
        with self.obs.tracer.span(
            "dns-lookup",
            category="campaign",
            rounds=1,
            vantages=len(vantages),
            targets=len(targets),
            workers=0,
        ):
            for position, (domain, fqdn) in enumerate(targets):
                record = SubdomainRecord(
                    fqdn=fqdn, domain=domain, rank=rank_of(domain)
                )
                records.append(record)
                if not resolvers:
                    continue
                memo = index.peek(fqdn, RRType.A, resolvers[0])
                if memo is not None:
                    n_static += 1
                    record.lookups = len(resolvers)
                    record.addresses.update(memo.addresses)
                    record.cnames.update(memo.chain)
                    continue
                for vantage, resolver in zip(vantages, resolvers):
                    response = resolver.dig(fqdn, fresh=True)
                    withheld = (
                        recorder is not None
                        and recorder.note_lookup(
                            position, vantage.name, fqdn, response
                        )
                    )
                    record.lookups += 1
                    if withheld:
                        record.cnames.update(response.chain)
                        continue
                    record.addresses.update(response.addresses)
                    record.cnames.update(response.chain)
        if n_static:
            for resolver in resolvers:
                resolver.query_count += n_static
        elapsed = time.perf_counter() - start
        metrics = self.obs.metrics
        if metrics.enabled:
            n_records = len(vantages) * len(targets)
            if n_records:
                metrics.counter(
                    "probes_total", kind="dns-lookup"
                ).inc(n_records)
            if elapsed > 0:
                metrics.gauge(
                    "campaign_records_per_s",
                    campaign="dns-lookup",
                    volatile=True,
                ).set(n_records / elapsed)
        return records

    # -- step 4: the NS survey ------------------------------------------------------

    def ns_dig_survey(
        self, records: List[SubdomainRecord]
    ) -> List[List[str]]:
        """NS-survey step 4a: one fresh NS dig per cloud-using record.

        Returns each record's NS names in answer order (the order that
        drives :meth:`resolve_ns_hostnames`'s first-seen dedup).  NS
        digs are fresh and the surveyed chains are static, so the step
        has no cache or rotation side effects — which is what lets
        shard workers run it locally.
        """
        vantages = self.world.dns_vantages()
        survey_vantages = vantages[: min(10, len(vantages))]
        # The surveying resolver is the same object for every record;
        # fetching it per record was just loop-invariant overhead.
        resolver = self.world.resolver_for(survey_vantages[0])
        recorder = self._recorder
        ordered: List[List[str]] = []
        for record in records:
            response = resolver.dig(record.fqdn, RRType.NS, fresh=True)
            if recorder is not None:
                recorder.note_counter_dig(record.fqdn, response)
            record.ns_names.update(response.ns_names)
            ordered.append(list(response.ns_names))
        return ordered

    def resolve_ns_hostnames(
        self, ns_name_lists: Iterable[List[str]],
        into: Optional[Dict[str, Optional[IPv4Address]]] = None,
    ) -> Dict[str, Optional[IPv4Address]]:
        """NS-survey step 4b: resolve each distinct NS hostname once.

        Walks the per-record NS lists in order, resolving each hostname
        the first time it appears with the paper's flush-and-fresh
        discipline.  Sharded builds run this on the parent only: the
        dedup set is global, so splitting it would re-pay (and
        re-side-effect) duplicate hostname resolutions per shard.  The
        chunked build passes ``into`` to resolve incrementally — one
        chunk's lists at a time against the accumulated dedup set,
        which visits hostnames in the same global first-seen order.
        """
        vantages = self.world.dns_vantages()
        survey_vantages = vantages[: min(10, len(vantages))]
        ns_addresses: Dict[str, Optional[IPv4Address]] = (
            into if into is not None else {}
        )
        for ns_names in ns_name_lists:
            for hostname in ns_names:
                if hostname in ns_addresses:
                    continue
                address: Optional[IPv4Address] = None
                for vantage in survey_vantages:
                    ns_resolver = self.world.resolver_for(vantage)
                    ns_resolver.flush_cache()
                    answer = ns_resolver.dig(hostname, fresh=True)
                    if answer.addresses:
                        address = answer.addresses[0]
                        break
                ns_addresses[hostname] = address
        return ns_addresses

    def ns_survey(
        self, records: List[SubdomainRecord]
    ) -> Dict[str, Optional[IPv4Address]]:
        """Collect and resolve each cloud-using subdomain's NS set."""
        return self.resolve_ns_hostnames(self.ns_dig_survey(records))

    # -- putting it together -----------------------------------------------------------

    def can_shard(self, workers: int) -> bool:
        """Whether a ``workers``-way sharded build is available.

        Sharding requires fork-based pools and full published-range
        coverage: below 1.0 a subdomain's cloud classification can
        depend on *which* rotated answer a query index returns, so the
        filter's control flow would no longer be counter-independent
        and the shard merge could not replay it.
        """
        return (
            workers > 1
            and len(self.world.alexa.sites) > 1
            and self.range_coverage >= 1.0
            and fork_pool_available()
        )

    def build(self, workers: int = 0) -> AlexaSubdomainsDataset:
        """Run the full §2.1 pipeline.

        With ``workers > 1`` (where :meth:`can_shard` allows) the ranked
        domain list is partitioned into contiguous shards built in
        forked worker processes and merged back in rank order; the
        result — records, discovered map, NS addresses, query counters,
        resolver caches — is bit-identical to ``workers=0``.

        A world built with ``defer_tenants=True`` takes the
        constant-memory chunked path instead (deploy → measure →
        release, one rank window at a time); when that path is
        ineligible — streaming switched off, no fork support, partial
        range coverage, an outage scenario, or a live event sink — the
        world catches up to a batch-equivalent state and the normal
        paths run.
        """
        if getattr(self.world, "pending_tenants", False):
            from repro.analysis.streambuild import (
                build_chunked,
                chunked_build_eligible,
            )

            if chunked_build_eligible(self):
                return build_chunked(self, workers)
            self.world.catch_up_tenants()
        if self.can_shard(workers):
            from repro.analysis.shards import build_sharded

            return build_sharded(self, workers)
        tracer = self.obs.tracer
        with tracer.span("enumerate", category="dataset-step"):
            discovered, total = self.discover_subdomains()
        with tracer.span("filter", category="dataset-step"):
            cloud_using, cloudfront_using, other_cdn = (
                self.filter_cloud_using(discovered)
            )
        log.info(
            "dataset: %d discovered subdomains, %d cloud-using",
            total, len(cloud_using),
        )
        with tracer.span("distributed_lookups", category="dataset-step"):
            records = self.distributed_lookups(cloud_using)
            cloudfront_records = self.distributed_lookups(
                cloudfront_using
            )
        with tracer.span("ns_survey", category="dataset-step"):
            ns_name_lists = self.ns_dig_survey(records)
            ns_addresses = self.resolve_ns_hostnames(ns_name_lists)
        return AlexaSubdomainsDataset(
            records=records,
            discovered=discovered,
            ns_addresses=ns_addresses,
            total_discovered_subdomains=total,
            cloudfront_records=cloudfront_records,
            other_cdn_subdomains=other_cdn,
        )
