"""Building the Alexa subdomains dataset (§2.1).

The pipeline:

1. for every ranked domain, attempt a zone transfer; fall back to
   dnsmap-style wordlist brute forcing (150 enumeration nodes in the
   paper — we round-robin over the configured vantage set);
2. one DNS lookup per discovered subdomain from a single node; keep
   subdomains whose answers contain an EC2/Azure published-range
   address — the *cloud-using subdomains*;
3. look every cloud-using subdomain up from all distributed vantage
   points, accumulating addresses and CNAME chains (geo-dependent and
   rotating answers make multiple vantages matter);
4. the NS survey: collect NS names per cloud-using subdomain and
   resolve each name server's address with flushed caches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.dns.enumeration import SubdomainEnumerator
from repro.dns.records import RRType
from repro.net.ipv4 import IPv4Address
from repro.net.prefixset import PrefixSet
from repro.world import World


@dataclass
class SubdomainRecord:
    """Everything the distributed lookups learned about one subdomain."""

    fqdn: str
    domain: str
    rank: Optional[int]
    addresses: Set[IPv4Address] = field(default_factory=set)
    cnames: Set[str] = field(default_factory=set)
    ns_names: Set[str] = field(default_factory=set)
    lookups: int = 0

    def cname_contains(self, *fragments: str) -> bool:
        return any(
            fragment in cname
            for cname in self.cnames
            for fragment in fragments
        )

    @property
    def has_cname(self) -> bool:
        return bool(self.cnames)


@dataclass
class AlexaSubdomainsDataset:
    """The §2.1 dataset: cloud-using subdomains with their DNS records."""

    records: List[SubdomainRecord]
    #: fqdn → record, for joins.
    by_fqdn: Dict[str, SubdomainRecord] = field(default_factory=dict)
    #: domain → its cloud-using subdomain records.
    by_domain: Dict[str, List[SubdomainRecord]] = field(default_factory=dict)
    #: domain → all discovered subdomains (cloud-using or not).
    discovered: Dict[str, List[str]] = field(default_factory=dict)
    #: name-server hostname → resolved address (None if unresolvable).
    ns_addresses: Dict[str, Optional[IPv4Address]] = field(
        default_factory=dict
    )
    total_discovered_subdomains: int = 0
    #: Subdomains resolving into CloudFront's (separate) address range,
    #: found while filtering; not part of the EC2/Azure-using records.
    cloudfront_records: List[SubdomainRecord] = field(default_factory=list)
    #: domain → subdomains whose CNAMEs look like a third-party CDN.
    other_cdn_subdomains: Dict[str, List[str]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.by_fqdn:
            self.by_fqdn = {r.fqdn: r for r in self.records}
        if not self.by_domain:
            for record in self.records:
                self.by_domain.setdefault(record.domain, []).append(record)

    def domains(self) -> List[str]:
        return list(self.by_domain)

    def __len__(self) -> int:
        return len(self.records)


class DatasetBuilder:
    """Runs the §2.1 methodology against a world.

    ``range_coverage`` models the paper's footnote-2 assumption ("we
    assume the IP address ranges published by EC2 and Azure are
    relatively complete"): values below 1.0 deterministically drop a
    fraction of the published blocks from the classification, so the
    sensitivity of every downstream count to stale range lists can be
    measured.
    """

    def __init__(self, world: World, range_coverage: float = 1.0):
        if not 0.0 < range_coverage <= 1.0:
            raise ValueError(
                f"range_coverage must be in (0, 1]: {range_coverage}"
            )
        self.world = world
        self.range_coverage = range_coverage
        self.ranges = world.published_ranges()
        labelled = (
            [(net, "ec2") for net in world.ec2.published_ranges()]
            + [(net, "azure") for net in world.azure.published_ranges()]
        )
        if range_coverage < 1.0:
            keep = max(1, int(len(labelled) * range_coverage))
            labelled = labelled[:keep]
        self._cloud_membership = PrefixSet(labelled)

    def _is_cloud_address(self, address: IPv4Address) -> bool:
        return address in self._cloud_membership

    # -- step 1+2: enumerate and filter ------------------------------------

    def discover_subdomains(self) -> Tuple[Dict[str, List[str]], int]:
        """Enumerate subdomains for every ranked domain."""
        vantages = self.world.dns_vantages()
        enumerators = [
            SubdomainEnumerator(
                self.world.dns, self.world.resolver_for(vantage)
            )
            for vantage in vantages[: min(6, len(vantages))]
        ]
        discovered: Dict[str, List[str]] = {}
        total = 0
        for i, site in enumerate(self.world.alexa):
            enumerator = enumerators[i % len(enumerators)]
            result = enumerator.enumerate(site.domain)
            discovered[site.domain] = result.subdomains
            total += len(result.subdomains)
        return discovered, total

    def filter_cloud_using(
        self, discovered: Dict[str, List[str]]
    ) -> Tuple[
        List[Tuple[str, str]],
        List[Tuple[str, str]],
        Dict[str, List[str]],
    ]:
        """Classify every discovered subdomain from one vantage.

        Returns (cloud_using, cloudfront_using, other_cdn) where
        cloud_using are (domain, fqdn) pairs resolving into EC2/Azure
        ranges, cloudfront_using resolve into CloudFront's range, and
        other_cdn maps domains to subdomains whose CNAME chain names a
        CDN outside the clouds.
        """
        vantage = self.world.dns_vantages()[0]
        resolver = self.world.resolver_for(vantage)
        cloudfront_ranges = self.ranges["cloudfront"]
        cloud_using: List[Tuple[str, str]] = []
        cloudfront_using: List[Tuple[str, str]] = []
        other_cdn: Dict[str, List[str]] = {}
        for domain, subdomains in discovered.items():
            for fqdn in subdomains:
                response = resolver.dig(fqdn)
                if any(
                    self._is_cloud_address(addr)
                    for addr in response.addresses
                ):
                    cloud_using.append((domain, fqdn))
                elif any(
                    addr in cloudfront_ranges
                    for addr in response.addresses
                ):
                    cloudfront_using.append((domain, fqdn))
                elif any("cdn" in cname for cname in response.chain):
                    other_cdn.setdefault(domain, []).append(fqdn)
        return cloud_using, cloudfront_using, other_cdn

    # -- step 3: distributed lookups --------------------------------------------

    def distributed_lookups(
        self, cloud_using: Iterable[Tuple[str, str]]
    ) -> List[SubdomainRecord]:
        vantages = self.world.dns_vantages()
        resolvers = [self.world.resolver_for(v) for v in vantages]
        records: List[SubdomainRecord] = []
        for domain, fqdn in cloud_using:
            record = SubdomainRecord(
                fqdn=fqdn,
                domain=domain,
                rank=self.world.alexa.rank_of(domain),
            )
            for resolver in resolvers:
                response = resolver.dig(fqdn, fresh=True)
                record.lookups += 1
                record.addresses.update(response.addresses)
                record.cnames.update(response.chain)
            records.append(record)
        return records

    # -- step 4: the NS survey ------------------------------------------------------

    def ns_survey(
        self, records: List[SubdomainRecord]
    ) -> Dict[str, Optional[IPv4Address]]:
        """Collect and resolve each cloud-using subdomain's NS set."""
        vantages = self.world.dns_vantages()
        survey_vantages = vantages[: min(10, len(vantages))]
        # The surveying resolver is the same object for every record;
        # fetching it per record was just loop-invariant overhead.
        resolver = self.world.resolver_for(survey_vantages[0])
        ns_addresses: Dict[str, Optional[IPv4Address]] = {}
        for record in records:
            response = resolver.dig(record.fqdn, RRType.NS, fresh=True)
            record.ns_names.update(response.ns_names)
            for hostname in response.ns_names:
                if hostname in ns_addresses:
                    continue
                address: Optional[IPv4Address] = None
                for vantage in survey_vantages:
                    ns_resolver = self.world.resolver_for(vantage)
                    ns_resolver.flush_cache()
                    answer = ns_resolver.dig(hostname, fresh=True)
                    if answer.addresses:
                        address = answer.addresses[0]
                        break
                ns_addresses[hostname] = address
        return ns_addresses

    # -- putting it together -----------------------------------------------------------

    def build(self) -> AlexaSubdomainsDataset:
        discovered, total = self.discover_subdomains()
        cloud_using, cloudfront_using, other_cdn = self.filter_cloud_using(
            discovered
        )
        records = self.distributed_lookups(cloud_using)
        cloudfront_records = self.distributed_lookups(cloudfront_using)
        ns_addresses = self.ns_survey(records)
        return AlexaSubdomainsDataset(
            records=records,
            discovered=discovered,
            ns_addresses=ns_addresses,
            total_discovered_subdomains=total,
            cloudfront_records=cloudfront_records,
            other_cdn_subdomains=other_cdn,
        )
