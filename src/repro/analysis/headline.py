"""Regenerating the paper's abstract, number by number.

The abstract makes five quantitative claims.  This module re-derives
every one of them from a world's measured datasets and renders the
abstract with the reproduction's own numbers — the most compact
summary of how close the reproduction runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.analysis.clouduse import CloudUseAnalysis
from repro.analysis.dataset import AlexaSubdomainsDataset
from repro.analysis.regions import RegionAnalysis
from repro.analysis.wan import WanAnalysis
from repro.world import World

ABSTRACT_TEMPLATE = """\
Our results show that: {cloud_share:.1f}% of the Alexa top {alexa:,}
use EC2/Azure; there exist several common deployment patterns for
cloud-using web service front ends ({vm_share:.0f}% of EC2-using
subdomains front with plain VMs); and services can significantly
improve their wide-area performance and failure tolerance by making
better use of existing regional diversity: {single_region:.0f}% of
EC2-using subdomains sit in one region today, while expanding to
three regions would cut average client latency by
{k3_gain:.0f}%.  Driving these analyses are several datasets,
including one with {dns_subdomains:,} cloud-using subdomains measured
over DNS and a packet capture from a large university network.
"""


@dataclass
class HeadlineNumbers:
    """The abstract's five claims, measured."""

    alexa_size: int
    cloud_share_pct: float        # paper: 4%
    vm_front_share_pct: float     # paper: 71.5%
    single_region_pct: float      # paper: 97%
    k3_latency_gain_pct: float    # paper: 33%
    dns_subdomains: int           # paper: 713,910

    def render_abstract(self) -> str:
        return ABSTRACT_TEMPLATE.format(
            cloud_share=self.cloud_share_pct,
            alexa=self.alexa_size,
            vm_share=self.vm_front_share_pct,
            single_region=self.single_region_pct,
            k3_gain=self.k3_latency_gain_pct,
            dns_subdomains=self.dns_subdomains,
        )


def measure_headline(
    world: World,
    dataset: AlexaSubdomainsDataset,
    wan: Optional[WanAnalysis] = None,
) -> HeadlineNumbers:
    """Re-derive the abstract's numbers from measured data."""
    from repro.analysis.patterns import PatternAnalysis

    clouduse = CloudUseAnalysis(world, dataset)
    report = clouduse.report()
    patterns = PatternAnalysis(world, dataset)
    summary = patterns.feature_summary()
    regions = RegionAnalysis(world, dataset)
    k3_gain = 0.0
    if wan is not None:
        frontier = wan.optimal_k_regions("latency")
        k3_gain = 100.0 * wan.improvement_at_k(frontier, 3)
    ec2_subs = report.ec2_total_subdomains or 1
    return HeadlineNumbers(
        alexa_size=len(world.alexa),
        cloud_share_pct=100.0 * report.total_domains / len(world.alexa),
        vm_front_share_pct=(
            100.0 * summary["vm"]["subdomains"] / ec2_subs
        ),
        single_region_pct=(
            100.0 * regions.single_region_fraction("ec2")
        ),
        k3_latency_gain_pct=k3_gain,
        dns_subdomains=report.total_subdomains,
    )
