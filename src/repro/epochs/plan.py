"""Epoch plans and the epoch timeline state.

An :class:`EpochPlan` names a deterministic recipe: which
:class:`~repro.epochs.steps.EpochStep`\\ s run at each epoch, scaled to
the world's domain count.  An :class:`Epoch` is one point on a world
timeline — plan + index + world config — and owns the two things the
rest of the pipeline needs:

* ``build_world()`` — the epoch's world, built fresh from the seed by
  replaying every step of epochs ``1..index`` with named RNG streams
  (``derive_rng(seed, "epoch", e, pos, step.name)``).  Epoch 0 is
  exactly ``World(config)``: byte-identical to the single-shot
  pipeline.
* ``fingerprint(kind)`` — a per-artifact-kind digest over the canonical
  specs of every step through this epoch whose ``affects`` set contains
  ``kind``.  ``None`` means "no step touched this kind": the artifact
  key component is omitted entirely, the key equals the epoch-0 key,
  and the content-addressed store serves the cached build.

Plans are resolved by name through :func:`resolve_epoch_plan`,
mirroring the fault-scenario registry.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from repro.epochs.steps import (
    CloudAdoption,
    DualProviderAdoption,
    EpochDiff,
    EpochStep,
    MigrationToAzure,
    MigrationToEc2,
    RegionExpansion,
    TenantChurn,
)
from repro.sim import derive_rng

#: Default virtual-time gap between epochs (~6 months, the cadence a
#: real revisit crawl would run at).  Only resolver-cache expiry reads
#: the clock, so this is output-transparent — it exists so snapshots
#: carry honest virtual timestamps.
EPOCH_SECONDS = 180 * 86400.0

DEFAULT_EPOCH_PLAN = "steady-growth"


def _scaled(fraction: float, num_domains: int) -> int:
    """Step count as a fraction of the domain population, at least 1."""
    return max(1, round(fraction * num_domains))


@dataclass(frozen=True)
class EpochPlan:
    """A named, deterministic evolution recipe."""

    name: str
    description: str
    recipe: Callable[[int, int], Tuple[EpochStep, ...]] = field(repr=False)
    epoch_seconds: float = EPOCH_SECONDS

    def steps_for(
        self, epoch_index: int, num_domains: int
    ) -> Tuple[EpochStep, ...]:
        """The steps applied entering ``epoch_index`` (none for 0)."""
        if epoch_index <= 0:
            return ()
        return self.recipe(epoch_index, num_domains)


def _steady_growth(epoch: int, n: int) -> Tuple[EpochStep, ...]:
    return (
        CloudAdoption(count=_scaled(0.008, n)),
        RegionExpansion(count=_scaled(0.003, n)),
        MigrationToEc2(count=_scaled(0.0012, n)),
    )


def _provider_shift(epoch: int, n: int) -> Tuple[EpochStep, ...]:
    migration: EpochStep = (
        MigrationToAzure(count=_scaled(0.002, n))
        if epoch % 2
        else MigrationToEc2(count=_scaled(0.002, n))
    )
    return (
        CloudAdoption(count=_scaled(0.004, n)),
        migration,
        DualProviderAdoption(count=_scaled(0.001, n)),
    )


def _churn(epoch: int, n: int) -> Tuple[EpochStep, ...]:
    return (
        CloudAdoption(count=_scaled(0.006, n)),
        TenantChurn(count=_scaled(0.003, n)),
    )


def _frozen(epoch: int, n: int) -> Tuple[EpochStep, ...]:
    return ()


_PLANS: Dict[str, EpochPlan] = {
    plan.name: plan
    for plan in (
        EpochPlan(
            name="steady-growth",
            description=(
                "2013-era adoption continues: new EC2 tenants, second "
                "regions, a trickle of Azure→EC2 migrations"
            ),
            recipe=_steady_growth,
        ),
        EpochPlan(
            name="provider-shift",
            description=(
                "tenants migrate between providers (alternating "
                "direction per epoch) and some go dual-provider"
            ),
            recipe=_provider_shift,
        ),
        EpochPlan(
            name="churn",
            description=(
                "adoption with tenant churn: some domains leave the "
                "cloud entirely each epoch"
            ),
            recipe=_churn,
        ),
        EpochPlan(
            name="frozen",
            description=(
                "no evolution: every epoch is the epoch-0 world, so a "
                "warm series is all cache hits (reuse ceiling probe)"
            ),
            recipe=_frozen,
        ),
    )
}


def named_epoch_plans() -> Dict[str, EpochPlan]:
    """All registered plans, by name."""
    return dict(_PLANS)


def resolve_epoch_plan(name: str) -> EpochPlan:
    """Look up an epoch plan by name (``ValueError`` lists the names)."""
    try:
        return _PLANS[name]
    except KeyError:
        known = ", ".join(sorted(_PLANS))
        raise ValueError(
            f"unknown epoch plan {name!r}; known plans: {known}"
        ) from None


class Epoch:
    """One point on a world timeline: plan + index + world config."""

    def __init__(self, plan: EpochPlan, index: int, world_config) -> None:
        if index < 0:
            raise ValueError(f"epoch index must be >= 0, got {index}")
        self.plan = plan
        self.index = index
        self.world_config = world_config
        self._world = None
        self._diffs: Optional[Tuple[EpochDiff, ...]] = None

    @property
    def plan_name(self) -> str:
        return self.plan.name

    def steps(self) -> Tuple[EpochStep, ...]:
        """The steps applied entering *this* epoch."""
        return self.plan.steps_for(self.index, self.world_config.num_domains)

    def fingerprint(self, kind: str) -> Optional[str]:
        """Digest of every step through this epoch affecting ``kind``.

        ``None`` — meaning "omit the key component; reuse epoch 0" —
        when no step through this epoch touches the kind.  Epoch 0
        therefore always fingerprints to ``None`` for every kind.
        """
        from repro.artifacts.keys import canonical

        specs = []
        for e in range(1, self.index + 1):
            for step in self.plan.steps_for(e, self.world_config.num_domains):
                if kind in step.affects:
                    specs.append((e, step.spec()))
        if not specs:
            return None
        digest = hashlib.sha256()
        digest.update(self.plan.name.encode("utf-8"))
        digest.update(b"\x00")
        digest.update(canonical(tuple(specs)).encode("utf-8"))
        return digest.hexdigest()[:16]

    def build_world(self):
        """The epoch's world, built fresh and memoized.

        Epoch 0 is exactly ``World(config)``.  Later epochs replay the
        plan's cumulative steps with per-(epoch, position, step) RNG
        streams, advancing the virtual clock one ``epoch_seconds`` gap
        per epoch, and record the diffs of the final epoch's steps.
        """
        if self._world is None:
            from repro.world import World

            world = World(self.world_config)
            diffs = []
            n = self.world_config.num_domains
            for e in range(1, self.index + 1):
                world.clock.advance(self.plan.epoch_seconds)
                for pos, step in enumerate(self.plan.steps_for(e, n)):
                    rng = derive_rng(
                        self.world_config.seed,
                        "epoch", str(e), str(pos), step.name,
                    )
                    diff = step.apply(world, rng)
                    if e == self.index:
                        diffs.append(diff)
            self._world = world
            self._diffs = tuple(diffs)
        return self._world

    @property
    def diffs(self) -> Tuple[EpochDiff, ...]:
        """Diffs of this epoch's own steps (builds the world if needed)."""
        if self._diffs is None:
            self.build_world()
        return self._diffs

    def virtual_time_s(self) -> float:
        """Virtual timestamp of this epoch without building the world."""
        return self.index * self.plan.epoch_seconds
