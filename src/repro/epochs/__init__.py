"""The longitudinal plane: one world timeline, N measurement runs.

The paper closes by calling for ongoing tracking of cloud usage; this
package makes that a first-class pipeline axis.  An
:class:`~repro.epochs.plan.EpochPlan` names a deterministic evolution
recipe built from composable :class:`~repro.epochs.steps.EpochStep`\\ s
(adoption, region expansion, EC2↔Azure↔both migrations, tenant
churn); an :class:`~repro.epochs.plan.Epoch` is one point on the
timeline; :func:`~repro.epochs.series.run_series` re-runs the full
experiment plane at every epoch with incremental artifact reuse and
emits the cross-epoch trend tables (:mod:`~repro.epochs.trends`) in
``series.json``.

Epoch 0 is byte-identical to the single-shot pipeline, and a series is
byte-identical cold vs warm-cache and sequential vs ``--workers N``.

Exports resolve lazily (PEP 562): ``repro.evolution`` delegates its
mutation bodies to :mod:`repro.epochs.steps` while the series/trends
layers consume ``repro.evolution`` snapshots, so an eager ``__init__``
would close an import cycle.
"""

_EXPORTS = {
    "DEFAULT_EPOCH_PLAN": "repro.epochs.plan",
    "EPOCH_SECONDS": "repro.epochs.plan",
    "Epoch": "repro.epochs.plan",
    "EpochPlan": "repro.epochs.plan",
    "named_epoch_plans": "repro.epochs.plan",
    "resolve_epoch_plan": "repro.epochs.plan",
    "EpochRun": "repro.epochs.series",
    "SERIES_SCHEMA_VERSION": "repro.epochs.series",
    "SeriesResult": "repro.epochs.series",
    "iter_series_payloads": "repro.epochs.series",
    "load_series": "repro.epochs.series",
    "run_series": "repro.epochs.series",
    "series_identifier": "repro.epochs.series",
    "STEP_TYPES": "repro.epochs.steps",
    "CloudAdoption": "repro.epochs.steps",
    "DualProviderAdoption": "repro.epochs.steps",
    "EpochDiff": "repro.epochs.steps",
    "EpochStep": "repro.epochs.steps",
    "MigrationToAzure": "repro.epochs.steps",
    "MigrationToEc2": "repro.epochs.steps",
    "RegionExpansion": "repro.epochs.steps",
    "TenantChurn": "repro.epochs.steps",
    "TrendContext": "repro.epochs.trends",
    "run_trends": "repro.epochs.trends",
    "trend_specs": "repro.epochs.trends",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    try:
        module_name = _EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module 'repro.epochs' has no attribute {name!r}"
        ) from None
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__():
    return __all__
