"""Composable, deterministic epoch steps.

Each :class:`EpochStep` is a frozen value object describing one kind of
world evolution (cloud adoption, region expansion, provider migration,
tenant churn).  Applying a step mutates a :class:`~repro.world.World`
in place using an explicitly passed RNG — the epoch timeline derives
one named stream per (epoch, position, step) so a plan's history is a
pure function of the world seed — and returns an :class:`EpochDiff`
recording exactly which domains, subdomains, regions, and tenants
changed.

The diff is what makes incremental reuse auditable: the series
manifest stores it verbatim, and the per-kind epoch fingerprints
(:meth:`repro.epochs.plan.Epoch.fingerprint`) are built from each
step's declared ``affects`` set, so an artifact kind no step touched
keeps its epoch-0 key and hits the content-addressed store.

``CloudAdoption``, ``RegionExpansion``, and ``MigrationToEc2`` carry
the exact draw order of the original ``repro.evolution`` methods —
``WorldEvolution`` now delegates here, and its legacy single-stream
behaviour is covered by tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, ClassVar, FrozenSet, List, Tuple

from repro.cloud.azure import ServiceKind
from repro.cloud.base import InstanceRole, InstanceType
from repro.dns.records import RRType, ResourceRecord
from repro.workload.mixtures import sample_discrete
from repro.workload.plans import SubdomainPlan

#: Artifact kinds a step may invalidate.  ``wan`` is listed for
#: completeness: no current step affects it — WAN paths key on
#: (provider, region) and the default probe policy never draws the
#: instance-keyed loss lanes — so WAN artifacts cache-hit at every
#: epoch (verified by tests/epochs/test_series.py).
AFFECT_KINDS = ("dataset", "capture", "wan")


@dataclass(frozen=True)
class EpochDiff:
    """Exactly what one step changed, for the series manifest."""

    step: str
    domains: Tuple[str, ...] = ()
    subdomains: Tuple[str, ...] = ()
    regions: Tuple[str, ...] = ()
    tenants: Tuple[str, ...] = ()
    instances_launched: int = 0

    @property
    def changed(self) -> bool:
        return bool(self.domains or self.subdomains or self.tenants)

    def as_dict(self) -> dict:
        return {
            "step": self.step,
            "domains": list(self.domains),
            "subdomains": list(self.subdomains),
            "regions": list(self.regions),
            "tenants": list(self.tenants),
            "instances_launched": self.instances_launched,
        }


@dataclass(frozen=True)
class EpochStep:
    """Base class: a deterministic world mutation between epochs."""

    count: int

    #: Stable step identity used in RNG stream labels and diffs.
    name: ClassVar[str] = "step"
    #: Which artifact kinds this step invalidates.
    affects: ClassVar[FrozenSet[str]] = frozenset()

    def spec(self) -> str:
        """Canonical encoding, the fingerprint ingredient."""
        from repro.artifacts.keys import canonical

        return canonical(self)

    def apply(self, world: Any, rng: Any) -> EpochDiff:
        raise NotImplementedError


def _diff(
    step: "EpochStep",
    domains: List[str],
    subdomains: List[str],
    regions: List[str],
    tenants: List[str],
    launched: int,
) -> EpochDiff:
    return EpochDiff(
        step=step.name,
        domains=tuple(domains),
        subdomains=tuple(subdomains),
        regions=tuple(sorted(set(regions))),
        tenants=tuple(tenants),
        instances_launched=launched,
    )


@dataclass(frozen=True)
class CloudAdoption(EpochStep):
    """Previously cloud-free domains put one subdomain on EC2.

    Adoption in the wild: one app at a time, us-east first (the region
    draw follows the paper's Table 7 mixture).
    """

    name: ClassVar[str] = "cloud-adoption"
    affects: ClassVar[FrozenSet[str]] = frozenset({"dataset", "capture"})

    def apply(self, world: Any, rng: Any) -> EpochDiff:
        candidates = [plan for plan in world.plans if not plan.is_cloud_using]
        domains: List[str] = []
        subdomains: List[str] = []
        regions: List[str] = []
        launched = 0
        for plan in rng.sample(candidates, k=min(self.count, len(candidates))):
            region = sample_discrete(
                rng, world.config.mixtures.ec2_region_weights
            )
            label = rng.choice(("app", "api", "beta", "cloud"))
            fqdn = f"{label}.{plan.domain}"
            zone = world.dns.get_zone(plan.domain)
            if zone is None or zone.has_name(fqdn):
                continue
            instance = world.ec2.launch_instance(
                account_id=f"acct-{plan.domain}",
                region_name=region,
                itype=InstanceType.M1_MEDIUM,
                role=InstanceRole.WEB,
                rng=rng,
            )
            zone.add(ResourceRecord(fqdn, RRType.A, instance.public_ip,
                                    ttl=300))
            plan.category = "ec2_other"
            plan.home_region_ec2 = region
            plan.subdomains.append(SubdomainPlan(
                fqdn=fqdn, kind="cloud", provider="ec2", frontend="vm",
                regions=(region,), zone_indices=((instance.zone_index,),),
                n_vms=1,
            ))
            domains.append(plan.domain)
            subdomains.append(fqdn)
            regions.append(region)
            launched += 1
        return _diff(self, domains, subdomains, regions, domains, launched)


@dataclass(frozen=True)
class RegionExpansion(EpochStep):
    """Single-region EC2 VM front ends add a replica region —
    the paper's own recommendation being taken up."""

    name: ClassVar[str] = "region-expansion"
    affects: ClassVar[FrozenSet[str]] = frozenset({"dataset", "capture"})

    def apply(self, world: Any, rng: Any) -> EpochDiff:
        candidates = []
        for plan in world.plans:
            for sub in plan.cloud_subdomains():
                if (
                    sub.provider == "ec2"
                    and sub.frontend == "vm"
                    and len(sub.regions) == 1
                ):
                    candidates.append((plan, sub))
        domains: List[str] = []
        subdomains: List[str] = []
        regions: List[str] = []
        launched = 0
        for plan, sub in rng.sample(
            candidates, k=min(self.count, len(candidates))
        ):
            zone = world.dns.get_zone(plan.domain)
            if zone is None:
                continue
            current = sub.regions[0]
            options = [r for r in world.ec2.region_names() if r != current]
            region = rng.choice(options)
            instance = world.ec2.launch_instance(
                account_id=f"acct-{plan.domain}",
                region_name=region,
                itype=InstanceType.M1_MEDIUM,
                role=InstanceRole.WEB,
                rng=rng,
            )
            zone.add(ResourceRecord(
                sub.fqdn, RRType.A, instance.public_ip, ttl=300
            ))
            sub.regions = sub.regions + (region,)
            sub.zone_indices = sub.zone_indices + ((instance.zone_index,),)
            domains.append(plan.domain)
            subdomains.append(sub.fqdn)
            regions.append(region)
            launched += 1
        return _diff(self, domains, subdomains, regions, domains, launched)


@dataclass(frozen=True)
class MigrationToEc2(EpochStep):
    """Azure-hosted subdomains move to EC2 (records replaced rather
    than accreted — a true migration)."""

    name: ClassVar[str] = "migration-to-ec2"
    affects: ClassVar[FrozenSet[str]] = frozenset({"dataset", "capture"})

    def apply(self, world: Any, rng: Any) -> EpochDiff:
        candidates = []
        for plan in world.plans:
            for sub in plan.cloud_subdomains():
                if sub.provider == "azure" and sub.frontend in (
                    "cs_direct", "cs_cname"
                ):
                    candidates.append((plan, sub))
        domains: List[str] = []
        subdomains: List[str] = []
        regions: List[str] = []
        launched = 0
        for plan, sub in rng.sample(
            candidates, k=min(self.count, len(candidates))
        ):
            zone = world.dns.get_zone(plan.domain)
            if zone is None:
                continue
            region = sample_discrete(
                rng, world.config.mixtures.ec2_region_weights
            )
            instance = world.ec2.launch_instance(
                account_id=f"acct-{plan.domain}",
                region_name=region,
                itype=InstanceType.M1_MEDIUM,
                role=InstanceRole.WEB,
                rng=rng,
            )
            zone.remove(sub.fqdn)
            zone.add(ResourceRecord(
                sub.fqdn, RRType.A, instance.public_ip, ttl=300
            ))
            sub.provider = "ec2"
            sub.frontend = "vm"
            sub.regions = (region,)
            sub.zone_indices = ((instance.zone_index,),)
            sub.n_vms = 1
            domains.append(plan.domain)
            subdomains.append(sub.fqdn)
            regions.append(region)
            launched += 1
        return _diff(self, domains, subdomains, regions, domains, launched)


@dataclass(frozen=True)
class MigrationToAzure(EpochStep):
    """EC2 VM subdomains move to an Azure cloud service (the reverse
    flow — by 2013 traffic ran both ways)."""

    name: ClassVar[str] = "migration-to-azure"
    affects: ClassVar[FrozenSet[str]] = frozenset({"dataset", "capture"})

    def apply(self, world: Any, rng: Any) -> EpochDiff:
        candidates = []
        for plan in world.plans:
            for sub in plan.cloud_subdomains():
                if sub.provider == "ec2" and sub.frontend == "vm":
                    candidates.append((plan, sub))
        domains: List[str] = []
        subdomains: List[str] = []
        regions: List[str] = []
        launched = 0
        for plan, sub in rng.sample(
            candidates, k=min(self.count, len(candidates))
        ):
            zone = world.dns.get_zone(plan.domain)
            if zone is None:
                continue
            region = sample_discrete(
                rng, world.config.mixtures.azure_region_weights
            )
            service = world.azure.create_cloud_service(
                region_name=region,
                kind=ServiceKind.SINGLE_VM,
                account_id=f"acct-{plan.domain}",
            )
            zone.remove(sub.fqdn)
            zone.add(ResourceRecord(
                sub.fqdn, RRType.A, service.public_ip, ttl=300
            ))
            sub.provider = "azure"
            sub.frontend = "cs_direct"
            sub.regions = (region,)
            sub.zone_indices = ((0,),)
            sub.n_vms = 1
            domains.append(plan.domain)
            subdomains.append(sub.fqdn)
            regions.append(region)
            launched += 1
        return _diff(self, domains, subdomains, regions, domains, launched)


@dataclass(frozen=True)
class DualProviderAdoption(EpochStep):
    """Single-provider EC2 subdomains add an Azure answer on the same
    name — the "EC2 + Azure" category Table 3 counts separately."""

    name: ClassVar[str] = "dual-provider-adoption"
    affects: ClassVar[FrozenSet[str]] = frozenset({"dataset", "capture"})

    def apply(self, world: Any, rng: Any) -> EpochDiff:
        candidates = []
        for plan in world.plans:
            for sub in plan.cloud_subdomains():
                if sub.provider == "ec2" and sub.frontend == "vm":
                    candidates.append((plan, sub))
        domains: List[str] = []
        subdomains: List[str] = []
        regions: List[str] = []
        launched = 0
        for plan, sub in rng.sample(
            candidates, k=min(self.count, len(candidates))
        ):
            zone = world.dns.get_zone(plan.domain)
            if zone is None:
                continue
            region = sample_discrete(
                rng, world.config.mixtures.azure_region_weights
            )
            service = world.azure.create_cloud_service(
                region_name=region,
                kind=ServiceKind.SINGLE_VM,
                account_id=f"acct-{plan.domain}",
            )
            zone.add(ResourceRecord(
                sub.fqdn, RRType.A, service.public_ip, ttl=300
            ))
            domains.append(plan.domain)
            subdomains.append(sub.fqdn)
            regions.append(region)
            launched += 1
        return _diff(self, domains, subdomains, regions, domains, launched)


@dataclass(frozen=True)
class TenantChurn(EpochStep):
    """Cloud-using domains leave the cloud entirely: their cloud
    records are withdrawn and the tenant's plans revert to external
    hosting.  Instances stay allocated (churned tenants rarely clean
    up), which keeps all earlier epochs' address plans stable."""

    name: ClassVar[str] = "tenant-churn"
    affects: ClassVar[FrozenSet[str]] = frozenset({"dataset", "capture"})

    def apply(self, world: Any, rng: Any) -> EpochDiff:
        candidates = [
            plan for plan in world.plans
            if plan.is_cloud_using and plan.notable is None
        ]
        domains: List[str] = []
        subdomains: List[str] = []
        for plan in rng.sample(candidates, k=min(self.count, len(candidates))):
            zone = world.dns.get_zone(plan.domain)
            if zone is None:
                continue
            for sub in plan.cloud_subdomains():
                zone.remove(sub.fqdn)
                sub.kind = "external"
                sub.provider = None
                sub.frontend = None
                sub.regions = ()
                sub.zone_indices = ()
                sub.n_vms = 0
                subdomains.append(sub.fqdn)
            plan.category = "none"
            plan.home_region_ec2 = None
            plan.home_region_azure = None
            domains.append(plan.domain)
        return _diff(self, domains, subdomains, [], domains, 0)


#: All concrete step classes, for registries and tests.
STEP_TYPES: Tuple[type, ...] = (
    CloudAdoption,
    RegionExpansion,
    MigrationToEc2,
    MigrationToAzure,
    DualProviderAdoption,
    TenantChurn,
)
