"""The epoch series runner: N runs along one world timeline.

``run_series`` executes the full experiment pipeline once per epoch.
Epoch 0 is exactly today's single-shot run — same world, same artifact
keys, same ``run-<hash>`` manifest directory.  Each later epoch builds
its world through the plan's cumulative steps and re-consults the
content-addressed store with epoch-fingerprinted keys: artifact kinds
no step touched keep their epoch-0 keys and are served from cache (the
WAN matrices hit at *every* epoch under every bundled plan), so only
the diffed portion of the pipeline re-probes.

Two output families per series:

* per-epoch ``run-<hash>/`` directories via the normal
  :class:`~repro.experiments.manifest.RunManifest` machinery (epoch 0
  also carries the §2.1 TSV ``release/``);
* a ``series-<hash>/`` directory with ``series.json`` (deterministic:
  epoch links, step diffs, fingerprints, snapshots, trend
  measurements), ``trends.txt`` (the rendered trend tables), and a
  volatile ``series-timings.json`` sidecar (per-epoch wall clock and
  cache hit/miss deltas — the same quarantine rule as
  ``timings.json``).

Determinism contract: ``series.json``, every ``manifest.json``, and
``trends.txt`` are byte-identical sequential vs ``--workers N`` and
cold vs warm-cache — worker counts and cache state are environmental
and live only in the timings sidecar.  Per-epoch contexts therefore
run with a private tracer and *no* metrics registry (build counters
depend on which builds the cache skipped), while the series-level
``obs`` keeps the volatile cache hit/miss counters the reuse tests
assert on.
"""

from __future__ import annotations

import json
import logging
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.analysis.wan import WanConfig
from repro.artifacts import ArtifactStore, artifact_key
from repro.artifacts.keys import code_fingerprint
from repro.epochs.plan import Epoch, EpochPlan
from repro.epochs.trends import run_trends
from repro.evolution import Snapshot, take_world_snapshot
from repro.experiments.base import ExperimentResult
from repro.experiments.context import ExperimentContext
from repro.experiments.manifest import RunManifest, check_schema_version
from repro.experiments.spec import ExperimentSpec
from repro.obs import NOOP, Observability, Tracer
from repro.world import WorldConfig

logger = logging.getLogger(__name__)

#: Cache-stat fields carried into each epoch's delta record.
_CACHE_FIELDS = ("hits", "misses", "stores", "invalid")

#: Version of the ``series.json`` layout this code writes; same
#: contract as :data:`repro.experiments.manifest.MANIFEST_SCHEMA_VERSION`
#: (missing field = version 0, newer versions refused on load).
SERIES_SCHEMA_VERSION = 1


def series_identifier(
    world_config: WorldConfig,
    wan_config: WanConfig,
    plan: EpochPlan,
    epochs: int,
    experiment_ids: Tuple[str, ...],
    scenario: Optional[str] = None,
) -> str:
    """Deterministic series id (worker counts never change outputs)."""
    from dataclasses import replace

    components = {
        "world": world_config,
        "wan": replace(wan_config, workers=0),
        "plan": plan.name,
        "epochs": epochs,
        "experiments": tuple(experiment_ids),
    }
    if scenario is not None:
        components["scenario"] = scenario
    return "series-" + artifact_key("series", components)[:12]


@dataclass
class EpochRun:
    """One epoch's outputs within a series."""

    epoch: Epoch
    manifest: RunManifest
    results: List[ExperimentResult]
    snapshot: Snapshot
    #: Wall clock for the whole epoch (volatile; timings sidecar only).
    elapsed_s: float
    #: Artifact-store hit/miss/store deltas attributable to this epoch
    #: (volatile: cache state is environmental).
    cache_delta: Dict[str, int] = field(default_factory=dict)

    @property
    def run_id(self) -> str:
        return self.manifest.run_id

    def link(self) -> dict:
        """This epoch's deterministic entry in ``series.json``."""
        epoch = self.epoch
        return {
            "index": epoch.index,
            "run_id": self.run_id,
            "virtual_time_s": epoch.virtual_time_s(),
            "steps": [step.spec() for step in epoch.steps()],
            "diffs": [diff.as_dict() for diff in epoch.diffs],
            "fingerprints": {
                kind: epoch.fingerprint(kind)
                for kind in ("dataset", "capture", "wan")
            },
            "snapshot": self.snapshot.as_dict(),
        }


@dataclass
class SeriesResult:
    """Everything one series run produced."""

    series_id: str
    plan: EpochPlan
    world_config: WorldConfig
    wan_config: WanConfig
    scenario: Optional[str]
    experiment_ids: Tuple[str, ...]
    epochs: List[EpochRun]
    trends: List[Dict[str, object]]
    #: Volatile per-epoch wall clock + cache deltas; never part of
    #: :meth:`payload`.
    timings: Dict[str, object] = field(default_factory=dict)

    @property
    def snapshots(self) -> List[Snapshot]:
        return [run.snapshot for run in self.epochs]

    def payload(self) -> dict:
        """The deterministic ``series.json`` body."""
        return {
            "schema_version": SERIES_SCHEMA_VERSION,
            "series_id": self.series_id,
            "plan": {
                "name": self.plan.name,
                "description": self.plan.description,
                "epoch_seconds": self.plan.epoch_seconds,
            },
            "config": {
                "seed": self.world_config.seed,
                "domains": self.world_config.num_domains,
                "wan_rounds": self.wan_config.rounds,
                "scenario": self.scenario,
                "epochs": len(self.epochs),
                "experiments": list(self.experiment_ids),
            },
            "code_fingerprint": code_fingerprint(),
            "epochs": [run.link() for run in self.epochs],
            "trends": [
                {
                    "id": row["id"],
                    "title": row["title"],
                    "measured": row["measured"],
                }
                for row in self.trends
            ],
        }

    def render_trends(self) -> str:
        return "\n\n".join(str(row["rendered"]) for row in self.trends)

    def write(self, out_dir: Union[str, Path]) -> Dict[str, Path]:
        """Write ``<out-dir>/<series-id>/``; per-epoch run directories
        are written by :func:`run_series` itself (same root)."""
        series_dir = Path(out_dir) / self.series_id
        series_dir.mkdir(parents=True, exist_ok=True)
        paths: Dict[str, Path] = {"series_dir": series_dir}

        paths["series"] = series_dir / "series.json"
        with paths["series"].open("w") as fh:
            json.dump(self.payload(), fh, indent=2, sort_keys=False)
            fh.write("\n")

        paths["trends"] = series_dir / "trends.txt"
        paths["trends"].write_text(self.render_trends() + "\n")

        paths["timings"] = series_dir / "series-timings.json"
        with paths["timings"].open("w") as fh:
            json.dump(self.timings, fh, indent=2, sort_keys=False)
            fh.write("\n")
        return paths


def run_series(
    specs: Sequence[ExperimentSpec],
    world_config: WorldConfig,
    wan_config: WanConfig,
    plan: EpochPlan,
    epochs: int,
    workers: int = 0,
    artifact_store: Optional[ArtifactStore] = None,
    scenario=None,
    obs: Observability = NOOP,
    out_dir: Optional[Union[str, Path]] = None,
) -> SeriesResult:
    """Run ``specs`` at every epoch of ``plan``'s timeline.

    ``obs`` is the *series-level* plane: epoch spans, volatile
    per-epoch cache counters, and the artifact store's hit/miss
    accounting hang off it.  Each epoch gets a private tracer-only
    plane so its ``manifest.json`` stays byte-identical regardless of
    cache state (see the module docstring).
    """
    if epochs < 1:
        raise ValueError(f"a series needs at least 1 epoch, got {epochs}")
    specs = list(specs)
    scenario_name = scenario.name if scenario is not None else None
    if artifact_store is not None and obs.enabled:
        # The store reports hits/misses through the series plane, not
        # any single epoch's.
        artifact_store.obs = obs
    runs: List[EpochRun] = []
    out_root = Path(out_dir) if out_dir is not None else None
    for index in range(epochs):
        epoch = Epoch(plan, index, world_config)
        before = (
            artifact_store.stats.as_dict()
            if artifact_store is not None else None
        )
        started = time.perf_counter()
        with obs.tracer.span(
            f"epoch:{index}", category="epoch", plan=plan.name
        ):
            epoch_obs = Observability(tracer=Tracer())
            context = ExperimentContext(
                world_config=world_config,
                wan_config=wan_config,
                workers=workers,
                artifact_store=artifact_store,
                scenario=scenario,
                obs=epoch_obs,
                epoch=epoch,
            )
            executed: List[
                Tuple[ExperimentSpec, ExperimentResult, float]
            ] = []
            results: List[ExperimentResult] = []
            for spec in specs:
                spec_started = time.perf_counter()
                result = spec.run(context)
                executed.append(
                    (spec, result, time.perf_counter() - spec_started)
                )
                results.append(result)
            manifest = RunManifest.from_run(context, executed)
            # Worker counts are environmental (outputs are
            # bit-identical across them); quarantine the knob in the
            # timings sidecar so series manifests are byte-identical
            # sequential vs --workers N.
            manifest.config["workers"] = 0
            manifest.timings["workers"] = workers
            snapshot = take_world_snapshot(
                epoch.build_world(), context.dataset,
                label=f"epoch-{index}", epoch=index,
            )
        elapsed = time.perf_counter() - started
        delta: Dict[str, int] = {}
        if before is not None:
            after = artifact_store.stats.as_dict()
            delta = {
                name: after[name] - before[name]
                for name in _CACHE_FIELDS
            }
            if obs.metrics.enabled:
                for name, value in delta.items():
                    if value:
                        obs.metrics.counter(
                            f"epoch_artifact_{name}_total",
                            volatile=True, epoch=str(index),
                        ).inc(value)
        run = EpochRun(
            epoch=epoch,
            manifest=manifest,
            results=results,
            snapshot=snapshot,
            elapsed_s=elapsed,
            cache_delta=delta,
        )
        if out_root is not None:
            # Epoch 0 is the single-shot run and carries the TSV
            # release; later epochs skip it (exporting reads
            # context.world, which would force side-effect replays on
            # an otherwise fully warm epoch).
            manifest.write(
                out_root, results=results,
                context=context if index == 0 else None,
            )
        runs.append(run)
    trend_rows = run_trends(
        [run.snapshot for run in runs],
        world_config.num_domains,
        obs=obs,
    )
    result = SeriesResult(
        series_id=series_identifier(
            world_config, wan_config, plan, epochs,
            tuple(spec.experiment_id for spec in specs),
            scenario=scenario_name,
        ),
        plan=plan,
        world_config=world_config,
        wan_config=wan_config,
        scenario=scenario_name,
        experiment_ids=tuple(spec.experiment_id for spec in specs),
        epochs=runs,
        trends=trend_rows,
        timings={
            "workers": workers,
            "epochs_s": {
                str(run.epoch.index): round(run.elapsed_s, 3)
                for run in runs
            },
            "cache_deltas": {
                str(run.epoch.index): run.cache_delta for run in runs
            },
        },
    )
    if out_root is not None:
        result.write(out_root)
    return result


# -- reading series back ----------------------------------------------
#
# Like manifests (see repro.experiments.manifest), series used to be
# write-only; the service repository layer reads them back with the
# same schema-version contract.


def load_series(path: Union[str, Path]) -> dict:
    """Load and validate one ``series.json`` (or series directory).

    Raises ``FileNotFoundError``/``json.JSONDecodeError`` for
    unreadable files, ``ValueError`` for JSON that is not a series
    payload, and
    :class:`~repro.experiments.manifest.UnsupportedSchemaError` for
    versions newer than :data:`SERIES_SCHEMA_VERSION`.
    """
    path = Path(path)
    expected_id = None
    if path.is_dir():
        expected_id = path.name
        path = path / "series.json"
    with path.open() as fh:
        payload = json.load(fh)
    if not isinstance(payload, dict) or "series_id" not in payload:
        raise ValueError(f"{path} is not a series payload (no series_id)")
    if expected_id is not None and payload["series_id"] != expected_id:
        raise ValueError(
            f"{path} declares series_id {payload['series_id']!r} but "
            f"lives in {expected_id!r}"
        )
    check_schema_version(payload, SERIES_SCHEMA_VERSION, path)
    return payload


def iter_series_payloads(
    root: Union[str, Path]
) -> Iterator[Tuple[Path, dict]]:
    """Yield ``(series_dir, payload)`` for every ``series-*`` directory
    under ``root`` in sorted order, skipping corrupt ones with a
    warning (the same contract as
    :func:`repro.experiments.manifest.iter_run_manifests`)."""
    root = Path(root)
    if not root.is_dir():
        return
    for series_dir in sorted(root.glob("series-*")):
        if not series_dir.is_dir():
            continue
        try:
            yield series_dir, load_series(series_dir)
        except (OSError, ValueError) as error:
            logger.warning(
                "skipping series dir %s: %s", series_dir, error
            )
