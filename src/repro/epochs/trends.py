"""Cross-epoch trend experiments: what a revisit study would publish.

The series runner summarizes every epoch into a
:class:`~repro.evolution.Snapshot`; the trend experiments here turn
that snapshot sequence into the longitudinal tables the paper's
closing section calls for — cloud share over time, provider mix, and
the regional consolidation curve (per Bhattacherjee et al., "Measuring
and exploiting the cloud consolidation of the Web").

They are ordinary :class:`~repro.experiments.spec.ExperimentSpec`\\ s,
but measured against a :class:`TrendContext` (the snapshot sequence)
rather than an :class:`~repro.experiments.context.ExperimentContext`,
so they live in their own registry (:func:`trend_specs`) instead of
the per-epoch experiment registry.  Every expectation is an ``info``
band: the paper ran once in 2013 and has no trend numbers to score
against — the trends are recorded in ``series.json`` but never gate.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.evolution import Snapshot
from repro.experiments.spec import ExperimentSpec, Measurement, expect, info
from repro.obs import NOOP, Observability
from repro.report import TextTable, ascii_series, fmt_num, fmt_share


class TrendContext:
    """What a trend experiment measures: one series' snapshots.

    Duck-types the context attributes :meth:`ExperimentSpec.run`
    reads — ``obs``, ``scenario``, ``epoch`` — so trend specs run
    through the exact same spec machinery as the per-epoch experiments.
    """

    def __init__(
        self,
        snapshots: Sequence[Snapshot],
        num_domains: int,
        obs: Observability = NOOP,
    ):
        if not snapshots:
            raise ValueError("a trend needs at least one snapshot")
        self.snapshots = list(snapshots)
        #: Total crawled population, the denominator for cloud share
        #: (snapshots only count cloud-using domains).
        self.num_domains = num_domains
        self.obs = obs
        self.scenario = None
        self.epoch = None


def _epoch_label(snapshot: Snapshot) -> str:
    days = snapshot.virtual_time_s / 86400.0
    return f"{snapshot.epoch} (+{fmt_num(days)}d)"


def _cloud_share(context: TrendContext) -> Measurement:
    table = TextTable(
        ["Epoch", "Cloud domains", "Cloud subdomains", "Share of crawl %"],
        title="Cloud share over time",
    )
    shares: List[float] = []
    for snapshot in context.snapshots:
        share = snapshot.cloud_domains / max(context.num_domains, 1)
        shares.append(share)
        table.add_row([
            _epoch_label(snapshot),
            snapshot.cloud_domains,
            snapshot.cloud_subdomains,
            fmt_share(share),
        ])
    plot = ascii_series(
        [("cloud share", [100.0 * s for s in shares])], height=8
    )
    first, last = context.snapshots[0], context.snapshots[-1]
    measured = {
        "epochs": len(context.snapshots),
        "cloud_share_first_pct": 100.0 * shares[0],
        "cloud_share_last_pct": 100.0 * shares[-1],
        "cloud_domains_added": last.cloud_domains - first.cloud_domains,
    }
    return Measurement(
        rendered=table.render() + "\n\n" + plot, measured=measured
    )


def _provider_mix(context: TrendContext) -> Measurement:
    table = TextTable(
        ["Epoch", "EC2 %", "Azure %", "EC2 + Azure %"],
        title="Provider mix among cloud-using domains",
    )
    ec2: List[float] = []
    azure: List[float] = []
    dual: List[float] = []
    for snapshot in context.snapshots:
        total = max(snapshot.cloud_domains, 1)
        dual_count = snapshot.provider_domains.get("EC2 + Azure", 0)
        ec2.append(snapshot.ec2_share)
        azure.append(snapshot.azure_share)
        dual.append(dual_count / total)
        table.add_row([
            _epoch_label(snapshot),
            fmt_share(snapshot.ec2_share),
            fmt_share(snapshot.azure_share),
            fmt_share(dual_count / total),
        ])
    measured = {
        "ec2_share_first_pct": 100.0 * ec2[0],
        "ec2_share_last_pct": 100.0 * ec2[-1],
        "azure_share_last_pct": 100.0 * azure[-1],
        "dual_share_last_pct": 100.0 * dual[-1],
    }
    return Measurement(rendered=table.render(), measured=measured)


def _region_shares(snapshot: Snapshot) -> Tuple[float, float]:
    """(top-1, top-3) region shares of cloud subdomains."""
    counts = sorted(snapshot.region_subdomains.values(), reverse=True)
    total = sum(counts)
    if not total:
        return 0.0, 0.0
    return counts[0] / total, sum(counts[:3]) / total


def _consolidation(context: TrendContext) -> Measurement:
    table = TextTable(
        ["Epoch", "Top region %", "Top-3 regions %", "Multi-region %"],
        title="Consolidation curve (per Bhattacherjee et al.)",
    )
    top1: List[float] = []
    top3: List[float] = []
    for snapshot in context.snapshots:
        one, three = _region_shares(snapshot)
        top1.append(one)
        top3.append(three)
        table.add_row([
            _epoch_label(snapshot),
            fmt_share(one),
            fmt_share(three),
            fmt_share(snapshot.multi_region_fraction),
        ])
    first, last = context.snapshots[0], context.snapshots[-1]
    measured = {
        "top_region_share_first_pct": 100.0 * top1[0],
        "top_region_share_last_pct": 100.0 * top1[-1],
        "top3_region_share_last_pct": 100.0 * top3[-1],
        "multi_region_last_pct": 100.0 * last.multi_region_fraction,
        "multi_region_change_pct": 100.0 * (
            last.multi_region_fraction - first.multi_region_fraction
        ),
    }
    return Measurement(rendered=table.render(), measured=measured)


_TREND_SPECS: Tuple[ExperimentSpec, ...] = (
    ExperimentSpec(
        experiment_id="trend-cloud-share",
        title="Cloud share over time",
        headline="Trend: cloud-using share of the crawl per epoch",
        paper_section="§6 (outlook)",
        measure=_cloud_share,
        expectations=(
            expect("epochs", None, info()),
            expect("cloud_share_first_pct", None, info()),
            expect("cloud_share_last_pct", None, info()),
            expect("cloud_domains_added", None, info()),
        ),
    ),
    ExperimentSpec(
        experiment_id="trend-provider-mix",
        title="Provider mix over time",
        headline="Trend: EC2 / Azure / dual-provider mix per epoch",
        paper_section="§6 (outlook)",
        measure=_provider_mix,
        expectations=(
            expect("ec2_share_first_pct", None, info()),
            expect("ec2_share_last_pct", None, info()),
            expect("azure_share_last_pct", None, info()),
            expect("dual_share_last_pct", None, info()),
        ),
    ),
    ExperimentSpec(
        experiment_id="trend-consolidation",
        title="Consolidation curve",
        headline="Trend: regional consolidation of cloud subdomains",
        paper_section="§6 (outlook)",
        measure=_consolidation,
        expectations=(
            expect("top_region_share_first_pct", None, info()),
            expect("top_region_share_last_pct", None, info()),
            expect("top3_region_share_last_pct", None, info()),
            expect("multi_region_last_pct", None, info()),
            expect("multi_region_change_pct", None, info()),
        ),
    ),
)


def trend_specs() -> Tuple[ExperimentSpec, ...]:
    """The cross-epoch trend experiments, in render order."""
    return _TREND_SPECS


def run_trends(
    snapshots: Sequence[Snapshot],
    num_domains: int,
    obs: Observability = NOOP,
) -> List[Dict[str, object]]:
    """Run every trend spec over ``snapshots``; returns manifest rows."""
    context = TrendContext(snapshots, num_domains, obs=obs)
    rows: List[Dict[str, object]] = []
    for spec in trend_specs():
        result = spec.run(context)
        rows.append({
            "id": spec.experiment_id,
            "title": spec.headline,
            "measured": result.measured,
            "rendered": result.rendered,
        })
    return rows
