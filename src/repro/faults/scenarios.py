"""Outage scenario definitions.

A scenario is pure data: which (provider, region) pairs are fully
down, which (provider, region, zone) triples are down, which
value-added services are broken (the ELB control/data plane — the
2012 US-East outages the paper cites [4, 6] took out ELB while plain
VMs survived), and which downstream ISPs are unreachable.

Scenarios compose with ``|`` so drills can stack failures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Tuple

#: Value-added services an outage can take down while plain VMs survive.
KNOWN_SERVICES = frozenset({
    "elb", "heroku", "beanstalk", "cloudfront",
    "traffic-manager", "route53",
})


@dataclass(frozen=True)
class OutageScenario:
    """A set of simultaneous failures."""

    name: str
    #: (provider, region) pairs that are completely down.
    regions: FrozenSet[Tuple[str, str]] = frozenset()
    #: (provider, region, zone index) triples that are down.
    zones: FrozenSet[Tuple[str, str, int]] = frozenset()
    #: Failed value-added services: 'elb', 'heroku', 'beanstalk',
    #: 'cloudfront', 'traffic-manager', 'route53'.
    services: FrozenSet[str] = frozenset()
    #: Failed downstream ISPs, by AS number.
    isp_as_numbers: FrozenSet[int] = frozenset()

    def __or__(self, other: "OutageScenario") -> "OutageScenario":
        # The composed name is canonical — sorted, deduplicated "+"
        # components — so stacked drills report the same scenario_name
        # (and hit the same artifact-cache keys) regardless of
        # composition order or repetition.
        components = sorted(
            set(self.name.split("+")) | set(other.name.split("+"))
        )
        return OutageScenario(
            name="+".join(components),
            regions=self.regions | other.regions,
            zones=self.zones | other.zones,
            services=self.services | other.services,
            isp_as_numbers=self.isp_as_numbers | other.isp_as_numbers,
        )

    # -- queries -----------------------------------------------------------

    def region_down(self, provider: str, region: str) -> bool:
        return (provider, region) in self.regions

    def zone_down(self, provider: str, region: str, zone: int) -> bool:
        return (
            self.region_down(provider, region)
            or (provider, region, zone) in self.zones
        )

    def service_down(self, service: str) -> bool:
        return service in self.services

    def isp_down(self, as_number: int) -> bool:
        return as_number in self.isp_as_numbers


def region_outage(provider: str, region: str) -> OutageScenario:
    """The catastrophic case: a whole region offline."""
    return OutageScenario(
        name=f"{provider}.{region}-outage",
        regions=frozenset({(provider, region)}),
    )


def zone_outage(provider: str, region: str, zone: int) -> OutageScenario:
    """One availability zone offline (power/network domain failure)."""
    return OutageScenario(
        name=f"{provider}.{region}#{zone}-outage",
        zones=frozenset({(provider, region, zone)}),
    )


def service_outage(service: str) -> OutageScenario:
    """A value-added service failing while plain VMs survive.

    Models the EC2 events the paper cites: deployments that only used
    VMs were unaffected, while everything behind ELB went down.
    """
    if service not in KNOWN_SERVICES:
        raise ValueError(
            f"unknown service {service!r}; known: {set(KNOWN_SERVICES)}"
        )
    return OutageScenario(
        name=f"{service}-outage", services=frozenset({service})
    )


def isp_outage(*as_numbers: int) -> OutageScenario:
    """Downstream ISP(s) failing (the §5.2 routing-failure case)."""
    return OutageScenario(
        name=f"isp-outage-{'-'.join(map(str, as_numbers))}",
        isp_as_numbers=frozenset(as_numbers),
    )
