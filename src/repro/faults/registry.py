"""Named outage drills: resolve scenario names back into scenarios.

Every scenario factory in :mod:`repro.faults.scenarios` produces a
canonical ``name``; this module inverts that mapping so a drill can be
requested end-to-end by name — the CLI's ``--scenario`` flag, config
files, cached-artifact keys.  The grammar is exactly the factories'
naming scheme:

* ``<provider>.<region>-outage``            → :func:`region_outage`
* ``<provider>.<region>#<zone>-outage``     → :func:`zone_outage`
* ``<service>-outage``                      → :func:`service_outage`
* ``isp-outage-<AS>[-<AS>...]``             → :func:`isp_outage`
* ``<name>+<name>[+...]``                   → composition with ``|``

Composed names are canonicalized by ``OutageScenario.__or__`` (sorted,
deduplicated components), so ``resolve_scenario(s.name).name == s.name``
holds for any scenario built from the factories.
"""

from __future__ import annotations

import re
from typing import Dict, List

from repro.cloud.azure import AZURE_REGION_SPECS
from repro.cloud.ec2 import EC2_REGION_SPECS, ec2_region_names
from repro.faults.scenarios import (
    KNOWN_SERVICES,
    OutageScenario,
    isp_outage,
    region_outage,
    service_outage,
    zone_outage,
)

_ZONE_PATTERN = re.compile(
    r"^(?P<provider>ec2|azure)\.(?P<region>[a-z0-9-]+)"
    r"#(?P<zone>\d+)-outage$"
)
_REGION_PATTERN = re.compile(
    r"^(?P<provider>ec2|azure)\.(?P<region>[a-z0-9-]+)-outage$"
)
_ISP_PATTERN = re.compile(r"^isp-outage-(?P<numbers>\d+(-\d+)*)$")


def _known_regions() -> Dict[str, List[str]]:
    return {
        "ec2": ec2_region_names(),
        "azure": [spec.name for spec in AZURE_REGION_SPECS],
    }


def _check_region(provider: str, region: str, name: str) -> None:
    known = _known_regions()[provider]
    if region not in known:
        raise ValueError(
            f"unknown {provider} region {region!r} in scenario "
            f"{name!r}; known: {', '.join(known)}"
        )


def _resolve_component(name: str) -> OutageScenario:
    match = _ZONE_PATTERN.match(name)
    if match:
        _check_region(match["provider"], match["region"], name)
        return zone_outage(
            match["provider"], match["region"], int(match["zone"])
        )
    match = _REGION_PATTERN.match(name)
    if match:
        _check_region(match["provider"], match["region"], name)
        return region_outage(match["provider"], match["region"])
    match = _ISP_PATTERN.match(name)
    if match:
        return isp_outage(
            *(int(part) for part in match["numbers"].split("-"))
        )
    service = name.removesuffix("-outage")
    if name.endswith("-outage") and service in KNOWN_SERVICES:
        return service_outage(service)
    raise ValueError(
        f"unresolvable scenario component {name!r}; expected one of "
        f"<provider>.<region>-outage, <provider>.<region>#<zone>-outage, "
        f"<service>-outage (services: {', '.join(sorted(KNOWN_SERVICES))}), "
        f"or isp-outage-<AS>[-<AS>...]"
    )


def resolve_scenario(name: str) -> OutageScenario:
    """The scenario a (possibly composed) drill name denotes."""
    components = [part for part in name.split("+") if part]
    if not components:
        raise ValueError("empty scenario name")
    scenario = _resolve_component(components[0])
    for part in components[1:]:
        scenario = scenario | _resolve_component(part)
    return scenario


def named_scenarios() -> Dict[str, OutageScenario]:
    """The canonical single-failure drills, for listings and docs.

    Every EC2/Azure region outage, the first-zone outage of each EC2
    region (the paper's §4.3 "us-east-1a" style drill), and each
    value-added service failure.  Composed and ISP drills are spelled
    directly in the name grammar instead of being enumerated here.
    """
    drills: Dict[str, OutageScenario] = {}
    for provider, regions in _known_regions().items():
        for region in regions:
            scenario = region_outage(provider, region)
            drills[scenario.name] = scenario
    for spec in EC2_REGION_SPECS:
        scenario = zone_outage("ec2", spec.name, 0)
        drills[scenario.name] = scenario
    for service in sorted(KNOWN_SERVICES):
        scenario = service_outage(service)
        drills[scenario.name] = scenario
    return drills
