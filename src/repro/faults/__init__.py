"""Fault injection: outage scenarios over the simulated infrastructure.

The paper's availability findings are hypotheticals — "a failure of
ec2.us-east-1a would impact ~419K subdomains" — derived from the
measured deployment postures.  This package makes the hypotheticals
executable: an :class:`OutageScenario` marks parts of the
infrastructure failed (a region, an availability zone, a value-added
service like ELB, or a downstream ISP), and the availability analysis
in :mod:`repro.analysis.availability` evaluates, from the *measured*
dataset, which web services go dark, which degrade, and which ride it
out.
"""

from repro.faults.scenarios import (
    KNOWN_SERVICES,
    OutageScenario,
    region_outage,
    zone_outage,
    service_outage,
    isp_outage,
)
from repro.faults.registry import named_scenarios, resolve_scenario

__all__ = [
    "KNOWN_SERVICES",
    "OutageScenario",
    "named_scenarios",
    "region_outage",
    "resolve_scenario",
    "zone_outage",
    "service_outage",
    "isp_outage",
]
