"""Common cloud-provider model: regions, zones, accounts, instances."""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.net.geo import GeoPoint
from repro.net.ipv4 import IPv4Address, IPv4Network
from repro.net.prefixset import PrefixSet


class InstanceType(enum.Enum):
    """EC2 instance types used in the paper's cartography experiments.

    ``rtt_jitter_ms`` is the extra per-probe RTT noise scale the type
    contributes (smaller instances share hosts more heavily and jitter
    more) — visible in Table 11's spread across types.
    """

    T1_MICRO = ("t1.micro", 0.10)
    M1_SMALL = ("m1.small", 0.07)
    M1_MEDIUM = ("m1.medium", 0.05)
    M1_XLARGE = ("m1.xlarge", 0.03)
    M3_2XLARGE = ("m3.2xlarge", 0.03)

    def __init__(self, label: str, rtt_jitter_ms: float):
        self.label = label
        self.rtt_jitter_ms = rtt_jitter_ms

    @classmethod
    def from_label(cls, label: str) -> "InstanceType":
        for itype in cls:
            if itype.label == label:
                return itype
        raise ValueError(f"unknown instance type: {label}")


class InstanceRole(enum.Enum):
    """What a launched instance is for (affects nothing but bookkeeping)."""

    WEB = "web"
    ELB_PROXY = "elb-proxy"
    PAAS_NODE = "paas-node"
    NAME_SERVER = "name-server"
    PROBE = "probe"
    CDN_EDGE = "cdn-edge"


@dataclass(frozen=True)
class AvailabilityZone:
    """One availability zone: separate power/network within a region.

    ``index`` is the *physical* zone index; customer-visible labels
    ('a', 'b', ...) are permuted per account, as EC2 really does — the
    complication the proximity cartography method must undo.
    """

    provider_name: str
    region_name: str
    index: int

    @property
    def qualified_name(self) -> str:
        return f"{self.region_name}#{self.index}"


@dataclass
class Region:
    """A geographically distinct data center with one or more zones."""

    provider_name: str
    name: str
    location: GeoPoint
    zones: List[AvailabilityZone] = field(default_factory=list)

    @property
    def num_zones(self) -> int:
        return len(self.zones)

    def zone(self, index: int) -> AvailabilityZone:
        return self.zones[index]


@dataclass(frozen=True)
class Account:
    """A tenant account.

    ``zone_permutation`` maps the account's zone-label position to the
    physical zone index, per region: label 'a' in region r is physical
    zone ``zone_permutation[r][0]``.
    """

    account_id: str
    zone_permutation: Dict[str, tuple] = field(default_factory=dict, hash=False)

    def physical_zone_index(self, region_name: str, label_pos: int) -> int:
        perm = self.zone_permutation.get(region_name)
        if perm is None:
            return label_pos
        return perm[label_pos % len(perm)]


@dataclass(slots=True)
class Instance:
    """A running VM (or VM-like unit: ELB proxy, PaaS node, CDN edge)."""

    instance_id: str
    provider_name: str
    region_name: str
    zone_index: int
    itype: InstanceType
    role: InstanceRole
    internal_ip: IPv4Address
    public_ip: Optional[IPv4Address]
    account_id: str

    def __str__(self) -> str:
        return (
            f"{self.instance_id} ({self.itype.label}, "
            f"{self.region_name}#{self.zone_index}, {self.public_ip})"
        )


class CloudProvider:
    """Base class for EC2 and Azure.

    Owns the region table, the address plan, the instance registry, and
    the mapping from public to internal IPs (the cloud-internal DNS view
    used by cartography probes).
    """

    name: str = "cloud"

    def __init__(self) -> None:
        self.regions: Dict[str, Region] = {}
        self.instances: Dict[str, Instance] = {}
        self._instances_by_public_ip: Dict[IPv4Address, Instance] = {}
        self._instances_by_internal: Dict[tuple, Instance] = {}
        self._id_counter = itertools.count(1)

    # -- regions -------------------------------------------------------

    def add_region(self, region: Region) -> Region:
        self.regions[region.name] = region
        return region

    def region(self, name: str) -> Region:
        try:
            return self.regions[name]
        except KeyError:
            raise KeyError(
                f"{self.name} has no region {name!r}; "
                f"known: {sorted(self.regions)}"
            ) from None

    def region_names(self) -> List[str]:
        return list(self.regions)

    # -- published ranges (implemented by subclasses) -------------------

    def published_ranges(self) -> List[IPv4Network]:
        """The public IP ranges this provider publishes, as EC2 and
        Azure did on their forums/download pages."""
        raise NotImplementedError

    def published_range_set(self) -> PrefixSet:
        raise NotImplementedError

    # -- instance registry ----------------------------------------------

    def _next_instance_id(self, prefix: str) -> str:
        return f"{prefix}-{next(self._id_counter):08x}"

    def _register_instance(self, instance: Instance) -> Instance:
        self.instances[instance.instance_id] = instance
        if instance.public_ip is not None:
            self._instances_by_public_ip[instance.public_ip] = instance
        self._instances_by_internal[
            (instance.region_name, instance.internal_ip)
        ] = instance
        return instance

    def instance_by_public_ip(self, public_ip: IPv4Address) -> Optional[Instance]:
        return self._instances_by_public_ip.get(public_ip)

    def instance_by_internal_ip(
        self, region_name: str, internal_ip: IPv4Address
    ) -> Optional[Instance]:
        return self._instances_by_internal.get((region_name, internal_ip))

    def internal_ip_of(self, public_ip: IPv4Address) -> Optional[IPv4Address]:
        """Public→internal mapping, as resolved by the cloud's internal
        DNS from inside the region (used by cartography probes)."""
        instance = self._instances_by_public_ip.get(public_ip)
        return instance.internal_ip if instance else None

    def all_instances(self) -> List[Instance]:
        return list(self.instances.values())
