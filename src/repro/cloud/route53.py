"""Route53-style managed DNS hosting.

The paper found 2,062 of the name servers behind cloud-using subdomains
hosted in CloudFront's address range, most with ``route53`` in their
hostnames — Amazon serves Route53 from the CloudFront infrastructure.
We reproduce exactly that fingerprint: delegations hand out
``ns-*.route53-*.awsdns.com`` hostnames whose addresses come from the
CloudFront plan.
"""

from __future__ import annotations

import itertools
from typing import List

from repro.cloud.cdn import CloudFront
from repro.dns.infrastructure import DnsInfrastructure, NameServer
from repro.dns.records import RRType, ResourceRecord
from repro.dns.zone import Zone


class Route53:
    """Managed DNS: allocates name-server sets for tenant zones."""

    def __init__(self, cloudfront: CloudFront, dns: DnsInfrastructure):
        self.cloudfront = cloudfront
        self.dns = dns
        self.rng = cloudfront.rng
        self.zone = Zone("awsdns.com", axfr_allowed=False)
        dns.add_zone(self.zone)
        self._ns_counter = itertools.count(1)
        self.nameservers: List[NameServer] = []

    def _new_nameserver(self) -> NameServer:
        n = next(self._ns_counter)
        hostname = f"ns-{n}.route53-{(n % 50):02d}.awsdns.com"
        site = self.rng.choice(self.cloudfront.edges)
        address = self.cloudfront.plan.allocate_public_ip(
            site.name, self.rng
        )
        self.zone.add(ResourceRecord(hostname, RRType.A, address, ttl=3600))
        server = NameServer(hostname=hostname, address=address)
        self.dns.register_nameserver(server)
        self.nameservers.append(server)
        return server

    def create_delegation(self, count: int = 4) -> List[NameServer]:
        """A fresh set of ``count`` name servers for one hosted zone.

        Route53 reuses its server fleet across zones; with moderate
        probability we hand back servers already serving other zones.
        """
        servers: List[NameServer] = []
        seen = set()
        while len(servers) < count:
            if self.nameservers and self.rng.random() < 0.35:
                candidate = self.rng.choice(self.nameservers)
                if candidate.hostname in seen:
                    candidate = self._new_nameserver()
            else:
                candidate = self._new_nameserver()
            seen.add(candidate.hostname)
            servers.append(candidate)
        return servers
