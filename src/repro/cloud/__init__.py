"""Cloud provider substrate: EC2 and Azure as the paper observed them.

Implements, from scratch, every provider-side feature whose externally
visible behaviour the paper measures:

* regions and availability zones with per-zone internal address blocks
  and per-account zone-label permutations (EC2);
* VM instances with internal + public IPv4 addresses;
* Elastic Load Balancers (logical CNAMEs, shared physical proxies,
  rotating DNS answers);
* PaaS platforms: Elastic Beanstalk (always fronted by an ELB) and
  Heroku (a shared proxy fleet multiplexing many apps over few IPs);
* CloudFront (separate address range) and the Azure CDN (shared ranges,
  ``msecnd.net`` CNAMEs);
* Route53-style DNS hosting;
* Azure Cloud Services behind transparent proxies and Traffic Manager's
  DNS-level load balancing;
* published public IP range lists, the ground truth for the paper's
  cloud-usage classification.
"""

from repro.cloud.base import (
    Account,
    AvailabilityZone,
    CloudProvider,
    Instance,
    InstanceRole,
    InstanceType,
    Region,
)
from repro.cloud.addressing import AddressPlan, ZoneInternalAllocator
from repro.cloud.ec2 import EC2Cloud, EC2_REGION_SPECS
from repro.cloud.elb import ElasticLoadBalancer, ELBFleet
from repro.cloud.paas import BeanstalkPlatform, HerokuPlatform
from repro.cloud.cdn import CloudFront, AzureCDN
from repro.cloud.route53 import Route53
from repro.cloud.azure import (
    AzureCloud,
    AZURE_REGION_SPECS,
    CloudService,
    TrafficManager,
)

__all__ = [
    "Account",
    "AvailabilityZone",
    "CloudProvider",
    "Instance",
    "InstanceRole",
    "InstanceType",
    "Region",
    "AddressPlan",
    "ZoneInternalAllocator",
    "EC2Cloud",
    "EC2_REGION_SPECS",
    "ElasticLoadBalancer",
    "ELBFleet",
    "BeanstalkPlatform",
    "HerokuPlatform",
    "CloudFront",
    "AzureCDN",
    "Route53",
    "AzureCloud",
    "AZURE_REGION_SPECS",
    "CloudService",
    "TrafficManager",
]
