"""Amazon EC2 as of the paper's measurement window (spring 2013).

Eight regions; us-east-1 dominant.  The model covers what the paper's
methodology can observe from outside plus what its cartography probes
observe from inside: published public ranges per region, per-zone
internal /16 banding, per-account zone-label permutations, and the
public→internal DNS mapping available to in-region instances.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.cloud.addressing import AddressPlan, ZoneInternalAllocator
from repro.cloud.base import (
    Account,
    AvailabilityZone,
    CloudProvider,
    Instance,
    InstanceRole,
    InstanceType,
    Region,
)
from repro.dns.infrastructure import DnsInfrastructure
from repro.net.geo import GeoPoint
from repro.net.ipv4 import IPv4Address, IPv4Network
from repro.net.prefixset import PrefixSet
from repro.sim import StreamRegistry


@dataclass(frozen=True)
class RegionSpec:
    """Static facts about one region."""

    name: str
    location_name: str
    location: GeoPoint
    num_zones: int


#: The eight EC2 regions of early 2013 (Table 9), with the zone counts
#: the paper could launch probes into (Tables 12/14/16).
EC2_REGION_SPECS: Tuple[RegionSpec, ...] = (
    RegionSpec("us-east-1", "Virginia, USA", GeoPoint(38.95, -77.45), 3),
    RegionSpec("us-west-1", "N. California, USA", GeoPoint(37.36, -121.93), 2),
    RegionSpec("us-west-2", "Oregon, USA", GeoPoint(45.84, -119.29), 3),
    RegionSpec("eu-west-1", "Ireland", GeoPoint(53.34, -6.27), 3),
    RegionSpec("ap-southeast-1", "Singapore", GeoPoint(1.35, 103.82), 2),
    RegionSpec("ap-northeast-1", "Tokyo, Japan", GeoPoint(35.68, 139.69), 2),
    RegionSpec("sa-east-1", "São Paulo, Brazil", GeoPoint(-23.55, -46.63), 2),
    RegionSpec("ap-southeast-2", "Sydney, Australia", GeoPoint(-33.87, 151.21), 2),
)

def ec2_region_names() -> List[str]:
    """Region names in launch order, from the static specs alone.

    Equal to ``EC2Cloud.region_names()`` on any built world; callers
    that only need the region list (e.g. a WAN analysis revived from
    cached measurement matrices) use this to avoid building a cloud.
    """
    return [spec.name for spec in EC2_REGION_SPECS]


#: Synthetic stand-ins for the forum-published EC2 public ranges [12].
_EC2_SUPERNETS = ("54.192.0.0/11", "50.16.0.0/14", "107.20.0.0/14")

#: Base intra-region RTT structure (ms): same zone vs zone distance,
#: calibrated to Table 11 (a↔a ~0.5, a↔c ~1.5, a↔d ~1.9).
SAME_ZONE_RTT_MS = 0.5
CROSS_ZONE_BASE_MS = 1.1
CROSS_ZONE_STEP_MS = 0.4


def intra_region_rtt_ms(zone_a: int, zone_b: int) -> float:
    """Deterministic base RTT between two zones of one region."""
    if zone_a == zone_b:
        return SAME_ZONE_RTT_MS
    return CROSS_ZONE_BASE_MS + CROSS_ZONE_STEP_MS * abs(zone_a - zone_b)


class EC2Cloud(CloudProvider):
    """EC2: regions, zones, accounts, instances, and service platforms.

    The value-added services (ELB, Beanstalk, Heroku, CloudFront,
    Route53) are attached by :class:`repro.world.World` after
    construction so each lives in its own module; this class provides
    the raw substrate they build on.
    """

    name = "ec2"

    def __init__(self, streams: StreamRegistry, dns: DnsInfrastructure):
        super().__init__()
        self.streams = streams
        self.dns = dns
        self.plan = AddressPlan(
            provider_name=self.name,
            supernets=[IPv4Network.parse(s) for s in _EC2_SUPERNETS],
            per_region_slash16s=5,
        )
        self._allocators: Dict[str, ZoneInternalAllocator] = {}
        self._accounts: Dict[str, Account] = {}
        self._launch_rng = streams.stream("ec2", "launch")
        self._account_rng = streams.stream("ec2", "accounts")
        for spec in EC2_REGION_SPECS:
            region = Region(
                provider_name=self.name,
                name=spec.name,
                location=spec.location,
                zones=[
                    AvailabilityZone(self.name, spec.name, z)
                    for z in range(spec.num_zones)
                ],
            )
            self.add_region(region)
            self.plan.assign_region(spec.name)
            self._allocators[spec.name] = ZoneInternalAllocator(
                region_name=spec.name, num_zones=spec.num_zones
            )
        self._specs = {spec.name: spec for spec in EC2_REGION_SPECS}

    # -- published ranges ------------------------------------------------

    def published_ranges(self) -> List[IPv4Network]:
        return [net for net, _ in self.plan.published_ranges()]

    def published_range_set(self) -> PrefixSet:
        return self.plan.prefix_set()

    def region_of_ip(self, addr: IPv4Address) -> Optional[str]:
        """Region name for a public EC2 address, from published ranges."""
        return self.plan.prefix_set().lookup(addr)

    def spec(self, region_name: str) -> RegionSpec:
        return self._specs[region_name]

    # -- accounts ----------------------------------------------------------

    def create_account(self, account_id: str) -> Account:
        """Create a tenant account with random per-region zone labels."""
        if account_id in self._accounts:
            return self._accounts[account_id]
        permutation: Dict[str, tuple] = {}
        for region in self.regions.values():
            indices = list(range(region.num_zones))
            self._account_rng.shuffle(indices)
            permutation[region.name] = tuple(indices)
        account = Account(account_id=account_id, zone_permutation=permutation)
        self._accounts[account_id] = account
        return account

    def account(self, account_id: str) -> Account:
        return self._accounts[account_id]

    # -- instances ---------------------------------------------------------

    def allocator(self, region_name: str) -> ZoneInternalAllocator:
        return self._allocators[region_name]

    def launch_instance(
        self,
        account_id: str,
        region_name: str,
        zone_label_pos: Optional[int] = None,
        physical_zone: Optional[int] = None,
        itype: InstanceType = InstanceType.M1_MEDIUM,
        role: InstanceRole = InstanceRole.WEB,
        public: bool = True,
        rng: Optional[random.Random] = None,
    ) -> Instance:
        """Launch a VM.

        Callers either pass ``zone_label_pos`` (the account-relative
        zone label position, what a real tenant specifies) or
        ``physical_zone`` (used by internal services like the ELB fleet
        that place proxies directly).  Omitting both picks a physical
        zone uniformly at random.
        """
        rng = rng or self._launch_rng
        region = self.region(region_name)
        account = self.create_account(account_id)
        if physical_zone is None:
            if zone_label_pos is None:
                physical_zone = rng.randrange(region.num_zones)
            else:
                physical_zone = account.physical_zone_index(
                    region_name, zone_label_pos
                )
        if not 0 <= physical_zone < region.num_zones:
            raise ValueError(
                f"zone {physical_zone} out of range for {region_name}"
            )
        internal_ip = self._allocators[region_name].allocate(
            physical_zone, rng
        )
        public_ip = (
            self.plan.allocate_public_ip(region_name, rng) if public else None
        )
        instance = Instance(
            instance_id=self._next_instance_id("i"),
            provider_name=self.name,
            region_name=region_name,
            zone_index=physical_zone,
            itype=itype,
            role=role,
            internal_ip=internal_ip,
            public_ip=public_ip,
            account_id=account.account_id,
        )
        return self._register_instance(instance)

    def zone_of_instance_ip(self, public_ip: IPv4Address) -> Optional[int]:
        """Ground-truth zone of a public address (scoring only)."""
        instance = self.instance_by_public_ip(public_ip)
        return instance.zone_index if instance else None
