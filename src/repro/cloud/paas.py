"""Platform-as-a-service atop EC2: Elastic Beanstalk and Heroku.

Beanstalk environments are always fronted by an ELB (pattern P2 with
PaaS nodes).  Heroku multiplexes a large number of apps over a small
shared proxy/routing fleet — the paper found 58K Heroku subdomains
behind just 94 unique IPs, with a third of them sharing the literal
CNAME ``proxy.heroku.com`` — and only occasionally fronts an app with
an ELB.
"""

from __future__ import annotations

import itertools
from typing import List, Optional, Sequence

from repro.cloud.base import Instance, InstanceRole, InstanceType
from repro.cloud.ec2 import EC2Cloud
from repro.cloud.elb import ELBFleet
from repro.dns.records import RRType, ResourceRecord
from repro.dns.zone import DynamicName, Zone

_BEANSTALK_ACCOUNT = "amazon-beanstalk"
_HEROKU_ACCOUNT = "heroku-platform"
_HEROKU_HOME_REGION = "us-east-1"
#: Size of Heroku's shared routing fleet (the paper observed 94 IPs).
HEROKU_FLEET_SIZE = 94
#: Fraction of non-ELB Heroku apps that resolve via the single shared
#: ``proxy.heroku.com`` CNAME.
HEROKU_SHARED_PROXY_FRACTION = 1.0 / 3.0


class BeanstalkPlatform:
    """AWS Elastic Beanstalk: managed environments behind ELBs."""

    def __init__(self, ec2: EC2Cloud, elb_fleet: ELBFleet):
        self.ec2 = ec2
        self.elb_fleet = elb_fleet
        self.rng = ec2.streams.stream("ec2", "beanstalk")
        self.zone = Zone("elasticbeanstalk.com", axfr_allowed=False)
        ec2.dns.add_zone(self.zone)
        self._env_counter = itertools.count(1)
        self.environments: List[dict] = []

    def create_environment(
        self,
        region_name: str,
        zone_indices: Sequence[int],
        name: Optional[str] = None,
    ) -> str:
        """Create an environment; returns its public CNAME.

        The environment CNAME chains to a fresh ELB whose workers are
        PaaS nodes in the requested zones.
        """
        name = name or f"env-{next(self._env_counter):06d}"
        nodes = [
            self.ec2.launch_instance(
                account_id=_BEANSTALK_ACCOUNT,
                region_name=region_name,
                physical_zone=zone,
                itype=InstanceType.M1_SMALL,
                role=InstanceRole.PAAS_NODE,
                public=False,
                rng=self.rng,
            )
            for zone in zone_indices
        ]
        elb = self.elb_fleet.create_load_balancer(
            region_name=region_name,
            zone_indices=list(zone_indices),
            workers=nodes,
        )
        cname = f"{name}.{region_name}.elasticbeanstalk.com"
        self.zone.add(ResourceRecord(cname, RRType.CNAME, elb.cname, ttl=300))
        self.environments.append(
            {"name": name, "cname": cname, "elb": elb, "nodes": nodes}
        )
        return cname


class HerokuPlatform:
    """Heroku: many apps multiplexed over a small shared proxy fleet."""

    def __init__(
        self,
        ec2: EC2Cloud,
        elb_fleet: ELBFleet,
        fleet_size: int = HEROKU_FLEET_SIZE,
    ):
        self.ec2 = ec2
        self.elb_fleet = elb_fleet
        self.rng = ec2.streams.stream("ec2", "heroku")
        self.zone = Zone("herokuapp.com", axfr_allowed=False)
        self.core_zone = Zone("heroku.com", axfr_allowed=False)
        # TLS-terminating apps historically got *.herokussl.com names
        # (one of the four CNAME fragments the paper's filter matches).
        self.ssl_zone = Zone("herokussl.com", axfr_allowed=False)
        ec2.dns.add_zone(self.zone)
        ec2.dns.add_zone(self.core_zone)
        ec2.dns.add_zone(self.ssl_zone)
        self._app_counter = itertools.count(1)
        self.apps: List[dict] = []
        # The shared routing fleet, all in Heroku's home region.
        home = ec2.region(_HEROKU_HOME_REGION)
        self.fleet: List[Instance] = [
            ec2.launch_instance(
                account_id=_HEROKU_ACCOUNT,
                region_name=_HEROKU_HOME_REGION,
                physical_zone=i % home.num_zones,
                itype=InstanceType.M1_XLARGE,
                role=InstanceRole.PAAS_NODE,
                rng=self.rng,
            )
            for i in range(fleet_size)
        ]
        # proxy.heroku.com rotates through a slice of the fleet.
        shared_slice = self.fleet[: max(4, fleet_size // 16)]

        def shared_answer(name, rtype, vantage, query_index):
            if rtype not in (RRType.A, RRType.CNAME):
                return []
            shift = query_index % len(shared_slice)
            rotated = shared_slice[shift:] + shared_slice[:shift]
            return [
                ResourceRecord(name, RRType.A, inst.public_ip, ttl=60)
                for inst in rotated[:3]
            ]

        self.core_zone.add_dynamic(
            DynamicName("proxy.heroku.com", shared_answer)
        )

    def create_app(
        self, name: Optional[str] = None, use_elb: bool = False
    ) -> str:
        """Create an app; returns its ``herokuapp.com`` CNAME target.

        With ``use_elb`` the app is fronted by an ELB whose workers are
        fleet nodes; otherwise the app either shares
        ``proxy.heroku.com`` or maps to a static subset of fleet IPs.
        """
        name = name or f"app-{next(self._app_counter):06d}"
        app_zone = (
            self.ssl_zone if self.rng.random() < 0.10 else self.zone
        )
        cname = f"{name}.{app_zone.origin}"
        record: dict = {"name": name, "cname": cname, "use_elb": use_elb}
        if use_elb:
            workers = self.rng.sample(self.fleet, k=2)
            elb = self.elb_fleet.create_load_balancer(
                region_name=_HEROKU_HOME_REGION,
                zone_indices=sorted({w.zone_index for w in workers}),
                workers=workers,
            )
            app_zone.add(
                ResourceRecord(cname, RRType.CNAME, elb.cname, ttl=300)
            )
            record["elb"] = elb
        elif self.rng.random() < HEROKU_SHARED_PROXY_FRACTION:
            app_zone.add(
                ResourceRecord(
                    cname, RRType.CNAME, "proxy.heroku.com", ttl=300
                )
            )
            record["shared_proxy"] = True
        else:
            nodes = self.rng.sample(self.fleet, k=self.rng.randint(2, 3))
            for node in nodes:
                app_zone.add(
                    ResourceRecord(cname, RRType.A, node.public_ip, ttl=60)
                )
            record["nodes"] = nodes
        self.apps.append(record)
        return cname
