"""Content-distribution networks: Amazon CloudFront and the Azure CDN.

The detection asymmetry the paper exploits is modelled faithfully:
CloudFront answers from its *own* published address range (so CloudFront
use is detected by IP), while the Azure CDN shares Azure's ranges and is
only detectable through its ``msecnd.net`` CNAMEs.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.cloud.addressing import AddressPlan
from repro.dns.infrastructure import DnsInfrastructure
from repro.dns.records import RRType, ResourceRecord
from repro.dns.zone import DynamicName, Zone
from repro.net.geo import GeoPoint, haversine_km
from repro.net.ipv4 import IPv4Address, IPv4Network
from repro.net.prefixset import PrefixSet
from repro.sim import StreamRegistry

#: CloudFront's published ranges are disjoint from the rest of EC2.
_CLOUDFRONT_SUPERNETS = ("216.136.0.0/13", "204.240.0.0/13")

#: Edge locations (a subset of CloudFront's 2013 POPs).
_EDGE_SITES: Tuple[Tuple[str, GeoPoint], ...] = (
    ("ashburn", GeoPoint(39.04, -77.49)),
    ("dallas", GeoPoint(32.78, -96.80)),
    ("palo-alto", GeoPoint(37.44, -122.14)),
    ("london", GeoPoint(51.51, -0.13)),
    ("frankfurt", GeoPoint(50.11, 8.68)),
    ("tokyo", GeoPoint(35.68, 139.69)),
    ("singapore", GeoPoint(1.35, 103.82)),
    ("sao-paulo", GeoPoint(-23.55, -46.63)),
    ("sydney", GeoPoint(-33.87, 151.21)),
)

_IPS_PER_EDGE = 8


@dataclass
class EdgeSite:
    """One CDN point of presence."""

    name: str
    location: GeoPoint
    addresses: List[IPv4Address] = field(default_factory=list)


class CloudFront:
    """Amazon's CDN: geo-routed DNS answers from a dedicated IP range."""

    def __init__(self, streams: StreamRegistry, dns: DnsInfrastructure):
        self.dns = dns
        self.rng = streams.stream("cloudfront")
        self.plan = AddressPlan(
            provider_name="cloudfront",
            supernets=[IPv4Network.parse(s) for s in _CLOUDFRONT_SUPERNETS],
            per_region_slash16s=1,
        )
        self.zone = Zone("cloudfront.net", axfr_allowed=False)
        dns.add_zone(self.zone)
        self.edges: List[EdgeSite] = []
        for site_name, location in _EDGE_SITES:
            self.plan.assign_region(site_name)
            edge = EdgeSite(name=site_name, location=location)
            for _ in range(_IPS_PER_EDGE):
                edge.addresses.append(
                    self.plan.allocate_public_ip(site_name, self.rng)
                )
            self.edges.append(edge)
        self._dist_counter = itertools.count(1)
        self.distributions: List[str] = []

    def published_range_set(self) -> PrefixSet:
        return PrefixSet(self.published_ranges())

    def published_ranges(self) -> List[IPv4Network]:
        return [net for net, _ in self.plan.published_ranges()]

    def nearest_edge(self, location: Optional[GeoPoint]) -> EdgeSite:
        if location is None:
            return self.edges[0]
        return min(
            self.edges, key=lambda e: haversine_km(e.location, location)
        )

    def create_distribution(self, name: Optional[str] = None) -> str:
        """Create a distribution; returns its ``cloudfront.net`` CNAME."""
        dist_id = name or f"d{next(self._dist_counter):012x}"
        cname = f"{dist_id}.cloudfront.net"

        def answer(qname, rtype, vantage, query_index):
            if rtype not in (RRType.A, RRType.CNAME):
                return []
            location = getattr(vantage, "location", None)
            edge = self.nearest_edge(location)
            shift = query_index % len(edge.addresses)
            rotated = edge.addresses[shift:] + edge.addresses[:shift]
            return [
                ResourceRecord(qname, RRType.A, ip, ttl=60)
                for ip in rotated[:2]
            ]

        self.zone.add_dynamic(DynamicName(cname, answer))
        self.distributions.append(cname)
        return cname


class AzureCDN:
    """Azure's CDN: ``msecnd.net`` CNAMEs over ordinary Azure ranges."""

    def __init__(self, azure_cloud) -> None:
        self.azure = azure_cloud
        self.rng = azure_cloud.streams.stream("azure", "cdn")
        self.zone = Zone("msecnd.net", axfr_allowed=False)
        azure_cloud.dns.add_zone(self.zone)
        self._endpoint_counter = itertools.count(1)
        self.endpoints: List[str] = []

    def create_endpoint(self, name: Optional[str] = None) -> str:
        """Create a CDN endpoint; returns its ``msecnd.net`` CNAME.

        Endpoint addresses come from several Azure regions (the CDN
        rides the same ranges as everything else in Azure).
        """
        endpoint = name or f"az{next(self._endpoint_counter):06d}"
        cname = f"{endpoint}.vo.msecnd.net"
        region_names = self.rng.sample(
            self.azure.region_names(), k=min(3, len(self.azure.regions))
        )
        addresses = [
            self.azure.plan.allocate_public_ip(region_name, self.rng)
            for region_name in region_names
        ]

        def answer(qname, rtype, vantage, query_index):
            if rtype not in (RRType.A, RRType.CNAME):
                return []
            shift = query_index % len(addresses)
            rotated = addresses[shift:] + addresses[:shift]
            return [
                ResourceRecord(qname, RRType.A, ip, ttl=60)
                for ip in rotated[:2]
            ]

        self.zone.add_dynamic(DynamicName(cname, answer))
        self.endpoints.append(cname)
        return cname
