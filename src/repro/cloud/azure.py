"""Windows Azure as of the paper's measurement window.

Azure differs from EC2 in exactly the ways the paper's heuristics have
to care about: a client cannot distinguish VM, PaaS, or load-balancer
front ends (all are "Cloud Services" behind a transparent proxy with a
``cloudapp.net`` name and one public IP), there are no availability
zones, and Traffic Manager does all its load balancing in DNS —
``trafficmanager.net`` CNAMEs resolve to a specific Cloud Service's
CNAME rather than to proxy addresses.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cloud.addressing import AddressPlan, ZoneInternalAllocator
from repro.cloud.base import (
    AvailabilityZone,
    CloudProvider,
    Instance,
    InstanceRole,
    InstanceType,
    Region,
)
from repro.cloud.ec2 import RegionSpec
from repro.dns.infrastructure import DnsInfrastructure
from repro.dns.records import RRType, ResourceRecord
from repro.dns.zone import DynamicName, Zone
from repro.net.geo import GeoPoint, haversine_km
from repro.net.ipv4 import IPv4Address, IPv4Network
from repro.net.prefixset import PrefixSet
from repro.sim import StreamRegistry

#: The eight Azure regions of early 2013 (Table 9).
AZURE_REGION_SPECS: Tuple[RegionSpec, ...] = (
    RegionSpec("us-east", "Virginia, USA", GeoPoint(37.54, -77.44), 1),
    RegionSpec("us-west", "California, USA", GeoPoint(37.78, -122.42), 1),
    RegionSpec("us-north", "Illinois, USA", GeoPoint(41.88, -87.63), 1),
    RegionSpec("us-south", "Texas, USA", GeoPoint(29.42, -98.49), 1),
    RegionSpec("eu-west", "Ireland", GeoPoint(53.35, -6.26), 1),
    RegionSpec("eu-north", "Netherlands", GeoPoint(52.37, 4.90), 1),
    RegionSpec("ap-southeast", "Singapore", GeoPoint(1.35, 103.82), 1),
    RegionSpec("ap-east", "Hong Kong", GeoPoint(22.32, 114.17), 1),
)

#: Synthetic stand-ins for the Azure Datacenter IP Ranges download [8].
_AZURE_SUPERNETS = ("23.96.0.0/13", "137.116.0.0/14", "168.60.0.0/14")


class ServiceKind:
    """What a Cloud Service contains (invisible to clients)."""

    SINGLE_VM = "single-vm"
    VM_GROUP = "vm-group"
    PAAS = "paas"


@dataclass
class CloudService:
    """One Azure Cloud Service: a public IP behind a transparent proxy."""

    name: str
    region_name: str
    kind: str
    cname: str
    public_ip: IPv4Address
    backends: List[Instance] = field(default_factory=list)


@dataclass
class TrafficManager:
    """A Traffic Manager profile: DNS-level balancing across services."""

    name: str
    cname: str
    policy: str
    services: List[CloudService] = field(default_factory=list)


class AzureCloud(CloudProvider):
    """Azure: regions, Cloud Services, Traffic Manager."""

    name = "azure"

    POLICY_PERFORMANCE = "performance"
    POLICY_FAILOVER = "failover"
    POLICY_ROUND_ROBIN = "round-robin"

    def __init__(self, streams: StreamRegistry, dns: DnsInfrastructure):
        super().__init__()
        self.streams = streams
        self.dns = dns
        self.rng = streams.stream("azure", "services")
        self.plan = AddressPlan(
            provider_name=self.name,
            supernets=[IPv4Network.parse(s) for s in _AZURE_SUPERNETS],
            per_region_slash16s=2,
        )
        self._allocators: Dict[str, ZoneInternalAllocator] = {}
        for spec in AZURE_REGION_SPECS:
            region = Region(
                provider_name=self.name,
                name=spec.name,
                location=spec.location,
                zones=[AvailabilityZone(self.name, spec.name, 0)],
            )
            self.add_region(region)
            self.plan.assign_region(spec.name)
            self._allocators[spec.name] = ZoneInternalAllocator(
                region_name=spec.name, num_zones=1
            )
        self._specs = {spec.name: spec for spec in AZURE_REGION_SPECS}
        self.zone_cloudapp = Zone("cloudapp.net", axfr_allowed=False)
        self.zone_tm = Zone("trafficmanager.net", axfr_allowed=False)
        dns.add_zone(self.zone_cloudapp)
        dns.add_zone(self.zone_tm)
        self._cs_counter = itertools.count(1)
        self._tm_counter = itertools.count(1)
        self.cloud_services: Dict[str, CloudService] = {}
        self.traffic_managers: Dict[str, TrafficManager] = {}

    # -- published ranges ---------------------------------------------------

    def published_ranges(self) -> List[IPv4Network]:
        return [net for net, _ in self.plan.published_ranges()]

    def published_range_set(self) -> PrefixSet:
        return self.plan.prefix_set()

    def region_of_ip(self, addr: IPv4Address) -> Optional[str]:
        return self.plan.prefix_set().lookup(addr)

    def spec(self, region_name: str) -> RegionSpec:
        return self._specs[region_name]

    # -- cloud services -------------------------------------------------------

    def create_cloud_service(
        self,
        region_name: str,
        kind: str = ServiceKind.SINGLE_VM,
        name: Optional[str] = None,
        backend_count: int = 1,
        account_id: str = "azure-tenant",
    ) -> CloudService:
        """Create a Cloud Service with a ``cloudapp.net`` name.

        The service's single public IP fronts ``backend_count`` internal
        VMs or PaaS nodes; from outside all three kinds look identical.
        """
        region = self.region(region_name)
        name = name or f"cs{next(self._cs_counter):07d}"
        cname = f"{name}.cloudapp.net"
        public_ip = self.plan.allocate_public_ip(region_name, self.rng)
        backends = []
        for _ in range(max(1, backend_count)):
            internal_ip = self._allocators[region_name].allocate(0, self.rng)
            instance = Instance(
                instance_id=self._next_instance_id("az"),
                provider_name=self.name,
                region_name=region_name,
                zone_index=0,
                itype=InstanceType.M1_MEDIUM,
                role=(
                    InstanceRole.PAAS_NODE
                    if kind == ServiceKind.PAAS
                    else InstanceRole.WEB
                ),
                internal_ip=internal_ip,
                public_ip=None,
                account_id=account_id,
            )
            self._register_instance(instance)
            backends.append(instance)
        service = CloudService(
            name=name,
            region_name=region_name,
            kind=kind,
            cname=cname,
            public_ip=public_ip,
            backends=backends,
        )
        # The transparent proxy is what owns the public address; register
        # a synthetic instance for it so probes resolve to something.
        proxy = Instance(
            instance_id=self._next_instance_id("azlb"),
            provider_name=self.name,
            region_name=region_name,
            zone_index=0,
            itype=InstanceType.M1_MEDIUM,
            role=InstanceRole.ELB_PROXY,
            internal_ip=self._allocators[region_name].allocate(0, self.rng),
            public_ip=public_ip,
            account_id="azure-fabric",
        )
        self._register_instance(proxy)
        self.zone_cloudapp.add(
            ResourceRecord(cname, RRType.A, public_ip, ttl=60)
        )
        self.cloud_services[cname] = service
        return service

    # -- traffic manager ------------------------------------------------------

    def create_traffic_manager(
        self,
        services: Sequence[CloudService],
        policy: str = POLICY_PERFORMANCE,
        name: Optional[str] = None,
    ) -> TrafficManager:
        """Create a TM profile balancing across ``services`` in DNS."""
        if not services:
            raise ValueError("Traffic Manager needs at least one service")
        if policy not in (
            self.POLICY_PERFORMANCE,
            self.POLICY_FAILOVER,
            self.POLICY_ROUND_ROBIN,
        ):
            raise ValueError(f"unknown TM policy: {policy}")
        name = name or f"tm{next(self._tm_counter):05d}"
        cname = f"{name}.trafficmanager.net"
        profile = TrafficManager(
            name=name, cname=cname, policy=policy, services=list(services)
        )

        def answer(qname, rtype, vantage, query_index):
            if rtype not in (RRType.A, RRType.CNAME):
                return []
            service = self._tm_pick(profile, vantage, query_index)
            return [
                ResourceRecord(qname, RRType.CNAME, service.cname, ttl=30)
            ]

        self.zone_tm.add_dynamic(DynamicName(cname, answer))
        self.traffic_managers[cname] = profile
        return profile

    def _tm_pick(
        self, profile: TrafficManager, vantage: object, query_index: int
    ) -> CloudService:
        services = profile.services
        if profile.policy == self.POLICY_ROUND_ROBIN:
            return services[query_index % len(services)]
        if profile.policy == self.POLICY_FAILOVER:
            return services[0]
        location = getattr(vantage, "location", None)
        if location is None:
            return services[0]
        return min(
            services,
            key=lambda s: haversine_km(
                self.region(s.region_name).location, location
            ),
        )
