"""Address allocation: public ranges per region, internal blocks per zone.

Public addressing mirrors what the paper relies on: each provider
publishes per-region CIDR lists, so an address maps to (provider,
region) by prefix matching.  Internal addressing mirrors what the
proximity cartography method exploits: within an EC2 region, 10.0.0.0/8
is carved into /16 blocks and each availability zone draws its instances
from its own runs of consecutive /16s, producing the banded structure of
the paper's Figure 7.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.net.ipv4 import IPv4Address, IPv4Network
from repro.net.prefixset import PrefixSet


@dataclass
class AddressPlan:
    """Public address ranges for one provider, carved per region.

    ``supernets`` are the provider's announced blocks; each region gets
    a contiguous slice of /16s from them, allocated round-robin so the
    published list has multiple prefixes per region (as real lists do).
    """

    provider_name: str
    supernets: List[IPv4Network]
    per_region_slash16s: int = 4

    def __post_init__(self) -> None:
        self._region_blocks: Dict[str, List[IPv4Network]] = {}
        self._cursors: List[Tuple[int, int]] = []  # (supernet idx, offset)
        self._slash16_pool: List[IPv4Network] = []
        for net in self.supernets:
            if net.prefix_len > 16:
                raise ValueError(
                    f"supernet {net} too small to carve /16 blocks"
                )
            self._slash16_pool.extend(net.subnets(16))
        self._next_block = 0
        self._host_cursor: Dict[IPv4Network, int] = {}

    def assign_region(self, region_name: str) -> List[IPv4Network]:
        """Carve the next ``per_region_slash16s`` /16 blocks for a region."""
        if region_name in self._region_blocks:
            return self._region_blocks[region_name]
        blocks = []
        for _ in range(self.per_region_slash16s):
            if self._next_block >= len(self._slash16_pool):
                raise RuntimeError(
                    f"{self.provider_name} address plan exhausted"
                )
            blocks.append(self._slash16_pool[self._next_block])
            self._next_block += 1
        self._region_blocks[region_name] = blocks
        return blocks

    def region_blocks(self, region_name: str) -> List[IPv4Network]:
        return list(self._region_blocks.get(region_name, []))

    def published_ranges(self) -> List[Tuple[IPv4Network, str]]:
        """The publishable list: (CIDR, region-name) pairs."""
        pairs = []
        for region_name, blocks in self._region_blocks.items():
            for block in blocks:
                pairs.append((block, region_name))
        return pairs

    def prefix_set(self) -> PrefixSet:
        """A PrefixSet labelled with region names."""
        return PrefixSet(self.published_ranges())

    def allocate_public_ip(
        self, region_name: str, rng: random.Random
    ) -> IPv4Address:
        """A fresh public address in one of the region's blocks.

        Addresses are handed out sequentially within a randomly chosen
        block, skipping the network/broadcast-ish first addresses; real
        clouds assign from large pools with no locality guarantee, and
        nothing downstream depends on public-address adjacency.
        """
        blocks = self._region_blocks.get(region_name)
        if not blocks:
            raise KeyError(
                f"region {region_name} has no public blocks assigned"
            )
        block = rng.choice(blocks)
        cursor = self._host_cursor.get(block, 10)
        if cursor >= block.num_addresses - 1:
            # Fall back to a linear scan of other blocks.
            for candidate in blocks:
                if self._host_cursor.get(candidate, 10) < candidate.num_addresses - 1:
                    block = candidate
                    cursor = self._host_cursor.get(block, 10)
                    break
            else:
                raise RuntimeError(f"public pool exhausted in {region_name}")
        self._host_cursor[block] = cursor + 1
        return block.address_at(cursor)


#: Number of consecutive /16 blocks a zone owns before the allocator
#: moves to the next zone's band (gives Figure 7 its striping).
_ZONE_BAND_RUN = 8

#: Allocations a /16 absorbs before the zone opens its next block.
#: Small enough that busy zones span many /16s (so proximity sampling
#: has real coverage gaps, as in the paper's 79%).
_BLOCK_FILL_LIMIT = 3000


@dataclass
class ZoneInternalAllocator:
    """Internal (10/8) addressing for one region, banded by zone."""

    region_name: str
    num_zones: int
    internal_root: IPv4Network = field(
        default_factory=lambda: IPv4Network.parse("10.0.0.0/8")
    )

    def __post_init__(self) -> None:
        if self.num_zones <= 0:
            raise ValueError("region must have at least one zone")
        self._zone_blocks: Dict[int, List[IPv4Network]] = {
            z: [] for z in range(self.num_zones)
        }
        blocks = list(self.internal_root.subnets(16))
        # Paper-tier headroom: keep striping past the root's last /16 by
        # continuing into the adjacent space.  Extending the *tail* of
        # each zone's block list preserves every address smaller tiers
        # ever issued (allocation only opens higher block indices once
        # earlier blocks fill), so seed/mid outputs are unchanged.
        extension = IPv4Network(
            self.internal_root.last + 1,
            self.internal_root.prefix_len,
        )
        for _ in range(3):
            blocks.extend(extension.subnets(16))
            extension = IPv4Network(
                extension.last + 1, extension.prefix_len
            )
        zone = 0
        for start in range(0, len(blocks), _ZONE_BAND_RUN):
            run = blocks[start:start + _ZONE_BAND_RUN]
            self._zone_blocks[zone].extend(run)
            zone = (zone + 1) % self.num_zones
        #: Per-(zone, block) allocation cursors and the highest block
        #: index each zone has opened so far.
        self._cursors: Dict[Tuple[int, int], int] = {}
        self._active: Dict[int, int] = {z: 0 for z in range(self.num_zones)}

    def zone_blocks(self, zone_index: int) -> List[IPv4Network]:
        return list(self._zone_blocks[zone_index])

    def zone_of_internal_ip(self, ip: IPv4Address) -> Optional[int]:
        """Ground-truth zone owning an internal address (for scoring
        cartography accuracy; the measurement pipeline never calls this)."""
        block16 = ip.slash16()
        for zone, blocks in self._zone_blocks.items():
            if block16 in blocks:
                return zone
        return None

    def allocate(self, zone_index: int, rng: random.Random) -> IPv4Address:
        """Allocate an internal address somewhere in the zone's bands.

        Launches mostly land in the zone's newest /16, but a sizeable
        minority land in earlier, still-active blocks — real zones fill
        over years, which is what lets proximity samples taken *after*
        tenant launches share the tenants' /16s.
        """
        if zone_index not in self._zone_blocks:
            raise KeyError(
                f"zone {zone_index} not in region {self.region_name}"
            )
        blocks = self._zone_blocks[zone_index]
        active = self._active[zone_index]
        if active > 0 and rng.random() < 0.35:
            block_idx = rng.randrange(active + 1)
        else:
            block_idx = active
        offset = self._cursors.get((zone_index, block_idx), 4)
        offset += rng.randint(1, 7)
        if offset >= _BLOCK_FILL_LIMIT and block_idx != active:
            # An older block filled up; fall back to the newest one.
            block_idx = active
            offset = self._cursors.get((zone_index, block_idx), 4)
            offset += rng.randint(1, 7)
        if offset >= _BLOCK_FILL_LIMIT:
            # The newest block is full too; open the next band.
            active += 1
            if active >= len(blocks):
                raise RuntimeError(
                    f"internal pool exhausted in zone {zone_index}"
                )
            self._active[zone_index] = active
            block_idx = active
            offset = 4 + rng.randint(1, 7)
        self._cursors[(zone_index, block_idx)] = offset
        return blocks[block_idx].address_at(offset)
