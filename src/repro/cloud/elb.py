"""Amazon Elastic Load Balancer.

Each tenant-visible ELB is *logical*: a DNS name under
``elb.amazonaws.com``.  The actual HTTP proxying is done by *physical*
proxy instances that Amazon manages and shares across tenants.  DNS
answers for the logical name rotate the proxy IP order to spread load —
the behaviour the paper observes ("traffic is routed to zone-specific
ELB proxies by rotating the order of ELB proxy IPs in DNS replies").
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.cloud.base import Instance, InstanceRole, InstanceType
from repro.cloud.ec2 import EC2Cloud
from repro.dns.records import RRType, ResourceRecord
from repro.dns.zone import DynamicName, Zone

#: Account under which Amazon launches the shared proxy fleet.
_ELB_ACCOUNT = "amazon-elb-service"
_ELB_ZONE_ORIGIN = "elb.amazonaws.com"

#: Probability that a new logical ELB reuses an existing proxy in a zone
#: instead of getting a fresh one (drives proxy sharing across tenants).
DEFAULT_REUSE_PROBABILITY = 0.70


@dataclass
class ElasticLoadBalancer:
    """One logical ELB and the physical proxies backing it."""

    name: str
    region_name: str
    cname: str
    proxies: List[Instance] = field(default_factory=list)
    workers: List[Instance] = field(default_factory=list)

    @property
    def proxy_ips(self) -> List:
        return [p.public_ip for p in self.proxies]

    @property
    def zones(self) -> List[int]:
        return sorted({p.zone_index for p in self.proxies})


class ELBFleet:
    """Manages the shared proxy pool and logical ELB creation."""

    def __init__(self, ec2: EC2Cloud):
        self.ec2 = ec2
        self.rng = ec2.streams.stream("ec2", "elb")
        self.zone = Zone(_ELB_ZONE_ORIGIN, axfr_allowed=False)
        ec2.dns.add_zone(self.zone)
        self._pool: Dict[tuple, List[Instance]] = {}
        self._share_count: Dict[str, int] = {}
        self._elbs: Dict[str, ElasticLoadBalancer] = {}
        self._name_counter = itertools.count(1)

    # -- physical proxies --------------------------------------------------

    def _proxy_in_zone(
        self, region_name: str, zone_index: int, reuse_probability: float
    ) -> Instance:
        pool = self._pool.setdefault((region_name, zone_index), [])
        if pool and self.rng.random() < reuse_probability:
            # Preferential attachment: proxies already serving more
            # tenants are more likely to pick up another, producing the
            # heavy-tailed sharing the paper saw (~4% of proxies shared
            # by 10+ subdomains).
            weights = [
                self._share_count[p.instance_id] + 1 for p in pool
            ]
            proxy = self.rng.choices(pool, weights=weights, k=1)[0]
        else:
            proxy = self.ec2.launch_instance(
                account_id=_ELB_ACCOUNT,
                region_name=region_name,
                physical_zone=zone_index,
                itype=InstanceType.M1_MEDIUM,
                role=InstanceRole.ELB_PROXY,
                rng=self.rng,
            )
            pool.append(proxy)
            self._share_count[proxy.instance_id] = 0
        self._share_count[proxy.instance_id] += 1
        return proxy

    # -- logical ELBs --------------------------------------------------------

    def create_load_balancer(
        self,
        region_name: str,
        zone_indices: Sequence[int],
        proxies_per_zone: int = 1,
        total_proxies: Optional[int] = None,
        workers: Sequence[Instance] = (),
        reuse_probability: float = DEFAULT_REUSE_PROBABILITY,
        name: Optional[str] = None,
    ) -> ElasticLoadBalancer:
        """Create a logical ELB backed by proxies in ``zone_indices``.

        ``total_proxies`` (if given) distributes that many proxies
        round-robin over the zones instead of ``proxies_per_zone`` each.
        Registers a rotating dynamic DNS name
        ``{name}.{region}.elb.amazonaws.com``.
        """
        if not zone_indices:
            raise ValueError("an ELB needs at least one zone")
        name = name or f"lb-{next(self._name_counter):07d}"
        cname = f"{name}.{region_name}.{_ELB_ZONE_ORIGIN}"
        elb = ElasticLoadBalancer(
            name=name,
            region_name=region_name,
            cname=cname,
            workers=list(workers),
        )
        if total_proxies is None:
            placements = [
                zone_index
                for zone_index in zone_indices
                for _ in range(proxies_per_zone)
            ]
        else:
            placements = [
                zone_indices[i % len(zone_indices)]
                for i in range(max(total_proxies, len(zone_indices)))
            ]
        seen_ids = set()
        for zone_index in placements:
            proxy = self._proxy_in_zone(
                region_name, zone_index, reuse_probability
            )
            if proxy.instance_id in seen_ids:
                # A shared proxy can serve an ELB only once; get a
                # fresh instance so the requested width is honoured.
                proxy = self._proxy_in_zone(region_name, zone_index, 0.0)
            seen_ids.add(proxy.instance_id)
            elb.proxies.append(proxy)
        self._elbs[cname] = elb
        self.zone.add_dynamic(DynamicName(cname, self._make_answer_fn(elb)))
        return elb

    def _make_answer_fn(self, elb: ElasticLoadBalancer):
        def answer(name, rtype, vantage, query_index):
            if rtype not in (RRType.A, RRType.CNAME):
                return []
            ips = elb.proxy_ips
            if not ips:
                return []
            shift = query_index % len(ips)
            rotated = ips[shift:] + ips[:shift]
            return [
                ResourceRecord(name, RRType.A, ip, ttl=60) for ip in rotated
            ]

        return answer

    def get(self, cname: str) -> Optional[ElasticLoadBalancer]:
        return self._elbs.get(cname)

    def all_load_balancers(self) -> List[ElasticLoadBalancer]:
        return list(self._elbs.values())

    def physical_proxies(self) -> List[Instance]:
        return [
            proxy for pool in self._pool.values() for proxy in pool
        ]

    def share_count(self, instance_id: str) -> int:
        """How many logical ELBs a physical proxy serves."""
        return self._share_count.get(instance_id, 0)
