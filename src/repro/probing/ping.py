"""TCP ping (the simulation's hping3).

Sends ``count`` probes between endpoints and reports per-probe RTTs.
Targets can be endpoint objects or raw IP addresses; raw addresses are
resolved through the directory, and unresolvable or unresponsive
targets produce timeouts.  Whether a given instance answers probes at
all is a persistent property of the target (security-group filtering),
drawn deterministically per instance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from repro.cloud.base import Instance
from repro.internet.latency import LatencyModel
from repro.internet.vantage import VantagePoint
from repro.net.ipv4 import IPv4Address
from repro.probing.directory import EndpointDirectory
from repro.sim import derive_rng

#: Fraction of tenant instances that answer unsolicited TCP probes.
DEFAULT_RESPONSE_RATE = 0.74


@dataclass
class PingResult:
    """The outcome of one ping run."""

    rtts_ms: List[Optional[float]] = field(default_factory=list)

    @property
    def responded(self) -> bool:
        return any(rtt is not None for rtt in self.rtts_ms)

    @property
    def min_ms(self) -> Optional[float]:
        values = [rtt for rtt in self.rtts_ms if rtt is not None]
        return min(values) if values else None

    @property
    def median_ms(self) -> Optional[float]:
        values = sorted(rtt for rtt in self.rtts_ms if rtt is not None)
        if not values:
            return None
        mid = len(values) // 2
        if len(values) % 2:
            return values[mid]
        return (values[mid - 1] + values[mid]) / 2.0


class Prober:
    """Runs TCP pings over the latency model."""

    def __init__(
        self,
        latency: LatencyModel,
        directory: EndpointDirectory,
        response_rate: float = DEFAULT_RESPONSE_RATE,
    ):
        self.latency = latency
        self.directory = directory
        self.response_rate = response_rate
        #: instance_id -> persistent responds-to-probes coin flip.
        self._responds_cache: Dict[str, bool] = {}

    def _resolve_target(
        self, target: Union[IPv4Address, Instance, VantagePoint], region_hint=None
    ):
        if isinstance(target, IPv4Address):
            instance = self.directory.instance_for_ip(target)
            if instance is None and region_hint is not None:
                instance = self.directory.instance_for_internal_ip(
                    region_hint, target
                )
            return instance
        return target

    def _target_responds(self, target) -> bool:
        if not isinstance(target, Instance):
            return True
        # Amazon-managed endpoints (ELB proxies, PaaS routers) always
        # answer, as do our own probe instances (we control their
        # security groups); tenant VMs only if their firewall allows it.
        if target.role.value in ("elb-proxy", "paas-node", "cdn-edge", "probe"):
            return True
        responds = self._responds_cache.get(target.instance_id)
        if responds is None:
            # The flip is a persistent property of the instance
            # (hash-per-entity), so the first draw is the only draw.
            rng = derive_rng(
                self.latency.streams.seed, "probe-response",
                target.instance_id,
            )
            responds = rng.random() < self.response_rate
            self._responds_cache[target.instance_id] = responds
        return responds

    def tcp_ping(
        self,
        source,
        target,
        count: int = 10,
        time_s: float = 0.0,
        region_hint: Optional[str] = None,
    ) -> PingResult:
        """``count`` TCP probes from ``source`` to ``target``.

        ``region_hint`` lets in-region probes address targets by
        internal IP (the probe instance's region scopes the lookup).
        """
        resolved = self._resolve_target(target, region_hint)
        result = PingResult()
        if resolved is None or not self._target_responds(resolved):
            result.rtts_ms = [None] * count
            return result
        result.rtts_ms = list(
            self.latency.probe_rtts_ms(source, resolved, count, time_s)
        )
        return result
