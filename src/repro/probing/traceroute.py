"""Traceroute as a probe tool (the paper's §5.2 methodology step).

Wraps :class:`~repro.internet.routing.RoutingModel`'s hop synthesis
with the classification the paper applies to every trace: find the
first hop outside the cloud's published ranges and ``whois`` it.  The
campaign layer consumes the packaged result instead of re-implementing
the hop-walking at every call site.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.cloud.base import Instance
from repro.internet.routing import RoutingModel, TracerouteHop
from repro.internet.vantage import VantagePoint


@dataclass
class TracerouteResult:
    """One classified traceroute."""

    hops: Tuple[TracerouteHop, ...]
    #: True when the trace escaped the cloud (a non-cloud hop exists).
    reached: bool
    #: AS number of the first non-cloud hop's owner (the downstream
    #: ISP the paper counts), None when unreachable or unregistered.
    first_external_asn: Optional[int]
    first_external_owner: Optional[str]


class TracerouteTool:
    """Runs and classifies traceroutes against one routing model."""

    def __init__(self, routing: RoutingModel, cloud_ranges):
        self.routing = routing
        self.cloud_ranges = cloud_ranges

    def trace(
        self,
        instance: Instance,
        vantage: VantagePoint,
        failed_isps: frozenset = frozenset(),
    ) -> TracerouteResult:
        hops: List[TracerouteHop] = self.routing.traceroute(
            instance, vantage, failed_isps=failed_isps
        )
        hop = self.routing.first_non_cloud_hop(hops, self.cloud_ranges)
        asn: Optional[int] = None
        owner: Optional[str] = None
        if hop is not None:
            asys = self.routing.registry.whois(hop.address)
            if asys is not None:
                asn = asys.number
                owner = asys.name
        return TracerouteResult(
            hops=tuple(hops),
            reached=hop is not None,
            first_external_asn=asn,
            first_external_owner=owner,
        )
