"""Active measurement tools: the simulation's hping3, traceroute and
HTTP download clients.

These are thin, tool-shaped drivers over the internet substrate: they
take endpoints (vantage points or cloud instances) or raw IPs, resolve
IPs through an :class:`EndpointDirectory`, and return the observations
real tools would produce — including probe timeouts for unresponsive
targets, which the paper's Table 12 shows were common (~27% of target
IPs never answered).
"""

from repro.probing.directory import EndpointDirectory
from repro.probing.ping import Prober, PingResult
from repro.probing.httpget import HttpDownloader, DownloadResult

__all__ = [
    "EndpointDirectory",
    "Prober",
    "PingResult",
    "HttpDownloader",
    "DownloadResult",
]
