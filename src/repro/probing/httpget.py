"""HTTP download measurement (the paper's 2 MB Apache fetches)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.internet.throughput import ThroughputModel

#: The paper cancelled downloads that exceeded 10 seconds.
DEFAULT_TIMEOUT_S = 10.0
#: Size of the benchmark object the paper served.
DEFAULT_OBJECT_BYTES = 2 * 1024 * 1024


@dataclass
class DownloadResult:
    """Outcome of one HTTP GET measurement."""

    completed: bool
    duration_s: Optional[float]
    rate_bytes_per_s: Optional[float]

    @property
    def rate_kb_per_s(self) -> Optional[float]:
        if self.rate_bytes_per_s is None:
            return None
        return self.rate_bytes_per_s / 1024.0


class HttpDownloader:
    """Fetches a fixed-size object and reports file_size/download_time."""

    def __init__(self, throughput: ThroughputModel):
        self.throughput = throughput

    def get(
        self,
        client,
        server,
        size_bytes: int = DEFAULT_OBJECT_BYTES,
        time_s: float = 0.0,
        timeout_s: float = DEFAULT_TIMEOUT_S,
    ) -> DownloadResult:
        duration, rate = self.throughput.download(
            client, server, size_bytes, time_s
        )
        if duration > timeout_s:
            return DownloadResult(
                completed=False, duration_s=None, rate_bytes_per_s=None
            )
        return DownloadResult(
            completed=True, duration_s=duration, rate_bytes_per_s=rate
        )
