"""Resolving raw IP addresses back to simulated endpoints.

Probing tools are pointed at IP addresses (that is all the measurement
pipeline knows); the directory finds the cloud instance behind an
address so the latency model can be consulted.  Addresses that belong
to no registered instance simply time out, exactly like probing an
unused cloud IP.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.cloud.base import CloudProvider, Instance
from repro.net.ipv4 import IPv4Address


class EndpointDirectory:
    """Looks up instances across all registered providers by public IP."""

    def __init__(self, providers: Iterable[CloudProvider] = ()):
        self._providers = list(providers)

    def add_provider(self, provider: CloudProvider) -> None:
        self._providers.append(provider)

    def instance_for_ip(self, address: IPv4Address) -> Optional[Instance]:
        for provider in self._providers:
            instance = provider.instance_by_public_ip(address)
            if instance is not None:
                return instance
        return None

    def instance_for_internal_ip(
        self, region_name: str, address: IPv4Address
    ) -> Optional[Instance]:
        """Find an instance by internal address within a region (what an
        in-region probe reaches after the public→internal DNS mapping)."""
        for provider in self._providers:
            instance = provider.instance_by_internal_ip(region_name, address)
            if instance is not None:
                return instance
        return None

    def provider_of_ip(self, address: IPv4Address) -> Optional[str]:
        instance = self.instance_for_ip(address)
        return instance.provider_name if instance else None
