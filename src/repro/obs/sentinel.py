"""The regression sentinel: trajectory-aware drift detection.

The experiment plane already knows how to judge "is this number close
enough" — :class:`repro.experiments.spec.Tolerance` scores every paper
expectation into ``match``/``drift``/``divergent``.  The sentinel
points the same vocabulary at the **timeline** (:mod:`.timeline`):
each trajectory's freshest entry is judged against its predecessor —

* **per-stage wall clock** — the observed/baseline ratio under an
  ``at_most`` band: up to +20 % is ``match``, +20–50 % ``drift``,
  beyond that ``divergent`` (stages under a noise floor are ``info``);
* **peak RSS** — the same shape with a tighter match band (memory is
  far less noisy than wall clock);
* **output digests** — ``exact``: a changed digest under an unchanged
  code fingerprint is ``divergent`` (determinism is broken), under a
  new fingerprint ``drift`` (outputs moved with the code — visible,
  not fatal);
* **fidelity verdicts** — a worsened rollup status or a grown
  ``divergent``/``drift``/``missing`` count is judged at the severity
  it worsened to.

Reports serialise to ``regressions.json``; :data:`EXIT_REGRESSION` is
the CLI exit code (``repro report --check``) and the scheduler runs
the whole thing after every ``bench`` job, making the service a
continuous consumer of its own performance history.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.obs.timeline import TimelineEntry, TimelineStore

#: Exit status for ``repro report --check`` when any trajectory drifted
#: or diverged — distinct from the fidelity gate (3) and service
#: errors (4).
EXIT_REGRESSION = 5

#: Version of the ``regressions.json`` payload.
REGRESSIONS_SCHEMA_VERSION = 1

#: Stages faster than this in the baseline are too noisy to judge —
#: reported as ``info``, never scored.
TIMING_FLOOR_S = 0.1

#: Fidelity statuses, best first (mirrors the fidelity plane's order).
_FIDELITY_ORDER = ("exempt", "match", "drift", "missing", "divergent")

_VERDICT_RANK = {
    "match": 0, "info": 0, "missing": 0, "exempt": 0,
    "drift": 1, "divergent": 2,
}


def _default_bands() -> dict:
    from repro.experiments.spec import at_most, exact

    return {
        # Observed/baseline wall-clock ratio: 1.20 match edge, 1.50
        # drift edge — a 25 % slowdown lands in drift, a 2× in
        # divergent.
        "timing_ratio": at_most(1.20, drift=0.30),
        # Peak RSS creeps, it doesn't jitter: 15 % match, 50 % drift.
        "rss_ratio": at_most(1.15, drift=0.35),
        "digest": exact(),
    }


@dataclass(frozen=True)
class SentinelFinding:
    """One judged check inside a report."""

    check: str  # e.g. "stage:dataset_s", "rss", "digest:records"
    baseline: object
    observed: object
    delta: Optional[float]
    verdict: str
    note: str = ""

    def as_dict(self) -> dict:
        return {
            "check": self.check,
            "baseline": self.baseline,
            "observed": self.observed,
            "delta": self.delta,
            "verdict": self.verdict,
            "note": self.note,
        }


@dataclass
class SentinelReport:
    """One trajectory's newest entry judged against its baseline."""

    series_key: str
    subject: str  # label of the judged entry
    subject_entry_id: str
    baseline_entry_id: Optional[str]
    findings: List[SentinelFinding] = field(default_factory=list)

    @property
    def status(self) -> str:
        """Worst scored verdict: ``match``/``drift``/``divergent``
        (``match`` also covers a baseline-less first entry)."""
        worst = 0
        for finding in self.findings:
            worst = max(worst, _VERDICT_RANK.get(finding.verdict, 0))
        return ("match", "drift", "divergent")[worst]

    @property
    def counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.verdict] = counts.get(finding.verdict, 0) + 1
        return counts

    def as_dict(self) -> dict:
        return {
            "series_key": self.series_key,
            "subject": self.subject,
            "subject_entry_id": self.subject_entry_id,
            "baseline_entry_id": self.baseline_entry_id,
            "status": self.status,
            "counts": self.counts,
            "findings": [f.as_dict() for f in self.findings],
        }

    def render_text(self) -> str:
        lines = [
            f"{self.subject}: {self.status}"
            + (f"  (vs {self.baseline_entry_id})"
               if self.baseline_entry_id else "  (no baseline)")
        ]
        for finding in self.findings:
            if finding.verdict in ("match", "info"):
                continue
            delta = (
                f" ({finding.delta:+.2f})"
                if isinstance(finding.delta, float) else ""
            )
            lines.append(
                f"  {finding.verdict:9s} {finding.check}: "
                f"{finding.baseline!r} -> {finding.observed!r}{delta}"
                + (f"  [{finding.note}]" if finding.note else "")
            )
        return "\n".join(lines)


def judge_entries(
    baseline: TimelineEntry,
    observed: TimelineEntry,
    bands: Optional[dict] = None,
    timing_floor_s: float = TIMING_FLOOR_S,
) -> SentinelReport:
    """Judge ``observed`` against ``baseline`` (same trajectory)."""
    bands = bands or _default_bands()
    findings: List[SentinelFinding] = []

    # Per-stage wall clock, plus the rollup.
    for stage in sorted(
        set(baseline.timings) | set(observed.timings)
    ):
        base = baseline.timings.get(stage)
        seen = observed.timings.get(stage)
        if base is None or seen is None:
            findings.append(SentinelFinding(
                check=f"stage:{stage}", baseline=base, observed=seen,
                delta=None, verdict="info",
                note="stage absent on one side",
            ))
            continue
        if base < timing_floor_s:
            findings.append(SentinelFinding(
                check=f"stage:{stage}", baseline=base, observed=seen,
                delta=None, verdict="info",
                note=f"baseline under the {timing_floor_s:g}s "
                     "noise floor",
            ))
            continue
        ratio = seen / base
        delta, verdict = bands["timing_ratio"].judge(1.0, ratio)
        findings.append(SentinelFinding(
            check=f"stage:{stage}", baseline=base, observed=seen,
            delta=round(ratio - 1.0, 4), verdict=verdict,
            note=f"{100 * (ratio - 1):+.0f}% wall clock",
        ))

    # Peak RSS.
    if baseline.rss_high_water_kib and observed.rss_high_water_kib:
        ratio = observed.rss_high_water_kib / baseline.rss_high_water_kib
        delta, verdict = bands["rss_ratio"].judge(1.0, ratio)
        findings.append(SentinelFinding(
            check="rss", baseline=baseline.rss_high_water_kib,
            observed=observed.rss_high_water_kib,
            delta=round(ratio - 1.0, 4), verdict=verdict,
            note=f"{100 * (ratio - 1):+.0f}% peak RSS",
        ))

    # Output digests: only comparable when both sides carry them.
    if baseline.digests and observed.digests:
        same_code = (
            baseline.fingerprint is not None
            and baseline.fingerprint == observed.fingerprint
        )
        for name in sorted(set(baseline.digests) | set(observed.digests)):
            base = baseline.digests.get(name)
            seen = observed.digests.get(name)
            _, verdict = bands["digest"].judge(base, seen)
            if verdict != "match":
                # Changed outputs under unchanged code break the
                # determinism contract; under new code they are merely
                # worth seeing.
                verdict = "divergent" if same_code else "drift"
            findings.append(SentinelFinding(
                check=f"digest:{name}", baseline=base, observed=seen,
                delta=None, verdict=verdict,
                note=(
                    "" if verdict == "match"
                    else "same code fingerprint" if same_code
                    else f"fingerprint {baseline.fingerprint} -> "
                         f"{observed.fingerprint}"
                ),
            ))

    # Metrics snapshot digest (runs): a changed deterministic snapshot
    # under unchanged code is as alarming as a changed output digest.
    if baseline.metrics_digest and observed.metrics_digest:
        same_code = (
            baseline.fingerprint is not None
            and baseline.fingerprint == observed.fingerprint
        )
        if baseline.metrics_digest != observed.metrics_digest:
            findings.append(SentinelFinding(
                check="metrics_snapshot",
                baseline=baseline.metrics_digest,
                observed=observed.metrics_digest,
                delta=None,
                verdict="divergent" if same_code else "drift",
                note="deterministic metrics snapshot changed",
            ))

    # Fidelity rollup + verdict counts.
    if baseline.fidelity_status and observed.fidelity_status:
        base_rank = _fidelity_rank(baseline.fidelity_status)
        seen_rank = _fidelity_rank(observed.fidelity_status)
        if seen_rank > base_rank:
            verdict = (
                "divergent"
                if observed.fidelity_status == "divergent" else "drift"
            )
        else:
            verdict = "match"
        findings.append(SentinelFinding(
            check="fidelity", baseline=baseline.fidelity_status,
            observed=observed.fidelity_status, delta=None,
            verdict=verdict,
            note="" if verdict == "match" else "fidelity worsened",
        ))
        for status, severity in (
            ("divergent", "divergent"), ("missing", "drift"),
            ("drift", "drift"),
        ):
            base = baseline.fidelity_counts.get(status, 0)
            seen = observed.fidelity_counts.get(status, 0)
            if seen > base:
                findings.append(SentinelFinding(
                    check=f"fidelity:{status}", baseline=base,
                    observed=seen, delta=float(seen - base),
                    verdict=severity,
                    note=f"{seen - base} more {status} key(s)",
                ))

    return SentinelReport(
        series_key=observed.series_key,
        subject=observed.label(),
        subject_entry_id=observed.entry_id,
        baseline_entry_id=baseline.entry_id,
        findings=findings,
    )


def _fidelity_rank(status: str) -> int:
    try:
        return _FIDELITY_ORDER.index(status)
    except ValueError:
        return 0


def check_series(
    store: TimelineStore,
    series_key: str,
    bands: Optional[dict] = None,
) -> Optional[SentinelReport]:
    """Judge one trajectory's newest entry against its predecessor;
    ``None`` when the trajectory has fewer than two points."""
    trajectory = store.trajectory(series_key)
    if len(trajectory) < 2:
        return None
    return judge_entries(trajectory[-2], trajectory[-1], bands=bands)


def check_store(
    store: TimelineStore, bands: Optional[dict] = None
) -> List[SentinelReport]:
    """One report per trajectory with at least two points."""
    reports = []
    for series_key in store.series_keys():
        report = check_series(store, series_key, bands=bands)
        if report is not None:
            reports.append(report)
    return reports


def worst_status(reports: List[SentinelReport]) -> str:
    worst = 0
    for report in reports:
        worst = max(worst, _VERDICT_RANK.get(report.status, 0))
    return ("match", "drift", "divergent")[worst]


def write_regressions(
    path: Union[str, Path], reports: List[SentinelReport]
) -> dict:
    """Serialise ``reports`` as a ``regressions.json`` verdict file."""
    payload = {
        "schema_version": REGRESSIONS_SCHEMA_VERSION,
        "status": worst_status(reports),
        "reports": [report.as_dict() for report in reports],
    }
    path = Path(path)
    if path.parent != Path(""):
        path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_suffix(path.suffix + ".tmp")
    with tmp.open("w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    tmp.replace(path)
    return payload
