"""Structured probe-level event logging.

An :class:`EventSink` buffers one dict per probe the campaign engine
executed — campaign, kind, vantage, target, round, outcome — and
serialises the buffer as NDJSON (one compact, key-sorted JSON object
per line).  Events carry **only deterministic fields**: no wall-clock,
no process ids, nothing a worker count could perturb.  Sharded engine
runs buffer per chunk and merge at the join in grid order (see
``CampaignEngine``), so the NDJSON of a ``--workers N`` run is
byte-identical to the sequential one.

The default sink everywhere is the shared :data:`NULL_SINK`; emission
costs one truthiness check per cell when disabled.

The service plane reuses the sink for its **access log**: a sink built
with ``tee=<path>`` appends every event's NDJSON line to that file as
it is emitted (crash-safe: the line is flushed per event), and
``keep=False`` drops the in-memory copy so a long-running daemon's
request log cannot grow without bound.  The fan-out protocol
(:meth:`mark`/:meth:`take_since`) only ever concerns the buffer; teed
lines are append-only history.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Union


def encode_event(event: Dict[str, object]) -> str:
    """One event as a canonical NDJSON line (no trailing newline)."""
    return json.dumps(
        event, sort_keys=True, separators=(",", ":"), default=str
    )


class NullEventSink:
    """The zero-cost default: drops every event."""

    enabled = False
    events: tuple = ()

    def emit(self, event: Dict[str, object]) -> None:
        return None

    def emit_many(self, events: Iterable[Dict[str, object]]) -> None:
        return None

    def mark(self) -> int:
        return 0

    def take_since(self, mark: int) -> List[Dict[str, object]]:
        return []

    def to_ndjson(self) -> str:
        return ""


class EventSink:
    """An in-memory, order-preserving buffer of probe events.

    ``tee`` additionally appends each event's NDJSON line to a file as
    it arrives; ``keep=False`` makes the sink write-through only (the
    buffer stays empty — the daemon access-log configuration).
    """

    enabled = True

    def __init__(
        self,
        tee: Optional[Union[str, Path]] = None,
        keep: bool = True,
    ) -> None:
        self.events: List[Dict[str, object]] = []
        self._keep = keep
        self._tee_lock = threading.Lock()
        self.tee_path: Optional[Path] = None
        self._tee = None
        if tee is not None:
            self.tee_path = Path(tee)
            if self.tee_path.parent != Path(""):
                self.tee_path.parent.mkdir(parents=True, exist_ok=True)
            self._tee = self.tee_path.open("a")

    def emit(self, event: Dict[str, object]) -> None:
        if self._keep:
            self.events.append(event)
        if self._tee is not None:
            with self._tee_lock:
                self._tee.write(encode_event(event) + "\n")
                self._tee.flush()

    def emit_many(self, events: Iterable[Dict[str, object]]) -> None:
        if self._tee is None and self._keep:
            self.events.extend(events)
            return
        for event in events:
            self.emit(event)

    def close(self) -> None:
        """Close the tee file, if any (the buffer stays readable)."""
        if self._tee is not None:
            with self._tee_lock:
                self._tee.close()
                self._tee = None

    def __len__(self) -> int:
        return len(self.events)

    # -- fan-out support ----------------------------------------------

    def mark(self) -> int:
        """A cursor for :meth:`take_since` (used around forked work)."""
        return len(self.events)

    def take_since(self, mark: int) -> List[Dict[str, object]]:
        """Remove and return every event emitted after ``mark``.

        Forked chunk workers call this to ship their chunk's events
        back to the parent; when the chunk ran in-process instead, the
        removal keeps the parent's later ``emit_many`` from
        double-logging.
        """
        taken = self.events[mark:]
        del self.events[mark:]
        return taken

    # -- export --------------------------------------------------------

    def to_ndjson(self) -> str:
        if not self.events:
            return ""
        return "\n".join(
            encode_event(event) for event in self.events
        ) + "\n"

    def write(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        if path.parent != Path(""):
            path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_ndjson())
        return path


#: Shared no-op sink — the library-wide default.
NULL_SINK = NullEventSink()
