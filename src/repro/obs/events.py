"""Structured probe-level event logging.

An :class:`EventSink` buffers one dict per probe the campaign engine
executed — campaign, kind, vantage, target, round, outcome — and
serialises the buffer as NDJSON (one compact, key-sorted JSON object
per line).  Events carry **only deterministic fields**: no wall-clock,
no process ids, nothing a worker count could perturb.  Sharded engine
runs buffer per chunk and merge at the join in grid order (see
``CampaignEngine``), so the NDJSON of a ``--workers N`` run is
byte-identical to the sequential one.

The default sink everywhere is the shared :data:`NULL_SINK`; emission
costs one truthiness check per cell when disabled.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Union


def encode_event(event: Dict[str, object]) -> str:
    """One event as a canonical NDJSON line (no trailing newline)."""
    return json.dumps(
        event, sort_keys=True, separators=(",", ":"), default=str
    )


class NullEventSink:
    """The zero-cost default: drops every event."""

    enabled = False
    events: tuple = ()

    def emit(self, event: Dict[str, object]) -> None:
        return None

    def emit_many(self, events: Iterable[Dict[str, object]]) -> None:
        return None

    def mark(self) -> int:
        return 0

    def take_since(self, mark: int) -> List[Dict[str, object]]:
        return []

    def to_ndjson(self) -> str:
        return ""


class EventSink:
    """An in-memory, order-preserving buffer of probe events."""

    enabled = True

    def __init__(self) -> None:
        self.events: List[Dict[str, object]] = []

    def emit(self, event: Dict[str, object]) -> None:
        self.events.append(event)

    def emit_many(self, events: Iterable[Dict[str, object]]) -> None:
        self.events.extend(events)

    def __len__(self) -> int:
        return len(self.events)

    # -- fan-out support ----------------------------------------------

    def mark(self) -> int:
        """A cursor for :meth:`take_since` (used around forked work)."""
        return len(self.events)

    def take_since(self, mark: int) -> List[Dict[str, object]]:
        """Remove and return every event emitted after ``mark``.

        Forked chunk workers call this to ship their chunk's events
        back to the parent; when the chunk ran in-process instead, the
        removal keeps the parent's later ``emit_many`` from
        double-logging.
        """
        taken = self.events[mark:]
        del self.events[mark:]
        return taken

    # -- export --------------------------------------------------------

    def to_ndjson(self) -> str:
        if not self.events:
            return ""
        return "\n".join(
            encode_event(event) for event in self.events
        ) + "\n"

    def write(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        if path.parent != Path(""):
            path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_ndjson())
        return path


#: Shared no-op sink — the library-wide default.
NULL_SINK = NullEventSink()
