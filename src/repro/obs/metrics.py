"""The metrics registry: counters, gauges, histograms.

One :class:`MetricsRegistry` instance collects every numeric fact an
instrumented run wants to report — probes emitted per kind, retries,
simulated losses, artifact-cache hits/misses, RNG derivations, shard
merge sizes, records/sec.  Instruments are memoized on (name, labels),
so hot paths hold a reference and pay one attribute access per update.

Two export forms:

* :meth:`MetricsRegistry.render_prometheus` — Prometheus text
  exposition (``# HELP``/``# TYPE`` headers, escaped label values,
  sorted families and label sets, so the output is deterministic given
  the same instrument values);
* :meth:`MetricsRegistry.snapshot` / :meth:`deterministic_snapshot` —
  JSON-ready dicts.  The *deterministic* snapshot holds only
  instruments whose values are a pure function of (seed, config):
  anything wall-clock-derived, environment-dependent (cache state), or
  worker-count-dependent is registered with ``volatile=True`` and
  excluded, which is what lets the run manifest fold the snapshot into
  ``manifest.json`` without breaking its byte-identity.

The library default is the shared :data:`NULL_METRICS`, whose
instruments ignore every update.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Optional, Sequence, Tuple

_LabelKey = Tuple[str, Tuple[Tuple[str, str], ...]]

#: Default histogram buckets (upper bounds; +Inf is implicit).
DEFAULT_BUCKETS = (
    1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0,
    1000.0, 2500.0, 5000.0, 10000.0,
)

#: ``# HELP`` text for the well-known metric families, so exposition
#: stays self-describing without threading help strings through every
#: hot-path call site.  Call sites may override via the ``help=``
#: keyword on :meth:`MetricsRegistry.counter`/``gauge``/``histogram``.
FAMILY_HELP = {
    "probes_total": "Probes the campaign engine executed, by kind.",
    "probe_retries_total": "Simulated probe retries, by kind.",
    "probe_losses_total": "Simulated probe losses, by kind.",
    "probes_blocked_total":
        "Probes suppressed by an active fault scenario.",
    "rng_derivations_total":
        "Deterministic RNG stream derivations performed.",
    "artifact_cache_hits_total": "Artifact-store cache hits.",
    "artifact_cache_misses_total": "Artifact-store cache misses.",
    "artifact_cache_invalid_total":
        "Artifacts rejected by digest verification.",
    "artifact_cache_stores_total": "Artifacts written to the store.",
    "campaign_shards_merged_total":
        "Campaign shard results merged at the fork join.",
    "campaign_records_per_s":
        "Records per second the last campaign produced.",
    "shard_merge_records": "Records carried per merged campaign shard.",
    "service_requests_total":
        "HTTP requests received, by method and route.",
    "service_responses_total":
        "HTTP responses sent, by route and status code.",
    "service_request_seconds":
        "HTTP request handling latency in seconds.",
    "service_response_bytes": "HTTP response body size in bytes.",
    "service_indexed_runs": "Run directories currently indexed.",
    "service_indexed_series": "Series directories currently indexed.",
    "service_timeline_entries":
        "Telemetry timeline entries currently indexed, by source.",
    "service_jobs_submitted_total": "Jobs submitted, by kind.",
    "service_jobs_claimed_total": "Jobs claimed for execution, by kind.",
    "service_jobs_executed_total":
        "Job executions finished, by kind and final status.",
    "service_job_retries_total":
        "Failed jobs re-claimed for another attempt, by kind.",
    "service_jobs": "Jobs currently in the queue, by status.",
    "service_scheduler_queue_depth":
        "Pending jobs waiting for the scheduler.",
    "service_timeline_appends_total":
        "Telemetry timeline entries appended by the scheduler, "
        "by source.",
    "service_sentinel_checks_total":
        "Regression-sentinel passes after bench jobs, by worst status.",
}


def _escape_label_value(value: str) -> str:
    """Prometheus exposition-format label-value escaping."""
    return (
        value.replace("\\", r"\\").replace('"', r"\"")
        .replace("\n", r"\n")
    )


def _escape_help(text: str) -> str:
    return text.replace("\\", r"\\").replace("\n", r"\n")


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A point-in-time value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """A bucketed distribution with count and sum."""

    __slots__ = ("bounds", "bucket_counts", "count", "total")

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS):
        self.bounds: List[float] = sorted(buckets)
        self.bucket_counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect.bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value

    def as_dict(self) -> dict:
        buckets = {
            str(bound): count
            for bound, count in zip(self.bounds, self.bucket_counts)
        }
        buckets["+Inf"] = self.bucket_counts[-1]
        return {
            "count": self.count,
            "sum": round(self.total, 6),
            "buckets": buckets,
        }


class _NullInstrument:
    """Counter/gauge/histogram stand-in that drops every update."""

    __slots__ = ()
    value = 0

    def inc(self, amount: int = 1) -> None:
        return None

    def set(self, value: float) -> None:
        return None

    def observe(self, value: float) -> None:
        return None


_NULL_INSTRUMENT = _NullInstrument()


class NullMetrics:
    """The zero-cost default registry."""

    enabled = False

    def counter(
        self, name, volatile=False, help=None, **labels
    ) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(
        self, name, volatile=False, help=None, **labels
    ) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(
        self, name, buckets=None, volatile=False, help=None, **labels
    ) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def counter_checkpoint(self) -> dict:
        return {}

    def take_counter_deltas(self, checkpoint) -> list:
        return []

    def apply_counter_deltas(self, deltas) -> None:
        return None

    def snapshot(self) -> dict:
        return {}

    def deterministic_snapshot(self) -> dict:
        return {}

    def volatile_snapshot(self) -> dict:
        return {}

    def render_prometheus(self) -> str:
        return ""


class MetricsRegistry:
    """A live registry of memoized instruments."""

    enabled = True

    def __init__(self) -> None:
        self._counters: Dict[_LabelKey, Counter] = {}
        self._gauges: Dict[_LabelKey, Gauge] = {}
        self._histograms: Dict[_LabelKey, Histogram] = {}
        self._volatile: set = set()
        #: Per-family ``# HELP`` overrides (first registration wins);
        #: families absent here fall back to :data:`FAMILY_HELP`.
        self._help: Dict[str, str] = {}

    @staticmethod
    def _key(name: str, labels: Dict[str, object]) -> _LabelKey:
        return name, tuple(
            sorted((k, str(v)) for k, v in labels.items())
        )

    def _note_help(self, name: str, help: Optional[str]) -> None:
        if help is not None and name not in self._help:
            self._help[name] = help

    def counter(
        self,
        name: str,
        volatile: bool = False,
        help: Optional[str] = None,
        **labels,
    ) -> Counter:
        key = self._key(name, labels)
        instrument = self._counters.get(key)
        if instrument is None:
            instrument = self._counters[key] = Counter()
            if volatile:
                self._volatile.add(key)
            self._note_help(name, help)
        return instrument

    def gauge(
        self,
        name: str,
        volatile: bool = False,
        help: Optional[str] = None,
        **labels,
    ) -> Gauge:
        key = self._key(name, labels)
        instrument = self._gauges.get(key)
        if instrument is None:
            instrument = self._gauges[key] = Gauge()
            if volatile:
                self._volatile.add(key)
            self._note_help(name, help)
        return instrument

    def histogram(
        self,
        name: str,
        buckets: Optional[Sequence[float]] = None,
        volatile: bool = False,
        help: Optional[str] = None,
        **labels,
    ) -> Histogram:
        key = self._key(name, labels)
        instrument = self._histograms.get(key)
        if instrument is None:
            instrument = self._histograms[key] = Histogram(
                buckets or DEFAULT_BUCKETS
            )
            if volatile:
                self._volatile.add(key)
            self._note_help(name, help)
        return instrument

    # -- fan-out support ----------------------------------------------

    def counter_checkpoint(self) -> Dict[_LabelKey, int]:
        """A cursor for :meth:`take_counter_deltas` (used around
        forked work, like ``EventSink.mark``)."""
        return {
            key: counter.value
            for key, counter in self._counters.items()
        }

    def take_counter_deltas(self, checkpoint: Dict[_LabelKey, int]):
        """Remove and return every counter increment since
        ``checkpoint``, as ``(name, labels, delta, volatile)`` tuples.

        Forked shard workers call this to ship their counts back to
        the parent; the removal keeps the in-process fallback's later
        :meth:`apply_counter_deltas` from double-counting.
        """
        deltas = []
        for key, counter in self._counters.items():
            base = checkpoint.get(key, 0)
            delta = counter.value - base
            if delta:
                deltas.append(
                    (key[0], key[1], delta, key in self._volatile)
                )
                counter.value = base
        return deltas

    def apply_counter_deltas(self, deltas) -> None:
        for name, labels, delta, volatile in deltas:
            self.counter(
                name, volatile=volatile, **dict(labels)
            ).inc(delta)

    # -- exports -------------------------------------------------------

    @staticmethod
    def _render_key(key: _LabelKey) -> str:
        name, labels = key
        if not labels:
            return name
        inner = ",".join(
            f'{k}="{_escape_label_value(v)}"' for k, v in labels
        )
        return f"{name}{{{inner}}}"

    def _help_for(self, family: str) -> Optional[str]:
        return self._help.get(family) or FAMILY_HELP.get(family)

    def _section(
        self, table: dict, include_volatile: Optional[bool]
    ) -> dict:
        out = {}
        for key in sorted(table):
            if include_volatile is False and key in self._volatile:
                continue
            if include_volatile is True and key not in self._volatile:
                continue
            value = table[key]
            out[self._render_key(key)] = (
                value.as_dict() if isinstance(value, Histogram)
                else (
                    round(value.value, 6)
                    if isinstance(value.value, float) else value.value
                )
            )
        return out

    def _snapshot(self, include_volatile: Optional[bool]) -> dict:
        snapshot = {}
        counters = self._section(self._counters, include_volatile)
        gauges = self._section(self._gauges, include_volatile)
        histograms = self._section(self._histograms, include_volatile)
        if counters:
            snapshot["counters"] = counters
        if gauges:
            snapshot["gauges"] = gauges
        if histograms:
            snapshot["histograms"] = histograms
        return snapshot

    def snapshot(self) -> dict:
        """Every instrument, JSON-ready."""
        return self._snapshot(include_volatile=None)

    def deterministic_snapshot(self) -> dict:
        """Only instruments that are pure functions of (seed, config)."""
        return self._snapshot(include_volatile=False)

    def volatile_snapshot(self) -> dict:
        """Only the wall-clock/environment-dependent instruments."""
        return self._snapshot(include_volatile=True)

    def render_prometheus(self) -> str:
        """Prometheus text exposition, deterministically ordered."""
        lines: List[str] = []

        def header(family: str, mtype: str) -> None:
            help_text = self._help_for(family)
            if help_text:
                lines.append(
                    f"# HELP {family} {_escape_help(help_text)}"
                )
            lines.append(f"# TYPE {family} {mtype}")

        for table, mtype in (
            (self._counters, "counter"),
            (self._gauges, "gauge"),
        ):
            families = sorted({name for name, _ in table})
            for family in families:
                header(family, mtype)
                for key in sorted(k for k in table if k[0] == family):
                    value = table[key].value
                    lines.append(f"{self._render_key(key)} {value}")
        for family in sorted({name for name, _ in self._histograms}):
            header(family, "histogram")
            for key in sorted(
                k for k in self._histograms if k[0] == family
            ):
                histogram = self._histograms[key]
                name, labels = key
                cumulative = 0
                for bound, count in zip(
                    histogram.bounds, histogram.bucket_counts
                ):
                    cumulative += count
                    le = (f"{bound:g}",)
                    bucket_key = (
                        f"{name}_bucket",
                        labels + (("le", le[0]),),
                    )
                    lines.append(
                        f"{self._render_key(bucket_key)} {cumulative}"
                    )
                cumulative += histogram.bucket_counts[-1]
                inf_key = (f"{name}_bucket", labels + (("le", "+Inf"),))
                lines.append(f"{self._render_key(inf_key)} {cumulative}")
                lines.append(
                    f"{self._render_key((f'{name}_sum', labels))} "
                    f"{histogram.total:g}"
                )
                lines.append(
                    f"{self._render_key((f'{name}_count', labels))} "
                    f"{histogram.count}"
                )
        return "\n".join(lines) + ("\n" if lines else "")


#: Shared no-op registry — the library-wide default.
NULL_METRICS = NullMetrics()
