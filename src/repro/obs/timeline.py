"""The telemetry timeline: a persistent time-series over runs and benches.

Every experiments run leaves a deterministic ``manifest.json`` plus a
volatile ``timings.json``, and every bench invocation a ``BENCH_*.json``
with a per-fingerprint ``trajectory`` — but until now each snapshot died
with its file: nothing joined "this run took 12 s at 81 MiB" to "the
same config took 9 s last month".  :class:`TimelineStore` indexes those
facts into one SQLite time-series table, a sibling of the repository's
run index with the same **pure cache** contract: the run directories
and bench JSON files on disk are the source of truth, deleting the
SQLite file loses nothing, and :meth:`rebuild` recreates a
query-identical store (timestamps derive from file mtimes and the bench
entries' own ``recorded_unix`` stamps, so even they survive a rebuild).

Two entry sources:

* ``run`` — one entry per ``run-<hash>/`` directory: the manifest's
  fidelity verdict counts and deterministic-metrics digest plus the
  sidecar's per-stage wall clock;
* ``bench`` — one entry per *trajectory position* per bench JSON file
  (the scheduler's ``bench/`` products and any committed
  ``BENCH_*.json`` handed to the constructor): fingerprint, scale,
  per-stage timings, peak RSS, and — for the file's freshest entry —
  the six output digests.

Entries sharing one measurement configuration share a ``series_key``
(a content hash of the config axes: source, scale, seed, domains,
wan_rounds, scenario, epoch plan/index, experiment subset).  A series
ordered by ``recorded_at`` is a **trajectory** — what the regression
sentinel (:mod:`repro.obs.sentinel`) judges and the dashboard
(:mod:`repro.obs.dashboard`) sparklines.
"""

from __future__ import annotations

import hashlib
import json
import logging
import sqlite3
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Union

logger = logging.getLogger(__name__)

#: Timeline filename inside the repository root.  Dot-prefixed so the
#: run-dir globs never mistake it for a result.
TIMELINE_FILENAME = ".repro-timeline.sqlite"

#: Schema of the *timeline index* (not of the files it caches).
#: Bumping it invalidates old stores, which simply rebuild from disk.
_TIMELINE_SCHEMA = 1

#: Bench files the sentinel wrote, living next to real bench output —
#: never timeline input.
_REGRESSIONS_SUFFIX = ".regressions.json"

_TABLES = """
CREATE TABLE IF NOT EXISTS meta (
    key TEXT PRIMARY KEY, value TEXT NOT NULL);
CREATE TABLE IF NOT EXISTS entries (
    entry_id TEXT PRIMARY KEY,
    source TEXT NOT NULL,
    origin TEXT NOT NULL,
    position INTEGER NOT NULL,
    series_key TEXT NOT NULL,
    fingerprint TEXT,
    scale TEXT,
    seed INTEGER,
    domains INTEGER,
    wan_rounds INTEGER,
    scenario TEXT,
    epoch_plan TEXT,
    epoch_index INTEGER,
    recorded_at REAL NOT NULL,
    fidelity_status TEXT,
    fidelity_counts TEXT NOT NULL,
    timings TEXT NOT NULL,
    rss_high_water_kib INTEGER,
    digests TEXT NOT NULL,
    metrics_digest TEXT,
    extra TEXT NOT NULL);
CREATE INDEX IF NOT EXISTS entries_series
    ON entries (series_key, recorded_at, position, entry_id);
"""


def _canonical_digest(value: object) -> str:
    """A short, stable content hash of any JSON-ready value."""
    encoded = json.dumps(
        value, sort_keys=True, separators=(",", ":"), default=str
    )
    return hashlib.sha256(encoded.encode()).hexdigest()[:16]


@dataclass(frozen=True)
class TimelineEntry:
    """One telemetry snapshot — a point on some config's trajectory."""

    entry_id: str
    source: str  # "run" | "bench"
    origin: str  # file or directory the entry was read from
    position: int  # trajectory position within the origin file
    series_key: str
    fingerprint: Optional[str]
    scale: Optional[str]
    seed: Optional[int]
    domains: Optional[int]
    wan_rounds: Optional[int]
    scenario: Optional[str]
    epoch_plan: Optional[str]
    epoch_index: Optional[int]
    recorded_at: float
    fidelity_status: Optional[str]
    fidelity_counts: Dict[str, int] = field(default_factory=dict)
    #: Per-stage wall clock, ``<stage>_s`` keys plus ``total_s``.
    timings: Dict[str, float] = field(default_factory=dict)
    rss_high_water_kib: Optional[int] = None
    #: Output digests (bench entries only, freshest position).
    digests: Dict[str, str] = field(default_factory=dict)
    #: Content hash of the run's deterministic metrics snapshot.
    metrics_digest: Optional[str] = None
    extra: Dict[str, object] = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "entry_id": self.entry_id,
            "source": self.source,
            "origin": self.origin,
            "position": self.position,
            "series_key": self.series_key,
            "fingerprint": self.fingerprint,
            "scale": self.scale,
            "seed": self.seed,
            "domains": self.domains,
            "wan_rounds": self.wan_rounds,
            "scenario": self.scenario,
            "epoch_plan": self.epoch_plan,
            "epoch_index": self.epoch_index,
            "recorded_at": self.recorded_at,
            "fidelity_status": self.fidelity_status,
            "fidelity_counts": dict(self.fidelity_counts),
            "timings": dict(self.timings),
            "rss_high_water_kib": self.rss_high_water_kib,
            "digests": dict(self.digests),
            "metrics_digest": self.metrics_digest,
            "extra": dict(self.extra),
        }

    def label(self) -> str:
        """A short human identity for reports and findings."""
        parts = [self.source]
        if self.scale:
            parts.append(self.scale)
        if self.seed is not None:
            parts.append(f"seed={self.seed}")
        if self.domains is not None:
            parts.append(f"domains={self.domains}")
        if self.scenario:
            parts.append(self.scenario)
        if self.epoch_plan:
            parts.append(f"{self.epoch_plan}#{self.epoch_index}")
        return " ".join(parts)


def _series_key(axes: Dict[str, object]) -> str:
    return _canonical_digest(axes)


# -- extraction from the two source formats ----------------------------


def entry_from_run_dir(run_dir: Union[str, Path]) -> TimelineEntry:
    """One timeline entry from a ``run-<hash>/`` directory.

    Raises ``OSError``/``ValueError`` on corrupt directories, same
    contract as the repository's manifest loader.
    """
    from repro.experiments.manifest import LoadedRun

    run_dir = Path(run_dir)
    loaded = LoadedRun.from_dir(run_dir)
    manifest = loaded.manifest
    config = manifest.get("config") or {}
    fidelity = manifest.get("fidelity") or {}
    epoch = config.get("epoch") or {}
    stages = (loaded.timings or {}).get("stages_s") or {}
    timings = {
        name: float(seconds) for name, seconds in sorted(stages.items())
    }
    if timings:
        timings["total_s"] = round(sum(timings.values()), 3)
    experiments = [
        str(e) for e in (config.get("experiments") or [])
    ]
    timings_path = run_dir / "timings.json"
    stat_source = (
        timings_path if timings_path.is_file()
        else run_dir / "manifest.json"
    )
    recorded_at = stat_source.stat().st_mtime
    axes = {
        "source": "run",
        "seed": config.get("seed"),
        "domains": config.get("domains"),
        "wan_rounds": config.get("wan_rounds"),
        "scenario": manifest.get("scenario"),
        "epoch_plan": epoch.get("plan"),
        "epoch_index": epoch.get("index"),
        "experiments": experiments,
    }
    return TimelineEntry(
        entry_id=f"run:{manifest['run_id']}",
        source="run",
        origin=str(run_dir),
        position=0,
        series_key=_series_key(axes),
        fingerprint=manifest.get("code_fingerprint"),
        scale=None,
        seed=config.get("seed"),
        domains=config.get("domains"),
        wan_rounds=config.get("wan_rounds"),
        scenario=manifest.get("scenario"),
        epoch_plan=epoch.get("plan"),
        epoch_index=epoch.get("index"),
        recorded_at=recorded_at,
        fidelity_status=fidelity.get("status"),
        fidelity_counts={
            k: int(v)
            for k, v in (fidelity.get("counts") or {}).items()
        },
        timings=timings,
        rss_high_water_kib=None,
        digests={},
        metrics_digest=_canonical_digest(manifest.get("metrics") or {}),
        extra={
            "run_id": manifest["run_id"],
            "experiments": experiments,
            "job": (loaded.timings or {}).get("job"),
        },
    )


def _entry_rss(entry: dict) -> Optional[int]:
    """Peak RSS from a trajectory entry, tolerating the two historic
    layouts (``rss_high_water_kib`` number, older ``rss_peak_kib``
    number-or-dict)."""
    value = entry.get("rss_high_water_kib", entry.get("rss_peak_kib"))
    if isinstance(value, dict):
        numbers = [v for v in value.values() if isinstance(v, (int, float))]
        return int(max(numbers)) if numbers else None
    if isinstance(value, (int, float)):
        return int(value)
    return None


def entries_from_bench_file(
    path: Union[str, Path]
) -> List[TimelineEntry]:
    """One timeline entry per trajectory position of a bench JSON file.

    The file-level digests attach to the freshest (last) position —
    older trajectory entries predate the file and carry timings only.
    Raises ``OSError``/``ValueError`` on unreadable or non-bench JSON.
    """
    path = Path(path)
    with path.open() as fh:
        payload = json.load(fh)
    if not isinstance(payload, dict) or "trajectory" not in payload:
        raise ValueError(f"{path} is not a bench file (no trajectory)")
    bench = payload.get("bench") or {}
    trajectory = payload.get("trajectory") or []
    if not isinstance(trajectory, list):
        raise ValueError(f"{path} trajectory is not a list")
    file_mtime = path.stat().st_mtime
    file_token = hashlib.sha256(
        str(path.resolve()).encode()
    ).hexdigest()[:12]
    axes = {
        "source": "bench",
        "scale": bench.get("scale"),
        "seed": bench.get("seed"),
        "domains": bench.get("domains"),
        "wan_rounds": bench.get("wan_rounds"),
    }
    series_key = _series_key(axes)
    entries: List[TimelineEntry] = []
    last = len(trajectory) - 1
    # Trajectory order is ground truth.  Entries without their own
    # recorded_unix stamp fall back to the file mtime, which postdates
    # every stamped entry — so recorded_at is clamped non-decreasing
    # along positions, keeping recorded_at ordering consistent with
    # position ordering within one file.
    floor = 0.0
    for position, step in enumerate(trajectory):
        if not isinstance(step, dict):
            raise ValueError(
                f"{path} trajectory[{position}] is not an object"
            )
        timings = {
            name: float(seconds)
            for name, seconds in sorted(
                (step.get("timings_s") or {}).items()
            )
        }
        recorded = step.get("recorded_unix")
        recorded_at = (
            float(recorded)
            if isinstance(recorded, (int, float)) else file_mtime
        )
        recorded_at = floor = max(recorded_at, floor)
        entries.append(TimelineEntry(
            entry_id=f"bench:{file_token}:{position:03d}",
            source="bench",
            origin=str(path),
            position=position,
            series_key=series_key,
            fingerprint=step.get("fingerprint"),
            scale=step.get("scale") or bench.get("scale"),
            seed=bench.get("seed"),
            domains=bench.get("domains"),
            wan_rounds=bench.get("wan_rounds"),
            scenario=None,
            epoch_plan=None,
            epoch_index=None,
            recorded_at=recorded_at,
            fidelity_status=None,
            fidelity_counts={},
            timings=timings,
            rss_high_water_kib=_entry_rss(step),
            digests=(
                dict(payload.get("digests") or {})
                if position == last else {}
            ),
            metrics_digest=None,
            extra={
                "file": path.name,
                "workers": bench.get("workers"),
            },
        ))
    return entries


# -- the store ---------------------------------------------------------


@dataclass
class TimelineScanReport:
    """What one :meth:`TimelineStore.scan` pass found."""

    entries: int = 0
    runs: int = 0
    benches: int = 0
    skipped: List[Dict[str, str]] = field(default_factory=list)

    def as_dict(self) -> dict:
        return {
            "entries": self.entries,
            "runs": self.runs,
            "benches": self.benches,
            "skipped": list(self.skipped),
        }


class TimelineStore:
    """SQLite-indexed telemetry trajectories over one repository root.

    ``bench_paths`` names bench JSON files *outside* the root (the
    committed ``BENCH_*.json`` family) to fold into every scan; the
    root's own ``bench/`` products are always included.
    """

    def __init__(
        self,
        root: Union[str, Path],
        db_path: Optional[Union[str, Path]] = None,
        bench_paths: Sequence[Union[str, Path]] = (),
    ):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.db_path = (
            Path(db_path) if db_path is not None
            else self.root / TIMELINE_FILENAME
        )
        self.bench_paths = [Path(p) for p in bench_paths]
        self._lock = threading.RLock()
        self._conn = self._connect()

    # -- lifecycle -----------------------------------------------------

    def _connect(self) -> sqlite3.Connection:
        conn = sqlite3.connect(self.db_path, check_same_thread=False)
        try:
            conn.executescript(_TABLES)
            row = conn.execute(
                "SELECT value FROM meta WHERE key = 'timeline_schema'"
            ).fetchone()
        except sqlite3.DatabaseError:
            # A corrupt store is only a cache: drop it and start over.
            conn.close()
            self.db_path.unlink()
            conn = sqlite3.connect(self.db_path, check_same_thread=False)
            conn.executescript(_TABLES)
            row = None
        if row is not None and int(row[0]) != _TIMELINE_SCHEMA:
            conn.close()
            self.db_path.unlink()
            conn = sqlite3.connect(self.db_path, check_same_thread=False)
            conn.executescript(_TABLES)
            row = None
        if row is None:
            conn.execute(
                "INSERT OR REPLACE INTO meta VALUES "
                "('timeline_schema', ?)",
                (str(_TIMELINE_SCHEMA),),
            )
            conn.commit()
        return conn

    def _ensure_store(self) -> None:
        """Reconnect if the store file was deleted out from under a
        live instance — it is only a cache."""
        if not self.db_path.exists():
            self._conn.close()
            self._conn = self._connect()

    def close(self) -> None:
        with self._lock:
            self._conn.close()

    def __enter__(self) -> "TimelineStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- ingestion -----------------------------------------------------

    def _bench_files(self) -> List[Path]:
        files = sorted(
            p for p in (self.root / "bench").glob("*.json")
            if not p.name.endswith(_REGRESSIONS_SUFFIX)
        )
        for extra in self.bench_paths:
            if extra not in files:
                files.append(extra)
        return files

    def scan(self) -> TimelineScanReport:
        """Re-index every run dir and bench file from disk (rows for
        vanished sources are dropped, every surviving one re-read)."""
        report = TimelineScanReport()
        entries: List[TimelineEntry] = []
        for run_dir in sorted(self.root.glob("run-*")):
            if not run_dir.is_dir():
                continue
            try:
                entries.append(entry_from_run_dir(run_dir))
                report.runs += 1
            except (OSError, ValueError) as error:
                logger.warning(
                    "timeline: skipping run dir %s: %s", run_dir, error
                )
                report.skipped.append(
                    {"path": str(run_dir), "reason": str(error)}
                )
        for bench_file in self._bench_files():
            try:
                entries.extend(entries_from_bench_file(bench_file))
                report.benches += 1
            except (OSError, ValueError) as error:
                logger.warning(
                    "timeline: skipping bench file %s: %s",
                    bench_file, error,
                )
                report.skipped.append(
                    {"path": str(bench_file), "reason": str(error)}
                )
        with self._lock:
            self._ensure_store()
            cursor = self._conn.cursor()
            cursor.execute("DELETE FROM entries")
            for entry in entries:
                self._insert(cursor, entry)
            self._conn.commit()
        report.entries = len(entries)
        return report

    def rebuild(self) -> TimelineScanReport:
        """Drop the SQLite file entirely and re-create it from disk."""
        with self._lock:
            self._conn.close()
            if self.db_path.exists():
                self.db_path.unlink()
            self._conn = self._connect()
        return self.scan()

    def record_run(self, run_dir: Union[str, Path]) -> TimelineEntry:
        """Index (or refresh) one run directory; raises on corrupt
        input — targeted recording is for the writer that just
        produced the directory."""
        entry = entry_from_run_dir(run_dir)
        self._upsert([entry])
        return entry

    def record_bench(
        self, path: Union[str, Path]
    ) -> List[TimelineEntry]:
        """Index (or refresh) one bench JSON file's trajectory."""
        entries = entries_from_bench_file(path)
        self._upsert(entries)
        return entries

    def _upsert(self, entries: Iterable[TimelineEntry]) -> None:
        with self._lock:
            self._ensure_store()
            cursor = self._conn.cursor()
            for entry in entries:
                self._insert(cursor, entry)
            self._conn.commit()

    @staticmethod
    def _insert(cursor, entry: TimelineEntry) -> None:
        cursor.execute(
            "INSERT OR REPLACE INTO entries VALUES "
            "(?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, "
            "?, ?, ?)",
            (
                entry.entry_id, entry.source, entry.origin,
                entry.position, entry.series_key, entry.fingerprint,
                entry.scale, entry.seed, entry.domains,
                entry.wan_rounds, entry.scenario, entry.epoch_plan,
                entry.epoch_index, entry.recorded_at,
                entry.fidelity_status,
                json.dumps(entry.fidelity_counts, sort_keys=True),
                json.dumps(entry.timings, sort_keys=True),
                entry.rss_high_water_kib,
                json.dumps(entry.digests, sort_keys=True),
                entry.metrics_digest,
                json.dumps(entry.extra, sort_keys=True, default=str),
            ),
        )

    # -- queries -------------------------------------------------------

    @staticmethod
    def _entry_from_row(row) -> TimelineEntry:
        return TimelineEntry(
            entry_id=row[0], source=row[1], origin=row[2],
            position=row[3], series_key=row[4], fingerprint=row[5],
            scale=row[6], seed=row[7], domains=row[8],
            wan_rounds=row[9], scenario=row[10], epoch_plan=row[11],
            epoch_index=row[12], recorded_at=row[13],
            fidelity_status=row[14],
            fidelity_counts=json.loads(row[15]),
            timings=json.loads(row[16]),
            rss_high_water_kib=row[17],
            digests=json.loads(row[18]),
            metrics_digest=row[19],
            extra=json.loads(row[20]),
        )

    def entries(
        self,
        source: Optional[str] = None,
        series_key: Optional[str] = None,
        scale: Optional[str] = None,
        scenario: Optional[str] = None,
        fingerprint: Optional[str] = None,
        limit: Optional[int] = None,
    ) -> List[TimelineEntry]:
        """Entries matching every given filter, trajectory order
        (recorded_at, then position, then id — deterministic given the
        same files on disk)."""
        clauses, params = [], []
        for column, value in (
            ("source", source), ("series_key", series_key),
            ("scale", scale), ("scenario", scenario),
            ("fingerprint", fingerprint),
        ):
            if value is not None:
                clauses.append(f"{column} = ?")
                params.append(value)
        sql = "SELECT * FROM entries"
        if clauses:
            sql += " WHERE " + " AND ".join(clauses)
        sql += " ORDER BY recorded_at, position, entry_id"
        if limit is not None:
            sql += " LIMIT ?"
            params.append(limit)
        with self._lock:
            self._ensure_store()
            rows = self._conn.execute(sql, params).fetchall()
        return [self._entry_from_row(row) for row in rows]

    def series_keys(self) -> List[str]:
        """Every distinct trajectory, ordered by each one's first
        entry (so reports list stable, oldest-first sections)."""
        with self._lock:
            self._ensure_store()
            rows = self._conn.execute(
                "SELECT series_key, MIN(recorded_at), MIN(entry_id) "
                "FROM entries GROUP BY series_key "
                "ORDER BY 2, 3"
            ).fetchall()
        return [row[0] for row in rows]

    def trajectory(self, series_key: str) -> List[TimelineEntry]:
        """One config's entries, oldest first."""
        return self.entries(series_key=series_key)

    def counts(self) -> Dict[str, int]:
        """Cardinalities for ``/health`` and ``/metrics``."""
        with self._lock:
            self._ensure_store()
            total = self._conn.execute(
                "SELECT COUNT(*) FROM entries"
            ).fetchone()[0]
            by_source = dict(self._conn.execute(
                "SELECT source, COUNT(*) FROM entries GROUP BY source"
            ).fetchall())
            series = self._conn.execute(
                "SELECT COUNT(DISTINCT series_key) FROM entries"
            ).fetchone()[0]
        return {
            "entries": total,
            "run_entries": int(by_source.get("run", 0)),
            "bench_entries": int(by_source.get("bench", 0)),
            "series_keys": series,
        }
