"""Timeline rendering: the ``repro report`` text view and the
service's stdlib-only ``/dashboard`` HTML.

Both views read straight from a :class:`~repro.obs.timeline.
TimelineStore` and show the same facts: one section per trajectory
(config series) with per-stage timing sparklines, the peak-RSS
trajectory, the fidelity verdict history, and — for longitudinal runs —
an epoch trend table.  The HTML is a ``<pre>``-heavy single page with
no scripts, no external assets, and every dynamic string escaped; it
exists so a browser pointed at a long-running ``repro serve`` can see
the service's performance history without tooling.
"""

from __future__ import annotations

import html
from typing import Dict, List, Optional

from repro.obs.sentinel import SentinelReport
from repro.obs.timeline import TimelineEntry, TimelineStore
from repro.report.ascii_plot import sparkline

#: Fidelity statuses compressed to one history letter each.
_STATUS_LETTERS = {
    "match": "M", "drift": "d", "missing": "m",
    "divergent": "X", "exempt": "e",
}

#: Sparkline width: trajectories longer than this show their freshest
#: points only.
_SPARK_WIDTH = 40


def _fmt_seconds(value: Optional[float]) -> str:
    return f"{value:.3f}s" if isinstance(value, (int, float)) else "-"


def _stage_names(trajectory: List[TimelineEntry]) -> List[str]:
    names: List[str] = []
    for entry in trajectory:
        for name in entry.timings:
            if name != "total_s" and name not in names:
                names.append(name)
    names.sort()
    names.append("total_s")
    return names


def render_series(trajectory: List[TimelineEntry]) -> str:
    """One trajectory as a text section (sparklines + latest values)."""
    if not trajectory:
        return "(empty trajectory)"
    latest = trajectory[-1]
    lines = [
        f"{latest.label()}  — {len(trajectory)} entr"
        f"{'y' if len(trajectory) == 1 else 'ies'}"
        f"  [series {latest.series_key}]"
    ]
    for stage in _stage_names(trajectory):
        values = [
            e.timings[stage] for e in trajectory if stage in e.timings
        ]
        if not values:
            continue
        lines.append(
            f"  {stage:<22s} {sparkline(values, _SPARK_WIDTH):<{_SPARK_WIDTH}s}"
            f"  {_fmt_seconds(values[-1])}"
        )
    rss = [
        e.rss_high_water_kib for e in trajectory
        if e.rss_high_water_kib
    ]
    if rss:
        lines.append(
            f"  {'rss_high_water':<22s} "
            f"{sparkline(rss, _SPARK_WIDTH):<{_SPARK_WIDTH}s}"
            f"  {rss[-1] / 1024:.0f} MiB"
        )
    history = "".join(
        _STATUS_LETTERS.get(e.fidelity_status or "", "·")
        for e in trajectory
    )
    if history.strip("·"):
        lines.append(
            f"  {'fidelity':<22s} {history:<{_SPARK_WIDTH}s}"
            f"  {latest.fidelity_status or '-'}"
        )
    fingerprints = [
        e.fingerprint for e in trajectory if e.fingerprint
    ]
    if fingerprints:
        changes = sum(
            1 for a, b in zip(fingerprints, fingerprints[1:]) if a != b
        )
        lines.append(
            f"  {'code':<22s} {fingerprints[-1]}"
            + (f"  ({changes} fingerprint change"
               f"{'' if changes == 1 else 's'})" if changes else "")
        )
    return "\n".join(lines)


def epoch_trend_rows(
    store: TimelineStore,
) -> List[Dict[str, object]]:
    """Longitudinal runs folded into (plan, epoch) trend rows."""
    rows: List[Dict[str, object]] = []
    for entry in store.entries(source="run"):
        if entry.epoch_plan is None:
            continue
        rows.append({
            "plan": entry.epoch_plan,
            "epoch": entry.epoch_index,
            "fidelity": entry.fidelity_status or "-",
            "total_s": entry.timings.get("total_s"),
            "scenario": entry.scenario or "-",
        })
    rows.sort(key=lambda r: (r["plan"], r["epoch"] or 0))
    return rows


def render_report(
    store: TimelineStore,
    reports: Optional[List[SentinelReport]] = None,
) -> str:
    """The full ``repro report`` text: per-trajectory sections, the
    epoch trend table, and (when given) the sentinel's verdicts."""
    counts = store.counts()
    lines = [
        "telemetry timeline — "
        f"{counts['entries']} entries "
        f"({counts['run_entries']} runs, "
        f"{counts['bench_entries']} bench) across "
        f"{counts['series_keys']} trajectories",
        "",
    ]
    for series_key in store.series_keys():
        lines.append(render_series(store.trajectory(series_key)))
        lines.append("")
    epochs = epoch_trend_rows(store)
    if epochs:
        from repro.report.table import TextTable

        table = TextTable(
            ["Plan", "Epoch", "Fidelity", "Total", "Scenario"],
            title="Epoch trends",
        )
        for row in epochs:
            table.add_row([
                row["plan"],
                row["epoch"] if row["epoch"] is not None else 0,
                row["fidelity"],
                _fmt_seconds(row["total_s"]),
                row["scenario"],
            ])
        lines.append(table.render())
        lines.append("")
    if reports is not None:
        lines.append(
            "sentinel: "
            + (f"{len(reports)} trajectories judged"
               if reports else "nothing to judge "
                               "(no trajectory has two entries yet)")
        )
        for report in reports:
            lines.append(report.render_text())
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"


def render_html(
    store: TimelineStore,
    reports: Optional[List[SentinelReport]] = None,
    health: Optional[dict] = None,
) -> str:
    """The ``/dashboard`` page: the text report inside a minimal,
    script-free HTML shell (everything dynamic escaped)."""
    body_sections = []
    if health:
        items = "".join(
            f"<li><b>{html.escape(str(k))}</b>: "
            f"{html.escape(str(v))}</li>"
            for k, v in sorted(health.items())
        )
        body_sections.append(f"<ul>{items}</ul>")
    status = (
        max(
            (r.status for r in reports),
            key=("match", "drift", "divergent").index,
        )
        if reports else "match"
    )
    badge_class = {"match": "ok", "drift": "warn",
                   "divergent": "bad"}[status]
    body_sections.append(
        f'<p>sentinel status: <span class="badge {badge_class}">'
        f"{html.escape(status)}</span></p>"
    )
    body_sections.append(
        "<pre>" + html.escape(render_report(store, reports)) + "</pre>"
    )
    return (
        "<!DOCTYPE html>\n"
        "<html><head><meta charset=\"utf-8\">"
        "<title>repro watchtower</title>"
        "<style>"
        "body{font-family:monospace;margin:2em;background:#fdfdfd;}"
        "pre{line-height:1.35;}"
        ".badge{padding:2px 8px;border-radius:4px;color:#fff;}"
        ".ok{background:#2e7d32;}"
        ".warn{background:#f9a825;}"
        ".bad{background:#c62828;}"
        "</style></head><body>"
        "<h1>repro watchtower</h1>"
        + "".join(body_sections)
        + "</body></html>\n"
    )
