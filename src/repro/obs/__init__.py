"""repro.obs — the deterministic observability plane.

Three instruments, one aggregate:

* :class:`~repro.obs.trace.Tracer` — hierarchical timed spans
  (dataset build phases, engine grids/shards, artifact-store get/put,
  experiment spec runs), exportable as a human-readable tree or Chrome
  ``trace_event`` JSON;
* :class:`~repro.obs.metrics.MetricsRegistry` — counters, gauges and
  histograms with Prometheus text exposition and JSON snapshots split
  into deterministic vs volatile halves;
* :class:`~repro.obs.events.EventSink` — opt-in NDJSON probe-level
  event logs, merged in grid order under sharding.

:class:`Observability` bundles the three; the module-level :data:`NOOP`
is the library default (every instrument a shared null object), so
un-instrumented code paths pay only a truthiness check.  Instrumented
values never reach artifact keys, output digests, or RNG streams —
observability is strictly read-only with respect to the simulation.

The package also owns library-safe logging: :func:`configure_logging`
wires the package-level ``repro`` logger (which carries only a
``NullHandler`` by default, per library convention) to stderr at a
verbosity the CLI's ``--verbose``/``--quiet`` flags select.
"""

from __future__ import annotations

import logging
import sys
from dataclasses import dataclass, field
from typing import Optional, Union

from repro.obs.events import NULL_SINK, EventSink, NullEventSink
from repro.obs.metrics import (
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetrics,
)
from repro.obs.trace import NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "Observability",
    "NOOP",
    "Tracer",
    "NullTracer",
    "Span",
    "MetricsRegistry",
    "NullMetrics",
    "Counter",
    "Gauge",
    "Histogram",
    "EventSink",
    "NullEventSink",
    "configure_logging",
]


@dataclass
class Observability:
    """One run's tracer + metrics registry + event sink."""

    tracer: Union[Tracer, NullTracer] = field(
        default_factory=lambda: NULL_TRACER
    )
    metrics: Union[MetricsRegistry, NullMetrics] = field(
        default_factory=lambda: NULL_METRICS
    )
    events: Union[EventSink, NullEventSink] = field(
        default_factory=lambda: NULL_SINK
    )

    @classmethod
    def collecting(cls, events: bool = False) -> "Observability":
        """A live tracer + metrics registry (+ event sink on request)."""
        return cls(
            tracer=Tracer(),
            metrics=MetricsRegistry(),
            events=EventSink() if events else NULL_SINK,
        )

    @property
    def enabled(self) -> bool:
        return (
            self.tracer.enabled
            or self.metrics.enabled
            or self.events.enabled
        )

    def install_rng_counter(self):
        """Count :func:`repro.sim.derive_rng` derivations into this
        registry (a volatile metric: forked workers' counts never
        propagate back).  Returns the previously installed observer so
        callers can restore it in a ``finally``."""
        from repro.sim import set_rng_observer

        if not self.metrics.enabled:
            return set_rng_observer(None)
        counter = self.metrics.counter(
            "rng_derivations_total", volatile=True
        )
        return set_rng_observer(counter.inc)


#: The shared zero-cost default: all three instruments are null objects.
NOOP = Observability()


def configure_logging(
    verbose: int = 0, quiet: bool = False, stream=None
) -> logging.Logger:
    """Point the package-level ``repro`` logger at a stream handler.

    ``verbose=0`` keeps WARNING (the library default once a handler is
    attached), ``verbose=1`` enables INFO, ``verbose>=2`` DEBUG, and
    ``quiet`` drops to ERROR.  Re-invocation replaces the previously
    configured handler instead of stacking duplicates; the import-time
    ``NullHandler`` is left alone so the logger stays library-safe when
    this is never called.
    """
    logger = logging.getLogger("repro")
    if quiet:
        level = logging.ERROR
    elif verbose >= 2:
        level = logging.DEBUG
    elif verbose == 1:
        level = logging.INFO
    else:
        level = logging.WARNING
    for handler in list(logger.handlers):
        if not isinstance(handler, logging.NullHandler):
            logger.removeHandler(handler)
    handler = logging.StreamHandler(stream or sys.stderr)
    handler.setFormatter(
        logging.Formatter("%(name)s [%(levelname)s] %(message)s")
    )
    logger.addHandler(handler)
    logger.setLevel(level)
    return logger
