"""Hierarchical tracing: nested timed spans over the pipeline.

A :class:`Tracer` records a forest of :class:`Span` objects — one per
``with tracer.span(...)`` block — nested by dynamic scope.  Spans carry
a name, a category (the aggregation axis: ``stage``, ``dataset-step``,
``campaign``, ``shard``, ``artifact``, ``experiment``), a start offset
relative to the tracer's epoch, a duration, and free-form metadata.

Two exports cover the two consumers:

* :meth:`Tracer.render_tree` — an indented human-readable tree with
  durations, for terminal inspection;
* :meth:`Tracer.chrome_trace` — Chrome ``trace_event`` JSON (load it in
  ``chrome://tracing`` or Perfetto), written by
  :meth:`Tracer.write_chrome` behind the CLI's ``--trace-out``.

The default tracer everywhere in the library is the shared
:data:`NULL_TRACER`: its :meth:`~NullTracer.span` returns one reusable
no-op context manager, so un-instrumented runs pay a single attribute
load and truthiness check per would-be span.  Wall-clock values live
only inside span objects — they never feed artifact keys, digests, or
RNG streams.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union


@dataclass
class Span:
    """One timed scope: name, category, offsets, metadata, children."""

    name: str
    category: str
    #: Seconds since the owning tracer's epoch.
    start_s: float
    #: Filled when the scope exits (None while open).
    duration_s: Optional[float] = None
    meta: Dict[str, object] = field(default_factory=dict)
    children: List["Span"] = field(default_factory=list)

    def walk(self):
        yield self
        for child in self.children:
            yield from child.walk()


class _SpanScope:
    """Context manager closing one span on exit."""

    __slots__ = ("_tracer", "span")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self.span = span

    def __enter__(self) -> Span:
        return self.span

    def __exit__(self, *exc) -> bool:
        self._tracer._finish(self.span)
        return False


class _NullScope:
    """The single reusable scope the null tracer hands out."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SCOPE = _NullScope()


class NullTracer:
    """The zero-cost default: every operation is a no-op."""

    enabled = False
    roots: tuple = ()

    def span(self, name: str, category: str = "", **meta) -> _NullScope:
        return _NULL_SCOPE

    def record(
        self, name: str, category: str = "", seconds: float = 0.0, **meta
    ) -> None:
        return None

    def seconds_by_name(self, category: str) -> Dict[str, float]:
        return {}

    def render_tree(self) -> str:
        return ""

    def chrome_trace(self) -> dict:
        return {"traceEvents": []}


class Tracer:
    """Collects a forest of nested timed spans."""

    enabled = True

    def __init__(self) -> None:
        self._clock = time.perf_counter
        self._epoch = self._clock()
        self.roots: List[Span] = []
        self._stack: List[Span] = []

    # -- recording -----------------------------------------------------

    def span(self, name: str, category: str = "", **meta) -> _SpanScope:
        """Open a nested span; use as ``with tracer.span(...):``."""
        span = Span(
            name=name,
            category=category,
            start_s=self._clock() - self._epoch,
            meta=dict(meta) if meta else {},
        )
        parent = self._stack[-1] if self._stack else None
        (parent.children if parent is not None else self.roots).append(span)
        self._stack.append(span)
        return _SpanScope(self, span)

    def _finish(self, span: Span) -> None:
        if not self._stack or self._stack[-1] is not span:
            raise RuntimeError(
                f"span {span.name!r} closed out of LIFO order"
            )
        self._stack.pop()
        span.duration_s = (self._clock() - self._epoch) - span.start_s

    def record(
        self, name: str, category: str = "", seconds: float = 0.0, **meta
    ) -> Span:
        """Attach an already-measured span (e.g. a duration a forked
        worker reported back) at the current nesting level."""
        span = Span(
            name=name,
            category=category,
            start_s=self._clock() - self._epoch,
            duration_s=seconds,
            meta={"synthetic": True, **meta},
        )
        parent = self._stack[-1] if self._stack else None
        (parent.children if parent is not None else self.roots).append(span)
        return span

    # -- queries -------------------------------------------------------

    def walk(self):
        for root in self.roots:
            yield from root.walk()

    def seconds_by_name(self, category: str) -> Dict[str, float]:
        """Total closed-span seconds per name within one category."""
        totals: Dict[str, float] = {}
        for span in self.walk():
            if span.category == category and span.duration_s is not None:
                totals[span.name] = totals.get(span.name, 0.0) + (
                    span.duration_s
                )
        return totals

    # -- exports -------------------------------------------------------

    def render_tree(self) -> str:
        """The span forest as an indented, durations-annotated tree."""
        lines: List[str] = []

        def emit(span: Span, depth: int) -> None:
            duration = (
                f"{span.duration_s * 1000:.1f}ms"
                if span.duration_s is not None else "open"
            )
            label = f"[{span.category}] " if span.category else ""
            meta = "".join(
                f" {key}={value}"
                for key, value in span.meta.items()
                if key != "synthetic"
            )
            lines.append(
                f"{'  ' * depth}{label}{span.name}  {duration}{meta}"
            )
            for child in span.children:
                emit(child, depth + 1)

        for root in self.roots:
            emit(root, 0)
        return "\n".join(lines)

    def chrome_trace(self) -> dict:
        """The span forest in Chrome ``trace_event`` JSON form."""
        events: List[dict] = []
        for span in self.walk():
            if span.duration_s is None:
                continue
            events.append({
                "name": span.name,
                "cat": span.category or "span",
                "ph": "X",
                "ts": int(span.start_s * 1e6),
                "dur": int(span.duration_s * 1e6),
                "pid": 0,
                "tid": 0,
                "args": {
                    key: value for key, value in span.meta.items()
                },
            })
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write_chrome(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        if path.parent != Path(""):
            path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w") as fh:
            json.dump(self.chrome_trace(), fh, indent=2)
            fh.write("\n")
        return path


#: Shared no-op tracer — the library-wide default.
NULL_TRACER = NullTracer()
