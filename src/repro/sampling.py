"""Precompiled weighted sampling.

``random.Random.choices`` re-accumulates its weight list on every call,
which makes it O(len(population)) even for ``k=1`` draws.  The capture
generator draws one weighted client out of 1,500 tens of thousands of
times, so that re-accumulation dominated the capture stage.

:class:`WeightedChooser` compiles the cumulative weights once and then
replays CPython's own draw — ``population[bisect(cum_weights,
random() * total, 0, len - 1)]`` — so a chooser consumes exactly one
``random()`` call per draw and returns *bit-identical* picks to
``rng.choices(population, weights=weights, k=1)[0]``.  That equivalence
is what lets the capture keep its pre-optimisation byte streams; it is
pinned by a test against ``random.choices`` itself.

Two streaming-plane primitives live here too:

* :class:`IndexedWeightedChooser` — the same compiled draw over an
  *implicit* ``range(n)`` population with the cumulative weights packed
  into a C double array.  A million-client campus population costs 8
  bytes per client instead of a boxed float plus a name string, and the
  draw is bit-identical to a :class:`WeightedChooser` built from the
  same weights (same doubles, same bisect).
* :class:`BottomKReservoir` — a deterministic fixed-size distinct
  sample: every key hashes to a salted priority and the reservoir keeps
  the ``k`` smallest priorities seen.  Unlike Vitter's algorithm R it
  consumes no RNG stream and is *exactly* mergeable — the bottom-k of a
  union equals the merged bottom-k's of any partition, in any merge
  order — which is what lets time-window shards of the capture agree
  byte-for-byte with a sequential pass.
"""

from __future__ import annotations

import hashlib
import heapq
from array import array
from bisect import bisect
from itertools import accumulate
from random import Random
from typing import Generic, Iterable, List, Optional, Sequence, Tuple, TypeVar

T = TypeVar("T")


class WeightedChooser(Generic[T]):
    """One weighted population, compiled for repeated single draws."""

    __slots__ = ("population", "cum_weights", "total", "_hi")

    def __init__(self, population: Sequence[T], weights: Sequence[float]):
        if len(population) != len(weights):
            raise ValueError(
                "population and weights must have the same length"
            )
        if not population:
            raise ValueError("population must not be empty")
        self.population: List[T] = list(population)
        self.cum_weights: List[float] = list(accumulate(weights))
        self.total: float = self.cum_weights[-1] + 0.0
        if self.total <= 0.0:
            raise ValueError("total of weights must be greater than zero")
        self._hi = len(self.population) - 1

    def choose(self, rng: Random) -> T:
        """One draw, bit-identical to ``rng.choices(pop, weights)[0]``."""
        return self.population[
            bisect(self.cum_weights, rng.random() * self.total, 0, self._hi)
        ]


class IndexedWeightedChooser:
    """Weighted draws over the implicit population ``range(n)``.

    Identical draw mechanics to :class:`WeightedChooser` — the same
    ``itertools.accumulate`` float sums, the same
    ``bisect(cum_weights, rng.random() * total, 0, n - 1)`` — but the
    cumulative weights live in a C double ``array`` and the population
    is never materialized.  ``array('d')`` stores the exact same IEEE
    doubles a float list holds, and :func:`bisect.bisect` compares the
    probe against them with the same ``<`` as it would against boxed
    floats, so for equal weight sequences the chosen *index* is
    bit-identical to the index a :class:`WeightedChooser` would pick.
    A campus population of millions of clients therefore costs 8 bytes
    per client; the caller formats a name from the index on demand.
    """

    __slots__ = ("cum_weights", "total", "_hi")

    def __init__(self, weights: Iterable[float]):
        self.cum_weights = array("d", accumulate(weights))
        if not len(self.cum_weights):
            raise ValueError("weights must not be empty")
        self.total: float = self.cum_weights[-1] + 0.0
        if self.total <= 0.0:
            raise ValueError("total of weights must be greater than zero")
        self._hi = len(self.cum_weights) - 1

    def __len__(self) -> int:
        return self._hi + 1

    def choose(self, rng: Random) -> int:
        """One draw; returns the chosen population index."""
        return bisect(
            self.cum_weights, rng.random() * self.total, 0, self._hi
        )


def _bottom_k_priority(salt: str, key: str) -> bytes:
    """Salted, stable priority for :class:`BottomKReservoir` keys."""
    return hashlib.sha256(f"{salt}|{key}".encode("utf-8")).digest()[:16]


class BottomKReservoir(Generic[T]):
    """Deterministic fixed-size distinct sample with exact merges.

    Keeps the ``k`` keys whose salted SHA-256 priorities are smallest.
    Because the priority is a pure function of the key, the reservoir
    consumes no RNG stream, offering the same key twice is a no-op, and
    merging is exact: the bottom-k of a union equals the bottom-k of
    the merged reservoirs regardless of how the input was partitioned
    or in what order partitions merge.  That invariance is what lets
    per-time-window capture shards produce the same sample a
    sequential pass does, byte for byte.

    Internally a max-heap over the kept priorities (stored as
    bit-complemented bytes so :mod:`heapq`'s min-heap surfaces the
    current *largest* kept priority at the root) gives O(log k)
    offers.
    """

    __slots__ = ("k", "salt", "_heap", "_kept")

    def __init__(self, k: int, salt: str = ""):
        if k < 1:
            raise ValueError(f"reservoir size must be positive: {k}")
        self.k = k
        self.salt = salt
        # Heap entries: (~priority bytes, key, payload).  Complemented
        # priorities invert the ordering, turning heapq into a
        # max-heap over the real priorities.
        self._heap: List[Tuple[bytes, str, T]] = []
        self._kept: dict = {}

    def __len__(self) -> int:
        return len(self._heap)

    def __contains__(self, key: str) -> bool:
        return key in self._kept

    def offer(self, key: str, payload: T = None) -> bool:
        """Consider ``key``; returns True if it is (now) in the sample."""
        if key in self._kept:
            return True
        priority = _bottom_k_priority(self.salt, key)
        inverted = bytes(255 - b for b in priority)
        if len(self._heap) < self.k:
            heapq.heappush(self._heap, (inverted, key, payload))
            self._kept[key] = payload
            return True
        root = self._heap[0]
        # root[0] is the complemented *largest* kept priority; a new
        # key wins when its priority is strictly smaller, i.e. its
        # complement is strictly larger.
        if inverted > root[0]:
            heapq.heapreplace(self._heap, (inverted, key, payload))
            del self._kept[root[1]]
            self._kept[key] = payload
            return True
        return False

    def merge(self, other: "BottomKReservoir[T]") -> None:
        """Fold another reservoir's kept keys into this one."""
        if other.salt != self.salt:
            raise ValueError(
                f"cannot merge reservoirs with different salts: "
                f"{self.salt!r} vs {other.salt!r}"
            )
        for _, key, payload in other._heap:
            self.offer(key, payload)

    def items(self) -> List[Tuple[str, T]]:
        """Kept (key, payload) pairs in ascending priority order."""
        ranked = sorted(self._heap, reverse=True)
        return [(key, payload) for _, key, payload in ranked]

    def keys(self) -> List[str]:
        return [key for key, _ in self.items()]
