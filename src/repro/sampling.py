"""Precompiled weighted sampling.

``random.Random.choices`` re-accumulates its weight list on every call,
which makes it O(len(population)) even for ``k=1`` draws.  The capture
generator draws one weighted client out of 1,500 tens of thousands of
times, so that re-accumulation dominated the capture stage.

:class:`WeightedChooser` compiles the cumulative weights once and then
replays CPython's own draw — ``population[bisect(cum_weights,
random() * total, 0, len - 1)]`` — so a chooser consumes exactly one
``random()`` call per draw and returns *bit-identical* picks to
``rng.choices(population, weights=weights, k=1)[0]``.  That equivalence
is what lets the capture keep its pre-optimisation byte streams; it is
pinned by a test against ``random.choices`` itself.
"""

from __future__ import annotations

from bisect import bisect
from itertools import accumulate
from random import Random
from typing import Generic, List, Sequence, TypeVar

T = TypeVar("T")


class WeightedChooser(Generic[T]):
    """One weighted population, compiled for repeated single draws."""

    __slots__ = ("population", "cum_weights", "total", "_hi")

    def __init__(self, population: Sequence[T], weights: Sequence[float]):
        if len(population) != len(weights):
            raise ValueError(
                "population and weights must have the same length"
            )
        if not population:
            raise ValueError("population must not be empty")
        self.population: List[T] = list(population)
        self.cum_weights: List[float] = list(accumulate(weights))
        self.total: float = self.cum_weights[-1] + 0.0
        if self.total <= 0.0:
            raise ValueError("total of weights must be greater than zero")
        self._hi = len(self.population) - 1

    def choose(self, rng: Random) -> T:
        """One draw, bit-identical to ``rng.choices(pop, weights)[0]``."""
        return self.population[
            bisect(self.cum_weights, rng.random() * self.total, 0, self._hi)
        ]
