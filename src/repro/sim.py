"""Simulation-wide utilities: virtual time and deterministic randomness.

Every stochastic component in the reproduction draws from a named
substream derived from one master seed, so that (a) the whole world is a
pure function of ``WorldConfig.seed`` and (b) adding a new component never
perturbs the draws of existing ones (the classic shared-``Random``
fragility).
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field
from functools import lru_cache


@lru_cache(maxsize=262144)
def _seed_from_path(path_repr: str) -> int:
    """The 128-bit seed value for one repr-encoded label path.

    Keyed on the repr string (not the label tuple) so values that
    compare equal but repr differently — ``1`` vs ``1.0`` — keep their
    distinct digests.
    """
    digest = hashlib.sha256(path_repr.encode("utf-8")).digest()
    return int.from_bytes(digest[:16], "big")


def derive_seed(seed: int, *labels: object) -> int:
    """The integer seed :func:`derive_rng` would construct its RNG from.

    Digests are cached per label path, so hot loops that re-derive the
    same substream (per-entity coin flips, per-(path, hour) episodes)
    skip the SHA-256 work after the first call.
    """
    return _seed_from_path(repr((seed,) + labels))


#: Optional observability hook: called (no args) once per
#: :func:`derive_rng` derivation when installed.  The default ``None``
#: keeps the hot path at a single global load and identity check.
_RNG_OBSERVER = None


def set_rng_observer(observer):
    """Install (or clear, with ``None``) the RNG-derivation observer.

    Returns the previously installed observer so instrumented callers
    can restore it in a ``finally`` block.  The observer must never
    touch randomness itself — it exists so the metrics registry can
    count derivations, nothing more.
    """
    global _RNG_OBSERVER
    previous = _RNG_OBSERVER
    _RNG_OBSERVER = observer
    return previous


def derive_rng(seed: int, *labels: object) -> random.Random:
    """A :class:`random.Random` seeded from ``seed`` and a label path.

    The label path is hashed with SHA-256, so substreams are independent
    of declaration order and stable across runs and platforms.

    >>> derive_rng(1, "dns").random() == derive_rng(1, "dns").random()
    True
    >>> derive_rng(1, "dns").random() == derive_rng(1, "capture").random()
    False
    """
    if _RNG_OBSERVER is not None:
        _RNG_OBSERVER()
    return random.Random(derive_seed(seed, *labels))


def fork_pool_available() -> bool:
    """Whether copy-on-write fork workers can be used on this platform.

    Both parallel campaigns (the §5 WAN rounds and the §2.1 dataset
    shards) rely on ``fork`` semantics: children inherit the fully built
    world by copy-on-write instead of pickling it, and closures (dynamic
    DNS answer functions) never cross a process boundary.  Spawn-based
    platforms fall back to the sequential path, which is bit-identical.
    """
    import multiprocessing

    return "fork" in multiprocessing.get_all_start_methods()


#: Below this draw count the scalar loop beats the vectorized
#: fast-forward's fixed costs (state transplant both ways).
_GAUSS_BULK_THRESHOLD = 512


def advance_gauss(rng: random.Random, count: int) -> None:
    """Advance ``rng`` past ``count`` gaussian draws.

    :meth:`random.Random.gauss` consumes underlying ``random()`` calls
    in Box-Muller pairs and caches the second value, so its state
    evolution depends only on *how many times* it is called, never on
    the ``mu``/``sigma`` arguments.  Replaying ``count`` draws therefore
    leaves the stream exactly where sequential execution would — the
    primitive the parallel WAN campaign uses to keep worker substreams
    bit-identical to single-process runs.
    """
    if count >= _GAUSS_BULK_THRESHOLD:
        try:
            from repro.columnar.rng import advance_gauss_bulk
            from repro.flags import columnar_runtime_enabled
        except ImportError:
            pass  # NumPy absent: the scalar loop below is complete
        else:
            if columnar_runtime_enabled():
                advance_gauss_bulk(rng, count)
                return
    gauss = rng.gauss
    for _ in range(count):
        gauss(0.0, 1.0)


@dataclass
class Clock:
    """A virtual clock measured in seconds since the simulation epoch."""

    now: float = 0.0

    def advance(self, seconds: float) -> float:
        if seconds < 0:
            raise ValueError(f"cannot move time backwards: {seconds}")
        self.now += seconds
        return self.now


@dataclass(frozen=True)
class SimulationEpoch:
    """Anchors virtual time to the paper's measurement calendar.

    The packet capture ran Tue Jun 26 -- Mon Jul 2, 2012; the DNS survey
    ran Mar 27--29, 2013.  We keep those as named offsets purely for
    documentation/reporting; all arithmetic is in virtual seconds.
    """

    capture_start_label: str = "2012-06-26T00:00:00"
    capture_days: int = 7
    dns_survey_label: str = "2013-03-27"

    @property
    def capture_seconds(self) -> float:
        return self.capture_days * 86400.0


@dataclass
class StreamRegistry:
    """Hands out named RNG substreams for one master seed."""

    seed: int
    _issued: dict = field(default_factory=dict)

    def stream(self, *labels: object) -> random.Random:
        key = tuple(labels)
        if key not in self._issued:
            self._issued[key] = derive_rng(self.seed, *labels)
        return self._issued[key]
