"""Simulation-wide utilities: virtual time and deterministic randomness.

Every stochastic component in the reproduction draws from a named
substream derived from one master seed, so that (a) the whole world is a
pure function of ``WorldConfig.seed`` and (b) adding a new component never
perturbs the draws of existing ones (the classic shared-``Random``
fragility).
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field


def derive_rng(seed: int, *labels: object) -> random.Random:
    """A :class:`random.Random` seeded from ``seed`` and a label path.

    The label path is hashed with SHA-256, so substreams are independent
    of declaration order and stable across runs and platforms.

    >>> derive_rng(1, "dns").random() == derive_rng(1, "dns").random()
    True
    >>> derive_rng(1, "dns").random() == derive_rng(1, "capture").random()
    False
    """
    digest = hashlib.sha256(
        repr((seed,) + labels).encode("utf-8")
    ).digest()
    return random.Random(int.from_bytes(digest[:16], "big"))


@dataclass
class Clock:
    """A virtual clock measured in seconds since the simulation epoch."""

    now: float = 0.0

    def advance(self, seconds: float) -> float:
        if seconds < 0:
            raise ValueError(f"cannot move time backwards: {seconds}")
        self.now += seconds
        return self.now


@dataclass(frozen=True)
class SimulationEpoch:
    """Anchors virtual time to the paper's measurement calendar.

    The packet capture ran Tue Jun 26 -- Mon Jul 2, 2012; the DNS survey
    ran Mar 27--29, 2013.  We keep those as named offsets purely for
    documentation/reporting; all arithmetic is in virtual seconds.
    """

    capture_start_label: str = "2012-06-26T00:00:00"
    capture_days: int = 7
    dns_survey_label: str = "2013-03-27"

    @property
    def capture_seconds(self) -> float:
        return self.capture_days * 86400.0


@dataclass
class StreamRegistry:
    """Hands out named RNG substreams for one master seed."""

    seed: int
    _issued: dict = field(default_factory=dict)

    def stream(self, *labels: object) -> random.Random:
        key = tuple(labels)
        if key not in self._issued:
            self._issued[key] = derive_rng(self.seed, *labels)
        return self._issued[key]
