"""Longitudinal cloud-usage tracking (the paper's closing call).

"We believe our work will spark further research on tracking cloud
usage" — this module makes the study repeatable over a changing
world.  A :class:`WorldEvolution` mutates the deployed population the
way 2013-era adoption actually moved: more domains adopt the cloud,
existing tenants add regions, and some migrate between providers.
:class:`LongitudinalStudy` re-runs the full §2.1 pipeline before and
after (with virtual time advanced so resolver caches expire) and
reports the drift.

The mutation bodies live in :mod:`repro.epochs.steps` as composable
:class:`~repro.epochs.steps.EpochStep` value objects — the epoch
engine (:mod:`repro.epochs`) replays them with named per-epoch RNG
streams for N-epoch series with incremental artifact reuse.  This
module keeps the original convenience API: one shared ``"evolution"``
stream threaded through each step in call order, so legacy callers'
draws are unchanged.

Snapshots carry only derived summary fields; the full per-epoch
dataset (tens of MB at paper scale, which would defeat the streaming
plane's constant-memory work) is retained only when the study is
created with ``retain_datasets=True``.  ``Snapshot.virtual_time_s`` is
the simulation's virtual clock — never wall clock — so anything
derived from snapshots stays byte-identical run over run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analysis.clouduse import CloudUseAnalysis
from repro.analysis.dataset import AlexaSubdomainsDataset, DatasetBuilder
from repro.analysis.regions import RegionAnalysis
from repro.epochs.steps import CloudAdoption, MigrationToEc2, RegionExpansion
from repro.world import World


@dataclass
class Snapshot:
    """One measurement epoch's summary (derived fields only)."""

    label: str
    #: Simulation virtual time (seconds since the simulation epoch) at
    #: which the snapshot was taken — deterministic, unlike wall clock.
    virtual_time_s: float
    cloud_domains: int
    cloud_subdomains: int
    ec2_share: float
    azure_share: float
    multi_region_fraction: float
    #: Epoch index on a timeline (0 for ad-hoc snapshots).
    epoch: int = 0
    region_subdomains: Dict[str, int] = field(default_factory=dict)
    #: Domain counts per Table 3 category ("EC2 only", "EC2 + Azure", ...).
    provider_domains: Dict[str, int] = field(default_factory=dict)
    #: The full dataset, retained only on explicit request
    #: (``LongitudinalStudy(retain_datasets=True)``) — holding one per
    #: epoch defeats the streaming plane's constant-memory budget.
    dataset: Optional[AlexaSubdomainsDataset] = None

    def as_dict(self) -> dict:
        """Deterministic summary for series manifests (no dataset)."""
        return {
            "label": self.label,
            "epoch": self.epoch,
            "virtual_time_s": self.virtual_time_s,
            "cloud_domains": self.cloud_domains,
            "cloud_subdomains": self.cloud_subdomains,
            "ec2_share": round(self.ec2_share, 6),
            "azure_share": round(self.azure_share, 6),
            "multi_region_fraction": round(self.multi_region_fraction, 6),
            "region_subdomains": dict(sorted(
                self.region_subdomains.items()
            )),
            "provider_domains": dict(self.provider_domains),
        }


@dataclass
class Drift:
    """The difference between two snapshots."""

    domains_added: int
    subdomains_added: int
    cloud_share_change: float
    multi_region_change: float
    fastest_growing_region: Optional[str]


def take_world_snapshot(
    world: World,
    dataset: AlexaSubdomainsDataset,
    label: str,
    epoch: int = 0,
    retain_dataset: bool = False,
) -> Snapshot:
    """Summarize one (world, dataset) pair into a :class:`Snapshot`.

    Shared by :class:`LongitudinalStudy` and the epoch series runner —
    the latter passes the cached dataset product, so a warm epoch never
    rebuilds anything to snapshot itself.
    """
    clouduse = CloudUseAnalysis(world, dataset)
    regions = RegionAnalysis(world, dataset)
    report = clouduse.report()
    region_counts = {
        f"{p}.{r}": v["subdomains"]
        for (p, r), v in regions.region_counts().items()
    }
    multi = 1.0 - regions.single_region_fraction("ec2")
    total = report.total_domains
    return Snapshot(
        label=label,
        virtual_time_s=world.clock.now,
        epoch=epoch,
        cloud_domains=total,
        cloud_subdomains=report.total_subdomains,
        ec2_share=report.ec2_total_domains / total if total else 0.0,
        azure_share=report.azure_total_domains / total if total else 0.0,
        multi_region_fraction=multi,
        region_subdomains=region_counts,
        provider_domains=dict(report.domain_counts),
        dataset=dataset if retain_dataset else None,
    )


class WorldEvolution:
    """Applies adoption/expansion/migration steps to a live world.

    Thin convenience wrapper over the epoch steps: every method builds
    the matching :class:`~repro.epochs.steps.EpochStep` and applies it
    with this instance's single shared ``"evolution"`` stream, so the
    draw sequence is exactly the original in-line implementation's.
    """

    def __init__(self, world: World):
        self.world = world
        self.rng = world.streams.stream("evolution")

    # -- growth steps --------------------------------------------------------

    def adopt_cloud(self, count: int) -> int:
        """``count`` previously cloud-free domains put a subdomain on
        EC2 (adoption in the wild: one app at a time, us-east first)."""
        diff = CloudAdoption(count=count).apply(self.world, self.rng)
        return len(diff.domains)

    def expand_to_second_region(self, count: int) -> int:
        """``count`` single-region VM front ends add a replica region —
        the paper's own recommendation being taken up."""
        diff = RegionExpansion(count=count).apply(self.world, self.rng)
        return len(diff.subdomains)

    def migrate_to_ec2(self, count: int) -> int:
        """``count`` Azure-hosted subdomains move to EC2 (replace their
        records rather than accrete — a true migration)."""
        diff = MigrationToEc2(count=count).apply(self.world, self.rng)
        return len(diff.subdomains)

    def advance_epoch(self, seconds: float = 180 * 86400.0) -> None:
        """Move virtual time forward so resolver caches expire."""
        self.world.clock.advance(seconds)


class LongitudinalStudy:
    """Runs the measurement pipeline at multiple epochs and diffs."""

    def __init__(self, world: World, retain_datasets: bool = False):
        self.world = world
        #: Keep the full dataset on each snapshot (debugging aid; off
        #: by default so long studies stay constant-memory).
        self.retain_datasets = retain_datasets
        self.snapshots: List[Snapshot] = []

    def take_snapshot(self, label: str) -> Snapshot:
        dataset = DatasetBuilder(self.world).build()
        snapshot = take_world_snapshot(
            self.world, dataset, label,
            epoch=len(self.snapshots),
            retain_dataset=self.retain_datasets,
        )
        self.snapshots.append(snapshot)
        return snapshot

    @staticmethod
    def drift(before: Snapshot, after: Snapshot) -> Drift:
        growth = {
            region: after.region_subdomains.get(region, 0)
            - before.region_subdomains.get(region, 0)
            for region in set(before.region_subdomains)
            | set(after.region_subdomains)
        }
        fastest = max(growth, key=growth.get) if growth else None
        return Drift(
            domains_added=after.cloud_domains - before.cloud_domains,
            subdomains_added=(
                after.cloud_subdomains - before.cloud_subdomains
            ),
            cloud_share_change=after.ec2_share - before.ec2_share,
            multi_region_change=(
                after.multi_region_fraction - before.multi_region_fraction
            ),
            fastest_growing_region=fastest,
        )
