"""Longitudinal cloud-usage tracking (the paper's closing call).

"We believe our work will spark further research on tracking cloud
usage" — this module makes the study repeatable over a changing
world.  A :class:`WorldEvolution` mutates the deployed population the
way 2013-era adoption actually moved: more domains adopt the cloud,
existing tenants add regions, and some migrate between providers.
:class:`LongitudinalStudy` re-runs the full §2.1 pipeline before and
after (with virtual time advanced so resolver caches expire) and
reports the drift.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analysis.clouduse import CloudUseAnalysis
from repro.analysis.dataset import AlexaSubdomainsDataset, DatasetBuilder
from repro.analysis.regions import RegionAnalysis
from repro.cloud.base import InstanceRole, InstanceType
from repro.dns.records import RRType, ResourceRecord
from repro.workload.mixtures import sample_discrete
from repro.workload.plans import SubdomainPlan
from repro.world import World


@dataclass
class Snapshot:
    """One measurement epoch's summary."""

    label: str
    taken_at: float
    cloud_domains: int
    cloud_subdomains: int
    ec2_share: float
    multi_region_fraction: float
    region_subdomains: Dict[str, int] = field(default_factory=dict)
    dataset: Optional[AlexaSubdomainsDataset] = None


@dataclass
class Drift:
    """The difference between two snapshots."""

    domains_added: int
    subdomains_added: int
    cloud_share_change: float
    multi_region_change: float
    fastest_growing_region: Optional[str]


class WorldEvolution:
    """Applies adoption/expansion/migration steps to a live world."""

    def __init__(self, world: World):
        self.world = world
        self.rng = world.streams.stream("evolution")

    # -- growth steps --------------------------------------------------------

    def adopt_cloud(self, count: int) -> int:
        """``count`` previously cloud-free domains put a subdomain on
        EC2 (adoption in the wild: one app at a time, us-east first)."""
        candidates = [
            plan for plan in self.world.plans if not plan.is_cloud_using
        ]
        adopted = 0
        for plan in self.rng.sample(
            candidates, k=min(count, len(candidates))
        ):
            region = sample_discrete(
                self.rng, self.world.config.mixtures.ec2_region_weights
            )
            label = self.rng.choice(("app", "api", "beta", "cloud"))
            fqdn = f"{label}.{plan.domain}"
            zone = self.world.dns.get_zone(plan.domain)
            if zone is None or zone.has_name(fqdn):
                continue
            instance = self.world.ec2.launch_instance(
                account_id=f"acct-{plan.domain}",
                region_name=region,
                itype=InstanceType.M1_MEDIUM,
                role=InstanceRole.WEB,
                rng=self.rng,
            )
            zone.add(ResourceRecord(fqdn, RRType.A, instance.public_ip,
                                    ttl=300))
            plan.category = "ec2_other"
            plan.home_region_ec2 = region
            plan.subdomains.append(SubdomainPlan(
                fqdn=fqdn, kind="cloud", provider="ec2", frontend="vm",
                regions=(region,), zone_indices=((instance.zone_index,),),
                n_vms=1,
            ))
            adopted += 1
        return adopted

    def expand_to_second_region(self, count: int) -> int:
        """``count`` single-region VM front ends add a replica region —
        the paper's own recommendation being taken up."""
        expanded = 0
        candidates = []
        for plan in self.world.plans:
            for sub in plan.cloud_subdomains():
                if (
                    sub.provider == "ec2"
                    and sub.frontend == "vm"
                    and len(sub.regions) == 1
                ):
                    candidates.append((plan, sub))
        for plan, sub in self.rng.sample(
            candidates, k=min(count, len(candidates))
        ):
            zone = self.world.dns.get_zone(plan.domain)
            if zone is None:
                continue
            current = sub.regions[0]
            options = [
                r for r in self.world.ec2.region_names() if r != current
            ]
            region = self.rng.choice(options)
            instance = self.world.ec2.launch_instance(
                account_id=f"acct-{plan.domain}",
                region_name=region,
                itype=InstanceType.M1_MEDIUM,
                role=InstanceRole.WEB,
                rng=self.rng,
            )
            zone.add(ResourceRecord(
                sub.fqdn, RRType.A, instance.public_ip, ttl=300
            ))
            sub.regions = sub.regions + (region,)
            sub.zone_indices = sub.zone_indices + (
                (instance.zone_index,),
            )
            expanded += 1
        return expanded

    def migrate_to_ec2(self, count: int) -> int:
        """``count`` Azure-hosted subdomains move to EC2 (replace their
        records rather than accrete — a true migration)."""
        migrated = 0
        candidates = []
        for plan in self.world.plans:
            for sub in plan.cloud_subdomains():
                if sub.provider == "azure" and sub.frontend in (
                    "cs_direct", "cs_cname"
                ):
                    candidates.append((plan, sub))
        for plan, sub in self.rng.sample(
            candidates, k=min(count, len(candidates))
        ):
            zone = self.world.dns.get_zone(plan.domain)
            if zone is None:
                continue
            region = sample_discrete(
                self.rng, self.world.config.mixtures.ec2_region_weights
            )
            instance = self.world.ec2.launch_instance(
                account_id=f"acct-{plan.domain}",
                region_name=region,
                itype=InstanceType.M1_MEDIUM,
                role=InstanceRole.WEB,
                rng=self.rng,
            )
            zone.remove(sub.fqdn)
            zone.add(ResourceRecord(
                sub.fqdn, RRType.A, instance.public_ip, ttl=300
            ))
            sub.provider = "ec2"
            sub.frontend = "vm"
            sub.regions = (region,)
            sub.zone_indices = ((instance.zone_index,),)
            sub.n_vms = 1
            migrated += 1
        return migrated

    def advance_epoch(self, seconds: float = 180 * 86400.0) -> None:
        """Move virtual time forward so resolver caches expire."""
        self.world.clock.advance(seconds)


class LongitudinalStudy:
    """Runs the measurement pipeline at multiple epochs and diffs."""

    def __init__(self, world: World):
        self.world = world
        self.snapshots: List[Snapshot] = []

    def take_snapshot(self, label: str) -> Snapshot:
        dataset = DatasetBuilder(self.world).build()
        clouduse = CloudUseAnalysis(self.world, dataset)
        regions = RegionAnalysis(self.world, dataset)
        report = clouduse.report()
        region_counts = {
            f"{p}.{r}": v["subdomains"]
            for (p, r), v in regions.region_counts().items()
        }
        multi = 1.0 - regions.single_region_fraction("ec2")
        snapshot = Snapshot(
            label=label,
            taken_at=self.world.clock.now,
            cloud_domains=report.total_domains,
            cloud_subdomains=report.total_subdomains,
            ec2_share=(
                report.ec2_total_domains / report.total_domains
                if report.total_domains else 0.0
            ),
            multi_region_fraction=multi,
            region_subdomains=region_counts,
            dataset=dataset,
        )
        self.snapshots.append(snapshot)
        return snapshot

    @staticmethod
    def drift(before: Snapshot, after: Snapshot) -> Drift:
        growth = {
            region: after.region_subdomains.get(region, 0)
            - before.region_subdomains.get(region, 0)
            for region in set(before.region_subdomains)
            | set(after.region_subdomains)
        }
        fastest = max(growth, key=growth.get) if growth else None
        return Drift(
            domains_added=after.cloud_domains - before.cloud_domains,
            subdomains_added=(
                after.cloud_subdomains - before.cloud_subdomains
            ),
            cloud_share_change=after.ec2_share - before.ec2_share,
            multi_region_change=(
                after.multi_region_fraction - before.multi_region_fraction
            ),
            fastest_growing_region=fastest,
        )
