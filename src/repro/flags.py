"""Runtime feature switches shared across packages.

The columnar data plane (``repro.columnar`` plus the pure-Python static
DNS resolution index) is a drop-in accelerator: every vectorized path
reproduces the scalar RNG consumption order bit-for-bit, so the switch
only trades speed for speed.  It lives here — a dependency-free module —
so that numpy-free packages (``repro.dns``) can consult it without
importing ``repro.columnar`` (which fails fast when NumPy is absent).

Precedence: a programmatic override installed via
:func:`set_columnar_enabled` wins; otherwise the ``REPRO_COLUMNAR``
environment variable (anything but ``"0"`` enables); default on.

The streaming data plane (bounded-memory chunked world/dataset builds
and one-pass capture analysis) follows the same discipline with its own
pair of knobs: :func:`set_streaming_enabled` / ``REPRO_STREAMING``
(default on), plus a chunk-size knob (:func:`set_chunk_size` /
``REPRO_CHUNK_SIZE``) bounding how many domain ranks are materialized
at once.  Like the columnar switch, the streaming switch only gates
*eligibility*: individual call sites fall back to the batch path
whenever a consumer needs state streaming releases (an outage scenario,
a live probe-event sink, a platform without ``fork``) — see
``docs/PERFORMANCE.md`` for the fallback matrix.
"""

from __future__ import annotations

import os
from typing import Optional

_FORCED: Optional[bool] = None
_FORCED_STREAMING: Optional[bool] = None
_FORCED_CHUNK: Optional[int] = None

#: Ranks materialized per streaming chunk when ``REPRO_CHUNK_SIZE`` is
#: unset.  Sized so a chunk's tenant state (zones, records, plans,
#: instances) stays tens of MB while the per-chunk fork/merge overhead
#: stays well under a percent of the build.
DEFAULT_CHUNK_SIZE = 6_250


def set_columnar_enabled(value: Optional[bool]) -> Optional[bool]:
    """Force the columnar plane on/off (``None`` restores env control).

    Returns the previous override so callers can restore it in a
    ``finally`` block.  Affects objects *constructed after* the call
    (worlds, generators); already-built objects keep the decision they
    captured.
    """
    global _FORCED
    previous = _FORCED
    _FORCED = value
    return previous


def columnar_runtime_enabled() -> bool:
    """Whether columnar fast paths should be used, ignoring NumPy
    availability (callers that need NumPy gate on import separately)."""
    if _FORCED is not None:
        return _FORCED
    return os.environ.get("REPRO_COLUMNAR", "1") != "0"


def set_streaming_enabled(value: Optional[bool]) -> Optional[bool]:
    """Force the streaming data plane on/off (``None`` restores env
    control).  Returns the previous override, mirroring
    :func:`set_columnar_enabled`."""
    global _FORCED_STREAMING
    previous = _FORCED_STREAMING
    _FORCED_STREAMING = value
    return previous


def streaming_runtime_enabled() -> bool:
    """Whether streaming paths are *eligible*.  Call sites still fall
    back to batch when a consumer needs batch-only state (scenario
    drills, live event sinks, fork-less platforms)."""
    if _FORCED_STREAMING is not None:
        return _FORCED_STREAMING
    return os.environ.get("REPRO_STREAMING", "1") != "0"


def set_chunk_size(value: Optional[int]) -> Optional[int]:
    """Force the streaming chunk size (``None`` restores env control).

    Returns the previous override.  The chunk size bounds how many
    domain ranks a streaming build materializes at once; output bytes
    are chunk-size-invariant (any contiguous partition merges
    identically), so this knob trades peak RSS against per-chunk
    overhead only.
    """
    global _FORCED_CHUNK
    if value is not None and value < 1:
        raise ValueError(f"chunk size must be positive: {value}")
    previous = _FORCED_CHUNK
    _FORCED_CHUNK = value
    return previous


def streaming_chunk_size() -> int:
    """The active streaming chunk size (override, env, or default)."""
    if _FORCED_CHUNK is not None:
        return _FORCED_CHUNK
    raw = os.environ.get("REPRO_CHUNK_SIZE")
    if raw:
        try:
            value = int(raw)
        except ValueError:
            value = 0
        if value >= 1:
            return value
    return DEFAULT_CHUNK_SIZE
