"""Runtime feature switches shared across packages.

The columnar data plane (``repro.columnar`` plus the pure-Python static
DNS resolution index) is a drop-in accelerator: every vectorized path
reproduces the scalar RNG consumption order bit-for-bit, so the switch
only trades speed for speed.  It lives here — a dependency-free module —
so that numpy-free packages (``repro.dns``) can consult it without
importing ``repro.columnar`` (which fails fast when NumPy is absent).

Precedence: a programmatic override installed via
:func:`set_columnar_enabled` wins; otherwise the ``REPRO_COLUMNAR``
environment variable (anything but ``"0"`` enables); default on.
"""

from __future__ import annotations

import os
from typing import Optional

_FORCED: Optional[bool] = None


def set_columnar_enabled(value: Optional[bool]) -> Optional[bool]:
    """Force the columnar plane on/off (``None`` restores env control).

    Returns the previous override so callers can restore it in a
    ``finally`` block.  Affects objects *constructed after* the call
    (worlds, generators); already-built objects keep the decision they
    captured.
    """
    global _FORCED
    previous = _FORCED
    _FORCED = value
    return previous


def columnar_runtime_enabled() -> bool:
    """Whether columnar fast paths should be used, ignoring NumPy
    availability (callers that need NumPy gate on import separately)."""
    if _FORCED is not None:
        return _FORCED
    return os.environ.get("REPRO_COLUMNAR", "1") != "0"
