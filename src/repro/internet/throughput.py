"""TCP-flavoured throughput model for the HTTP-download measurements.

The paper measured throughput by fetching a 2 MB file and dividing by
the download time (cancelled past 10 s).  The dominant real-world
effects are window-limited steady state (rate ∝ 1/RTT), a per-path
bottleneck capacity, slow-start ramp for short transfers, and noisy
contention.  All four appear here, each deliberately simple.
"""

from __future__ import annotations

import math
from typing import Dict, Tuple

from repro.internet.latency import LatencyModel
from repro.sim import StreamRegistry, derive_rng

#: Effective receive-window (bytes) limiting steady-state rate.
WINDOW_BYTES = 128 * 1024
#: Initial congestion window for the slow-start ramp (bytes).
INIT_CWND_BYTES = 14600
#: Per-path bottleneck capacity range (bytes/second).
BOTTLENECK_MIN_BPS = 3_000_000
BOTTLENECK_MAX_BPS = 20_000_000


class ThroughputModel:
    """Computes download times between endpoints."""

    def __init__(self, streams: StreamRegistry, latency: LatencyModel):
        self.streams = streams
        self.latency = latency
        self._noise_rng = streams.stream("throughput", "noise")
        self._bottleneck_cache: Dict[Tuple, float] = {}

    def _bottleneck_bps(self, key_a, key_b) -> float:
        key = (min(key_a, key_b), max(key_a, key_b))
        rate = self._bottleneck_cache.get(key)
        if rate is None:
            rng = derive_rng(self.streams.seed, "bottleneck", *key)
            rate = BOTTLENECK_MIN_BPS + rng.random() * (
                BOTTLENECK_MAX_BPS - BOTTLENECK_MIN_BPS
            )
            self._bottleneck_cache[key] = rate
        return rate

    def download(
        self, client, server, size_bytes: int, time_s: float = 0.0
    ) -> Tuple[float, float]:
        """Simulate one HTTP GET; returns (duration_s, rate_bytes_per_s).

        The duration includes connection setup (1 RTT), the slow-start
        ramp, and the window- or bottleneck-limited bulk transfer, with
        multiplicative contention noise.
        """
        if size_bytes <= 0:
            raise ValueError("size must be positive")
        desc_a = self.latency._describe(client)
        desc_b = self.latency._describe(server)
        key_a = desc_a[0]
        key_b = desc_b[0]
        rtt_s = self.latency._base_rtt_from(desc_a, desc_b, time_s) / 1000.0
        bottleneck = self._bottleneck_bps(key_a, key_b)
        steady_rate = min(bottleneck, WINDOW_BYTES / rtt_s)
        # Bytes moved during slow start, and the rounds it takes.
        ramp_rounds = 0
        ramp_bytes = 0
        cwnd = INIT_CWND_BYTES
        while ramp_bytes < size_bytes and cwnd < steady_rate * rtt_s:
            ramp_bytes += cwnd
            cwnd *= 2
            ramp_rounds += 1
        remaining = max(0, size_bytes - ramp_bytes)
        duration = (
            rtt_s  # connect + request
            + ramp_rounds * rtt_s
            + remaining / steady_rate
        )
        noise = math.exp(self._noise_rng.gauss(0.0, 0.18))
        duration *= noise
        return duration, size_bytes / duration
