"""Vantage points: the simulation's PlanetLab nodes and campus border.

The paper used 150 nodes for enumeration, 200 for distributed DNS
lookups and traceroute targets, and 80 for latency/throughput probing.
:func:`planetlab_sites` deterministically expands a curated seed list of
real PlanetLab host cities into any requested count, preserving the
paper's continental mix (Figure 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.net.geo import GeoPoint


@dataclass(frozen=True)
class VantagePoint:
    """A measurement host somewhere on the Internet."""

    name: str
    location: GeoPoint
    country: str
    continent: str

    def __str__(self) -> str:
        return self.name


#: (city, lat, lon, country, continent) — a geographic spread matching
#: Figure 2: North America, South America, Europe, Asia, Australia.
_SEED_SITES: Tuple[Tuple[str, float, float, str, str], ...] = (
    ("seattle", 47.61, -122.33, "US", "NA"),
    ("berkeley", 37.87, -122.27, "US", "NA"),
    ("san-diego", 32.72, -117.16, "US", "NA"),
    ("boulder", 40.01, -105.27, "US", "NA"),
    ("salt-lake-city", 40.76, -111.89, "US", "NA"),
    ("austin", 30.27, -97.74, "US", "NA"),
    ("houston", 29.76, -95.37, "US", "NA"),
    ("chicago", 41.88, -87.63, "US", "NA"),
    ("urbana", 40.11, -88.21, "US", "NA"),
    ("madison", 43.07, -89.40, "US", "NA"),
    ("minneapolis", 44.98, -93.27, "US", "NA"),
    ("atlanta", 33.75, -84.39, "US", "NA"),
    ("gainesville", 29.65, -82.32, "US", "NA"),
    ("boston", 42.36, -71.06, "US", "NA"),
    ("princeton", 40.34, -74.66, "US", "NA"),
    ("new-york", 40.71, -74.01, "US", "NA"),
    ("washington", 38.91, -77.04, "US", "NA"),
    ("pittsburgh", 40.44, -79.99, "US", "NA"),
    ("toronto", 43.65, -79.38, "CA", "NA"),
    ("vancouver", 49.28, -123.12, "CA", "NA"),
    ("mexico-city", 19.43, -99.13, "MX", "NA"),
    ("sao-paulo", -23.55, -46.63, "BR", "SA"),
    ("rio-de-janeiro", -22.91, -43.17, "BR", "SA"),
    ("santiago", -33.45, -70.67, "CL", "SA"),
    ("buenos-aires", -34.60, -58.38, "AR", "SA"),
    ("london", 51.51, -0.13, "GB", "EU"),
    ("cambridge-uk", 52.21, 0.12, "GB", "EU"),
    ("paris", 48.86, 2.35, "FR", "EU"),
    ("madrid", 40.42, -3.70, "ES", "EU"),
    ("lisbon", 38.72, -9.14, "PT", "EU"),
    ("rome", 41.90, 12.50, "IT", "EU"),
    ("zurich", 47.37, 8.54, "CH", "EU"),
    ("munich", 48.14, 11.58, "DE", "EU"),
    ("berlin", 52.52, 13.40, "DE", "EU"),
    ("amsterdam", 52.37, 4.90, "NL", "EU"),
    ("brussels", 50.85, 4.35, "BE", "EU"),
    ("copenhagen", 55.68, 12.57, "DK", "EU"),
    ("stockholm", 59.33, 18.07, "SE", "EU"),
    ("helsinki", 60.17, 24.94, "FI", "EU"),
    ("oslo", 59.91, 10.75, "NO", "EU"),
    ("warsaw", 52.23, 21.01, "PL", "EU"),
    ("prague", 50.08, 14.44, "CZ", "EU"),
    ("vienna", 48.21, 16.37, "AT", "EU"),
    ("athens", 37.98, 23.73, "GR", "EU"),
    ("moscow", 55.76, 37.62, "RU", "EU"),
    ("istanbul", 41.01, 28.98, "TR", "EU"),
    ("tel-aviv", 32.09, 34.78, "IL", "AS"),
    ("mumbai", 19.08, 72.88, "IN", "AS"),
    ("bangalore", 12.97, 77.59, "IN", "AS"),
    ("singapore", 1.35, 103.82, "SG", "AS"),
    ("kuala-lumpur", 3.14, 101.69, "MY", "AS"),
    ("bangkok", 13.76, 100.50, "TH", "AS"),
    ("hong-kong", 22.32, 114.17, "HK", "AS"),
    ("taipei", 25.03, 121.57, "TW", "AS"),
    ("shanghai", 31.23, 121.47, "CN", "AS"),
    ("beijing", 39.90, 116.41, "CN", "AS"),
    ("seoul", 37.57, 126.98, "KR", "AS"),
    ("tokyo", 35.68, 139.69, "JP", "AS"),
    ("osaka", 34.69, 135.50, "JP", "AS"),
    ("sydney", -33.87, 151.21, "AU", "OC"),
    ("melbourne", -37.81, 144.96, "AU", "OC"),
    ("brisbane", -27.47, 153.03, "AU", "OC"),
    ("auckland", -36.85, 174.76, "NZ", "OC"),
)


def planetlab_sites(count: int) -> List[VantagePoint]:
    """The first ``count`` vantage points, cycling the seed list.

    Replicas beyond the seed list get a numeric suffix and a small
    deterministic coordinate offset (a second host at the same site).
    """
    if count <= 0:
        raise ValueError("count must be positive")
    sites: List[VantagePoint] = []
    for i in range(count):
        city, lat, lon, country, continent = _SEED_SITES[i % len(_SEED_SITES)]
        replica = i // len(_SEED_SITES)
        if replica == 0:
            name = f"pl-{city}"
        else:
            name = f"pl-{city}-{replica + 1}"
            lat = max(-89.9, min(89.9, lat + 0.05 * replica))
        sites.append(
            VantagePoint(
                name=name,
                location=GeoPoint(lat, lon),
                country=country,
                continent=continent,
            )
        )
    return sites


#: The UW-Madison border router, where the packet capture was taken.
CAMPUS_VANTAGE = VantagePoint(
    name="uw-madison-border",
    location=GeoPoint(43.07, -89.40),
    country="US",
    continent="NA",
)
