"""AS-level routing: downstream ISPs per region and traceroute.

The paper's §5.2 methodology: run traceroute from instances in every
zone to 200 PlanetLab nodes, ``whois`` the first non-EC2 hop, and count
distinct downstream ASes per zone/region.  Two properties of the real
Internet must hold in the model for the paper's findings to emerge:

* regions differ widely in multihoming (us-east-1 peered with ~36
  downstream ISPs, sa-east-1 with ~4);
* the spread of routes across those ISPs is *uneven* (the top ISP can
  carry ~1/3 of routes), which the model produces with Zipf-weighted,
  per-destination-persistent ISP selection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.cloud.base import CloudProvider, Instance
from repro.internet.vantage import VantagePoint
from repro.net.asn import ASRegistry, AutonomousSystem
from repro.net.ipv4 import IPv4Address, IPv4Network
from repro.sim import StreamRegistry, derive_rng

#: Downstream-ISP pool sizes per EC2 region, set so that distinct-AS
#: counts observed over 200 vantage points land near Table 16.
EC2_DOWNSTREAM_POOL: Dict[str, int] = {
    "us-east-1": 38,
    "us-west-1": 20,
    "us-west-2": 20,
    "eu-west-1": 13,
    "ap-northeast-1": 10,
    "ap-southeast-1": 13,
    "ap-southeast-2": 4,
    "sa-east-1": 4,
}

#: Azure regions were not part of Table 16; give them a plausible mid
#: pool so traceroutes from Azure still work.
AZURE_DOWNSTREAM_POOL_DEFAULT = 12

#: Zipf exponent for route spread across a region's downstream ISPs.
ROUTE_SPREAD_EXPONENT = 0.9

#: Probability that a particular ISP is not reachable from a particular
#: zone (separate zone edge routers miss a few sessions), producing the
#: small per-zone count differences in Table 16.
ZONE_INVISIBILITY = 0.04


@dataclass(frozen=True)
class TracerouteHop:
    """One hop in a traceroute: an address and who owns it."""

    address: IPv4Address
    owner: str
    is_cloud: bool


@dataclass
class _DownstreamISP:
    asys: AutonomousSystem
    router_ips: List[IPv4Address]


class RoutingModel:
    """Builds the AS topology and answers traceroute queries."""

    def __init__(
        self,
        streams: StreamRegistry,
        providers: Dict[str, CloudProvider],
        registry: Optional[ASRegistry] = None,
    ):
        self.streams = streams
        self.providers = providers
        self.registry = registry or ASRegistry()
        self.rng = streams.stream("routing", "setup")
        self._downstream: Dict[Tuple[str, str], List[_DownstreamISP]] = {}
        self._transit: List[_DownstreamISP] = []
        self._next_asn = 7000
        self._next_prefix24 = 0
        self._cloud_routers: Dict[Tuple[str, str], List[IPv4Address]] = {}
        self._build_transit_core()
        for provider in providers.values():
            for region_name in provider.region_names():
                self._build_region(provider, region_name)

    # -- topology construction ---------------------------------------------

    def _allocate_prefix(self) -> IPv4Network:
        """A fresh /24 for one ISP's routers, from 80.0.0.0/9."""
        base = IPv4Network.parse("80.0.0.0/9")
        prefix = IPv4Network(
            base.first + (self._next_prefix24 << 8), 24
        )
        self._next_prefix24 += 1
        if prefix.last > base.last:
            raise RuntimeError("router prefix pool exhausted")
        return prefix

    def _new_isp(self, name: str) -> _DownstreamISP:
        prefix = self._allocate_prefix()
        asys = self.registry.register(self._next_asn, name, [prefix])
        self._next_asn += 1
        routers = [prefix.address_at(i) for i in range(1, 9)]
        return _DownstreamISP(asys=asys, router_ips=routers)

    def _build_transit_core(self) -> None:
        for i in range(12):
            self._transit.append(self._new_isp(f"transit-core-{i + 1}"))

    def _build_region(self, provider: CloudProvider, region_name: str) -> None:
        if provider.name == "ec2":
            pool_size = EC2_DOWNSTREAM_POOL.get(region_name, 12)
        else:
            pool_size = AZURE_DOWNSTREAM_POOL_DEFAULT
        isps = [
            self._new_isp(f"{provider.name}-{region_name}-peer-{i + 1}")
            for i in range(pool_size)
        ]
        self._downstream[(provider.name, region_name)] = isps
        # Cloud-side border routers get addresses inside the provider's
        # published ranges, so traceroute hops classify as cloud hops.
        routers = [
            provider.plan.allocate_public_ip(region_name, self.rng)
            for _ in range(4)
        ]
        self._cloud_routers[(provider.name, region_name)] = routers

    # -- queries ---------------------------------------------------------------

    def downstream_isps(
        self, provider_name: str, region_name: str
    ) -> List[AutonomousSystem]:
        return [
            isp.asys
            for isp in self._downstream[(provider_name, region_name)]
        ]

    def _zone_visible(
        self, provider_name: str, region_name: str, zone_index: int,
        isp: _DownstreamISP,
    ) -> bool:
        rng = derive_rng(
            self.streams.seed,
            "zone-visibility",
            provider_name,
            region_name,
            zone_index,
            isp.asys.number,
        )
        return rng.random() >= ZONE_INVISIBILITY

    def _pick_downstream(
        self,
        instance: Instance,
        vantage: VantagePoint,
        failed_isps: frozenset = frozenset(),
    ) -> Optional[_DownstreamISP]:
        """The downstream ISP carrying routes from this zone to this
        destination: Zipf-weighted, persistent per (region, vantage).

        ``failed_isps`` models BGP re-convergence after ISP failures:
        the router falls through its (persistent) preference order to
        the best surviving session.  Returns None when every candidate
        is down.
        """
        key = (instance.provider_name, instance.region_name)
        isps = self._downstream[key]
        weights = [
            1.0 / (rank + 1) ** ROUTE_SPREAD_EXPONENT
            for rank in range(len(isps))
        ]
        rng = derive_rng(
            self.streams.seed, "route", *key, vantage.name
        )
        order = rng.choices(
            range(len(isps)), weights=weights, k=8 + 2 * len(failed_isps)
        )
        fallback: Optional[_DownstreamISP] = None
        for choice in order:
            isp = isps[choice]
            if isp.asys.number in failed_isps:
                continue
            if fallback is None:
                fallback = isp
            if self._zone_visible(
                instance.provider_name,
                instance.region_name,
                instance.zone_index,
                isp,
            ):
                return isp
        if fallback is not None:
            return fallback
        # The preference sample missed every healthy ISP; scan the
        # full table (a router would, eventually).
        for isp in isps:
            if isp.asys.number not in failed_isps:
                return isp
        return None

    def traceroute(
        self,
        instance: Instance,
        vantage: VantagePoint,
        failed_isps: frozenset = frozenset(),
    ) -> List[TracerouteHop]:
        """Hops from a cloud instance out to a vantage point.

        A couple of in-cloud hops, then the downstream ISP's border
        router (the hop the paper whoises), then transit, then the
        destination's network.  With ``failed_isps`` the route
        re-converges around the failures; an empty list past the cloud
        hops means the destination is unreachable.
        """
        provider = self.providers[instance.provider_name]
        key = (instance.provider_name, instance.region_name)
        hops: List[TracerouteHop] = []
        cloud_routers = self._cloud_routers[key]
        rng = derive_rng(
            self.streams.seed, "trace", instance.instance_id, vantage.name
        )
        for router in rng.sample(cloud_routers, k=2):
            hops.append(
                TracerouteHop(
                    address=router,
                    owner=instance.provider_name,
                    is_cloud=True,
                )
            )
        downstream = self._pick_downstream(instance, vantage, failed_isps)
        if downstream is None:
            return hops
        hops.append(
            TracerouteHop(
                address=rng.choice(downstream.router_ips),
                owner=downstream.asys.name,
                is_cloud=False,
            )
        )
        for transit in rng.sample(self._transit, k=rng.randint(2, 4)):
            hops.append(
                TracerouteHop(
                    address=rng.choice(transit.router_ips),
                    owner=transit.asys.name,
                    is_cloud=False,
                )
            )
        return hops

    def first_non_cloud_hop(
        self, hops: List[TracerouteHop], cloud_ranges
    ) -> Optional[TracerouteHop]:
        """The first hop outside ``cloud_ranges`` (a PrefixSet), i.e.
        the address the paper's whois step classifies."""
        for hop in hops:
            if hop.address not in cloud_ranges:
                return hop
        return None
