"""Wide-area Internet substrate.

Provides everything outside the clouds: geo-placed vantage points (the
stand-ins for PlanetLab nodes and for the campus capture point), an RTT
model grounded in great-circle propagation with persistent per-path
quality and time-varying congestion episodes, an AS-level topology with
per-region downstream ISP multihoming for traceroute analysis, and a
TCP-flavoured throughput model.
"""

from repro.internet.vantage import (
    VantagePoint,
    planetlab_sites,
    CAMPUS_VANTAGE,
)
from repro.internet.latency import LatencyModel
from repro.internet.routing import RoutingModel, TracerouteHop
from repro.internet.throughput import ThroughputModel

__all__ = [
    "VantagePoint",
    "planetlab_sites",
    "CAMPUS_VANTAGE",
    "LatencyModel",
    "RoutingModel",
    "TracerouteHop",
    "ThroughputModel",
]
