"""The RTT model.

Round-trip time between two endpoints decomposes as:

* **intra-region** (both endpoints instances in the same cloud region):
  a fixed same-zone floor plus a per-zone-pair step (Table 11), with
  noise scaled by instance type;
* **wide-area** (everything else): great-circle propagation with path
  inflation, plus last-mile overhead, a *persistent* per-path quality
  multiplier (some client↔region pairs are just bad), a *per-region*
  connectivity factor (not all regions are equally well peered), and
  *time-varying congestion episodes* that temporarily inflate a path —
  the mechanism behind the paper's Figure 11 best-region flips.

All randomness is deterministic: persistent factors hash the path key;
episodes hash (path key, hour bucket); per-probe jitter comes from a
named substream.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.cloud.base import CloudProvider, Instance, InstanceType
from repro.cloud.ec2 import intra_region_rtt_ms
from repro.internet.vantage import VantagePoint
from repro.net.geo import GeoPoint, propagation_delay_ms
from repro.sim import StreamRegistry, derive_rng

#: Fixed last-mile/stack overhead added to every wide-area RTT (ms).
ACCESS_OVERHEAD_MS = 6.0

#: Per-region connectivity inflation.  us-west-2 was newer and less
#: well peered than us-west-1 in 2013 (the paper measured 145 ms vs
#: 130 ms average); sa-east-1 and ap-southeast-2 were poorly multihomed.
REGION_INFLATION: Dict[Tuple[str, str], float] = {
    ("ec2", "us-east-1"): 1.00,
    ("ec2", "us-west-1"): 1.00,
    ("ec2", "us-west-2"): 1.16,
    ("ec2", "eu-west-1"): 1.02,
    ("ec2", "ap-southeast-1"): 1.06,
    ("ec2", "ap-northeast-1"): 1.02,
    ("ec2", "sa-east-1"): 1.20,
    ("ec2", "ap-southeast-2"): 1.18,
}

#: Probability that any given (path, hour) is inside a congestion
#: episode, and the multiplier range applied when it is.
EPISODE_PROBABILITY = 0.08
EPISODE_MIN_FACTOR = 1.3
EPISODE_MAX_FACTOR = 3.0

#: Spread of the persistent per-path quality multiplier.
PATH_QUALITY_MAX = 1.35

#: Probability that a given intra-region instance pair carries a
#: persistent extra delay (oversubscribed host, longer switch path).
#: These are what defeat latency cartography: Table 12/13 show 17%
#: unknowns and a 25% error rate in eu-west-1, the noisiest region.
INTRA_NOISE_PROBABILITY: Dict[str, float] = {
    "us-east-1": 0.10,
    "eu-west-1": 0.38,
    "ap-northeast-1": 0.30,
}
INTRA_NOISE_DEFAULT_PROBABILITY = 0.06
#: Persistent same-pair offset range (ms) when noise applies.
INTRA_NOISE_MIN_MS = 0.4
INTRA_NOISE_MAX_MS = 1.8
#: Cross-zone pair base RTTs also vary persistently by this much (ms),
#: occasionally dipping below the cartography threshold.
CROSS_ZONE_SPREAD_MS = 0.55


class LatencyModel:
    """Computes RTTs between vantage points and cloud instances."""

    def __init__(
        self,
        streams: StreamRegistry,
        providers: Dict[str, CloudProvider],
        enable_episodes: bool = True,
    ):
        self.streams = streams
        self.providers = providers
        self.enable_episodes = enable_episodes
        self._jitter_rng = streams.stream("latency", "jitter")
        self._quality_cache: Dict[Tuple, float] = {}
        #: (provider, region) -> region location, saving a provider
        #: registry walk per described instance.
        self._region_locations: Dict[Tuple[str, str], GeoPoint] = {}
        #: (key_a, key_b) -> wide-area RTT before the episode factor.
        #: Keyed on the *unsorted* pair: float multiplication is not
        #: associative, so each argument order keeps the bit pattern it
        #: always produced.
        self._wide_base_cache: Dict[Tuple[Tuple, Tuple], float] = {}
        #: (sorted pair, hour bucket) -> congestion episode factor.
        self._episode_cache: Dict[Tuple, float] = {}

    # -- endpoint introspection ------------------------------------------

    def _describe(self, endpoint) -> Tuple[Tuple, GeoPoint, Optional[Instance]]:
        """(path key component, location, instance-or-None)."""
        if isinstance(endpoint, VantagePoint):
            return ("vp", endpoint.name), endpoint.location, None
        if isinstance(endpoint, Instance):
            region_key = (endpoint.provider_name, endpoint.region_name)
            location = self._region_locations.get(region_key)
            if location is None:
                provider = self.providers[endpoint.provider_name]
                location = provider.region(endpoint.region_name).location
                self._region_locations[region_key] = location
            return ("cloud",) + region_key, location, endpoint
        raise TypeError(f"unsupported endpoint: {endpoint!r}")

    # -- persistent path factors -----------------------------------------

    def _path_quality(self, key_a: Tuple, key_b: Tuple) -> float:
        key = (min(key_a, key_b), max(key_a, key_b))
        quality = self._quality_cache.get(key)
        if quality is None:
            rng = derive_rng(self.streams.seed, "path-quality", *key)
            quality = 1.0 + rng.random() * (PATH_QUALITY_MAX - 1.0)
            self._quality_cache[key] = quality
        return quality

    def _episode_factor(self, key_a: Tuple, key_b: Tuple, time_s: float) -> float:
        if not self.enable_episodes:
            return 1.0
        key = (min(key_a, key_b), max(key_a, key_b))
        hour_bucket = int(time_s // 3600.0)
        cache_key = (key, hour_bucket)
        factor = self._episode_cache.get(cache_key)
        if factor is None:
            rng = derive_rng(self.streams.seed, "episode", *key, hour_bucket)
            if rng.random() >= EPISODE_PROBABILITY:
                factor = 1.0
            else:
                factor = EPISODE_MIN_FACTOR + rng.random() * (
                    EPISODE_MAX_FACTOR - EPISODE_MIN_FACTOR
                )
            self._episode_cache[cache_key] = factor
        return factor

    def _intra_pair_adjust(self, inst_a: Instance, inst_b: Instance) -> float:
        """Persistent RTT adjustment for one intra-region pair.

        Same-zone pairs occasionally carry a constant positive offset;
        cross-zone pairs additionally get a symmetric base spread that
        can dip below the cartography threshold — the two effects that
        produce the paper's unknown and error rates.
        """
        pair = tuple(sorted((inst_a.instance_id, inst_b.instance_id)))
        key = ("intra",) + pair
        adjust = self._quality_cache.get(key)
        if adjust is not None:
            return adjust
        rng = derive_rng(self.streams.seed, *key)
        adjust = 0.0
        if inst_a.zone_index != inst_b.zone_index:
            adjust += (rng.random() * 2.0 - 1.0) * CROSS_ZONE_SPREAD_MS
        noise_probability = INTRA_NOISE_PROBABILITY.get(
            inst_a.region_name, INTRA_NOISE_DEFAULT_PROBABILITY
        )
        if rng.random() < noise_probability:
            adjust += INTRA_NOISE_MIN_MS + rng.random() * (
                INTRA_NOISE_MAX_MS - INTRA_NOISE_MIN_MS
            )
        self._quality_cache[key] = adjust
        return adjust

    def _region_inflation(self, instance: Optional[Instance]) -> float:
        if instance is None:
            return 1.0
        return REGION_INFLATION.get(
            (instance.provider_name, instance.region_name), 1.05
        )

    # -- the model ----------------------------------------------------------

    def base_rtt_ms(self, a, b, time_s: float = 0.0) -> float:
        """RTT without per-probe jitter (what min-of-10-probes estimates)."""
        return self._base_rtt_from(
            self._describe(a), self._describe(b), time_s
        )

    def _base_rtt_from(self, desc_a, desc_b, time_s: float) -> float:
        """Base RTT from already-computed endpoint descriptions.

        The wide-area product up to (but excluding) the time-varying
        episode factor is persistent per path, so it is computed once
        per (ordered) endpoint-key pair and cached.
        """
        key_a, loc_a, inst_a = desc_a
        key_b, loc_b, inst_b = desc_b
        if (
            inst_a is not None
            and inst_b is not None
            and inst_a.provider_name == inst_b.provider_name
            and inst_a.region_name == inst_b.region_name
        ):
            base = intra_region_rtt_ms(inst_a.zone_index, inst_b.zone_index)
            return base + self._intra_pair_adjust(inst_a, inst_b)
        pair = (key_a, key_b)
        persistent = self._wide_base_cache.get(pair)
        if persistent is None:
            base = propagation_delay_ms(loc_a, loc_b) + ACCESS_OVERHEAD_MS
            base *= self._path_quality(key_a, key_b)
            base *= self._region_inflation(inst_a)
            base *= self._region_inflation(inst_b)
            persistent = base
            self._wide_base_cache[pair] = persistent
        return persistent * self._episode_factor(key_a, key_b, time_s)

    def probe_rtt_ms(self, a, b, time_s: float = 0.0) -> float:
        """One probe's RTT: base plus additive and multiplicative jitter.

        Intra-region probes see jitter scaled by the *instance types*
        involved — small shared instances are noisier neighbours, which
        is visible in Table 11.
        """
        desc_a = self._describe(a)
        desc_b = self._describe(b)
        inst_a = desc_a[2]
        inst_b = desc_b[2]
        base = self._base_rtt_from(desc_a, desc_b, time_s)
        intra = (
            inst_a is not None
            and inst_b is not None
            and inst_a.provider_name == inst_b.provider_name
            and inst_a.region_name == inst_b.region_name
        )
        if intra:
            jitter_scale = (
                _type_jitter(inst_a.itype) + _type_jitter(inst_b.itype)
            )
            jitter = abs(self._jitter_rng.gauss(0.0, jitter_scale))
            return base + jitter
        jitter = abs(self._jitter_rng.gauss(0.0, 0.04 * base)) + abs(
            self._jitter_rng.gauss(0.0, 0.4)
        )
        return base + jitter

    def probe_rtts_ms(
        self, a, b, count: int, time_s: float = 0.0
    ) -> list:
        """RTTs of ``count`` back-to-back probes of one endpoint pair.

        Equivalent to ``count`` consecutive :meth:`probe_rtt_ms` calls —
        the jitter stream is consumed in the identical order, so the
        values are bit-for-bit the same — but the endpoint descriptions
        and base RTT are computed once instead of per probe.
        """
        desc_a = self._describe(a)
        desc_b = self._describe(b)
        inst_a = desc_a[2]
        inst_b = desc_b[2]
        base = self._base_rtt_from(desc_a, desc_b, time_s)
        gauss = self._jitter_rng.gauss
        if (
            inst_a is not None
            and inst_b is not None
            and inst_a.provider_name == inst_b.provider_name
            and inst_a.region_name == inst_b.region_name
        ):
            jitter_scale = (
                _type_jitter(inst_a.itype) + _type_jitter(inst_b.itype)
            )
            return [
                base + abs(gauss(0.0, jitter_scale)) for _ in range(count)
            ]
        mult_sigma = 0.04 * base
        # Parenthesised like probe_rtt_ms (base + (g1 + g2)): float
        # addition is not associative, so grouping is part of the output.
        return [
            base + (abs(gauss(0.0, mult_sigma)) + abs(gauss(0.0, 0.4)))
            for _ in range(count)
        ]


def _type_jitter(itype: InstanceType) -> float:
    return itype.rtt_jitter_ms
