"""The HTTP API: the service's read (and submit) surface.

Pure stdlib (``http.server``): the container bakes no web framework in
and none is needed — every response is JSON or plain text assembled
from the repository, the scheduler, and the observability plane.

Routes::

    GET  /health                 service + index cardinalities
    GET  /runs                   indexed runs (?scenario= &status=
                                 &seed= &experiment= &epoch_plan=
                                 &limit=)
    GET  /runs/<id>              the run's manifest.json
    GET  /runs/<id>/fidelity     fidelity report (JSON)
    GET  /runs/<id>/timings      wall-clock sidecar (JSON, volatile)
    GET  /runs/<id>/summary      rendered tables/figures (text)
    GET  /series                 indexed series (?plan= &scenario=
                                 &seed= &limit=)
    GET  /series/<id>            series.json
    GET  /series/<id>/trends     cross-epoch trend tables (text)
    GET  /compare?a=<id>&b=<id>  key-by-key diff of two runs
    GET  /metrics                Prometheus text exposition
    GET  /timeline               telemetry timeline entries (?source=
                                 &series= &scale= &scenario=
                                 &fingerprint= &limit=)
    GET  /dashboard              watchtower HTML (text with ?format=text)
    GET  /jobs                   job queue (?status=)
    GET  /jobs/<id>              one job's record
    POST /jobs                   submit a JobSpec (JSON body; ?force=1
                                 re-queues an identical spec)
    POST /scan                   re-index the repository (and timeline)
                                 from disk

Unknown ids are 404, bad specs/queries 400, everything else 500 — all
with ``{"error": ...}`` JSON bodies.

Every request is instrumented: a latency + response-size histogram per
route in ``/metrics``, an NDJSON access-log event per request when the
API holds an access-log sink, and an ``X-Request-Id`` echoed (or
minted) by the HTTP handler and propagated into submitted jobs.
"""

from __future__ import annotations

import json
import logging
import time
import uuid
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.obs import MetricsRegistry, Observability
from repro.service.compare import compare_runs
from repro.service.errors import (
    JobSpecError,
    ServiceError,
    UnknownJobError,
    UnknownRunError,
    UnknownSeriesError,
)
from repro.service.jobs import JobSpec

logger = logging.getLogger(__name__)

#: Default bind for ``repro serve``.
DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8321

#: Request-latency buckets (seconds) — the stdlib server answers most
#: reads in well under a millisecond, so the default ms-scale buckets
#: would collapse everything into the first one.
_LATENCY_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0,
)

#: Response-size buckets (bytes).
_SIZE_BUCKETS = (
    256.0, 1024.0, 4096.0, 16384.0, 65536.0, 262144.0,
    1048576.0, 4194304.0,
)


class _HTTPError(Exception):
    """Internal: carry a status + message up to the dispatcher."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status


def encode_payload(content_type: str, payload: object) -> bytes:
    """The response body bytes for a handler payload — one encoding
    shared by the HTTP handler and the size histogram."""
    if content_type == "application/json":
        return (json.dumps(payload, indent=2) + "\n").encode()
    return str(payload).encode()


class ServiceAPI:
    """Route handlers bound to one repository (+ optional scheduler)."""

    def __init__(
        self,
        repository,
        scheduler=None,
        obs: Optional[Observability] = None,
        timeline=None,
        access_log=None,
    ):
        self.repository = repository
        self.scheduler = scheduler
        self.obs = obs or Observability(metrics=MetricsRegistry())
        #: Optional :class:`repro.obs.timeline.TimelineStore` backing
        #: ``/timeline`` and ``/dashboard`` (503 without one).
        self.timeline = timeline
        #: Optional :class:`repro.obs.events.EventSink` receiving one
        #: NDJSON access-log event per handled request.
        self.access_log = access_log

    # -- dispatch ------------------------------------------------------

    def handle(
        self,
        method: str,
        path: str,
        body: Optional[bytes],
        headers: Optional[Dict[str, str]] = None,
    ) -> Tuple[int, str, object]:
        """Resolve one request to (status, content_type, payload).

        ``payload`` is a JSON-serialisable object unless
        ``content_type`` is ``text/plain`` or ``text/html``, in which
        case it is the final string.  ``headers`` (lower-cased keys)
        supplies ``x-request-id`` for log correlation.
        """
        split = urlsplit(path)
        query = {
            name: values[0]
            for name, values in parse_qs(split.query).items()
        }
        segments = [s for s in split.path.split("/") if s]
        route = segments[0] if segments else "health"
        request_id = (headers or {}).get("x-request-id")
        self.obs.metrics.counter(
            "service_requests_total", volatile=True,
            method=method, route=route,
        ).inc()
        started = time.perf_counter()
        try:
            response = self._dispatch(method, segments, query, body,
                                      headers or {})
        except _HTTPError as error:
            response = error.status, "application/json", {
                "error": str(error)
            }
        except (UnknownRunError, UnknownSeriesError,
                UnknownJobError) as error:
            response = 404, "application/json", {"error": str(error)}
        except JobSpecError as error:
            response = 400, "application/json", {"error": str(error)}
        except ServiceError as error:
            response = 500, "application/json", {"error": str(error)}
        except Exception as error:  # the server must keep serving
            logger.exception("unhandled error for %s %s", method, path)
            response = 500, "application/json", {
                "error": f"{type(error).__name__}: {error}"
            }
        self._observe(
            method, route, split.path, request_id,
            time.perf_counter() - started, response,
        )
        return response

    def _observe(
        self, method, route, path, request_id, elapsed_s, response
    ) -> None:
        """Per-request telemetry: histograms, status counter, and the
        access-log NDJSON event (all volatile — never in a manifest)."""
        status, content_type, payload = response
        size = len(encode_payload(content_type, payload))
        metrics = self.obs.metrics
        metrics.histogram(
            "service_request_seconds", volatile=True, route=route,
            buckets=_LATENCY_BUCKETS,
        ).observe(elapsed_s)
        metrics.histogram(
            "service_response_bytes", volatile=True, route=route,
            buckets=_SIZE_BUCKETS,
        ).observe(size)
        metrics.counter(
            "service_responses_total", volatile=True,
            route=route, code=str(status),
        ).inc()
        if self.access_log is not None:
            self.access_log.emit({
                "kind": "http_request",
                "method": method,
                "path": path,
                "route": route,
                "status": status,
                "bytes": size,
                "duration_ms": round(elapsed_s * 1000, 3),
                "request_id": request_id,
            })

    def _dispatch(self, method, segments, query, body, headers):
        if method == "POST":
            if segments == ["jobs"]:
                return self._submit_job(query, body, headers)
            if segments == ["scan"]:
                report = self.repository.scan().as_dict()
                if self.timeline is not None:
                    report["timeline"] = self.timeline.scan().as_dict()
                return 200, "application/json", report
            raise _HTTPError(404, f"no POST route /{'/'.join(segments)}")
        if method != "GET":
            raise _HTTPError(405, f"method {method} not allowed")
        if not segments or segments == ["health"]:
            return self._health()
        head, rest = segments[0], segments[1:]
        if head == "runs":
            return self._runs(rest, query)
        if head == "series":
            return self._series(rest, query)
        if head == "compare":
            return self._compare(query)
        if head == "metrics":
            return self._metrics()
        if head == "timeline":
            return self._timeline(rest, query)
        if head == "dashboard":
            return self._dashboard(query)
        if head == "jobs":
            return self._jobs(rest, query)
        raise _HTTPError(404, f"no route /{'/'.join(segments)}")

    # -- handlers ------------------------------------------------------

    def _health(self):
        from repro.artifacts.keys import code_fingerprint
        from repro.experiments.manifest import MANIFEST_SCHEMA_VERSION

        payload = {
            "status": "ok",
            "schema_version": MANIFEST_SCHEMA_VERSION,
            "code_fingerprint": code_fingerprint(),
            "index": self.repository.counts(),
            "scheduler": self.scheduler is not None,
        }
        if self.scheduler is not None:
            queue = self.scheduler.jobs()
            payload["jobs"] = {
                status: sum(1 for r in queue if r.status == status)
                for status in ("pending", "running", "completed",
                               "failed")
            }
        if self.timeline is not None:
            payload["timeline"] = self.timeline.counts()
        return 200, "application/json", payload

    @staticmethod
    def _int_param(query, name) -> Optional[int]:
        if name not in query:
            return None
        try:
            return int(query[name])
        except ValueError:
            raise _HTTPError(
                400, f"query parameter {name} must be an integer, "
                     f"got {query[name]!r}"
            ) from None

    def _runs(self, rest, query):
        if not rest:
            records = self.repository.runs(
                scenario=query.get("scenario"),
                status=query.get("status"),
                seed=self._int_param(query, "seed"),
                fingerprint=query.get("fingerprint"),
                experiment=query.get("experiment"),
                epoch_plan=query.get("epoch_plan"),
                limit=self._int_param(query, "limit"),
            )
            return 200, "application/json", {
                "runs": [record.as_dict() for record in records]
            }
        run_id = rest[0]
        if len(rest) == 1:
            loaded = self.repository.load_run(run_id)
            return 200, "application/json", loaded.manifest
        if rest[1:] == ["fidelity"]:
            loaded = self.repository.load_run(run_id)
            fidelity = (
                loaded.fidelity
                or loaded.manifest.get("fidelity") or {}
            )
            return 200, "application/json", fidelity
        if rest[1:] == ["timings"]:
            loaded = self.repository.load_run(run_id)
            return 200, "application/json", loaded.timings
        if rest[1:] == ["summary"]:
            record = self.repository.get_run(run_id)
            summary = Path(record.path) / "summaries.txt"
            if not summary.is_file():
                raise _HTTPError(
                    404, f"run {run_id} has no summaries.txt"
                )
            return 200, "text/plain", summary.read_text()
        raise _HTTPError(404, f"no route /runs/{'/'.join(rest[1:])}")

    def _series(self, rest, query):
        if not rest:
            records = self.repository.series(
                plan=query.get("plan"),
                scenario=query.get("scenario"),
                seed=self._int_param(query, "seed"),
                limit=self._int_param(query, "limit"),
            )
            return 200, "application/json", {
                "series": [record.as_dict() for record in records]
            }
        series_id = rest[0]
        if len(rest) == 1:
            payload = self.repository.load_series_payload(series_id)
            return 200, "application/json", payload
        if rest[1:] == ["trends"]:
            record = self.repository.get_series(series_id)
            trends = Path(record.path) / "trends.txt"
            if not trends.is_file():
                raise _HTTPError(
                    404, f"series {series_id} has no trends.txt"
                )
            return 200, "text/plain", trends.read_text()
        raise _HTTPError(
            404, f"no route /series/{'/'.join(rest[1:])}"
        )

    def _compare(self, query):
        for name in ("a", "b"):
            if name not in query:
                raise _HTTPError(
                    400, "compare needs ?a=<run-id>&b=<run-id>"
                )
        diff = compare_runs(
            self.repository.load_run(query["a"]),
            self.repository.load_run(query["b"]),
        )
        return 200, "application/json", diff

    def _metrics(self):
        metrics = self.obs.metrics
        if metrics.enabled:
            counts = self.repository.counts()
            metrics.gauge(
                "service_indexed_runs", volatile=True
            ).set(counts["runs"])
            metrics.gauge(
                "service_indexed_series", volatile=True
            ).set(counts["series"])
            if self.scheduler is not None:
                queue = self.scheduler.jobs()
                for status in ("pending", "running", "completed",
                               "failed"):
                    metrics.gauge(
                        "service_jobs", volatile=True, status=status,
                    ).set(
                        sum(1 for r in queue if r.status == status)
                    )
                metrics.gauge(
                    "service_scheduler_queue_depth", volatile=True,
                ).set(
                    sum(1 for r in queue if r.status == "pending")
                )
            if self.timeline is not None:
                timeline_counts = self.timeline.counts()
                for source in ("run", "bench"):
                    metrics.gauge(
                        "service_timeline_entries", volatile=True,
                        source=source,
                    ).set(timeline_counts[f"{source}_entries"])
        return 200, "text/plain", metrics.render_prometheus()

    def _timeline(self, rest, query):
        if self.timeline is None:
            raise _HTTPError(
                503, "this server runs without a telemetry timeline"
            )
        if rest == ["series"]:
            return 200, "application/json", {
                "series": self.timeline.series_keys()
            }
        if rest:
            raise _HTTPError(
                404, f"no route /timeline/{'/'.join(rest)}"
            )
        entries = self.timeline.entries(
            source=query.get("source"),
            series_key=query.get("series"),
            scale=query.get("scale"),
            scenario=query.get("scenario"),
            fingerprint=query.get("fingerprint"),
            limit=self._int_param(query, "limit"),
        )
        return 200, "application/json", {
            "entries": [entry.as_dict() for entry in entries]
        }

    def _dashboard(self, query):
        if self.timeline is None:
            raise _HTTPError(
                503, "this server runs without a telemetry timeline"
            )
        from repro.obs.dashboard import render_html, render_report
        from repro.obs.sentinel import check_store

        reports = check_store(self.timeline)
        if query.get("format") == "text":
            return 200, "text/plain", render_report(
                self.timeline, reports
            )
        _, _, health = self._health()
        return 200, "text/html", render_html(
            self.timeline, reports, health=health
        )

    def _jobs(self, rest, query):
        if self.scheduler is None:
            raise _HTTPError(
                503, "this server runs without a scheduler"
            )
        if not rest:
            records = self.scheduler.jobs(status=query.get("status"))
            return 200, "application/json", {
                "jobs": [record.as_dict() for record in records]
            }
        if len(rest) == 1:
            record = self.scheduler.get(rest[0])
            return 200, "application/json", record.as_dict()
        raise _HTTPError(404, f"no route /jobs/{'/'.join(rest[1:])}")

    def _submit_job(self, query, body, headers=None):
        if self.scheduler is None:
            raise _HTTPError(
                503, "this server runs without a scheduler"
            )
        try:
            payload = json.loads(body or b"{}")
        except json.JSONDecodeError as error:
            raise _HTTPError(
                400, f"job body is not valid JSON: {error}"
            ) from None
        spec = JobSpec.from_dict(payload)
        record = self.scheduler.submit(
            spec,
            force=query.get("force") in ("1", "true", "yes"),
            request_id=(headers or {}).get("x-request-id"),
        )
        return 202, "application/json", record.as_dict()

    # -- server glue ---------------------------------------------------

    def make_server(
        self, host: str = DEFAULT_HOST, port: int = DEFAULT_PORT
    ) -> ThreadingHTTPServer:
        """A threading HTTP server bound to this API (``port=0`` picks
        a free port; read it back from ``server.server_address``)."""
        api = self

        class Handler(BaseHTTPRequestHandler):
            def _serve(self, method: str) -> None:
                length = int(self.headers.get("Content-Length") or 0)
                body = self.rfile.read(length) if length else None
                # Echo the caller's correlation id or mint one; the
                # same id reaches the access log, the job record, and
                # the response header.
                request_id = (
                    self.headers.get("X-Request-Id")
                    or uuid.uuid4().hex[:12]
                )
                headers = {
                    name.lower(): value
                    for name, value in self.headers.items()
                }
                headers["x-request-id"] = request_id
                status, content_type, payload = api.handle(
                    method, self.path, body, headers=headers
                )
                data = encode_payload(content_type, payload)
                self.send_response(status)
                self.send_header(
                    "Content-Type", f"{content_type}; charset=utf-8"
                )
                self.send_header("Content-Length", str(len(data)))
                self.send_header("X-Request-Id", request_id)
                self.end_headers()
                self.wfile.write(data)

            def do_GET(self):  # noqa: N802 (http.server convention)
                self._serve("GET")

            def do_POST(self):  # noqa: N802
                self._serve("POST")

            def log_message(self, format, *args):
                logger.debug(
                    "%s %s", self.address_string(), format % args
                )

        return ThreadingHTTPServer((host, port), Handler)
