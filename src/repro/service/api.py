"""The HTTP API: the service's read (and submit) surface.

Pure stdlib (``http.server``): the container bakes no web framework in
and none is needed — every response is JSON or plain text assembled
from the repository, the scheduler, and the observability plane.

Routes::

    GET  /health                 service + index cardinalities
    GET  /runs                   indexed runs (?scenario= &status=
                                 &seed= &experiment= &epoch_plan=
                                 &limit=)
    GET  /runs/<id>              the run's manifest.json
    GET  /runs/<id>/fidelity     fidelity report (JSON)
    GET  /runs/<id>/timings      wall-clock sidecar (JSON, volatile)
    GET  /runs/<id>/summary      rendered tables/figures (text)
    GET  /series                 indexed series (?plan= &scenario=
                                 &seed= &limit=)
    GET  /series/<id>            series.json
    GET  /series/<id>/trends     cross-epoch trend tables (text)
    GET  /compare?a=<id>&b=<id>  key-by-key diff of two runs
    GET  /metrics                Prometheus text exposition
    GET  /jobs                   job queue (?status=)
    GET  /jobs/<id>              one job's record
    POST /jobs                   submit a JobSpec (JSON body; ?force=1
                                 re-queues an identical spec)
    POST /scan                   re-index the repository from disk

Unknown ids are 404, bad specs/queries 400, everything else 500 — all
with ``{"error": ...}`` JSON bodies.
"""

from __future__ import annotations

import json
import logging
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.obs import MetricsRegistry, Observability
from repro.service.compare import compare_runs
from repro.service.errors import (
    JobSpecError,
    ServiceError,
    UnknownJobError,
    UnknownRunError,
    UnknownSeriesError,
)
from repro.service.jobs import JobSpec

logger = logging.getLogger(__name__)

#: Default bind for ``repro serve``.
DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8321


class _HTTPError(Exception):
    """Internal: carry a status + message up to the dispatcher."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status


class ServiceAPI:
    """Route handlers bound to one repository (+ optional scheduler)."""

    def __init__(
        self,
        repository,
        scheduler=None,
        obs: Optional[Observability] = None,
    ):
        self.repository = repository
        self.scheduler = scheduler
        self.obs = obs or Observability(metrics=MetricsRegistry())

    # -- dispatch ------------------------------------------------------

    def handle(
        self, method: str, path: str, body: Optional[bytes]
    ) -> Tuple[int, str, object]:
        """Resolve one request to (status, content_type, payload).

        ``payload`` is a JSON-serialisable object unless
        ``content_type`` is ``text/plain``, in which case it is the
        final string.
        """
        split = urlsplit(path)
        query = {
            name: values[0]
            for name, values in parse_qs(split.query).items()
        }
        segments = [s for s in split.path.split("/") if s]
        route = segments[0] if segments else "health"
        self.obs.metrics.counter(
            "service_requests_total", volatile=True,
            method=method, route=route,
        ).inc()
        try:
            return self._dispatch(method, segments, query, body)
        except _HTTPError as error:
            return error.status, "application/json", {
                "error": str(error)
            }
        except (UnknownRunError, UnknownSeriesError,
                UnknownJobError) as error:
            return 404, "application/json", {"error": str(error)}
        except JobSpecError as error:
            return 400, "application/json", {"error": str(error)}
        except ServiceError as error:
            return 500, "application/json", {"error": str(error)}
        except Exception as error:  # the server must keep serving
            logger.exception("unhandled error for %s %s", method, path)
            return 500, "application/json", {
                "error": f"{type(error).__name__}: {error}"
            }

    def _dispatch(self, method, segments, query, body):
        if method == "POST":
            if segments == ["jobs"]:
                return self._submit_job(query, body)
            if segments == ["scan"]:
                report = self.repository.scan()
                return 200, "application/json", report.as_dict()
            raise _HTTPError(404, f"no POST route /{'/'.join(segments)}")
        if method != "GET":
            raise _HTTPError(405, f"method {method} not allowed")
        if not segments or segments == ["health"]:
            return self._health()
        head, rest = segments[0], segments[1:]
        if head == "runs":
            return self._runs(rest, query)
        if head == "series":
            return self._series(rest, query)
        if head == "compare":
            return self._compare(query)
        if head == "metrics":
            return self._metrics()
        if head == "jobs":
            return self._jobs(rest, query)
        raise _HTTPError(404, f"no route /{'/'.join(segments)}")

    # -- handlers ------------------------------------------------------

    def _health(self):
        payload = {
            "status": "ok",
            "index": self.repository.counts(),
            "scheduler": self.scheduler is not None,
        }
        if self.scheduler is not None:
            queue = self.scheduler.jobs()
            payload["jobs"] = {
                status: sum(1 for r in queue if r.status == status)
                for status in ("pending", "running", "completed",
                               "failed")
            }
        return 200, "application/json", payload

    @staticmethod
    def _int_param(query, name) -> Optional[int]:
        if name not in query:
            return None
        try:
            return int(query[name])
        except ValueError:
            raise _HTTPError(
                400, f"query parameter {name} must be an integer, "
                     f"got {query[name]!r}"
            ) from None

    def _runs(self, rest, query):
        if not rest:
            records = self.repository.runs(
                scenario=query.get("scenario"),
                status=query.get("status"),
                seed=self._int_param(query, "seed"),
                fingerprint=query.get("fingerprint"),
                experiment=query.get("experiment"),
                epoch_plan=query.get("epoch_plan"),
                limit=self._int_param(query, "limit"),
            )
            return 200, "application/json", {
                "runs": [record.as_dict() for record in records]
            }
        run_id = rest[0]
        if len(rest) == 1:
            loaded = self.repository.load_run(run_id)
            return 200, "application/json", loaded.manifest
        if rest[1:] == ["fidelity"]:
            loaded = self.repository.load_run(run_id)
            fidelity = (
                loaded.fidelity
                or loaded.manifest.get("fidelity") or {}
            )
            return 200, "application/json", fidelity
        if rest[1:] == ["timings"]:
            loaded = self.repository.load_run(run_id)
            return 200, "application/json", loaded.timings
        if rest[1:] == ["summary"]:
            record = self.repository.get_run(run_id)
            summary = Path(record.path) / "summaries.txt"
            if not summary.is_file():
                raise _HTTPError(
                    404, f"run {run_id} has no summaries.txt"
                )
            return 200, "text/plain", summary.read_text()
        raise _HTTPError(404, f"no route /runs/{'/'.join(rest[1:])}")

    def _series(self, rest, query):
        if not rest:
            records = self.repository.series(
                plan=query.get("plan"),
                scenario=query.get("scenario"),
                seed=self._int_param(query, "seed"),
                limit=self._int_param(query, "limit"),
            )
            return 200, "application/json", {
                "series": [record.as_dict() for record in records]
            }
        series_id = rest[0]
        if len(rest) == 1:
            payload = self.repository.load_series_payload(series_id)
            return 200, "application/json", payload
        if rest[1:] == ["trends"]:
            record = self.repository.get_series(series_id)
            trends = Path(record.path) / "trends.txt"
            if not trends.is_file():
                raise _HTTPError(
                    404, f"series {series_id} has no trends.txt"
                )
            return 200, "text/plain", trends.read_text()
        raise _HTTPError(
            404, f"no route /series/{'/'.join(rest[1:])}"
        )

    def _compare(self, query):
        for name in ("a", "b"):
            if name not in query:
                raise _HTTPError(
                    400, "compare needs ?a=<run-id>&b=<run-id>"
                )
        diff = compare_runs(
            self.repository.load_run(query["a"]),
            self.repository.load_run(query["b"]),
        )
        return 200, "application/json", diff

    def _metrics(self):
        metrics = self.obs.metrics
        if metrics.enabled:
            counts = self.repository.counts()
            metrics.gauge(
                "service_indexed_runs", volatile=True
            ).set(counts["runs"])
            metrics.gauge(
                "service_indexed_series", volatile=True
            ).set(counts["series"])
        return 200, "text/plain", metrics.render_prometheus()

    def _jobs(self, rest, query):
        if self.scheduler is None:
            raise _HTTPError(
                503, "this server runs without a scheduler"
            )
        if not rest:
            records = self.scheduler.jobs(status=query.get("status"))
            return 200, "application/json", {
                "jobs": [record.as_dict() for record in records]
            }
        if len(rest) == 1:
            record = self.scheduler.get(rest[0])
            return 200, "application/json", record.as_dict()
        raise _HTTPError(404, f"no route /jobs/{'/'.join(rest[1:])}")

    def _submit_job(self, query, body):
        if self.scheduler is None:
            raise _HTTPError(
                503, "this server runs without a scheduler"
            )
        try:
            payload = json.loads(body or b"{}")
        except json.JSONDecodeError as error:
            raise _HTTPError(
                400, f"job body is not valid JSON: {error}"
            ) from None
        spec = JobSpec.from_dict(payload)
        record = self.scheduler.submit(
            spec, force=query.get("force") in ("1", "true", "yes")
        )
        return 202, "application/json", record.as_dict()

    # -- server glue ---------------------------------------------------

    def make_server(
        self, host: str = DEFAULT_HOST, port: int = DEFAULT_PORT
    ) -> ThreadingHTTPServer:
        """A threading HTTP server bound to this API (``port=0`` picks
        a free port; read it back from ``server.server_address``)."""
        api = self

        class Handler(BaseHTTPRequestHandler):
            def _serve(self, method: str) -> None:
                length = int(self.headers.get("Content-Length") or 0)
                body = self.rfile.read(length) if length else None
                status, content_type, payload = api.handle(
                    method, self.path, body
                )
                if content_type == "application/json":
                    data = (
                        json.dumps(payload, indent=2) + "\n"
                    ).encode()
                else:
                    data = str(payload).encode()
                self.send_response(status)
                self.send_header(
                    "Content-Type", f"{content_type}; charset=utf-8"
                )
                self.send_header("Content-Length", str(len(data)))
                self.end_headers()
                self.wfile.write(data)

            def do_GET(self):  # noqa: N802 (http.server convention)
                self._serve("GET")

            def do_POST(self):  # noqa: N802
                self._serve("POST")

            def log_message(self, format, *args):
                logger.debug(
                    "%s %s", self.address_string(), format % args
                )

        return ThreadingHTTPServer((host, port), Handler)
