"""Service-plane errors.

Everything the service layer can refuse to do raises a
:class:`ServiceError` subclass, and the CLI maps the whole family to
one dedicated exit code (``EXIT_SERVICE``) — distinct from usage
errors (2) and the fidelity gate (3) — so callers can tell "you asked
wrong" from "the paper disagrees" from "the service could not".
"""

from __future__ import annotations


class ServiceError(Exception):
    """Base class for repository/scheduler/API failures."""


class UnknownRunError(ServiceError):
    """A run id the repository has never indexed (nor disk holds)."""

    def __init__(self, run_id: str):
        super().__init__(f"unknown run: {run_id!r}")
        self.run_id = run_id


class UnknownSeriesError(ServiceError):
    """A series id neither the index nor the disk tree knows."""

    def __init__(self, series_id: str):
        super().__init__(f"unknown series: {series_id!r}")
        self.series_id = series_id


class UnknownJobError(ServiceError):
    """A job id with no spec file under the jobs directory."""

    def __init__(self, job_id: str):
        super().__init__(f"unknown job: {job_id!r}")
        self.job_id = job_id


class JobSpecError(ServiceError):
    """A job submission the scheduler cannot execute as specified."""
