"""Job specs and the scheduler: the service's execution layer.

A :class:`JobSpec` is a deterministic, content-addressed description of
one unit of work — the same (kind, config) always hashes to the same
``job-<hash>`` id, so resubmitting a spec is idempotent.  Three kinds:

* ``run`` — a single-shot experiments campaign, exactly the classic
  ``repro-experiments`` invocation (same :class:`ExperimentContext`,
  same :class:`RunManifest`, same ``run-<hash>`` directory — byte
  identical to the CLI path for the same config);
* ``series`` — a longitudinal epoch series via
  :func:`repro.epochs.series.run_series`, unchanged;
* ``bench`` — the ``scripts/profile_pipeline.py`` profile in a
  subprocess (source checkouts only; the script is not packaged).

Job state lives as one JSON file per job under ``<root>/jobs/`` — like
the run directories themselves, the files are the source of truth and
the SQLite index stays a pure cache of *results*.  The
:class:`Scheduler` claims the oldest pending job, executes it, records
the outcome in the job file, and ingests the produced run/series
directories into the repository.  ``run_forever`` is the daemon loop
``repro serve`` spins up next to the HTTP API.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import subprocess
import sys
import threading
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.artifacts.keys import canonical
from repro.obs import NOOP, Observability
from repro.service.errors import JobSpecError, UnknownJobError

logger = logging.getLogger(__name__)

JOB_KINDS = ("run", "series", "bench")
JOB_STATUSES = ("pending", "running", "completed", "failed")

#: Version of the job-file layout (same contract as run manifests).
JOB_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class JobSpec:
    """One deterministic unit of schedulable work."""

    kind: str = "run"
    seed: int = 7
    domains: int = 6000
    wan_rounds: int = 36
    workers: int = 0
    scenario: Optional[str] = None
    #: Experiment ids to run; empty = the full registry.
    experiments: Tuple[str, ...] = ()
    #: Series-only knobs (ignored for other kinds).
    epochs: Optional[int] = None
    epoch_plan: Optional[str] = None

    @property
    def job_id(self) -> str:
        """Content address — worker counts are excluded (they never
        change outputs), so a sharded submission dedups against the
        sequential one."""
        addressed = replace(self, workers=0)
        digest = hashlib.sha256(canonical(addressed).encode())
        return "job-" + digest.hexdigest()[:12]

    def validate(self) -> None:
        """Reject specs the scheduler could never execute — at submit
        time, not hours later when the job is claimed."""
        if self.kind not in JOB_KINDS:
            raise JobSpecError(
                f"unknown job kind {self.kind!r} "
                f"(expected one of {', '.join(JOB_KINDS)})"
            )
        if self.seed < 0 or self.domains < 1 or self.wan_rounds < 1:
            raise JobSpecError(
                f"invalid config: seed={self.seed} "
                f"domains={self.domains} wan_rounds={self.wan_rounds}"
            )
        if self.experiments:
            from repro.experiments.registry import experiment_ids

            unknown = sorted(
                set(self.experiments) - set(experiment_ids())
            )
            if unknown:
                raise JobSpecError(
                    f"unknown experiments: {', '.join(unknown)}"
                )
        if self.scenario is not None:
            from repro.faults import resolve_scenario

            try:
                resolve_scenario(self.scenario)
            except ValueError as error:
                raise JobSpecError(str(error)) from error
        if self.kind == "series":
            if self.epochs is not None and self.epochs < 1:
                raise JobSpecError(
                    f"--epochs must be >= 1, got {self.epochs}"
                )
            from repro.epochs import (
                DEFAULT_EPOCH_PLAN,
                resolve_epoch_plan,
            )

            try:
                resolve_epoch_plan(self.epoch_plan or DEFAULT_EPOCH_PLAN)
            except ValueError as error:
                raise JobSpecError(str(error)) from error

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "seed": self.seed,
            "domains": self.domains,
            "wan_rounds": self.wan_rounds,
            "workers": self.workers,
            "scenario": self.scenario,
            "experiments": list(self.experiments),
            "epochs": self.epochs,
            "epoch_plan": self.epoch_plan,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "JobSpec":
        if not isinstance(payload, dict):
            raise JobSpecError(
                f"job spec must be a JSON object, got "
                f"{type(payload).__name__}"
            )
        known = {
            "kind", "seed", "domains", "wan_rounds", "workers",
            "scenario", "experiments", "epochs", "epoch_plan",
        }
        unknown = sorted(set(payload) - known)
        if unknown:
            raise JobSpecError(
                f"unknown job spec fields: {', '.join(unknown)}"
            )
        fields_in = {k: v for k, v in payload.items() if v is not None}
        if "experiments" in fields_in:
            experiments = fields_in["experiments"]
            if isinstance(experiments, str):
                experiments = experiments.split()
            fields_in["experiments"] = tuple(experiments)
        try:
            spec = cls(**fields_in)
        except TypeError as error:
            raise JobSpecError(str(error)) from error
        spec.validate()
        return spec


@dataclass
class JobRecord:
    """One job's durable state (mirrors its file under ``jobs/``)."""

    spec: JobSpec
    status: str = "pending"
    #: Submission wall clock — ordering only, never in any manifest.
    created_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    #: What the execution produced: run_id / series_id / bench path,
    #: fidelity status, artifact locations.
    outcome: Dict[str, object] = field(default_factory=dict)
    #: Last execution failure (also surfaced as ``last_error``).
    error: Optional[str] = None
    #: How many times the scheduler has claimed this job.
    attempts: int = 0
    #: X-Request-Id of the HTTP submission, when there was one —
    #: propagated into the produced run's ``timings.json``.
    request_id: Optional[str] = None

    @property
    def job_id(self) -> str:
        return self.spec.job_id

    def as_dict(self) -> dict:
        return {
            "schema_version": JOB_SCHEMA_VERSION,
            "job_id": self.job_id,
            "spec": self.spec.as_dict(),
            "status": self.status,
            "created_at": self.created_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "attempts": self.attempts,
            "request_id": self.request_id,
            "outcome": self.outcome,
            "error": self.error,
            "last_error": self.error,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "JobRecord":
        spec = JobSpec.from_dict(payload.get("spec") or {})
        return cls(
            spec=spec,
            status=payload.get("status", "pending"),
            created_at=payload.get("created_at", 0.0),
            started_at=payload.get("started_at"),
            finished_at=payload.get("finished_at"),
            outcome=payload.get("outcome") or {},
            error=payload.get("error") or payload.get("last_error"),
            attempts=int(payload.get("attempts") or 0),
            request_id=payload.get("request_id"),
        )


class Scheduler:
    """Claims pending jobs and executes them through the pipeline."""

    def __init__(
        self,
        repository,
        artifact_store=None,
        obs: Observability = NOOP,
        max_attempts: int = 1,
        timeline=None,
    ):
        self.repository = repository
        self.jobs_dir = Path(repository.root) / "jobs"
        self.jobs_dir.mkdir(parents=True, exist_ok=True)
        #: Content-addressed artifact cache threaded into every job's
        #: context; ``None`` keeps every job a cold build (and its
        #: manifest byte-identical to a fresh CLI run's).
        self.artifact_store = artifact_store
        #: Service-level observability (job counters); per-job pipeline
        #: obs is always a fresh collecting plane, like a CLI process.
        self.obs = obs
        #: Retry budget: a failed job stays claimable until it has been
        #: attempted this many times (1 = the historic no-retry
        #: behaviour).
        self.max_attempts = max(1, int(max_attempts))
        #: Optional :class:`repro.obs.timeline.TimelineStore` —
        #: completed jobs auto-append their telemetry, and bench jobs
        #: get a regression-sentinel pass over their trajectory.
        self.timeline = timeline
        #: The record currently being executed (provenance for the
        #: produced run's ``timings.json``).
        self._active_job: Optional[JobRecord] = None
        self._lock = threading.RLock()

    # -- job files -----------------------------------------------------

    def _job_path(self, job_id: str) -> Path:
        return self.jobs_dir / f"{job_id}.json"

    def _write(self, record: JobRecord) -> None:
        path = self._job_path(record.job_id)
        tmp = path.with_suffix(".json.tmp")
        with tmp.open("w") as fh:
            json.dump(record.as_dict(), fh, indent=2)
            fh.write("\n")
        os.replace(tmp, path)

    def get(self, job_id: str) -> JobRecord:
        path = self._job_path(job_id)
        try:
            with path.open() as fh:
                return JobRecord.from_dict(json.load(fh))
        except FileNotFoundError:
            raise UnknownJobError(job_id) from None
        except (OSError, json.JSONDecodeError, JobSpecError) as error:
            raise UnknownJobError(job_id) from error

    def jobs(self, status: Optional[str] = None) -> List[JobRecord]:
        """All jobs, submission order (created_at, id ties broken by
        id so listings are stable)."""
        records = []
        for path in self.jobs_dir.glob("job-*.json"):
            try:
                with path.open() as fh:
                    records.append(JobRecord.from_dict(json.load(fh)))
            except (OSError, json.JSONDecodeError, JobSpecError) as err:
                logger.warning("skipping job file %s: %s", path, err)
        if status is not None:
            records = [r for r in records if r.status == status]
        return sorted(
            records, key=lambda r: (r.created_at, r.job_id)
        )

    # -- submission ----------------------------------------------------

    def submit(
        self,
        spec: JobSpec,
        force: bool = False,
        request_id: Optional[str] = None,
    ) -> JobRecord:
        """Enqueue ``spec``; resubmitting the same spec returns the
        existing job unless ``force`` re-queues it."""
        spec.validate()
        with self._lock:
            try:
                existing = self.get(spec.job_id)
            except UnknownJobError:
                existing = None
            if existing is not None and not force:
                return existing
            record = JobRecord(
                spec=spec, created_at=time.time(),
                request_id=request_id,
            )
            self._write(record)
        self.obs.metrics.counter(
            "service_jobs_submitted_total", volatile=True,
            kind=spec.kind,
        ).inc()
        return record

    # -- execution -----------------------------------------------------

    def claim_next(self) -> Optional[JobRecord]:
        """Oldest claimable job, flipped to ``running`` (single-claimant
        protocol: one scheduler per jobs directory).

        Pending jobs go first; when none remain, failed jobs with
        attempts left under :attr:`max_attempts` are re-claimed oldest
        first (the retry policy — a transient failure does not wedge
        the queue forever, a persistent one stops after the budget).
        """
        with self._lock:
            claimable = self.jobs(status="pending")
            retry = False
            if not claimable:
                claimable = [
                    r for r in self.jobs(status="failed")
                    if r.attempts < self.max_attempts
                ]
                retry = True
            if not claimable:
                return None
            record = claimable[0]
            record.status = "running"
            record.started_at = time.time()
            record.attempts += 1
            self._write(record)
        self.obs.metrics.counter(
            "service_jobs_claimed_total", volatile=True,
            kind=record.spec.kind,
        ).inc()
        if retry:
            self.obs.metrics.counter(
                "service_job_retries_total", volatile=True,
                kind=record.spec.kind,
            ).inc()
            logger.info(
                "retrying %s (attempt %d/%d): %s",
                record.job_id, record.attempts, self.max_attempts,
                record.error,
            )
        return record

    def execute(self, record: JobRecord) -> JobRecord:
        """Run one claimed job to completion and persist the outcome."""
        spec = record.spec
        logger.info("executing %s (%s)", record.job_id, spec.kind)
        self._active_job = record
        try:
            if spec.kind == "run":
                record.outcome = self._execute_run(spec)
            elif spec.kind == "series":
                record.outcome = self._execute_series(spec)
            elif spec.kind == "bench":
                record.outcome = self._execute_bench(spec)
            else:  # pre-validated; belt and braces
                raise JobSpecError(f"unknown job kind {spec.kind!r}")
            record.status = "completed"
            record.error = None
        except Exception as error:  # a failed job must not kill the loop
            logger.exception("job %s failed", record.job_id)
            record.status = "failed"
            record.error = f"{type(error).__name__}: {error}"
        finally:
            self._active_job = None
        record.finished_at = time.time()
        self._write(record)
        self.obs.metrics.counter(
            "service_jobs_executed_total", volatile=True,
            kind=spec.kind, status=record.status,
        ).inc()
        return record

    def run_pending(self) -> int:
        """Drain the queue once; returns how many jobs were executed."""
        executed = 0
        while True:
            record = self.claim_next()
            if record is None:
                return executed
            self.execute(record)
            executed += 1

    def run_forever(
        self,
        poll_interval: float = 2.0,
        stop: Optional[threading.Event] = None,
    ) -> None:
        """The daemon loop: drain, sleep, repeat until ``stop``."""
        stop = stop or threading.Event()
        while not stop.is_set():
            if self.run_pending() == 0:
                stop.wait(poll_interval)

    # -- kind implementations ------------------------------------------

    def _context_for(self, spec: JobSpec, obs: Observability):
        from repro.analysis.wan import WanConfig
        from repro.experiments.context import ExperimentContext
        from repro.faults import resolve_scenario
        from repro.world import WorldConfig

        scenario = (
            resolve_scenario(spec.scenario)
            if spec.scenario is not None else None
        )
        return ExperimentContext(
            WorldConfig(seed=spec.seed, num_domains=spec.domains),
            WanConfig(rounds=spec.wan_rounds, workers=spec.workers),
            workers=spec.workers,
            artifact_store=self.artifact_store,
            scenario=scenario,
            obs=obs,
        )

    def _specs_for(self, spec: JobSpec):
        from repro.experiments.registry import (
            all_experiments,
            get_experiment,
        )

        if spec.experiments:
            return [get_experiment(e) for e in spec.experiments]
        return all_experiments()

    def _execute_run(self, spec: JobSpec) -> Dict[str, object]:
        """The single-shot campaign — deliberately the same code path
        a ``repro-experiments --out-dir`` invocation takes, so the
        produced ``run-<hash>/`` is byte-identical to the CLI's."""
        from repro.experiments.manifest import RunManifest
        from repro.sim import set_rng_observer

        obs = Observability.collecting()
        context = self._context_for(spec, obs)
        experiments = self._specs_for(spec)
        runs, results = [], []
        previous_observer = obs.install_rng_counter()
        try:
            for experiment in experiments:
                started = time.time()
                result = experiment.run(context)
                runs.append(
                    (experiment, result, time.time() - started)
                )
                results.append(result)
        finally:
            set_rng_observer(previous_observer)
        manifest = RunManifest.from_run(context, runs)
        job = self._active_job
        if job is not None:
            # Provenance rides the volatile sidecar (timings.json):
            # the manifest must stay byte-identical to a CLI run's.
            manifest.timings["job"] = {
                "job_id": job.job_id,
                "request_id": job.request_id,
                "attempt": job.attempts,
            }
        manifest.write(
            self.repository.root, results=results, context=context
        )
        run_dir = Path(self.repository.root) / manifest.run_id
        record = self.repository.ingest_run_dir(run_dir)
        self._record_timeline_run(run_dir)
        return {
            "run_id": manifest.run_id,
            "fidelity_status": record.fidelity_status,
            "counts": dict(record.counts),
            "divergent_keys": [
                list(pair) for pair in manifest.fidelity.divergent_keys
            ],
        }

    def _execute_series(self, spec: JobSpec) -> Dict[str, object]:
        from repro.analysis.wan import WanConfig
        from repro.epochs import DEFAULT_EPOCH_PLAN, resolve_epoch_plan
        from repro.epochs.series import run_series
        from repro.faults import resolve_scenario
        from repro.sim import set_rng_observer
        from repro.world import WorldConfig

        plan = resolve_epoch_plan(spec.epoch_plan or DEFAULT_EPOCH_PLAN)
        scenario = (
            resolve_scenario(spec.scenario)
            if spec.scenario is not None else None
        )
        obs = Observability.collecting()
        previous_observer = obs.install_rng_counter()
        try:
            series = run_series(
                self._specs_for(spec),
                WorldConfig(seed=spec.seed, num_domains=spec.domains),
                WanConfig(
                    rounds=spec.wan_rounds, workers=spec.workers
                ),
                plan,
                spec.epochs if spec.epochs is not None else 3,
                workers=spec.workers,
                artifact_store=self.artifact_store,
                scenario=scenario,
                obs=obs,
                out_dir=self.repository.root,
            )
        finally:
            set_rng_observer(previous_observer)
        record = self.repository.ingest_series_dir(
            Path(self.repository.root) / series.series_id
        )
        for run_id in record.run_ids:
            self._record_timeline_run(
                Path(self.repository.root) / run_id
            )
        epoch0 = series.epochs[0].manifest.fidelity
        return {
            "series_id": series.series_id,
            "run_ids": list(record.run_ids),
            "epoch0_fidelity": epoch0.status,
        }

    def _execute_bench(self, spec: JobSpec) -> Dict[str, object]:
        """Run the profiling script in a subprocess (source checkouts
        only) and surface its digest block."""
        import repro

        script = (
            Path(repro.__file__).resolve().parents[2]
            / "scripts" / "profile_pipeline.py"
        )
        if not script.is_file():
            raise JobSpecError(
                f"bench jobs need scripts/profile_pipeline.py (looked "
                f"at {script}); run the service from a source checkout"
            )
        bench_dir = Path(self.repository.root) / "bench"
        bench_dir.mkdir(parents=True, exist_ok=True)
        # Sequence-numbered outputs: a forced resubmission appends a
        # new trajectory point instead of replacing the old file (the
        # script's same-fingerprint carry-forward would otherwise
        # overwrite the baseline the sentinel needs).
        sequence = 0
        while (bench_dir / f"{spec.job_id}-{sequence:03d}.json").exists():
            sequence += 1
        out = bench_dir / f"{spec.job_id}-{sequence:03d}.json"
        command = [
            sys.executable, str(script),
            "--domains", str(spec.domains),
            "--wan-rounds", str(spec.wan_rounds),
            "--workers", str(spec.workers),
            "--no-cache-check",
            "--out", str(out),
        ]
        env = dict(os.environ)
        src = str(Path(repro.__file__).resolve().parents[1])
        env["PYTHONPATH"] = (
            src + os.pathsep + env["PYTHONPATH"]
            if env.get("PYTHONPATH") else src
        )
        completed = subprocess.run(
            command, env=env, capture_output=True, text=True
        )
        if completed.returncode != 0:
            raise JobSpecError(
                f"bench run exited {completed.returncode}: "
                f"{completed.stderr.strip()[-500:]}"
            )
        with out.open() as fh:
            bench = json.load(fh)
        outcome: Dict[str, object] = {
            "bench_path": str(out),
            "digests": bench.get("digests", {}),
        }
        outcome.update(self._record_timeline_bench(out))
        return outcome

    # -- timeline hooks ------------------------------------------------

    def _record_timeline_run(self, run_dir: Path) -> None:
        """Best-effort append to the telemetry timeline (a timeline
        problem must never fail the job that produced the run)."""
        if self.timeline is None:
            return
        try:
            self.timeline.record_run(run_dir)
            self.obs.metrics.counter(
                "service_timeline_appends_total", volatile=True,
                source="run",
            ).inc()
        except (OSError, ValueError) as error:
            logger.warning(
                "timeline: could not record %s: %s", run_dir, error
            )

    def _record_timeline_bench(self, path: Path) -> Dict[str, object]:
        """Append a bench file's trajectory to the timeline, then run
        the regression sentinel over the touched series and persist the
        verdicts as ``<stem>.regressions.json`` next to the output."""
        if self.timeline is None:
            return {}
        from repro.obs.sentinel import check_series, write_regressions

        try:
            entries = self.timeline.record_bench(path)
        except (OSError, ValueError) as error:
            logger.warning(
                "timeline: could not record %s: %s", path, error
            )
            return {}
        self.obs.metrics.counter(
            "service_timeline_appends_total", volatile=True,
            source="bench",
        ).inc()
        reports = []
        for series_key in sorted({e.series_key for e in entries}):
            report = check_series(self.timeline, series_key)
            if report is not None:
                reports.append(report)
        regressions_path = path.with_name(
            path.stem + ".regressions.json"
        )
        payload = write_regressions(regressions_path, reports)
        self.obs.metrics.counter(
            "service_sentinel_checks_total", volatile=True,
            status=payload["status"],
        ).inc()
        return {
            "regressions_path": str(regressions_path),
            "regression_status": payload["status"],
        }
