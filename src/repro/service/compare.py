"""Run comparison: key-by-key diff of two run directories.

``/compare?a=<run>&b=<run>`` (and ``repro runs compare A B``) load both
manifests and diff them three ways:

* **config** — which knobs differ (seed, domains, scenario, epoch…);
* **keys** — for every (experiment, key) present in either run: the
  two measured values, the numeric delta where both are numbers, and
  the two fidelity verdicts, with a ``changed`` flag;
* **timings** — per-experiment and per-stage wall clock side by side
  (volatile, from the ``timings.json`` sidecars; empty when a sidecar
  is missing).

The diff is symmetric data, not a judgement: comparing a healthy run
against an outage drill is exactly the intended use.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from repro.experiments.manifest import LoadedRun


def _key_records(run: LoadedRun) -> Dict[Tuple[str, str], dict]:
    """(experiment_id, key) -> verdict record for one manifest."""
    records: Dict[Tuple[str, str], dict] = {}
    for experiment in run.manifest.get("experiments") or []:
        experiment_id = str(experiment.get("id"))
        for record in experiment.get("keys") or []:
            records[(experiment_id, str(record.get("key")))] = record
    return records


def _delta(a: object, b: object) -> Optional[float]:
    if isinstance(a, (int, float)) and isinstance(b, (int, float)) \
            and not isinstance(a, bool) and not isinstance(b, bool):
        delta = b - a
        if math.isfinite(delta):
            return round(delta, 6)
    return None


def _values_equal(a: object, b: object) -> bool:
    """Measured-value equality where NaN == NaN.

    Unmeasurable keys (a latency probe to a downed region, say) record
    NaN on both sides; IEEE inequality would flag every such key as
    changed on every compare.
    """
    if (
        isinstance(a, float) and isinstance(b, float)
        and math.isnan(a) and math.isnan(b)
    ):
        return True
    return a == b


def compare_runs(a: LoadedRun, b: LoadedRun) -> dict:
    """The full diff payload for two loaded runs."""
    config_a = a.manifest.get("config") or {}
    config_b = b.manifest.get("config") or {}
    config_diff = {
        name: {"a": config_a.get(name), "b": config_b.get(name)}
        for name in sorted(set(config_a) | set(config_b))
        if config_a.get(name) != config_b.get(name)
    }

    records_a = _key_records(a)
    records_b = _key_records(b)
    keys: List[dict] = []
    changed = 0
    for experiment_id, key in sorted(set(records_a) | set(records_b)):
        record_a = records_a.get((experiment_id, key), {})
        record_b = records_b.get((experiment_id, key), {})
        measured_a = record_a.get("measured")
        measured_b = record_b.get("measured")
        entry = {
            "experiment": experiment_id,
            "key": key,
            "a": measured_a,
            "b": measured_b,
            "delta": _delta(measured_a, measured_b),
            "verdict_a": record_a.get("verdict"),
            "verdict_b": record_b.get("verdict"),
            "changed": not _values_equal(measured_a, measured_b),
        }
        if entry["changed"]:
            changed += 1
        keys.append(entry)

    timings = {
        "experiments_s": {
            "a": a.timings.get("experiments_s", {}),
            "b": b.timings.get("experiments_s", {}),
        },
        "stages_s": {
            "a": a.timings.get("stages_s", {}),
            "b": b.timings.get("stages_s", {}),
        },
    }
    return {
        "a": {
            "run_id": a.run_id,
            "scenario": a.manifest.get("scenario"),
            "fidelity": (a.manifest.get("fidelity") or {}).get("status"),
        },
        "b": {
            "run_id": b.run_id,
            "scenario": b.manifest.get("scenario"),
            "fidelity": (b.manifest.get("fidelity") or {}).get("status"),
        },
        "config": config_diff,
        "keys": keys,
        "summary": {
            "keys_compared": len(keys),
            "keys_changed": changed,
            "code_fingerprint_equal": (
                a.manifest.get("code_fingerprint")
                == b.manifest.get("code_fingerprint")
            ),
        },
        "timings": timings,
    }


def render_compare(diff: dict, changed_only: bool = False) -> str:
    """The human-facing diff (``repro runs compare``)."""
    from repro.report.table import TextTable

    a, b = diff["a"], diff["b"]
    lines = [
        f"a: {a['run_id']}  scenario={a['scenario']}  "
        f"fidelity={a['fidelity']}",
        f"b: {b['run_id']}  scenario={b['scenario']}  "
        f"fidelity={b['fidelity']}",
    ]
    if diff["config"]:
        lines.append("config differences:")
        for name, pair in diff["config"].items():
            lines.append(f"  {name}: {pair['a']!r} -> {pair['b']!r}")
    summary = diff["summary"]
    lines.append(
        f"{summary['keys_changed']} of {summary['keys_compared']} "
        f"keys changed"
        + ("" if summary["code_fingerprint_equal"]
           else " (code fingerprints differ)")
    )
    table = TextTable(
        ["Experiment", "Key", "A", "B", "Delta", "Verdicts"],
        title="Per-key comparison",
    )
    for entry in diff["keys"]:
        if changed_only and not entry["changed"]:
            continue
        delta = entry["delta"]
        verdicts = f"{entry['verdict_a']}/{entry['verdict_b']}"
        table.add_row([
            entry["experiment"],
            entry["key"],
            entry["a"] if entry["a"] is not None else "-",
            entry["b"] if entry["b"] is not None else "-",
            delta if delta is not None else "-",
            verdicts,
        ])
    lines.append(table.render())
    return "\n".join(lines)
