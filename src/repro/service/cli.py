"""``repro serve`` / ``repro jobs`` / ``repro runs`` — the service CLI.

A thin client over the service layer: every subcommand either talks to
a running daemon (``--url``) or opens the repository/scheduler
in-process on a local root (``--root``) — same layer, no duplicate
logic.  Dispatched from :func:`repro.experiments.cli.main`, which owns
the console-script entry points.

Exit codes (shared with the experiments CLI, see ``EXIT_CODES_HELP``):
0 success, 2 usage, 3 fidelity gate, 4 service error, 5 regression
(``repro report --check`` found a drifted or divergent trajectory).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import List, Optional

from repro.obs import configure_logging
from repro.service.api import DEFAULT_HOST, DEFAULT_PORT
from repro.service.errors import ServiceError

#: Exit status for service-layer failures (unreachable daemon, unknown
#: run/job ids, failed jobs, corrupt repositories) — distinct from
#: usage errors (2) and the fidelity gate (3).
EXIT_SERVICE = 4

#: Shared ``--help`` epilog documenting the exit-code contract.
EXIT_CODES_HELP = """\
exit codes:
  0  success
  2  usage error (unknown flags, malformed arguments)
  3  fidelity gate: a measured key is divergent from the paper
  4  service error: unreachable daemon, unknown run/job/series id,
     failed job, or corrupt repository
  5  regression: repro report --check found a trajectory whose newest
     entry drifted or diverged from its baseline
"""

#: First tokens that route into this CLI from the main entry point.
SERVICE_COMMANDS = ("serve", "jobs", "runs", "report")


def build_service_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Long-running measurement service over the run-manifest "
            "plane: a SQLite-indexed repository of run-<hash>/ and "
            "series-<hash>/ directories, a job scheduler, and an HTTP "
            "API. Invoke without a subcommand to run experiments "
            "directly (repro --help-experiments, or the "
            "repro-experiments alias)."
        ),
        epilog=EXIT_CODES_HELP,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    commands = parser.add_subparsers(dest="command", required=True)

    serve = commands.add_parser(
        "serve",
        help="run the daemon: scheduler loop + HTTP API",
        epilog=EXIT_CODES_HELP,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    serve.add_argument(
        "--root", default="runs", metavar="DIR",
        help="repository root holding run-*/series-*/jobs/ "
             "(default: runs)",
    )
    serve.add_argument("--host", default=DEFAULT_HOST)
    serve.add_argument("--port", type=int, default=DEFAULT_PORT)
    serve.add_argument(
        "--artifact-dir", metavar="DIR", default=None,
        help="content-addressed artifact cache for job execution "
             "(default: none — every job is a cold, reproducible "
             "build)",
    )
    serve.add_argument(
        "--poll-interval", type=float, default=2.0, metavar="S",
        help="scheduler idle poll interval in seconds",
    )
    serve.add_argument(
        "--no-scheduler", action="store_true",
        help="serve the read-only API without executing jobs",
    )
    serve.add_argument(
        "--max-attempts", type=int, default=1, metavar="N",
        help="retry budget per job: failed jobs are re-claimed until "
             "they have been attempted N times (default: 1 — no "
             "retries)",
    )
    serve.add_argument(
        "--no-access-log", action="store_true",
        help="skip the per-request NDJSON access log "
             "(<root>/access.ndjson)",
    )
    serve.add_argument("-v", "--verbose", action="count", default=0)
    serve.add_argument("-q", "--quiet", action="store_true")

    jobs = commands.add_parser(
        "jobs", help="submit and inspect scheduler jobs",
    )
    jobs_commands = jobs.add_subparsers(dest="action", required=True)

    submit = jobs_commands.add_parser(
        "submit", help="enqueue a deterministic job spec",
    )
    _add_endpoint_arguments(submit)
    submit.add_argument(
        "experiments", nargs="*", metavar="ID",
        help="experiment ids (default: all)",
    )
    submit.add_argument(
        "--kind", choices=("run", "series", "bench"), default="run",
    )
    submit.add_argument("--seed", type=int, default=7)
    submit.add_argument("--domains", type=int, default=6000)
    submit.add_argument("--wan-rounds", type=int, default=36)
    submit.add_argument("--workers", type=int, default=0)
    submit.add_argument("--scenario", default=None, metavar="NAME")
    submit.add_argument("--epochs", type=int, default=None, metavar="N")
    submit.add_argument(
        "--epoch-plan", default=None, metavar="NAME",
    )
    submit.add_argument(
        "--force", action="store_true",
        help="re-queue even if an identical spec was already submitted",
    )
    submit.add_argument(
        "--wait", action="store_true",
        help="block until the job finishes (exit 4 if it fails)",
    )
    submit.add_argument(
        "--timeout", type=float, default=1800.0, metavar="S",
        help="--wait budget in seconds (default: 1800)",
    )
    submit.add_argument(
        "--run-now", action="store_true",
        help="local mode only: execute the job inline instead of "
             "leaving it for a daemon",
    )

    jobs_list = jobs_commands.add_parser("list", help="list jobs")
    _add_endpoint_arguments(jobs_list)
    jobs_list.add_argument(
        "--status",
        choices=("pending", "running", "completed", "failed"),
        default=None,
    )
    jobs_list.add_argument("--json", action="store_true")

    jobs_show = jobs_commands.add_parser(
        "show", help="one job's record",
    )
    _add_endpoint_arguments(jobs_show)
    jobs_show.add_argument("job_id")

    runs = commands.add_parser(
        "runs", help="query the run repository",
    )
    runs_commands = runs.add_subparsers(dest="action", required=True)

    runs_list = runs_commands.add_parser(
        "list", help="list indexed runs",
    )
    _add_endpoint_arguments(runs_list)
    runs_list.add_argument("--scenario", default=None)
    runs_list.add_argument("--status", default=None)
    runs_list.add_argument("--seed", type=int, default=None)
    runs_list.add_argument("--experiment", default=None, metavar="ID")
    runs_list.add_argument("--epoch-plan", default=None, metavar="NAME")
    runs_list.add_argument("--limit", type=int, default=None)
    runs_list.add_argument("--json", action="store_true")

    runs_show = runs_commands.add_parser(
        "show", help="print one run's manifest.json",
    )
    _add_endpoint_arguments(runs_show)
    runs_show.add_argument("run_id")

    compare = runs_commands.add_parser(
        "compare", help="diff two runs key by key",
    )
    _add_endpoint_arguments(compare)
    compare.add_argument("a", metavar="RUN_A")
    compare.add_argument("b", metavar="RUN_B")
    compare.add_argument(
        "--changed-only", action="store_true",
        help="only show keys whose measured values differ",
    )
    compare.add_argument("--json", action="store_true")

    rebuild = runs_commands.add_parser(
        "rebuild-index",
        help="drop the SQLite index and rebuild it from disk",
    )
    rebuild.add_argument("--root", default="runs", metavar="DIR")

    report = commands.add_parser(
        "report",
        help="render the telemetry timeline (and optionally run the "
             "regression sentinel)",
        epilog=EXIT_CODES_HELP,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    report.add_argument(
        "--root", default="runs", metavar="DIR",
        help="repository root whose run-*/ dirs and bench/ products "
             "feed the timeline (default: runs)",
    )
    report.add_argument(
        "--bench", action="append", default=[], metavar="FILE",
        help="extra bench JSON files to fold in (e.g. the committed "
             "BENCH_pipeline*.json; repeatable)",
    )
    report.add_argument(
        "--check", action="store_true",
        help="run the regression sentinel over every trajectory and "
             "exit 5 when any drifted or diverged",
    )
    report.add_argument(
        "--regressions-out", default=None, metavar="FILE",
        help="with --check, also write the verdicts as "
             "regressions.json at this path",
    )
    report.add_argument(
        "--rebuild", action="store_true",
        help="drop the timeline SQLite file and re-create it before "
             "reporting (proves the pure-cache contract)",
    )
    report.add_argument("--json", action="store_true")
    return parser


def _add_endpoint_arguments(parser: argparse.ArgumentParser) -> None:
    endpoint = parser.add_mutually_exclusive_group()
    endpoint.add_argument(
        "--url", default=None, metavar="URL",
        help="a running repro serve instance "
             f"(e.g. http://{DEFAULT_HOST}:{DEFAULT_PORT})",
    )
    endpoint.add_argument(
        "--root", default="runs", metavar="DIR",
        help="local repository root (default: runs); ignored with "
             "--url",
    )


def _client(args):
    from repro.service.client import ServiceClient

    return ServiceClient(args.url)


def _repository(args):
    from repro.service.repository import RunRepository

    repository = RunRepository(args.root)
    repository.scan()
    return repository


def service_main(argv: Optional[List[str]] = None) -> int:
    args = build_service_parser().parse_args(argv)
    try:
        if args.command == "serve":
            return _serve(args)
        if args.command == "jobs":
            return _jobs(args)
        if args.command == "report":
            return _report(args)
        return _runs(args)
    except ServiceError as error:
        print(f"service error: {error}", file=sys.stderr)
        return EXIT_SERVICE


def _serve(args) -> int:
    from repro.service.daemon import ReproService

    configure_logging(verbose=args.verbose, quiet=args.quiet)
    service = ReproService(
        args.root,
        host=args.host,
        port=args.port,
        artifact_dir=args.artifact_dir,
        poll_interval=args.poll_interval,
        scheduler_enabled=not args.no_scheduler,
        max_attempts=args.max_attempts,
        access_log=not args.no_access_log,
    )
    counts = service.repository.counts()
    print(
        f"repro service on {service.url} — root {args.root} "
        f"({counts['runs']} runs, {counts['series']} series indexed"
        f"{', scheduler on' if service.scheduler else ''})",
        flush=True,
    )
    service.serve_forever()
    return 0


def _jobs(args) -> int:
    from repro.service.jobs import JobSpec

    if args.action == "submit":
        spec = JobSpec.from_dict({
            "kind": args.kind,
            "seed": args.seed,
            "domains": args.domains,
            "wan_rounds": args.wan_rounds,
            "workers": args.workers,
            "scenario": args.scenario,
            "experiments": list(args.experiments),
            "epochs": args.epochs,
            "epoch_plan": args.epoch_plan,
        })
        if args.url is not None:
            if args.run_now:
                print(
                    "error: --run-now is local-only (the daemon "
                    "executes --url submissions)", file=sys.stderr,
                )
                return 2
            client = _client(args)
            record = client.submit_job(
                spec.as_dict(), force=args.force
            )
            print(f"submitted {record['job_id']} ({record['status']})")
            if args.wait:
                record = _wait_for_job(
                    client, record["job_id"], args.timeout
                )
            return _job_exit(record)
        from repro.service.jobs import Scheduler

        scheduler = Scheduler(_repository(args))
        record = scheduler.submit(spec, force=args.force)
        print(f"submitted {record.job_id} ({record.status})")
        if args.run_now and record.status in ("pending", "running"):
            record = scheduler.execute(record)
            print(f"{record.job_id}: {record.status}")
        elif args.wait:
            print(
                "note: local --wait needs a daemon on the same root "
                "(use --run-now to execute inline)", file=sys.stderr,
            )
        return _job_exit(record.as_dict())

    if args.action == "list":
        if args.url is not None:
            records = _client(args).jobs(status=args.status)
        else:
            from repro.service.jobs import Scheduler

            records = [
                r.as_dict()
                for r in Scheduler(_repository(args)).jobs(
                    status=args.status
                )
            ]
        if args.json:
            print(json.dumps(records, indent=2))
            return 0
        for record in records:
            spec = record["spec"]
            outcome = record.get("outcome") or {}
            produced = (
                outcome.get("run_id")
                or outcome.get("series_id")
                or outcome.get("bench_path") or ""
            )
            print(
                f"{record['job_id']}  {record['status']:9s}  "
                f"{spec['kind']:6s}  seed={spec['seed']} "
                f"domains={spec['domains']}"
                + (f"  scenario={spec['scenario']}"
                   if spec.get("scenario") else "")
                + (f"  -> {produced}" if produced else "")
            )
        if not records:
            print("no jobs")
        return 0

    # show
    if args.url is not None:
        record = _client(args).job(args.job_id)
    else:
        from repro.service.jobs import Scheduler

        record = Scheduler(_repository(args)).get(args.job_id).as_dict()
    print(json.dumps(record, indent=2))
    return 0


def _wait_for_job(client, job_id: str, timeout: float) -> dict:
    deadline = time.monotonic() + timeout
    while True:
        record = client.job(job_id)
        if record["status"] in ("completed", "failed"):
            print(f"{job_id}: {record['status']}")
            return record
        if time.monotonic() >= deadline:
            raise ServiceError(
                f"timed out after {timeout:.0f}s waiting for {job_id} "
                f"(still {record['status']})"
            )
        time.sleep(min(2.0, max(0.1, deadline - time.monotonic())))


def _job_exit(record: dict) -> int:
    if record.get("status") == "failed":
        print(
            f"job failed: {record.get('error')}", file=sys.stderr
        )
        return EXIT_SERVICE
    return 0


def _runs(args) -> int:
    if args.action == "rebuild-index":
        from repro.service.repository import RunRepository

        repository = RunRepository(args.root)
        report = repository.rebuild()
        print(
            f"rebuilt index under {args.root}: {report.runs} runs, "
            f"{report.series} series"
            + (f", {len(report.skipped)} skipped"
               if report.skipped else "")
        )
        for entry in report.skipped:
            print(
                f"  skipped {entry['path']}: {entry['reason']}",
                file=sys.stderr,
            )
        return 0

    if args.action == "list":
        filters = dict(
            scenario=args.scenario, status=args.status,
            seed=args.seed, experiment=args.experiment,
            epoch_plan=args.epoch_plan, limit=args.limit,
        )
        if args.url is not None:
            records = _client(args).runs(**filters)
        else:
            records = [
                r.as_dict() for r in _repository(args).runs(**filters)
            ]
        if args.json:
            print(json.dumps(records, indent=2))
            return 0
        from repro.report.table import TextTable

        table = TextTable(
            ["Run", "Seed", "Domains", "Scenario", "Epoch",
             "Fidelity", "Experiments"],
            title="Indexed runs",
        )
        for record in records:
            epoch = (
                f"{record['epoch_plan']}#{record['epoch_index']}"
                if record.get("epoch_plan") else "-"
            )
            table.add_row([
                record["run_id"],
                record["seed"],
                record["domains"],
                record.get("scenario") or "-",
                epoch,
                record.get("fidelity_status") or "-",
                len(record.get("experiments") or []),
            ])
        print(table.render())
        print(f"{len(records)} runs")
        return 0

    if args.action == "show":
        if args.url is not None:
            manifest = _client(args).run(args.run_id)
        else:
            manifest = _repository(args).load_run(args.run_id).manifest
        print(json.dumps(manifest, indent=2))
        return 0

    # compare
    if args.url is not None:
        diff = _client(args).compare(args.a, args.b)
    else:
        from repro.service.compare import compare_runs

        repository = _repository(args)
        diff = compare_runs(
            repository.load_run(args.a), repository.load_run(args.b)
        )
    if args.json:
        print(json.dumps(diff, indent=2))
        return 0
    from repro.service.compare import render_compare

    print(render_compare(diff, changed_only=args.changed_only))
    return 0


def _report(args) -> int:
    from repro.obs.dashboard import render_report
    from repro.obs.sentinel import (
        EXIT_REGRESSION,
        check_store,
        worst_status,
        write_regressions,
    )
    from repro.obs.timeline import TimelineStore

    with TimelineStore(args.root, bench_paths=args.bench) as store:
        if args.rebuild:
            store.rebuild()
        else:
            store.scan()
        reports = check_store(store) if args.check else None
        if args.json:
            payload = {
                "counts": store.counts(),
                "entries": [
                    entry.as_dict() for entry in store.entries()
                ],
            }
            if reports is not None:
                payload["regressions"] = {
                    "status": worst_status(reports),
                    "reports": [r.as_dict() for r in reports],
                }
            print(json.dumps(payload, indent=2))
        else:
            print(render_report(store, reports), end="")
        if reports is not None:
            if args.regressions_out:
                write_regressions(args.regressions_out, reports)
            if worst_status(reports) != "match":
                return EXIT_REGRESSION
    return 0
