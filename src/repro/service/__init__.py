"""repro.service — the service plane: the pipeline as a daemon.

Three layers over the run-manifest plane (ROADMAP item 5, the "serves
traffic" half of the north star):

* **repository** (:mod:`repro.service.repository`) — a SQLite-indexed
  catalog of ``run-<hash>/`` and ``series-<hash>/`` directories.  The
  directories stay the source of truth; the index is a pure cache that
  rebuilds losslessly from disk.
* **scheduler** (:mod:`repro.service.jobs`) — deterministic,
  content-addressed :class:`JobSpec`\\ s (single-shot campaigns, epoch
  series, bench profiles) executed through the *unchanged*
  ``ExperimentContext`` / ``run_series`` machinery, with outcomes
  recorded through the repository.  A job-produced ``run-<hash>/`` is
  byte-identical to the same config run via ``repro-experiments``.
* **API** (:mod:`repro.service.api`) — a stdlib HTTP server exposing
  manifests, fidelity reports, trend tables, Prometheus ``/metrics``,
  job submission, and ``/compare`` (key-by-key run diffs, see
  :mod:`repro.service.compare`).

The service only orchestrates and reads — determinism invariants
(digests, manifest byte-identity) are untouched by construction.

CLI: ``repro serve`` / ``repro jobs submit`` / ``repro runs
list|show|compare`` (see :mod:`repro.service.cli`).
"""

from repro.service.api import DEFAULT_HOST, DEFAULT_PORT, ServiceAPI
from repro.service.client import ServiceClient
from repro.service.compare import compare_runs, render_compare
from repro.service.daemon import ReproService
from repro.service.errors import (
    JobSpecError,
    ServiceError,
    UnknownJobError,
    UnknownRunError,
    UnknownSeriesError,
)
from repro.service.jobs import JobRecord, JobSpec, Scheduler
from repro.service.repository import (
    RunRecord,
    RunRepository,
    ScanReport,
    SeriesRecord,
)

__all__ = [
    "DEFAULT_HOST",
    "DEFAULT_PORT",
    "JobRecord",
    "JobSpec",
    "JobSpecError",
    "ReproService",
    "RunRecord",
    "RunRepository",
    "ScanReport",
    "Scheduler",
    "SeriesRecord",
    "ServiceAPI",
    "ServiceClient",
    "ServiceError",
    "UnknownJobError",
    "UnknownRunError",
    "UnknownSeriesError",
    "compare_runs",
    "render_compare",
]
