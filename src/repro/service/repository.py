"""The repository layer: a queryable catalog of runs and series.

Every experiments run leaves a ``run-<hash>/`` directory and every
longitudinal series a ``series-<hash>/`` one (see
:mod:`repro.experiments.manifest` and :mod:`repro.epochs.series`); until
now only ``ls`` could find them again.  :class:`RunRepository` indexes
one tree of those directories into SQLite and answers the questions the
scheduler, the HTTP API, and the CLI ask: list runs by scenario / seed /
fidelity status / experiment membership / epoch plan, fetch one run's
manifest, fidelity report, or timings, link a series to its epoch runs.

The index is a **pure cache**: the run directories on disk are the
source of truth, ``scan()`` rebuilds the whole index from them, and
deleting the SQLite file loses nothing — :meth:`rebuild` recreates a
query-identical index.  Corrupt or partial run directories (crashed
writers, unknown schema versions) are skipped with a warning and listed
in the :class:`ScanReport`, never fatal.

Thread safety: one connection guarded by an ``RLock`` — the HTTP API
serves from a thread pool while the scheduler ingests.
"""

from __future__ import annotations

import json
import logging
import sqlite3
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.epochs.series import load_series
from repro.experiments.manifest import LoadedRun, load_manifest
from repro.service.errors import UnknownRunError, UnknownSeriesError

logger = logging.getLogger(__name__)

#: Default index filename inside the repository root.  Dot-prefixed so
#: the run-dir globs never mistake it for a result.
INDEX_FILENAME = ".repro-index.sqlite"

#: Schema of the *index* (not of the manifests it caches).  Bumping it
#: invalidates old index files, which simply rebuild from disk.
_INDEX_SCHEMA = 1

_TABLES = """
CREATE TABLE IF NOT EXISTS meta (
    key TEXT PRIMARY KEY, value TEXT NOT NULL);
CREATE TABLE IF NOT EXISTS runs (
    run_id TEXT PRIMARY KEY,
    path TEXT NOT NULL,
    schema_version INTEGER NOT NULL,
    seed INTEGER,
    domains INTEGER,
    wan_rounds INTEGER,
    scenario TEXT,
    epoch_plan TEXT,
    epoch_index INTEGER,
    code_fingerprint TEXT,
    fidelity_status TEXT,
    counts TEXT NOT NULL,
    experiments TEXT NOT NULL);
CREATE TABLE IF NOT EXISTS run_experiments (
    run_id TEXT NOT NULL,
    experiment_id TEXT NOT NULL,
    status TEXT,
    PRIMARY KEY (run_id, experiment_id));
CREATE TABLE IF NOT EXISTS series (
    series_id TEXT PRIMARY KEY,
    path TEXT NOT NULL,
    schema_version INTEGER NOT NULL,
    plan TEXT,
    epochs INTEGER,
    seed INTEGER,
    domains INTEGER,
    wan_rounds INTEGER,
    scenario TEXT,
    code_fingerprint TEXT);
CREATE TABLE IF NOT EXISTS series_runs (
    series_id TEXT NOT NULL,
    epoch_index INTEGER NOT NULL,
    run_id TEXT NOT NULL,
    PRIMARY KEY (series_id, epoch_index));
"""


@dataclass(frozen=True)
class RunRecord:
    """One indexed run — the queryable projection of its manifest."""

    run_id: str
    path: str
    schema_version: int
    seed: Optional[int]
    domains: Optional[int]
    wan_rounds: Optional[int]
    scenario: Optional[str]
    epoch_plan: Optional[str]
    epoch_index: Optional[int]
    code_fingerprint: Optional[str]
    fidelity_status: Optional[str]
    counts: Dict[str, int] = field(default_factory=dict)
    experiments: Tuple[Dict[str, object], ...] = ()

    @classmethod
    def from_manifest(
        cls, run_dir: Union[str, Path], manifest: dict
    ) -> "RunRecord":
        config = manifest.get("config") or {}
        fidelity = manifest.get("fidelity") or {}
        epoch = config.get("epoch") or {}
        experiments = tuple(
            {"id": entry.get("id"), "status": entry.get("status")}
            for entry in manifest.get("experiments") or []
        )
        return cls(
            run_id=str(manifest["run_id"]),
            path=str(run_dir),
            schema_version=int(manifest.get("schema_version", 0)),
            seed=config.get("seed"),
            domains=config.get("domains"),
            wan_rounds=config.get("wan_rounds"),
            scenario=manifest.get("scenario"),
            epoch_plan=epoch.get("plan"),
            epoch_index=epoch.get("index"),
            code_fingerprint=manifest.get("code_fingerprint"),
            fidelity_status=fidelity.get("status"),
            counts={
                k: int(v)
                for k, v in (fidelity.get("counts") or {}).items()
            },
            experiments=experiments,
        )

    def as_dict(self) -> dict:
        return {
            "run_id": self.run_id,
            "path": self.path,
            "schema_version": self.schema_version,
            "seed": self.seed,
            "domains": self.domains,
            "wan_rounds": self.wan_rounds,
            "scenario": self.scenario,
            "epoch_plan": self.epoch_plan,
            "epoch_index": self.epoch_index,
            "code_fingerprint": self.code_fingerprint,
            "fidelity_status": self.fidelity_status,
            "counts": dict(self.counts),
            "experiments": [dict(e) for e in self.experiments],
        }


@dataclass(frozen=True)
class SeriesRecord:
    """One indexed longitudinal series and its epoch-run links."""

    series_id: str
    path: str
    schema_version: int
    plan: Optional[str]
    epochs: Optional[int]
    seed: Optional[int]
    domains: Optional[int]
    wan_rounds: Optional[int]
    scenario: Optional[str]
    code_fingerprint: Optional[str]
    run_ids: Tuple[str, ...] = ()

    @classmethod
    def from_payload(
        cls, series_dir: Union[str, Path], payload: dict
    ) -> "SeriesRecord":
        config = payload.get("config") or {}
        plan = payload.get("plan") or {}
        links = payload.get("epochs") or []
        return cls(
            series_id=str(payload["series_id"]),
            path=str(series_dir),
            schema_version=int(payload.get("schema_version", 0)),
            plan=plan.get("name"),
            epochs=config.get("epochs"),
            seed=config.get("seed"),
            domains=config.get("domains"),
            wan_rounds=config.get("wan_rounds"),
            scenario=config.get("scenario"),
            code_fingerprint=payload.get("code_fingerprint"),
            run_ids=tuple(
                str(link.get("run_id")) for link in links
            ),
        )

    def as_dict(self) -> dict:
        return {
            "series_id": self.series_id,
            "path": self.path,
            "schema_version": self.schema_version,
            "plan": self.plan,
            "epochs": self.epochs,
            "seed": self.seed,
            "domains": self.domains,
            "wan_rounds": self.wan_rounds,
            "scenario": self.scenario,
            "code_fingerprint": self.code_fingerprint,
            "run_ids": list(self.run_ids),
        }


@dataclass
class ScanReport:
    """What one :meth:`RunRepository.scan` pass found."""

    runs: int = 0
    series: int = 0
    #: ``[{"path": ..., "reason": ...}]`` for every directory skipped.
    skipped: List[Dict[str, str]] = field(default_factory=list)

    def as_dict(self) -> dict:
        return {
            "runs": self.runs,
            "series": self.series,
            "skipped": list(self.skipped),
        }


class RunRepository:
    """SQLite-indexed catalog over one tree of run/series directories."""

    def __init__(
        self,
        root: Union[str, Path],
        db_path: Optional[Union[str, Path]] = None,
    ):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.db_path = (
            Path(db_path) if db_path is not None
            else self.root / INDEX_FILENAME
        )
        self._lock = threading.RLock()
        self._conn = self._connect()

    # -- lifecycle -----------------------------------------------------

    def _connect(self) -> sqlite3.Connection:
        conn = sqlite3.connect(self.db_path, check_same_thread=False)
        conn.executescript(_TABLES)
        row = conn.execute(
            "SELECT value FROM meta WHERE key = 'index_schema'"
        ).fetchone()
        if row is not None and int(row[0]) != _INDEX_SCHEMA:
            # An index written by a different repro: drop and rebuild —
            # it's only a cache.
            conn.close()
            self.db_path.unlink()
            conn = sqlite3.connect(self.db_path, check_same_thread=False)
            conn.executescript(_TABLES)
            row = None
        if row is None:
            conn.execute(
                "INSERT OR REPLACE INTO meta VALUES "
                "('index_schema', ?)",
                (str(_INDEX_SCHEMA),),
            )
            conn.commit()
        return conn

    def _ensure_index(self) -> None:
        """Reconnect if the index file was deleted out from under a
        live repository — it is only a cache, and SQLite turns a
        vanished database read-only instead of re-creating it."""
        if not self.db_path.exists():
            self._conn.close()
            self._conn = self._connect()

    def close(self) -> None:
        with self._lock:
            self._conn.close()

    def __enter__(self) -> "RunRepository":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- ingestion -----------------------------------------------------

    def scan(self) -> ScanReport:
        """Re-index the whole tree from disk (the index is a cache:
        rows for vanished directories are dropped, every surviving
        directory is re-read)."""
        report = ScanReport()
        records: List[RunRecord] = []
        series_records: List[SeriesRecord] = []
        for run_dir in sorted(self.root.glob("run-*")):
            if not run_dir.is_dir():
                continue
            try:
                manifest = load_manifest(run_dir)
                records.append(RunRecord.from_manifest(run_dir, manifest))
            except (OSError, ValueError) as error:
                logger.warning("skipping run dir %s: %s", run_dir, error)
                report.skipped.append(
                    {"path": str(run_dir), "reason": str(error)}
                )
        for series_dir in sorted(self.root.glob("series-*")):
            if not series_dir.is_dir():
                continue
            try:
                payload = load_series(series_dir)
                series_records.append(
                    SeriesRecord.from_payload(series_dir, payload)
                )
            except (OSError, ValueError) as error:
                logger.warning(
                    "skipping series dir %s: %s", series_dir, error
                )
                report.skipped.append(
                    {"path": str(series_dir), "reason": str(error)}
                )
        with self._lock:
            self._ensure_index()
            cursor = self._conn.cursor()
            cursor.execute("DELETE FROM runs")
            cursor.execute("DELETE FROM run_experiments")
            cursor.execute("DELETE FROM series")
            cursor.execute("DELETE FROM series_runs")
            for record in records:
                self._insert_run(cursor, record)
            for record in series_records:
                self._insert_series(cursor, record)
            self._conn.commit()
        report.runs = len(records)
        report.series = len(series_records)
        return report

    def rebuild(self) -> ScanReport:
        """Drop the SQLite file entirely and re-create it from disk."""
        with self._lock:
            self._conn.close()
            if self.db_path.exists():
                self.db_path.unlink()
            self._conn = self._connect()
        return self.scan()

    def ingest_run_dir(self, run_dir: Union[str, Path]) -> RunRecord:
        """Index (or re-index) one run directory; raises on corrupt
        input — targeted ingestion is for writers that just produced
        the directory and must notice their own failures."""
        run_dir = Path(run_dir)
        record = RunRecord.from_manifest(run_dir, load_manifest(run_dir))
        with self._lock:
            self._ensure_index()
            cursor = self._conn.cursor()
            cursor.execute(
                "DELETE FROM run_experiments WHERE run_id = ?",
                (record.run_id,),
            )
            self._insert_run(cursor, record)
            self._conn.commit()
        return record

    def ingest_series_dir(
        self, series_dir: Union[str, Path]
    ) -> SeriesRecord:
        """Index one series directory plus its epoch runs (which live
        as sibling ``run-*`` dirs under the same root)."""
        series_dir = Path(series_dir)
        record = SeriesRecord.from_payload(
            series_dir, load_series(series_dir)
        )
        with self._lock:
            self._ensure_index()
            cursor = self._conn.cursor()
            cursor.execute(
                "DELETE FROM series_runs WHERE series_id = ?",
                (record.series_id,),
            )
            self._insert_series(cursor, record)
            self._conn.commit()
        for run_id in record.run_ids:
            run_dir = self.root / run_id
            if run_dir.is_dir():
                self.ingest_run_dir(run_dir)
        return record

    @staticmethod
    def _insert_run(cursor, record: RunRecord) -> None:
        cursor.execute(
            "INSERT OR REPLACE INTO runs VALUES "
            "(?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (
                record.run_id, record.path, record.schema_version,
                record.seed, record.domains, record.wan_rounds,
                record.scenario, record.epoch_plan, record.epoch_index,
                record.code_fingerprint, record.fidelity_status,
                json.dumps(record.counts, sort_keys=True),
                json.dumps(list(record.experiments)),
            ),
        )
        for entry in record.experiments:
            cursor.execute(
                "INSERT OR REPLACE INTO run_experiments VALUES (?, ?, ?)",
                (record.run_id, entry.get("id"), entry.get("status")),
            )

    @staticmethod
    def _insert_series(cursor, record: SeriesRecord) -> None:
        cursor.execute(
            "INSERT OR REPLACE INTO series VALUES "
            "(?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (
                record.series_id, record.path, record.schema_version,
                record.plan, record.epochs, record.seed, record.domains,
                record.wan_rounds, record.scenario,
                record.code_fingerprint,
            ),
        )
        for index, run_id in enumerate(record.run_ids):
            cursor.execute(
                "INSERT OR REPLACE INTO series_runs VALUES (?, ?, ?)",
                (record.series_id, index, run_id),
            )

    # -- queries -------------------------------------------------------

    def runs(
        self,
        scenario: Optional[str] = None,
        status: Optional[str] = None,
        seed: Optional[int] = None,
        fingerprint: Optional[str] = None,
        experiment: Optional[str] = None,
        epoch_plan: Optional[str] = None,
        limit: Optional[int] = None,
    ) -> List[RunRecord]:
        """Indexed runs matching every given filter, ordered by id
        (deterministic — the rebuild tests diff this ordering)."""
        clauses, params = [], []
        if scenario is not None:
            clauses.append("runs.scenario = ?")
            params.append(scenario)
        if status is not None:
            clauses.append("runs.fidelity_status = ?")
            params.append(status)
        if seed is not None:
            clauses.append("runs.seed = ?")
            params.append(seed)
        if fingerprint is not None:
            clauses.append("runs.code_fingerprint = ?")
            params.append(fingerprint)
        if epoch_plan is not None:
            clauses.append("runs.epoch_plan = ?")
            params.append(epoch_plan)
        sql = "SELECT runs.* FROM runs"
        if experiment is not None:
            sql += (
                " JOIN run_experiments ON "
                "run_experiments.run_id = runs.run_id"
            )
            clauses.append("run_experiments.experiment_id = ?")
            params.append(experiment)
        if clauses:
            sql += " WHERE " + " AND ".join(clauses)
        sql += " ORDER BY runs.run_id"
        if limit is not None:
            sql += " LIMIT ?"
            params.append(limit)
        with self._lock:
            rows = self._conn.execute(sql, params).fetchall()
        return [self._run_from_row(row) for row in rows]

    @staticmethod
    def _run_from_row(row) -> RunRecord:
        return RunRecord(
            run_id=row[0], path=row[1], schema_version=row[2],
            seed=row[3], domains=row[4], wan_rounds=row[5],
            scenario=row[6], epoch_plan=row[7], epoch_index=row[8],
            code_fingerprint=row[9], fidelity_status=row[10],
            counts=json.loads(row[11]),
            experiments=tuple(json.loads(row[12])),
        )

    def get_run(self, run_id: str) -> RunRecord:
        with self._lock:
            row = self._conn.execute(
                "SELECT * FROM runs WHERE run_id = ?", (run_id,)
            ).fetchone()
        if row is not None:
            return self._run_from_row(row)
        # The index is only a cache — fall back to disk before
        # declaring the run unknown (and index it for next time).
        run_dir = self.root / run_id
        if run_dir.is_dir():
            try:
                return self.ingest_run_dir(run_dir)
            except (OSError, ValueError) as error:
                raise UnknownRunError(run_id) from error
        raise UnknownRunError(run_id)

    def load_run(self, run_id: str) -> LoadedRun:
        """The full on-disk record (manifest + sidecars) for one run."""
        record = self.get_run(run_id)
        return LoadedRun.from_dir(record.path)

    def series(
        self,
        plan: Optional[str] = None,
        scenario: Optional[str] = None,
        seed: Optional[int] = None,
        limit: Optional[int] = None,
    ) -> List[SeriesRecord]:
        clauses, params = [], []
        if plan is not None:
            clauses.append("plan = ?")
            params.append(plan)
        if scenario is not None:
            clauses.append("scenario = ?")
            params.append(scenario)
        if seed is not None:
            clauses.append("seed = ?")
            params.append(seed)
        sql = "SELECT * FROM series"
        if clauses:
            sql += " WHERE " + " AND ".join(clauses)
        sql += " ORDER BY series_id"
        if limit is not None:
            sql += " LIMIT ?"
            params.append(limit)
        with self._lock:
            rows = self._conn.execute(sql, params).fetchall()
        return [self._series_from_row(row) for row in rows]

    def _series_from_row(self, row) -> SeriesRecord:
        with self._lock:
            links = self._conn.execute(
                "SELECT run_id FROM series_runs WHERE series_id = ? "
                "ORDER BY epoch_index",
                (row[0],),
            ).fetchall()
        return SeriesRecord(
            series_id=row[0], path=row[1], schema_version=row[2],
            plan=row[3], epochs=row[4], seed=row[5], domains=row[6],
            wan_rounds=row[7], scenario=row[8], code_fingerprint=row[9],
            run_ids=tuple(link[0] for link in links),
        )

    def get_series(self, series_id: str) -> SeriesRecord:
        with self._lock:
            row = self._conn.execute(
                "SELECT * FROM series WHERE series_id = ?", (series_id,)
            ).fetchone()
        if row is not None:
            return self._series_from_row(row)
        series_dir = self.root / series_id
        if series_dir.is_dir():
            try:
                return self.ingest_series_dir(series_dir)
            except (OSError, ValueError) as error:
                raise UnknownSeriesError(series_id) from error
        raise UnknownSeriesError(series_id)

    def load_series_payload(self, series_id: str) -> dict:
        record = self.get_series(series_id)
        return load_series(record.path)

    def counts(self) -> Dict[str, int]:
        """Index cardinalities for ``/health`` and ``/metrics``."""
        with self._lock:
            runs = self._conn.execute(
                "SELECT COUNT(*) FROM runs"
            ).fetchone()[0]
            series = self._conn.execute(
                "SELECT COUNT(*) FROM series"
            ).fetchone()[0]
        return {"runs": runs, "series": series}
