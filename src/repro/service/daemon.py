"""Daemon glue: repository + scheduler + HTTP API as one service.

:class:`ReproService` is what ``repro serve`` instantiates — it scans
the repository root on startup, runs the scheduler loop on a worker
thread, and serves the API either blocking (:meth:`serve_forever`, the
CLI path) or on a background thread (:meth:`start`/:meth:`stop`, the
test and smoke-script path).
"""

from __future__ import annotations

import logging
import threading
from pathlib import Path
from typing import Optional, Union

from repro.obs import MetricsRegistry, Observability
from repro.service.api import DEFAULT_HOST, DEFAULT_PORT, ServiceAPI
from repro.service.jobs import Scheduler
from repro.service.repository import RunRepository

logger = logging.getLogger(__name__)


class ReproService:
    """One long-running measurement service over one repository root."""

    def __init__(
        self,
        root: Union[str, Path],
        host: str = DEFAULT_HOST,
        port: int = DEFAULT_PORT,
        artifact_dir: Optional[Union[str, Path]] = None,
        poll_interval: float = 2.0,
        scheduler_enabled: bool = True,
        max_attempts: int = 1,
        access_log: bool = True,
    ):
        from repro.obs.events import EventSink
        from repro.obs.timeline import TimelineStore

        self.obs = Observability(metrics=MetricsRegistry())
        self.repository = RunRepository(root)
        report = self.repository.scan()
        logger.info(
            "indexed %d runs, %d series (%d skipped) under %s",
            report.runs, report.series, len(report.skipped), root,
        )
        self.timeline = TimelineStore(root)
        timeline_report = self.timeline.scan()
        logger.info(
            "timeline: %d entries (%d runs, %d benches)",
            timeline_report.entries, timeline_report.runs,
            timeline_report.benches,
        )
        #: Per-request NDJSON access log — write-through only (the
        #: daemon must not buffer its own request history in memory).
        self.access_log = (
            EventSink(tee=Path(root) / "access.ndjson", keep=False)
            if access_log else None
        )
        store = None
        if artifact_dir is not None:
            from repro.artifacts import ArtifactStore

            store = ArtifactStore(artifact_dir, obs=self.obs)
        self.scheduler = (
            Scheduler(
                self.repository, artifact_store=store, obs=self.obs,
                max_attempts=max_attempts, timeline=self.timeline,
            )
            if scheduler_enabled else None
        )
        self.api = ServiceAPI(
            self.repository, scheduler=self.scheduler, obs=self.obs,
            timeline=self.timeline, access_log=self.access_log,
        )
        self.poll_interval = poll_interval
        self.server = self.api.make_server(host, port)
        self._stop = threading.Event()
        self._threads: list = []

    @property
    def address(self) -> tuple:
        return self.server.server_address

    @property
    def url(self) -> str:
        host, port = self.address[0], self.address[1]
        return f"http://{host}:{port}"

    # -- lifecycle -----------------------------------------------------

    def _scheduler_loop(self) -> None:
        assert self.scheduler is not None
        self.scheduler.run_forever(
            poll_interval=self.poll_interval, stop=self._stop
        )

    def start(self) -> None:
        """Serve on background threads (tests / embedding)."""
        if self.scheduler is not None:
            thread = threading.Thread(
                target=self._scheduler_loop, name="repro-scheduler",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)
        server_thread = threading.Thread(
            target=self.server.serve_forever, name="repro-api",
            daemon=True,
        )
        server_thread.start()
        self._threads.append(server_thread)

    def serve_forever(self) -> None:
        """Block serving the API; the scheduler runs alongside.

        Returns cleanly on ``KeyboardInterrupt`` (SIGINT) — the CI
        smoke job asserts the daemon shuts down within its budget.
        """
        if self.scheduler is not None:
            thread = threading.Thread(
                target=self._scheduler_loop, name="repro-scheduler",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)
        try:
            self.server.serve_forever()
        except KeyboardInterrupt:
            pass
        finally:
            self.stop()

    def stop(self) -> None:
        self._stop.set()
        self.server.shutdown()
        self.server.server_close()
        for thread in self._threads:
            if thread is not threading.current_thread():
                thread.join(timeout=10)
        self._threads.clear()
        self.repository.close()
        self.timeline.close()
        if self.access_log is not None:
            self.access_log.close()
