"""A thin urllib client for the service API.

The CLI's ``--url`` mode and the smoke scripts talk to a running
``repro serve`` through this; it is deliberately dumb — JSON in, JSON
out, every transport or HTTP failure surfaced as a
:class:`~repro.service.errors.ServiceError` so the CLI can map the
whole family to its service exit code.
"""

from __future__ import annotations

import json
from typing import Dict, Optional
from urllib.error import HTTPError, URLError
from urllib.parse import urlencode
from urllib.request import Request, urlopen

from repro.service.errors import ServiceError


class ServiceClient:
    """HTTP access to one ``repro serve`` instance."""

    def __init__(self, base_url: str, timeout: float = 30.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- transport -----------------------------------------------------

    def _request(
        self,
        path: str,
        params: Optional[Dict[str, object]] = None,
        body: Optional[dict] = None,
        method: str = "GET",
    ):
        query = {
            name: value
            for name, value in (params or {}).items()
            if value is not None
        }
        url = self.base_url + path
        if query:
            url += "?" + urlencode(query)
        data = (
            json.dumps(body).encode() if body is not None else None
        )
        request = Request(
            url, data=data, method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urlopen(request, timeout=self.timeout) as response:
                raw = response.read()
                content_type = response.headers.get_content_type()
        except HTTPError as error:
            detail = ""
            try:
                payload = json.loads(error.read())
                detail = payload.get("error", "")
            except Exception:
                pass
            raise ServiceError(
                f"{method} {url} failed: HTTP {error.code}"
                + (f" — {detail}" if detail else "")
            ) from None
        except URLError as error:
            raise ServiceError(
                f"cannot reach service at {self.base_url}: "
                f"{error.reason}"
            ) from None
        if content_type == "application/json":
            return json.loads(raw)
        return raw.decode()

    # -- endpoints -----------------------------------------------------

    def health(self) -> dict:
        return self._request("/health")

    def runs(self, **filters) -> list:
        return self._request("/runs", params=filters)["runs"]

    def run(self, run_id: str) -> dict:
        return self._request(f"/runs/{run_id}")

    def fidelity(self, run_id: str) -> dict:
        return self._request(f"/runs/{run_id}/fidelity")

    def timings(self, run_id: str) -> dict:
        return self._request(f"/runs/{run_id}/timings")

    def summary(self, run_id: str) -> str:
        return self._request(f"/runs/{run_id}/summary")

    def series(self, **filters) -> list:
        return self._request("/series", params=filters)["series"]

    def series_payload(self, series_id: str) -> dict:
        return self._request(f"/series/{series_id}")

    def trends(self, series_id: str) -> str:
        return self._request(f"/series/{series_id}/trends")

    def compare(self, a: str, b: str) -> dict:
        return self._request("/compare", params={"a": a, "b": b})

    def metrics(self) -> str:
        return self._request("/metrics")

    def timeline(self, **filters) -> list:
        return self._request("/timeline", params=filters)["entries"]

    def timeline_series(self) -> list:
        return self._request("/timeline/series")["series"]

    def dashboard(self, format: Optional[str] = None) -> str:
        return self._request(
            "/dashboard",
            params={"format": format} if format else None,
        )

    def jobs(self, status: Optional[str] = None) -> list:
        return self._request(
            "/jobs", params={"status": status}
        )["jobs"]

    def job(self, job_id: str) -> dict:
        return self._request(f"/jobs/{job_id}")

    def submit_job(self, spec: dict, force: bool = False) -> dict:
        return self._request(
            "/jobs",
            params={"force": "1"} if force else None,
            body=spec,
            method="POST",
        )

    def scan(self) -> dict:
        return self._request("/scan", method="POST")
