"""World assembly: one seed in, the entire simulated universe out.

:class:`World` wires the substrates together in dependency order —
DNS, EC2/Azure and their value-added services, the Alexa ranking, the
sampled deployment plans, their materialization, the wide-area models,
and (lazily) the packet capture.  Everything is a deterministic
function of :class:`WorldConfig`.

Ground truth (the plans) is exposed for *validation only*; the
measurement pipeline in :mod:`repro.analysis` works exclusively from
external observations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.capture.generator import (
    CaptureConfig,
    CaptureGenerator,
    TrafficDomain,
)
from repro.capture.flow import Trace
from repro.cloud.azure import AzureCloud
from repro.cloud.cdn import AzureCDN, CloudFront
from repro.cloud.ec2 import EC2Cloud
from repro.cloud.elb import ELBFleet
from repro.cloud.paas import BeanstalkPlatform, HerokuPlatform
from repro.cloud.route53 import Route53
from repro.dns.infrastructure import DnsInfrastructure
from repro.dns.resolver import StubResolver
from repro.internet.latency import LatencyModel
from repro.internet.routing import RoutingModel
from repro.internet.throughput import ThroughputModel
from repro.internet.vantage import CAMPUS_VANTAGE, VantagePoint, planetlab_sites
from repro.net.prefixset import PrefixSet
from repro.probing.directory import EndpointDirectory
from repro.probing.httpget import HttpDownloader
from repro.probing.ping import Prober
from repro.sim import Clock, StreamRegistry
from repro.workload.alexa import AlexaRanking
from repro.workload.customers import CustomerModel
from repro.workload.deploy import DeployedDomain, Deployer
from repro.workload.mixtures import Mixtures
from repro.workload.notable import capture_notables
from repro.workload.plans import DomainPlan, PlanGenerator


@dataclass
class WorldConfig:
    """Scale and seed knobs for one simulated universe."""

    seed: int = 7
    #: Alexa list size (the paper's 1M, scaled down; percentages in the
    #: analyses are scale-free).
    num_domains: int = 20_000
    #: Vantage points used for distributed DNS lookups when building
    #: the Alexa subdomains dataset (the paper used 200).
    num_dns_vantages: int = 24
    #: Vantage points for latency/throughput probing (the paper's 80).
    num_probe_vantages: int = 40
    #: Vantage points used as traceroute destinations (the paper's 200).
    num_traceroute_vantages: int = 60
    #: Fraction of Alexa cloud-using domains that show up in the campus
    #: capture, and how many capture-only domains to add per Alexa one.
    capture_visibility: float = 0.5
    capture_extra_ratio: float = 0.97
    capture: CaptureConfig = field(default_factory=CaptureConfig)
    mixtures: Mixtures = field(default_factory=Mixtures)

    def __post_init__(self) -> None:
        if self.num_domains < 1:
            raise ValueError(
                f"num_domains must be positive: {self.num_domains}"
            )
        for name in (
            "num_dns_vantages", "num_probe_vantages",
            "num_traceroute_vantages",
        ):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be positive")
        if not 0.0 <= self.capture_visibility <= 1.0:
            raise ValueError(
                f"capture_visibility must be a fraction: "
                f"{self.capture_visibility}"
            )


class World:
    """The fully built simulation."""

    def __init__(self, config: Optional[WorldConfig] = None):
        self.config = config or WorldConfig()
        self.streams = StreamRegistry(self.config.seed)
        self.clock = Clock()
        self.dns = DnsInfrastructure()
        # Clouds and their value-added services.
        self.ec2 = EC2Cloud(self.streams, self.dns)
        self.azure = AzureCloud(self.streams, self.dns)
        self.elb_fleet = ELBFleet(self.ec2)
        self.cloudfront = CloudFront(self.streams, self.dns)
        self.route53 = Route53(self.cloudfront, self.dns)
        self.heroku = HerokuPlatform(self.ec2, self.elb_fleet)
        self.beanstalk = BeanstalkPlatform(self.ec2, self.elb_fleet)
        self.azure_cdn = AzureCDN(self.azure)
        # Tenant population.
        self.alexa = AlexaRanking(
            self.config.num_domains, self.streams.stream("alexa")
        )
        self.plan_generator = PlanGenerator(
            self.config.mixtures, self.streams, self.alexa
        )
        self.plans: List[DomainPlan] = self.plan_generator.generate()
        self.capture_only_plans: List[DomainPlan] = [
            self.plan_generator.plan_capture_only_domain(spec)
            for spec in capture_notables()
            if not spec.in_alexa or spec.rank > self.config.num_domains
        ]
        self.capture_only_plans.extend(self._offlist_cloud_plans())
        self.deployer = Deployer(
            streams=self.streams,
            dns=self.dns,
            ec2=self.ec2,
            azure=self.azure,
            elb_fleet=self.elb_fleet,
            beanstalk=self.beanstalk,
            heroku=self.heroku,
            cloudfront=self.cloudfront,
            azure_cdn=self.azure_cdn,
            route53=self.route53,
        )
        self.deployed: List[DeployedDomain] = self.deployer.deploy_all(
            self.plans + self.capture_only_plans
        )
        self.customers = CustomerModel(self.plans + self.capture_only_plans)
        # Wide-area substrate.
        self.providers: Dict[str, object] = {
            "ec2": self.ec2,
            "azure": self.azure,
        }
        self.latency = LatencyModel(self.streams, self.providers)
        self.routing = RoutingModel(self.streams, self.providers)
        self.throughput = ThroughputModel(self.streams, self.latency)
        self.directory = EndpointDirectory([self.ec2, self.azure])
        self.prober = Prober(self.latency, self.directory)
        self.downloader = HttpDownloader(self.throughput)
        self._capture_trace: Optional[Trace] = None
        self._resolvers: Dict[str, StubResolver] = {}

    def _offlist_cloud_plans(self) -> List[DomainPlan]:
        """Cloud-using domains the capture sees but the Alexa list does
        not (roughly one per visible Alexa cloud domain in the paper:
        6,702 of 13,604)."""
        from repro.workload.names import DomainNameFactory

        n_alexa_cloud = sum(1 for p in self.plans if p.is_cloud_using)
        count = int(
            n_alexa_cloud
            * self.config.capture_visibility
            * self.config.capture_extra_ratio
        )
        factory = DomainNameFactory(self.streams.stream("capture", "names"))
        for domain in self.alexa.domains():
            factory.reserve(domain)
        return [
            self.plan_generator.plan_offlist_cloud_domain(factory.fresh())
            for _ in range(count)
        ]

    # -- introspection ---------------------------------------------------------

    def describe(self) -> Dict[str, int]:
        """Headline counts of the built world (ground truth side)."""
        cloud_plans = [p for p in self.plans if p.is_cloud_using]
        return {
            "alexa_domains": len(self.alexa),
            "cloud_using_domains": len(cloud_plans),
            "cloud_subdomains_planned": sum(
                len(p.cloud_subdomains()) for p in cloud_plans
            ),
            "capture_only_domains": len(self.capture_only_plans),
            "ec2_instances": len(self.ec2.instances),
            "azure_instances": len(self.azure.instances),
            "azure_cloud_services": len(self.azure.cloud_services),
            "elb_logical": len(self.elb_fleet.all_load_balancers()),
            "elb_physical": len(self.elb_fleet.physical_proxies()),
            "heroku_apps": len(self.heroku.apps),
            "cloudfront_distributions": len(
                self.cloudfront.distributions
            ),
            "dns_zones": len(self.dns.zones()),
        }

    # -- published ranges ----------------------------------------------------

    def published_ranges(self) -> Dict[str, PrefixSet]:
        """Published cloud IP ranges by provider, plus CloudFront's."""
        return {
            "ec2": self.ec2.published_range_set(),
            "azure": self.azure.published_range_set(),
            "cloudfront": self.cloudfront.published_range_set(),
        }

    # -- vantage points -------------------------------------------------------

    def dns_vantages(self) -> List[VantagePoint]:
        return planetlab_sites(self.config.num_dns_vantages)

    def probe_vantages(self) -> List[VantagePoint]:
        return planetlab_sites(self.config.num_probe_vantages)

    def traceroute_vantages(self) -> List[VantagePoint]:
        return planetlab_sites(self.config.num_traceroute_vantages)

    def resolver_for(self, vantage: VantagePoint) -> StubResolver:
        """The vantage point's local caching resolver (one per node)."""
        resolver = self._resolvers.get(vantage.name)
        if resolver is None:
            resolver = StubResolver(self.dns, self.clock, vantage)
            self._resolvers[vantage.name] = resolver
        return resolver

    # -- ground truth (validation only) ------------------------------------------

    def plan_for(self, domain: str) -> Optional[DomainPlan]:
        deployed = self.deployer.deployed.get(domain)
        return deployed.plan if deployed else None

    # -- the packet capture -----------------------------------------------------

    def capture_trace(self) -> Trace:
        """The week-long campus capture (generated once, cached)."""
        if self._capture_trace is None:
            generator = CaptureGenerator(
                streams=self.streams,
                resolver=self.resolver_for(CAMPUS_VANTAGE),
                cloud_ranges={
                    "ec2": self.ec2.published_range_set(),
                    "azure": self.azure.published_range_set(),
                },
                config=self.config.capture,
            )
            generator.set_background_targets(self._background_targets())
            self._capture_trace = generator.generate(self.traffic_domains())
        return self._capture_trace

    def _background_targets(self):
        rng = self.streams.stream("capture", "background")
        targets = {}
        for provider_name, provider in self.providers.items():
            instances = [
                inst for inst in provider.all_instances()
                if inst.public_ip is not None
            ]
            sample = rng.sample(instances, k=min(200, len(instances)))
            targets[provider_name] = [inst.public_ip for inst in sample]
        return targets

    def traffic_domains(self) -> List[TrafficDomain]:
        """The domains the campus population talks to.

        All capture notables (Table 5), a sampled slice of the other
        Alexa cloud-using domains, and the capture-only tail.
        """
        rng = self.streams.stream("capture", "domains")
        result: List[TrafficDomain] = []
        seen = set()
        for deployed in self.deployed:
            plan = deployed.plan
            if not plan.is_cloud_using or plan.domain in seen:
                continue
            cloud_subs = plan.cloud_subdomains()
            if not cloud_subs:
                continue
            provider = (
                "azure" if plan.category.startswith("azure") else "ec2"
            )
            notable = plan.notable
            capture_only = plan.rank is None and notable is None
            if notable is not None and notable.capture_share > 0:
                result.append(TrafficDomain(
                    domain=plan.domain,
                    provider=provider,
                    hostnames=[s.fqdn for s in cloud_subs[:6]],
                    byte_share=notable.capture_share,
                    https_fraction=notable.https_fraction,
                    storage_profile=notable.https_fraction > 0.8,
                ))
                seen.add(plan.domain)
            elif capture_only or rng.random() < self.config.capture_visibility:
                result.append(TrafficDomain(
                    domain=plan.domain,
                    provider=provider,
                    hostnames=[s.fqdn for s in cloud_subs[:4]],
                ))
                seen.add(plan.domain)
        return result
