"""World assembly: one seed in, the entire simulated universe out.

:class:`World` wires the substrates together in dependency order —
DNS, EC2/Azure and their value-added services, the Alexa ranking, the
sampled deployment plans, their materialization, the wide-area models,
and (lazily) the packet capture.  Everything is a deterministic
function of :class:`WorldConfig`.

Ground truth (the plans) is exposed for *validation only*; the
measurement pipeline in :mod:`repro.analysis` works exclusively from
external observations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.capture.generator import (
    CaptureConfig,
    CaptureGenerator,
    TrafficDomain,
)
from repro.capture.flow import Trace
from repro.cloud.azure import AzureCloud
from repro.cloud.cdn import AzureCDN, CloudFront
from repro.cloud.ec2 import EC2Cloud
from repro.cloud.elb import ELBFleet
from repro.cloud.paas import BeanstalkPlatform, HerokuPlatform
from repro.cloud.route53 import Route53
from repro.dns.infrastructure import DnsInfrastructure
from repro.dns.resolver import StubResolver
from repro.internet.latency import LatencyModel
from repro.internet.routing import RoutingModel
from repro.internet.throughput import ThroughputModel
from repro.internet.vantage import CAMPUS_VANTAGE, VantagePoint, planetlab_sites
from repro.net.prefixset import PrefixSet
from repro.probing.directory import EndpointDirectory
from repro.probing.httpget import HttpDownloader
from repro.probing.ping import Prober
from repro.sim import Clock, StreamRegistry
from repro.workload.alexa import AlexaRanking
from repro.workload.customers import CustomerModel
from repro.workload.deploy import DeployedDomain, Deployer
from repro.workload.mixtures import Mixtures
from repro.workload.notable import capture_notables
from repro.workload.plans import DomainPlan, PlanGenerator


@dataclass
class WorldConfig:
    """Scale and seed knobs for one simulated universe."""

    seed: int = 7
    #: Alexa list size (the paper's 1M, scaled down; percentages in the
    #: analyses are scale-free).
    num_domains: int = 20_000
    #: Vantage points used for distributed DNS lookups when building
    #: the Alexa subdomains dataset (the paper used 200).
    num_dns_vantages: int = 24
    #: Vantage points for latency/throughput probing (the paper's 80).
    num_probe_vantages: int = 40
    #: Vantage points used as traceroute destinations (the paper's 200).
    num_traceroute_vantages: int = 60
    #: Fraction of Alexa cloud-using domains that show up in the campus
    #: capture, and how many capture-only domains to add per Alexa one.
    capture_visibility: float = 0.5
    capture_extra_ratio: float = 0.97
    capture: CaptureConfig = field(default_factory=CaptureConfig)
    mixtures: Mixtures = field(default_factory=Mixtures)

    def __post_init__(self) -> None:
        if self.num_domains < 1:
            raise ValueError(
                f"num_domains must be positive: {self.num_domains}"
            )
        for name in (
            "num_dns_vantages", "num_probe_vantages",
            "num_traceroute_vantages",
        ):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be positive")
        if not 0.0 <= self.capture_visibility <= 1.0:
            raise ValueError(
                f"capture_visibility must be a fraction: "
                f"{self.capture_visibility}"
            )


class World:
    """The fully built simulation.

    With ``defer_tenants=True`` only the substrate — clouds, DNS, the
    ranking, the plan and deploy machinery — is built up front; the
    tenant population is deployed incrementally in rank order through
    :meth:`ensure_deployed_through` / :meth:`release_window` /
    :meth:`finalize_tenants` (the streaming chunked build), or all at
    once through :meth:`catch_up_tenants` (the batch fallback).  Every
    RNG substream is consumed in the same within-stream order either
    way, so the two construction modes are bit-identical.
    """

    def __init__(
        self, config: Optional[WorldConfig] = None,
        defer_tenants: bool = False,
    ):
        self.config = config or WorldConfig()
        self.streams = StreamRegistry(self.config.seed)
        self.clock = Clock()
        self.dns = DnsInfrastructure()
        # Clouds and their value-added services.
        self.ec2 = EC2Cloud(self.streams, self.dns)
        self.azure = AzureCloud(self.streams, self.dns)
        self.elb_fleet = ELBFleet(self.ec2)
        self.cloudfront = CloudFront(self.streams, self.dns)
        self.route53 = Route53(self.cloudfront, self.dns)
        self.heroku = HerokuPlatform(self.ec2, self.elb_fleet)
        self.beanstalk = BeanstalkPlatform(self.ec2, self.elb_fleet)
        self.azure_cdn = AzureCDN(self.azure)
        # Tenant population.
        self.alexa = AlexaRanking(
            self.config.num_domains, self.streams.stream("alexa")
        )
        self.plan_generator = PlanGenerator(
            self.config.mixtures, self.streams, self.alexa
        )
        self.defer_tenants = defer_tenants
        self._finalized = not defer_tenants
        self._released_tenants = False
        self._next_rank = 0
        self._deploy_window: List[DeployedDomain] = []
        self._n_cloud_plans = 0
        self._n_cloud_subdomains = 0
        self._customer_country: Dict[str, Optional[str]] = {}
        self._traffic: List[TrafficDomain] = []
        self._traffic_seen: set = set()
        self.plans: List[DomainPlan] = []
        self.capture_only_plans: List[DomainPlan] = []
        self.deployer = Deployer(
            streams=self.streams,
            dns=self.dns,
            ec2=self.ec2,
            azure=self.azure,
            elb_fleet=self.elb_fleet,
            beanstalk=self.beanstalk,
            heroku=self.heroku,
            cloudfront=self.cloudfront,
            azure_cdn=self.azure_cdn,
            route53=self.route53,
        )
        self.deployed: List[DeployedDomain] = []
        self.customers: Optional[CustomerModel] = None
        self.providers: Dict[str, object] = {
            "ec2": self.ec2,
            "azure": self.azure,
        }
        self.latency: Optional[LatencyModel] = None
        self.routing: Optional[RoutingModel] = None
        self.throughput: Optional[ThroughputModel] = None
        self.directory: Optional[EndpointDirectory] = None
        self.prober: Optional[Prober] = None
        self.downloader: Optional[HttpDownloader] = None
        self._capture_trace: Optional[Trace] = None
        self._resolvers: Dict[str, StubResolver] = {}
        if not defer_tenants:
            self.plans = self.plan_generator.generate()
            self.capture_only_plans = [
                self.plan_generator.plan_capture_only_domain(spec)
                for spec in capture_notables()
                if not spec.in_alexa or spec.rank > self.config.num_domains
            ]
            self.capture_only_plans.extend(self._offlist_cloud_plans())
            self.deployed = self.deployer.deploy_all(
                self.plans + self.capture_only_plans
            )
            self.customers = CustomerModel(
                self.plans + self.capture_only_plans
            )
            self._build_wan_substrate()

    def _build_wan_substrate(self) -> None:
        self.latency = LatencyModel(self.streams, self.providers)
        self.routing = RoutingModel(self.streams, self.providers)
        self.throughput = ThroughputModel(self.streams, self.latency)
        self.directory = EndpointDirectory([self.ec2, self.azure])
        self.prober = Prober(self.latency, self.directory)
        self.downloader = HttpDownloader(self.throughput)

    def _offlist_cloud_plans(
        self, n_alexa_cloud: Optional[int] = None
    ) -> List[DomainPlan]:
        """Cloud-using domains the capture sees but the Alexa list does
        not (roughly one per visible Alexa cloud domain in the paper:
        6,702 of 13,604)."""
        from repro.workload.names import DomainNameFactory

        if n_alexa_cloud is None:
            n_alexa_cloud = sum(1 for p in self.plans if p.is_cloud_using)
        count = int(
            n_alexa_cloud
            * self.config.capture_visibility
            * self.config.capture_extra_ratio
        )
        factory = DomainNameFactory(self.streams.stream("capture", "names"))
        for domain in self.alexa.domains():
            factory.reserve(domain)
        return [
            self.plan_generator.plan_offlist_cloud_domain(factory.fresh())
            for _ in range(count)
        ]

    # -- incremental tenant population (chunked builds) -----------------------

    @property
    def pending_tenants(self) -> bool:
        """True while a deferred world still owes tenant deployments."""
        return self.defer_tenants and not self._finalized

    def ensure_deployed_through(self, hi_rank: int) -> List[DeployedDomain]:
        """Plan and deploy ranked sites up to (excluding) ``hi_rank``.

        Sites are visited strictly in rank order, so the ``plans`` and
        ``deploy`` streams advance exactly as a whole-list build's
        would.  Returns the un-released deploy window.
        """
        if not self.pending_tenants:
            raise RuntimeError(
                "ensure_deployed_through needs a deferred, un-finalized "
                "world"
            )
        sites = self.alexa.sites
        hi = min(hi_rank, len(sites))
        while self._next_rank < hi:
            plan = self.plan_generator.plan_site(sites[self._next_rank])
            if plan.is_cloud_using:
                self._n_cloud_plans += 1
                self._n_cloud_subdomains += len(plan.cloud_subdomains())
            self._deploy_window.append(self.deployer.deploy_domain(plan))
            self._customer_country[plan.domain] = plan.customer_country
            self._next_rank += 1
        return self._deploy_window

    def _note_traffic_domain(self, deployed: DeployedDomain) -> bool:
        """One domain's slice of the batch :meth:`traffic_domains` loop.

        Called once per deployed domain *in deploy order*, it consumes
        the same ``capture/domains`` draws a whole-list pass would (the
        stream registry memoizes, so both modes advance one shared
        generator), and returns whether the capture will revisit the
        domain — the retention decision for its zone.
        """
        rng = self.streams.stream("capture", "domains")
        plan = deployed.plan
        if not plan.is_cloud_using or plan.domain in self._traffic_seen:
            return False
        cloud_subs = plan.cloud_subdomains()
        if not cloud_subs:
            return False
        provider = (
            "azure" if plan.category.startswith("azure") else "ec2"
        )
        notable = plan.notable
        capture_only = plan.rank is None and notable is None
        if notable is not None and notable.capture_share > 0:
            self._traffic.append(TrafficDomain(
                domain=plan.domain,
                provider=provider,
                hostnames=[s.fqdn for s in cloud_subs[:6]],
                byte_share=notable.capture_share,
                https_fraction=notable.https_fraction,
                storage_profile=notable.https_fraction > 0.8,
            ))
            self._traffic_seen.add(plan.domain)
            return True
        if capture_only or rng.random() < self.config.capture_visibility:
            self._traffic.append(TrafficDomain(
                domain=plan.domain,
                provider=provider,
                hostnames=[s.fqdn for s in cloud_subs[:4]],
            ))
            self._traffic_seen.add(plan.domain)
            return True
        return False

    def release_window(self) -> int:
        """Decide capture retention for the deploy window and release
        the rest.

        Retained domains (the capture's traffic domains) keep their
        zone and name-server registrations; everything else gives back
        its zone, its per-domain name servers, and the deployer's
        bookkeeping — the terms that grow linearly with rank.  Cloud
        instances and value-added services always stay: the WAN
        campaigns probe them.  Returns the number of zones released.
        """
        released = 0
        window_domains = []
        for deployed in self._deploy_window:
            domain = deployed.plan.domain
            window_domains.append(domain)
            keep = self._note_traffic_domain(deployed)
            if keep or deployed.plan.notable is not None:
                # Notables can share a zone with cloud service
                # infrastructure (msecnd.net is the Azure CDN's zone);
                # they are few, so retain them unconditionally.
                continue
            if self.dns.release_zone(domain):
                released += 1
            suffix = "." + domain
            for server in deployed.nameservers:
                if server.hostname.endswith(suffix):
                    self.dns.unregister_nameserver(server.hostname)
        self.deployer.release_domains(window_domains)
        self._deploy_window = []
        self._released_tenants = True
        return released

    def finalize_tenants(self) -> None:
        """Deploy the capture-only tail and build the WAN substrate.

        After this the world answers every query a batch-built one
        does; a releasing build's :meth:`traffic_domains` returns the
        list accumulated during :meth:`release_window`, a catch-up
        build keeps the batch code paths.
        """
        if self._finalized:
            raise RuntimeError("tenants already finalized")
        if self._next_rank < len(self.alexa.sites):
            raise RuntimeError(
                "finalize_tenants before all ranked sites deployed"
            )
        if self._released_tenants and self._deploy_window:
            raise RuntimeError("release_window the last chunk first")
        self.capture_only_plans = [
            self.plan_generator.plan_capture_only_domain(spec)
            for spec in capture_notables()
            if not spec.in_alexa or spec.rank > self.config.num_domains
        ]
        self.capture_only_plans.extend(
            self._offlist_cloud_plans(self._n_cloud_plans)
        )
        tail = self.deployer.deploy_all(self.capture_only_plans)
        if self._released_tenants:
            for deployed in tail:
                self._note_traffic_domain(deployed)
            # Capture-only zones stay (the capture digs them); only the
            # deployer's per-domain bookkeeping is reclaimed.
            self.deployer.release_domains(
                [d.plan.domain for d in tail]
            )
        else:
            # Catch-up: expose the batch-shaped views so every
            # downstream consumer takes the batch code paths.
            self.plans = [d.plan for d in self._deploy_window]
            self.deployed = self._deploy_window + tail
            self._deploy_window = []
        mapping = dict(self._customer_country)
        for plan in self.capture_only_plans:
            mapping[plan.domain] = plan.customer_country
        self.customers = CustomerModel.from_mapping(mapping)
        self._build_wan_substrate()
        self._finalized = True

    def catch_up_tenants(self) -> None:
        """Deploy every remaining tenant at once, batch-equivalently.

        The fallback when a deferred world reaches a consumer that
        cannot run the chunked build (live event sink, partial range
        coverage, no fork support): the result is indistinguishable
        from a world built with ``defer_tenants=False``.
        """
        if not self.pending_tenants:
            return
        if self._released_tenants:
            raise RuntimeError("cannot catch up after tenant releases")
        self.ensure_deployed_through(len(self.alexa.sites))
        self.finalize_tenants()

    # -- introspection ---------------------------------------------------------

    def describe(self) -> Dict[str, int]:
        """Headline counts of the built world (ground truth side)."""
        if self._released_tenants:
            n_cloud = self._n_cloud_plans
            n_cloud_subs = self._n_cloud_subdomains
        else:
            cloud_plans = [p for p in self.plans if p.is_cloud_using]
            n_cloud = len(cloud_plans)
            n_cloud_subs = sum(
                len(p.cloud_subdomains()) for p in cloud_plans
            )
        return {
            "alexa_domains": len(self.alexa),
            "cloud_using_domains": n_cloud,
            "cloud_subdomains_planned": n_cloud_subs,
            "capture_only_domains": len(self.capture_only_plans),
            "ec2_instances": len(self.ec2.instances),
            "azure_instances": len(self.azure.instances),
            "azure_cloud_services": len(self.azure.cloud_services),
            "elb_logical": len(self.elb_fleet.all_load_balancers()),
            "elb_physical": len(self.elb_fleet.physical_proxies()),
            "heroku_apps": len(self.heroku.apps),
            "cloudfront_distributions": len(
                self.cloudfront.distributions
            ),
            "dns_zones": len(self.dns.zones()),
        }

    # -- published ranges ----------------------------------------------------

    def published_ranges(self) -> Dict[str, PrefixSet]:
        """Published cloud IP ranges by provider, plus CloudFront's."""
        return {
            "ec2": self.ec2.published_range_set(),
            "azure": self.azure.published_range_set(),
            "cloudfront": self.cloudfront.published_range_set(),
        }

    # -- vantage points -------------------------------------------------------

    def dns_vantages(self) -> List[VantagePoint]:
        return planetlab_sites(self.config.num_dns_vantages)

    def probe_vantages(self) -> List[VantagePoint]:
        return planetlab_sites(self.config.num_probe_vantages)

    def traceroute_vantages(self) -> List[VantagePoint]:
        return planetlab_sites(self.config.num_traceroute_vantages)

    def resolver_for(self, vantage: VantagePoint) -> StubResolver:
        """The vantage point's local caching resolver (one per node)."""
        resolver = self._resolvers.get(vantage.name)
        if resolver is None:
            resolver = StubResolver(self.dns, self.clock, vantage)
            self._resolvers[vantage.name] = resolver
        return resolver

    # -- ground truth (validation only) ------------------------------------------

    def plan_for(self, domain: str) -> Optional[DomainPlan]:
        deployed = self.deployer.deployed.get(domain)
        return deployed.plan if deployed else None

    # -- the packet capture -----------------------------------------------------

    def _capture_generator(self) -> CaptureGenerator:
        """A fresh border-capture generator with background targets set
        (consumes the ``capture/background`` stream)."""
        generator = CaptureGenerator(
            streams=self.streams,
            resolver=self.resolver_for(CAMPUS_VANTAGE),
            cloud_ranges={
                "ec2": self.ec2.published_range_set(),
                "azure": self.azure.published_range_set(),
            },
            config=self.config.capture,
        )
        generator.set_background_targets(self._background_targets())
        return generator

    def capture_trace(self) -> Trace:
        """The week-long campus capture (generated once, cached)."""
        if self._capture_trace is None:
            generator = self._capture_generator()
            self._capture_trace = generator.generate(self.traffic_domains())
        return self._capture_trace

    def capture_summary(self, workers: int = 0, obs=None):
        """Stream-analyze the capture without materializing a trace.

        One pass of bounded-memory aggregation (optionally sharded by
        capture day when ``workers > 1``); totals match the batch
        analyzer's exactly — see :mod:`repro.capture.streaming`.
        """
        from repro.capture.streaming import streaming_capture_summary
        from repro.obs import NOOP

        return streaming_capture_summary(
            self, workers=workers, obs=obs if obs is not None else NOOP
        )

    def _background_targets(self):
        rng = self.streams.stream("capture", "background")
        targets = {}
        for provider_name, provider in self.providers.items():
            instances = [
                inst for inst in provider.all_instances()
                if inst.public_ip is not None
            ]
            sample = rng.sample(instances, k=min(200, len(instances)))
            targets[provider_name] = [inst.public_ip for inst in sample]
        return targets

    def traffic_domains(self) -> List[TrafficDomain]:
        """The domains the campus population talks to.

        All capture notables (Table 5), a sampled slice of the other
        Alexa cloud-using domains, and the capture-only tail.  A
        releasing chunked build made these decisions while the tenants
        were still deployed, so it returns the accumulated list; the
        batch path draws them here.
        """
        if self._released_tenants:
            if not self._finalized:
                raise RuntimeError(
                    "traffic_domains before finalize_tenants"
                )
            return list(self._traffic)
        rng = self.streams.stream("capture", "domains")
        result: List[TrafficDomain] = []
        seen = set()
        for deployed in self.deployed:
            plan = deployed.plan
            if not plan.is_cloud_using or plan.domain in seen:
                continue
            cloud_subs = plan.cloud_subdomains()
            if not cloud_subs:
                continue
            provider = (
                "azure" if plan.category.startswith("azure") else "ec2"
            )
            notable = plan.notable
            capture_only = plan.rank is None and notable is None
            if notable is not None and notable.capture_share > 0:
                result.append(TrafficDomain(
                    domain=plan.domain,
                    provider=provider,
                    hostnames=[s.fqdn for s in cloud_subs[:6]],
                    byte_share=notable.capture_share,
                    https_fraction=notable.https_fraction,
                    storage_profile=notable.https_fraction > 0.8,
                ))
                seen.add(plan.domain)
            elif capture_only or rng.random() < self.config.capture_visibility:
                result.append(TrafficDomain(
                    domain=plan.domain,
                    provider=provider,
                    hostnames=[s.fqdn for s in cloud_subs[:4]],
                ))
                seen.add(plan.domain)
        return result
