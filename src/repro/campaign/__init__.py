"""The measurement plane: one engine for every probe campaign.

The paper's four measurement activities — distributed DNS lookups
(§2.1), TCP pings and HTTP downloads from the PlanetLab clients (§5),
and traceroutes for ISP counting (§5.3) — all run as (vantage ×
target × round) task grids through one deterministic
:class:`CampaignEngine`: typed :class:`ProbeTask`/:class:`ProbeRecord`
cells, per-lane derived RNG streams for retry/loss semantics,
:class:`~repro.faults.OutageScenario` injection, and a single
sharding/fork fan-out path (:mod:`repro.campaign.fanout`) that is
bit-identical to sequential execution for any worker count.
"""

from repro.campaign.engine import CampaignEngine, CellContext, GridCampaign
from repro.campaign.fanout import fork_map, partition, partition_weighted
from repro.campaign.model import (
    CampaignResult,
    ProbeKind,
    ProbePolicy,
    ProbeRecord,
    ProbeTask,
)
from repro.campaign.probes import (
    DnsLookupCampaign,
    TracerouteCampaign,
    WanMeasurementCampaign,
)

__all__ = [
    "CampaignEngine",
    "CampaignResult",
    "CellContext",
    "DnsLookupCampaign",
    "GridCampaign",
    "ProbeKind",
    "ProbePolicy",
    "ProbeRecord",
    "ProbeTask",
    "TracerouteCampaign",
    "WanMeasurementCampaign",
    "fork_map",
    "partition",
    "partition_weighted",
]
