"""The single fork fan-out path of the measurement plane.

Every parallel campaign in the repository — the engine's round-chunked
WAN grids, its traceroute sweeps, and the rank-sliced §2.1 dataset
shards — funnels through :func:`fork_map`.  The discipline it encodes
(inherited from the PR 1 WAN fork and the PR 2 dataset shards it
subsumes) is:

* workers are **forked**, never spawned: the fully built world reaches
  the children by copy-on-write, nothing heavy is pickled, and the
  closures the world holds (dynamic DNS answer functions) never cross
  a process boundary;
* the callable runs over a contiguous index range and results come
  back **in index order**, so merges are deterministic;
* platforms without ``fork`` fall back to in-process execution, which
  is bit-identical by construction.

Only the module-level trampoline is ever pickled by the pool; the work
callable itself (usually a closure over campaign state) stays in the
parent's memory image and reaches children through the fork.
"""

from __future__ import annotations

import multiprocessing
from typing import Callable, List, Optional, Tuple

from repro.sim import fork_pool_available

#: The active work callable, inherited by forked children.
_ACTIVE_FN: Optional[Callable[[int], object]] = None


def _invoke(index: int):
    """Pool trampoline: the only object that crosses via pickling."""
    return _ACTIVE_FN(index)


def partition(count: int, shards: int) -> List[Tuple[int, int]]:
    """Near-equal contiguous ``[lo, hi)`` index slices, in order."""
    shards = max(1, min(shards, count))
    base, extra = divmod(count, shards)
    bounds: List[Tuple[int, int]] = []
    lo = 0
    for i in range(shards):
        hi = lo + base + (1 if i < extra else 0)
        if hi > lo:
            bounds.append((lo, hi))
        lo = hi
    return bounds


def fork_map(
    fn: Callable[[int], object], count: int, workers: int
) -> List[object]:
    """Run ``fn(0) .. fn(count - 1)`` over forked workers, in order.

    ``fn`` must be self-contained under fork semantics: whatever state
    it closes over is copied into the children at fork time and
    mutations never propagate back — results must carry everything the
    parent needs to reconcile.  With ``workers <= 1``, ``count <= 1``,
    or no fork support, the calls run in-process instead.
    """
    if count <= 0:
        return []
    workers = min(workers, count)
    if workers <= 1 or not fork_pool_available():
        return [fn(index) for index in range(count)]
    global _ACTIVE_FN
    _ACTIVE_FN = fn
    try:
        context = multiprocessing.get_context("fork")
        with context.Pool(processes=workers) as pool:
            results = pool.map(_invoke, range(count))
    finally:
        _ACTIVE_FN = None
    if len(results) != count:
        raise RuntimeError(
            f"fork fan-out drift: {count} tasks submitted, "
            f"{len(results)} results returned"
        )
    return results
