"""The single fork fan-out path of the measurement plane.

Every parallel campaign in the repository — the engine's round-chunked
WAN grids, its traceroute sweeps, and the rank-sliced §2.1 dataset
shards — funnels through :func:`fork_map`.  The discipline it encodes
(inherited from the PR 1 WAN fork and the PR 2 dataset shards it
subsumes) is:

* workers are **forked**, never spawned: the fully built world reaches
  the children by copy-on-write, nothing heavy is pickled, and the
  closures the world holds (dynamic DNS answer functions) never cross
  a process boundary;
* the callable runs over a contiguous index range and results come
  back **in index order**, so merges are deterministic;
* platforms without ``fork`` fall back to in-process execution, which
  is bit-identical by construction.

Only the module-level trampoline is ever pickled by the pool; the work
callable itself (usually a closure over campaign state) stays in the
parent's memory image and reaches children through the fork.
"""

from __future__ import annotations

import multiprocessing
from typing import Callable, List, Optional, Sequence, Tuple

from repro.sim import fork_pool_available

#: The active work callable, inherited by forked children.
_ACTIVE_FN: Optional[Callable[[int], object]] = None


def _invoke(index: int):
    """Pool trampoline: the only object that crosses via pickling."""
    return _ACTIVE_FN(index)


def partition(count: int, shards: int) -> List[Tuple[int, int]]:
    """Near-equal contiguous ``[lo, hi)`` index slices, in order."""
    shards = max(1, min(shards, count))
    base, extra = divmod(count, shards)
    bounds: List[Tuple[int, int]] = []
    lo = 0
    for i in range(shards):
        hi = lo + base + (1 if i < extra else 0)
        if hi > lo:
            bounds.append((lo, hi))
        lo = hi
    return bounds


def partition_weighted(
    weights: Sequence[float], shards: int
) -> List[Tuple[int, int]]:
    """Contiguous ``[lo, hi)`` slices with near-equal total *weight*.

    :func:`partition` balances task counts, which skews wall-clock when
    per-task cost varies by orders of magnitude — at paper scale a few
    AXFR-able domains carry thousands of subdomains while most carry a
    handful, so an equal-count shard can hold most of the bytes.  This
    variant cuts after the item where the running weight crosses each
    ``i/shards`` quantile of the total, keeping every slice non-empty
    and leaving at least one item for each remaining slice.  Slices are
    contiguous and in order, so any consumer of :func:`partition` can
    switch without changing merge semantics.  Uniform weights degrade
    to :func:`partition`'s balance (same slice-size multiset; the +1
    remainders may land on different shards), and a non-positive total
    falls back to :func:`partition` itself.
    """
    count = len(weights)
    if count == 0:
        return []
    shards = max(1, min(shards, count))
    total = float(sum(weights))
    if shards == 1 or total <= 0.0:
        return partition(count, shards)
    bounds: List[Tuple[int, int]] = []
    lo = 0
    cum = 0.0
    emitted = 0
    for index, weight in enumerate(weights):
        cum += float(weight)
        if emitted >= shards - 1:
            break
        remaining = count - (index + 1)
        needed = shards - emitted - 1
        # Cut at the quantile crossing — or immediately, when every
        # remaining item is needed to keep the later slices non-empty
        # (weight piled at the tail would otherwise shrink the fan-out).
        if remaining < needed:
            continue
        if remaining == needed or cum >= total * (emitted + 1) / shards:
            bounds.append((lo, index + 1))
            lo = index + 1
            emitted += 1
    bounds.append((lo, count))
    return bounds


def fork_map(
    fn: Callable[[int], object], count: int, workers: int,
    force_fork: bool = False,
) -> List[object]:
    """Run ``fn(0) .. fn(count - 1)`` over forked workers, in order.

    ``fn`` must be self-contained under fork semantics: whatever state
    it closes over is copied into the children at fork time and
    mutations never propagate back — results must carry everything the
    parent needs to reconcile.  With ``workers <= 1``, ``count <= 1``,
    or no fork support, the calls run in-process instead.

    ``force_fork=True`` forks even for a single worker or task — for
    callers that rely on fork *isolation* rather than parallelism (the
    streaming chunked build must keep the parent world unmutated by a
    chunk's digs).  It cannot conjure fork support: when the platform
    has none the calls still run in-process, so such callers must gate
    on :func:`repro.sim.fork_pool_available` themselves.
    """
    if count <= 0:
        return []
    workers = min(workers, count)
    if not fork_pool_available() or (workers <= 1 and not force_fork):
        return [fn(index) for index in range(count)]
    workers = max(1, workers)
    global _ACTIVE_FN
    _ACTIVE_FN = fn
    try:
        context = multiprocessing.get_context("fork")
        with context.Pool(processes=workers) as pool:
            results = pool.map(_invoke, range(count))
    finally:
        _ACTIVE_FN = None
    if len(results) != count:
        raise RuntimeError(
            f"fork fan-out drift: {count} tasks submitted, "
            f"{len(results)} results returned"
        )
    return results
