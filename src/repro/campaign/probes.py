"""The concrete campaigns of the paper's measurement activities.

Three :class:`~repro.campaign.engine.GridCampaign` subclasses cover the
repository's four probe types:

* :class:`WanMeasurementCampaign` — the §5 wide-area campaign: every
  cell fires one TCP ping and one HTTP GET from a PlanetLab client at
  a measurement instance.  Round-sharded (the pings and downloads
  consume the shared jitter/noise streams).
* :class:`TracerouteCampaign` — the §5.2 sweeps: one traceroute per
  (instance, vantage), classified by
  :class:`~repro.probing.traceroute.TracerouteTool`.  All randomness
  is hash-derived, so the grid itself shards.
* :class:`DnsLookupCampaign` — the §2.1 distributed lookups: one fresh
  dig per (subdomain, vantage).  Digs advance server-side rotation
  counters and resolver caches, so the campaign is not fork-shardable
  on its own (``shardable = False``); the rank-sliced dataset shards
  in :mod:`repro.analysis.shards` parallelize around that state and
  run this campaign inside each worker.

Scenario semantics (the same :class:`~repro.faults.OutageScenario`
the availability analysis evaluates): a down region or zone blocks
pings, downloads, and traceroutes sourced at its instances — the probe
is marked ``blocked``, no wide-area model is consulted, and no shared
stream draw is consumed (``stream_advances`` counts only surviving
instances, keeping the round fast-forward exact).  Failed ISPs reach
traceroutes as BGP re-convergence (``failed_isps``).  DNS lookups are
deliberately unaffected: the paper's resolution infrastructure is
anycast and survives single-region failures, and modelling partial DNS
damage would change rotation-counter state in ways the dataset shard
replay could no longer reconcile.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.campaign.engine import CellContext, GridCampaign
from repro.campaign.model import ProbeKind, ProbeRecord, ProbeTask
from repro.cloud.base import Instance
from repro.faults.scenarios import OutageScenario
from repro.internet.vantage import VantagePoint
from repro.probing.httpget import (
    DEFAULT_OBJECT_BYTES,
    DEFAULT_TIMEOUT_S,
    DownloadResult,
)
from repro.probing.ping import PingResult
from repro.probing.traceroute import TracerouteResult, TracerouteTool


def _instance_down(
    scenario: Optional[OutageScenario], instance: Instance
) -> bool:
    return scenario is not None and scenario.zone_down(
        instance.provider_name, instance.region_name, instance.zone_index
    )


class WanMeasurementCampaign(GridCampaign):
    """§5 ping + download rounds: clients × measurement instances.

    ``pairs`` is the flattened (region name, instance) fleet in region
    order — the minor axis — so a round visits every client, and each
    client every region's instances in fleet order, exactly the
    sequential order the shared jitter/noise streams were seeded for.
    """

    probes_per_cell = 2
    vantage_major = True
    shard_axis = "round"

    def __init__(
        self,
        world,
        clients: Sequence[VantagePoint],
        pairs: Sequence[Tuple[str, Instance]],
        rounds: int,
        round_seconds: float,
        pings_per_round: int,
        name: str = "wan-measure",
    ):
        self.world = world
        self.clients = list(clients)
        self.pairs = list(pairs)
        self.rounds = rounds
        self.round_seconds = round_seconds
        self.pings_per_round = pings_per_round
        self.name = name

    def vantage_axis(self) -> Sequence[VantagePoint]:
        return self.clients

    def target_axis(self) -> Sequence[Tuple[str, Instance]]:
        return self.pairs

    def time_of_round(self, round_index: int) -> float:
        return round_index * self.round_seconds

    def stream_advances(
        self, scenario: Optional[OutageScenario]
    ) -> Sequence[Tuple[object, int]]:
        """Exact per-round draws on the shared jitter/noise streams.

        Every surviving client↔instance pair is wide-area (two jitter
        gauss per ping probe) and every download takes one noise gauss
        whether or not it times out; blocked instances never touch the
        models, so only survivors count.
        """
        live = sum(
            1
            for _, instance in self.pairs
            if not _instance_down(scenario, instance)
        )
        pair_count = len(self.clients) * live
        return (
            (
                self.world.latency._jitter_rng,
                pair_count * 2 * self.pings_per_round,
            ),
            (self.world.throughput._noise_rng, pair_count),
        )

    def execute_cell(
        self, vantage: VantagePoint, target: Tuple[str, Instance],
        cell: CellContext,
    ) -> List[ProbeRecord]:
        _, instance = target
        ping_task = ProbeTask(
            kind=ProbeKind.TCP_PING,
            vantage=vantage.name,
            target=instance.instance_id,
            round_index=cell.round_index,
            time_s=cell.time_s,
        )
        get_task = ProbeTask(
            kind=ProbeKind.HTTP_GET,
            vantage=vantage.name,
            target=instance.instance_id,
            round_index=cell.round_index,
            time_s=cell.time_s,
        )
        if _instance_down(cell.scenario, instance):
            # The outage swallows both probes before they reach the
            # wide-area models: pure timeouts, zero stream draws.
            return [
                ProbeRecord(
                    task=ping_task,
                    ok=False,
                    payload=PingResult(
                        rtts_ms=[None] * self.pings_per_round
                    ),
                    blocked=True,
                ),
                ProbeRecord(
                    task=get_task,
                    ok=False,
                    payload=DownloadResult(
                        completed=False,
                        duration_s=None,
                        rate_bytes_per_s=None,
                    ),
                    blocked=True,
                ),
            ]
        ping = self.world.prober.tcp_ping(
            vantage,
            instance,
            count=self.pings_per_round,
            time_s=cell.time_s,
        )
        timeout_s = (
            cell.policy.timeout_s
            if cell.policy.timeout_s is not None
            else DEFAULT_TIMEOUT_S
        )
        download = self.world.downloader.get(
            vantage,
            instance,
            size_bytes=DEFAULT_OBJECT_BYTES,
            time_s=cell.time_s,
            timeout_s=timeout_s,
        )
        return [
            ProbeRecord(task=ping_task, ok=ping.responded, payload=ping),
            ProbeRecord(
                task=get_task, ok=download.completed, payload=download
            ),
        ]


class TracerouteCampaign(GridCampaign):
    """§5.2 sweeps: instances × vantage points, one trace per cell.

    Target-major (the legacy loops walked each instance's vantages in
    turn); every draw is hash-derived from (instance, vantage), so the
    grid shards along the instance axis with no stream bookkeeping.
    """

    probes_per_cell = 1
    rounds = 1
    vantage_major = False
    shard_axis = "grid"

    def __init__(
        self,
        tool: TracerouteTool,
        instances: Sequence[Instance],
        vantages: Sequence[VantagePoint],
        name: str = "traceroute",
    ):
        self.tool = tool
        self.instances = list(instances)
        self.vantages = list(vantages)
        self.name = name

    def vantage_axis(self) -> Sequence[VantagePoint]:
        return self.vantages

    def target_axis(self) -> Sequence[Instance]:
        return self.instances

    def execute_cell(
        self, vantage: VantagePoint, target: Instance, cell: CellContext
    ) -> List[ProbeRecord]:
        task = ProbeTask(
            kind=ProbeKind.TRACEROUTE,
            vantage=vantage.name,
            target=target.instance_id,
            round_index=cell.round_index,
        )
        if _instance_down(cell.scenario, target):
            return [
                ProbeRecord(
                    task=task,
                    ok=False,
                    payload=TracerouteResult(
                        hops=(),
                        reached=False,
                        first_external_asn=None,
                        first_external_owner=None,
                    ),
                    blocked=True,
                )
            ]
        failed = (
            cell.scenario.isp_as_numbers
            if cell.scenario is not None
            else frozenset()
        )
        result = self.tool.trace(target, vantage, failed_isps=failed)
        return [
            ProbeRecord(task=task, ok=result.reached, payload=result)
        ]


class DnsLookupCampaign(GridCampaign):
    """§2.1 distributed lookups: (domain, fqdn) targets × DNS vantages.

    Target-major to match the sequential build: each subdomain is dug
    from every vantage before the next subdomain.  ``recorder`` is the
    shard build's :class:`~repro.analysis.shards.ShardRecorder`; a dig
    it flags (shared-rotation answer) has its addresses withheld for
    the parent replay, which the payload's ``withheld`` flag records.
    """

    probes_per_cell = 1
    rounds = 1
    vantage_major = False
    #: Digs advance rotation counters and resolver caches — server-side
    #: state a forked child cannot hand back; see the module docstring.
    shardable = False

    def __init__(
        self,
        world,
        targets: Sequence[Tuple[str, str]],
        recorder=None,
        name: str = "dns-lookup",
    ):
        self.world = world
        self.targets = list(targets)
        self.recorder = recorder
        self.name = name
        self._vantages = world.dns_vantages()
        self._resolvers = [
            world.resolver_for(vantage) for vantage in self._vantages
        ]

    def vantage_axis(self) -> Sequence:
        return self._vantages

    def target_axis(self) -> Sequence[Tuple[str, str]]:
        return self.targets

    def execute_cell(
        self, vantage, target: Tuple[str, str], cell: CellContext
    ) -> List[ProbeRecord]:
        _, fqdn = target
        resolver = self._resolvers[cell.vantage_index]
        response = resolver.dig(fqdn, fresh=True)
        withheld = self.recorder is not None and self.recorder.note_lookup(
            cell.target_index, vantage.name, fqdn, response
        )
        task = ProbeTask(
            kind=ProbeKind.DNS_LOOKUP,
            vantage=vantage.name,
            target=fqdn,
            round_index=cell.round_index,
        )
        return [
            ProbeRecord(
                task=task,
                ok=response.exists,
                payload=(response, withheld),
            )
        ]
