"""The deterministic campaign engine.

A campaign is a grid — (vantage × target × round) — of probe cells.
The engine schedules the grid in a fixed order (round-major, then the
campaign's major axis, then its minor axis), executes each cell
through the campaign's probe implementation, applies the configured
:class:`~repro.campaign.model.ProbePolicy` retry/loss semantics from
per-lane derived RNG streams, threads an
:class:`~repro.faults.OutageScenario` into every probe, and fans the
grid out over the single fork path in :mod:`repro.campaign.fanout` —
bit-identically to a sequential run for any worker count.

Two sharding shapes cover every campaign in the repository:

* ``shard_axis = "round"`` — the grid is chunked by round.  Campaigns
  whose probes consume *shared* world RNG streams (the WAN jitter and
  noise streams) declare their exact per-round draw counts via
  :meth:`GridCampaign.stream_advances`; each forked worker
  fast-forwards its inherited streams to its chunk's start position,
  and the parent advances its own copies past the whole campaign, so
  downstream consumers see exactly the sequential stream state.
* ``shard_axis = "grid"`` — single-round campaigns whose probes draw
  only hash-derived (order-independent) randomness are chunked along
  the major axis with no stream bookkeeping at all.

Campaigns with server-side state (dataset DNS lookups advance rotation
counters) set ``shardable = False`` and always run in-process; their
parallelism comes from the rank-sliced pipeline shards in
:mod:`repro.analysis.shards`, which reconcile that state explicitly —
over this module's same fork path.

Per-lane RNG streams: engine-injected randomness (probe loss, retry
outcomes) is drawn from ``derive_rng(seed, "campaign", name, "loss",
kind, vantage, target, round)`` — a stream per (lane, round), so the
draw is a property of the cell, independent of execution order and of
how the grid is sharded.

Any shard whose record count disagrees with the declared grid shape
raises ``RuntimeError`` (the same drift-is-an-error stance as the
dataset shard merge).
"""

from __future__ import annotations

import gc
import logging
import time
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.campaign.fanout import fork_map, partition
from repro.campaign.model import CampaignResult, ProbePolicy, ProbeRecord
from repro.faults.scenarios import OutageScenario
from repro.obs import NOOP, Observability
from repro.sim import advance_gauss, derive_rng, fork_pool_available

log = logging.getLogger("repro.campaign")


@dataclass(frozen=True, slots=True)
class CellContext:
    """Everything a cell execution may consult beyond its endpoints."""

    round_index: int
    time_s: float
    vantage_index: int
    target_index: int
    scenario: Optional[OutageScenario]
    policy: ProbePolicy
    seed: int


class GridCampaign:
    """Base class for one measurement campaign over a task grid.

    Subclasses define the axes and the probe executed per cell; the
    engine owns scheduling, policy, scenario threading and fan-out.
    """

    #: Campaign name; also the lane-stream namespace.
    name: str = "campaign"
    #: Number of rounds (the grid's time axis).
    rounds: int = 1
    #: Fixed number of records every cell must produce.
    probes_per_cell: int = 1
    #: True: iterate vantage-major (round → vantage → target);
    #: False: target-major (round → target → vantage).
    vantage_major: bool = True
    #: "round" chunks rounds (stream fast-forward applies);
    #: "grid" chunks the major axis (single-round campaigns only).
    shard_axis: str = "round"
    #: False for campaigns with server-side state (DNS rotation
    #: counters); the engine then never forks them.
    shardable: bool = True

    def vantage_axis(self) -> Sequence:
        raise NotImplementedError

    def target_axis(self) -> Sequence:
        raise NotImplementedError

    def time_of_round(self, round_index: int) -> float:
        return 0.0

    def stream_advances(
        self, scenario: Optional[OutageScenario]
    ) -> Sequence[Tuple[object, int]]:
        """(shared RNG stream, exact gauss draws per round) pairs.

        Only campaigns that consume shared world streams need this;
        the counts may depend on the scenario (blocked probes skip the
        wide-area models entirely), so the engine passes it in.
        """
        return ()

    def execute_cell(
        self, vantage, target, cell: CellContext
    ) -> Sequence[ProbeRecord]:
        raise NotImplementedError


class CampaignEngine:
    """Runs :class:`GridCampaign` grids deterministically."""

    def __init__(
        self,
        seed: int,
        scenario: Optional[OutageScenario] = None,
        policy: Optional[ProbePolicy] = None,
        workers: int = 0,
        obs: Observability = NOOP,
    ):
        self.seed = seed
        self.scenario = scenario
        self.policy = policy or ProbePolicy()
        self.workers = workers
        #: Observability plane (tracer spans per grid/shard, probe
        #: counters, optional probe-level event sink).  The shared
        #: :data:`~repro.obs.NOOP` default makes instrumentation free
        #: for un-instrumented callers.
        self.obs = obs

    # -- scheduling ----------------------------------------------------

    def run(
        self, campaign: GridCampaign, workers: Optional[int] = None
    ) -> CampaignResult:
        """Execute the full grid; records come back in grid order."""
        start = time.perf_counter()
        vantages = list(campaign.vantage_axis())
        targets = list(campaign.target_axis())
        effective = self.workers if workers is None else workers
        with self.obs.tracer.span(
            campaign.name,
            category="campaign",
            rounds=campaign.rounds,
            vantages=len(vantages),
            targets=len(targets),
            workers=effective,
        ):
            if not vantages or not targets or campaign.rounds <= 0:
                records: List[ProbeRecord] = []
            else:
                # The records accumulated here survive to the result, so
                # generational GC passes over them mid-campaign are pure
                # overhead (they roughly doubled grid time at bench
                # scale).  Probe objects are acyclic — refcounting
                # reclaims the transients — so collection is safely
                # deferred to the end of the run.
                was_enabled = gc.isenabled()
                if was_enabled:
                    gc.disable()
                try:
                    records = self._run_grid(
                        campaign, vantages, targets, effective
                    )
                finally:
                    if was_enabled:
                        gc.enable()
        elapsed = time.perf_counter() - start
        if self.obs.metrics.enabled:
            self._observe_records(campaign, records, elapsed)
        log.debug(
            "campaign %s: %d records in %.3fs (workers=%d)",
            campaign.name, len(records), elapsed, effective,
        )
        return CampaignResult(
            name=campaign.name,
            records=records,
            rounds=campaign.rounds,
            num_vantages=len(vantages),
            num_targets=len(targets),
            workers=effective,
            elapsed_s=elapsed,
            scenario_name=(
                self.scenario.name if self.scenario is not None else None
            ),
        )

    def _observe_records(
        self,
        campaign: GridCampaign,
        records: List[ProbeRecord],
        elapsed: float,
    ) -> None:
        """Fold one finished grid into the metrics registry.

        Runs parent-side over the merged record stream, so the counts
        are identical for sequential and sharded executions.  Probe
        counts per kind, retries, losses and blocked probes are pure
        functions of (seed, config); the records/sec gauge is
        wall-clock-derived and therefore volatile.
        """
        metrics = self.obs.metrics
        counts: dict = {}
        retries = 0
        losses = 0
        blocked = 0
        for record in records:
            kind = record.task.kind.value
            counts[kind] = counts.get(kind, 0) + 1
            if record.attempts > 1:
                retries += record.attempts - 1
            if record.lost:
                losses += 1
            if record.blocked:
                blocked += 1
        for kind in sorted(counts):
            metrics.counter("probes_total", kind=kind).inc(counts[kind])
        if retries:
            metrics.counter("probe_retries_total").inc(retries)
        if losses:
            metrics.counter("probe_losses_total").inc(losses)
        if blocked:
            metrics.counter("probes_blocked_total").inc(blocked)
        if elapsed > 0:
            metrics.gauge(
                "campaign_records_per_s",
                campaign=campaign.name,
                volatile=True,
            ).set(len(records) / elapsed)

    def _run_grid(
        self,
        campaign: GridCampaign,
        vantages: list,
        targets: list,
        workers: int,
    ) -> List[ProbeRecord]:
        rounds = campaign.rounds
        can_fork = (
            campaign.shardable and workers > 1 and fork_pool_available()
        )
        if can_fork and campaign.shard_axis == "round" and rounds > 1:
            return self._run_round_sharded(
                campaign, vantages, targets, workers
            )
        if can_fork and campaign.shard_axis == "grid":
            return self._run_grid_sharded(
                campaign, vantages, targets, workers
            )
        return self._run_cells(campaign, vantages, targets, 0, rounds)

    def _run_round_sharded(
        self,
        campaign: GridCampaign,
        vantages: list,
        targets: list,
        workers: int,
    ) -> List[ProbeRecord]:
        """Chunk the round axis over forked workers.

        Workers inherit the parent's shared streams positioned at round
        0 and fast-forward them past the rounds earlier chunks own; the
        per-round draw counts are exact (see
        :meth:`GridCampaign.stream_advances`), so every stream value —
        and therefore every record — is bit-identical to sequential
        execution.  After the join the parent fast-forwards its own
        copies past the whole campaign.
        """
        rounds = campaign.rounds
        bounds = partition(rounds, workers)
        advances = tuple(campaign.stream_advances(self.scenario))
        sink = self.obs.events

        def chunk(index: int):
            lo, hi = bounds[index]
            for stream, per_round in advances:
                advance_gauss(stream, lo * per_round)
            mark = sink.mark()
            produced = self._run_cells(campaign, vantages, targets, lo, hi)
            return produced, (
                sink.take_since(mark) if sink.enabled else None
            )

        with self.obs.tracer.span(
            f"{campaign.name}:fanout",
            category="shard",
            axis="round",
            shards=len(bounds),
        ):
            parts = fork_map(chunk, len(bounds), len(bounds))
        for stream, per_round in advances:
            advance_gauss(stream, rounds * per_round)
        per_round_records = (
            len(vantages) * len(targets) * campaign.probes_per_cell
        )
        records: List[ProbeRecord] = []
        for (lo, hi), (part, events) in zip(bounds, parts):
            if len(part) != (hi - lo) * per_round_records:
                raise RuntimeError(
                    f"campaign {campaign.name!r} shard drift: rounds "
                    f"[{lo}, {hi}) produced {len(part)} records, "
                    f"expected {(hi - lo) * per_round_records}"
                )
            records.extend(part)
            if events:
                sink.emit_many(events)
            self._observe_merge(campaign, len(part))
        return records

    def _run_grid_sharded(
        self,
        campaign: GridCampaign,
        vantages: list,
        targets: list,
        workers: int,
    ) -> List[ProbeRecord]:
        """Chunk the major axis; only valid for stream-free campaigns."""
        if campaign.rounds != 1:
            raise RuntimeError(
                f"campaign {campaign.name!r}: grid sharding requires a "
                f"single round, got {campaign.rounds}"
            )
        if tuple(campaign.stream_advances(self.scenario)):
            raise RuntimeError(
                f"campaign {campaign.name!r}: grid sharding cannot "
                "preserve shared-stream positions; shard by round"
            )
        major = vantages if campaign.vantage_major else targets
        minor_len = len(targets if campaign.vantage_major else vantages)
        bounds = partition(len(major), workers)
        sink = self.obs.events

        def chunk(index: int):
            lo, hi = bounds[index]
            mark = sink.mark()
            if campaign.vantage_major:
                produced = self._run_cells(
                    campaign, vantages[lo:hi], targets, 0, 1,
                    vantage_offset=lo,
                )
            else:
                produced = self._run_cells(
                    campaign, vantages, targets[lo:hi], 0, 1,
                    target_offset=lo,
                )
            return produced, (
                sink.take_since(mark) if sink.enabled else None
            )

        with self.obs.tracer.span(
            f"{campaign.name}:fanout",
            category="shard",
            axis="grid",
            shards=len(bounds),
        ):
            parts = fork_map(chunk, len(bounds), len(bounds))
        records: List[ProbeRecord] = []
        for (lo, hi), (part, events) in zip(bounds, parts):
            expected = (hi - lo) * minor_len * campaign.probes_per_cell
            if len(part) != expected:
                raise RuntimeError(
                    f"campaign {campaign.name!r} shard drift: slice "
                    f"[{lo}, {hi}) produced {len(part)} records, "
                    f"expected {expected}"
                )
            records.extend(part)
            if events:
                sink.emit_many(events)
            self._observe_merge(campaign, len(part))
        return records

    def _observe_merge(self, campaign: GridCampaign, size: int) -> None:
        """Shard-merge accounting (volatile: shard shapes depend on the
        worker count, which never changes outputs)."""
        metrics = self.obs.metrics
        if not metrics.enabled:
            return
        metrics.counter(
            "campaign_shards_merged_total", volatile=True
        ).inc()
        metrics.histogram(
            "shard_merge_records", volatile=True, campaign=campaign.name
        ).observe(size)

    # -- cell execution ------------------------------------------------

    def _run_cells(
        self,
        campaign: GridCampaign,
        vantages: list,
        targets: list,
        round_lo: int,
        round_hi: int,
        vantage_offset: int = 0,
        target_offset: int = 0,
    ) -> List[ProbeRecord]:
        records: List[ProbeRecord] = []
        scenario = self.scenario
        policy = self.policy
        seed = self.seed
        probes_per_cell = campaign.probes_per_cell
        apply_policy = not policy.is_default
        sink = self.obs.events
        emit = sink.emit if sink.enabled else None
        campaign_name = campaign.name
        for round_index in range(round_lo, round_hi):
            time_s = campaign.time_of_round(round_index)
            if campaign.vantage_major:
                cells = (
                    (vi, vantage, ti, target)
                    for vi, vantage in enumerate(vantages, vantage_offset)
                    for ti, target in enumerate(targets, target_offset)
                )
            else:
                cells = (
                    (vi, vantage, ti, target)
                    for ti, target in enumerate(targets, target_offset)
                    for vi, vantage in enumerate(vantages, vantage_offset)
                )
            for vi, vantage, ti, target in cells:
                cell = CellContext(
                    round_index=round_index,
                    time_s=time_s,
                    vantage_index=vi,
                    target_index=ti,
                    scenario=scenario,
                    policy=policy,
                    seed=seed,
                )
                produced = campaign.execute_cell(vantage, target, cell)
                if len(produced) != probes_per_cell:
                    raise RuntimeError(
                        f"campaign {campaign.name!r} cell drift: cell "
                        f"({vi}, {ti}, round {round_index}) produced "
                        f"{len(produced)} records, declared "
                        f"{probes_per_cell}"
                    )
                if apply_policy:
                    for record in produced:
                        self._apply_policy(campaign, record)
                if emit is not None:
                    # Deterministic fields only — no wall clock, no
                    # pids — so a sharded run's merged log is
                    # byte-identical to the sequential one.
                    for record in produced:
                        task = record.task
                        emit({
                            "campaign": campaign_name,
                            "kind": task.kind.value,
                            "vantage": task.vantage,
                            "target": task.target,
                            "round": task.round_index,
                            "ok": record.ok,
                            "attempts": record.attempts,
                            "lost": record.lost,
                            "blocked": record.blocked,
                        })
                records.extend(produced)
        return records

    def _apply_policy(
        self, campaign: GridCampaign, record: ProbeRecord
    ) -> None:
        """Deterministic per-lane loss and retry semantics.

        The lane stream is derived from the cell's identity, never from
        a shared cursor, so outcomes are identical under any sharding.
        """
        policy = self.policy
        if policy.loss_rate <= 0.0:
            return
        task = record.task
        lane = derive_rng(
            self.seed, "campaign", campaign.name, "loss",
            task.kind.value, task.vantage, task.target, task.round_index,
        )
        attempts = 0
        delivered = False
        while attempts < policy.attempts:
            attempts += 1
            if lane.random() >= policy.loss_rate:
                delivered = True
                break
        record.attempts = attempts
        if not delivered:
            record.lost = True
            record.ok = False
