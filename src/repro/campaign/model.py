"""The typed probe-task model of the measurement plane.

Every active measurement the reproduction performs — distributed DNS
lookups (§2.1), TCP pings and HTTP downloads from the PlanetLab
clients (§5), traceroutes for ISP counting (§5.3) — is expressed as a
grid of :class:`ProbeTask` cells executed by the
:class:`~repro.campaign.engine.CampaignEngine`, each producing one
:class:`ProbeRecord`.  The model is deliberately tool-shaped: a task
says *which probe a vantage fires at which target at which time*, and
a record says what came back, including timeouts, engine-injected
probe loss, and scenario-blocked probes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import List, Optional


class ProbeKind(str, Enum):
    """The four probe types of the paper's measurement activities."""

    DNS_LOOKUP = "dns-lookup"
    TCP_PING = "tcp-ping"
    HTTP_GET = "http-get"
    TRACEROUTE = "traceroute"


@dataclass(frozen=True, slots=True)
class ProbeTask:
    """One cell of a campaign grid: (vantage × target × round)."""

    kind: ProbeKind
    #: Name of the vantage point (client) firing the probe.
    vantage: str
    #: Stable identifier of the probed target (instance id, fqdn, ...).
    target: str
    round_index: int = 0
    #: Virtual campaign time the probe fires at.
    time_s: float = 0.0


@dataclass(slots=True)
class ProbeRecord:
    """What one executed :class:`ProbeTask` observed.

    ``payload`` carries the kind-specific observation — a
    :class:`~repro.probing.ping.PingResult`, a
    :class:`~repro.probing.httpget.DownloadResult`, a
    :class:`~repro.probing.traceroute.TracerouteResult`, or a
    ``(DnsResponse, withheld)`` pair for dataset lookups.  ``lost`` is
    set by the engine's loss policy (the observation was made but every
    retransmission of the report was dropped); ``blocked`` means an
    :class:`~repro.faults.OutageScenario` failed the probe before it
    touched the wide-area models (no RNG stream draws were consumed).
    """

    task: ProbeTask
    ok: bool
    payload: object = None
    attempts: int = 1
    lost: bool = False
    blocked: bool = False

    @property
    def observed(self) -> bool:
        """True when the probe's observation reached the campaign."""
        return self.ok and not self.lost


@dataclass(frozen=True)
class ProbePolicy:
    """Retry/timeout/loss semantics applied uniformly by the engine.

    ``loss_rate`` is the per-attempt probability that a probe's report
    is dropped in flight; up to ``attempts`` deterministic retries are
    made, each drawing from the task's own lane stream (see
    ``CampaignEngine``), so loss outcomes are independent of execution
    order and of the worker count.  A lost probe does **not** re-drive
    the underlying wide-area models: the path was already sampled, only
    the report is retransmitted — which is what keeps the world's
    shared RNG streams consuming exactly one observation per cell.

    ``timeout_s`` overrides the HTTP download cancel threshold (the
    paper's 10 s); ``None`` keeps each probe type's default.
    """

    attempts: int = 1
    loss_rate: float = 0.0
    timeout_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError(f"attempts must be >= 1: {self.attempts}")
        if not 0.0 <= self.loss_rate <= 1.0:
            raise ValueError(
                f"loss_rate must be a probability: {self.loss_rate}"
            )
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError(f"timeout_s must be positive: {self.timeout_s}")

    @property
    def is_default(self) -> bool:
        return self.attempts == 1 and self.loss_rate == 0.0


@dataclass
class CampaignResult:
    """The ordered record stream one engine run produced.

    Records appear in deterministic grid order — round-major, then the
    campaign's major axis, then its minor axis — regardless of the
    worker count, which is what makes :meth:`digest` comparable between
    sequential and sharded runs.
    """

    name: str
    records: List[ProbeRecord] = field(default_factory=list)
    rounds: int = 0
    num_vantages: int = 0
    num_targets: int = 0
    workers: int = 0
    elapsed_s: float = 0.0
    scenario_name: Optional[str] = None

    def __len__(self) -> int:
        return len(self.records)

    def by_kind(self, kind: ProbeKind) -> List[ProbeRecord]:
        return [r for r in self.records if r.task.kind is kind]

    def digest(self) -> str:
        """A stable content digest of the full record stream."""
        import hashlib

        parts = repr([
            (
                record.task.kind.value,
                record.task.vantage,
                record.task.target,
                record.task.round_index,
                record.ok,
                record.attempts,
                record.lost,
                record.blocked,
                repr(record.payload),
            )
            for record in self.records
        ])
        return hashlib.sha256(parts.encode()).hexdigest()[:16]
