"""Fast membership testing against collections of CIDR blocks.

The paper's core classification step — "does this resolved IP fall within
EC2 or Azure's published address ranges?" — runs once per DNS answer over
hundreds of thousands of subdomains.  :class:`PrefixSet` compiles a list
of CIDR blocks into a sorted, merged interval table queried with binary
search, and can also answer *which* labelled block matched (used to map an
address back to a cloud region).
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Iterable, Optional, Tuple

from repro.net.ipv4 import IPv4Address, IPv4Network, ip_to_int


class PrefixSet:
    """An immutable set of IPv4 CIDR blocks with O(log n) lookups.

    Blocks may carry an arbitrary label (e.g. a region name); ``lookup``
    returns the label of the most specific original block containing the
    address.  Construction merges adjacent/overlapping intervals for the
    plain membership table while keeping the original labelled blocks for
    attribution.
    """

    def __init__(self, blocks: Iterable[IPv4Network | str | Tuple] = ()):
        labelled = []
        for item in blocks:
            if isinstance(item, tuple):
                net, label = item
            else:
                net, label = item, None
            if isinstance(net, str):
                net = IPv4Network.parse(net)
            labelled.append((net, label))
        self._labelled = sorted(
            labelled, key=lambda pair: (pair[0].first, -pair[0].prefix_len)
        )
        self._starts: list[int] = []
        self._ends: list[int] = []
        for first, last in _merge_intervals(
            (net.first, net.last) for net, _ in self._labelled
        ):
            self._starts.append(first)
            self._ends.append(last)
        self._attr_starts = [net.first for net, _ in self._labelled]
        # Widest original block, bounding how far left of an address a
        # containing block's start can lie.  Lets attribution lookups
        # terminate their leftward scan early.
        self._max_span = max(
            (net.num_addresses for net, _ in self._labelled), default=1
        )

    def __len__(self) -> int:
        return len(self._labelled)

    def __bool__(self) -> bool:
        return bool(self._labelled)

    @property
    def blocks(self) -> list[IPv4Network]:
        return [net for net, _ in self._labelled]

    def num_addresses(self) -> int:
        """Total addresses covered (after interval merging)."""
        return sum(
            end - start + 1 for start, end in zip(self._starts, self._ends)
        )

    @staticmethod
    def _value_of(addr) -> int:
        if isinstance(addr, IPv4Address):
            return addr.value
        if isinstance(addr, int):
            return addr
        return ip_to_int(addr)

    def __contains__(self, addr) -> bool:
        value = self._value_of(addr)
        idx = bisect_right(self._starts, value) - 1
        return idx >= 0 and value <= self._ends[idx]

    def _best_match(self, value: int) -> Optional[Tuple[IPv4Network, object]]:
        """Most specific ``(block, label)`` containing ``value``, else None.

        Scans leftwards from the binary-search insertion point; the scan
        stops once a block starts before ``value - max_span + 1``, past
        which no registered block is wide enough to still contain the
        address.
        """
        idx = bisect_right(self._attr_starts, value) - 1
        lower_bound = value - self._max_span + 1
        best: Optional[Tuple[IPv4Network, object]] = None
        while idx >= 0 and self._attr_starts[idx] >= lower_bound:
            net, label = self._labelled[idx]
            if net.last >= value and (
                best is None or net.prefix_len > best[0].prefix_len
            ):
                best = (net, label)
            idx -= 1
        return best

    def lookup(self, addr) -> Optional[object]:
        """Label of the most specific block containing ``addr``, else None."""
        best = self._best_match(self._value_of(addr))
        return best[1] if best else None

    def matching_block(self, addr) -> Optional[IPv4Network]:
        """The most specific original block containing ``addr``, else None."""
        best = self._best_match(self._value_of(addr))
        return best[0] if best else None


def _merge_intervals(intervals) -> Iterable[Tuple[int, int]]:
    """Merge overlapping/adjacent ``(first, last)`` inclusive intervals."""
    merged: list[list[int]] = []
    for first, last in sorted(intervals):
        if merged and first <= merged[-1][1] + 1:
            merged[-1][1] = max(merged[-1][1], last)
        else:
            merged.append([first, last])
    for first, last in merged:
        yield first, last
