"""A whois-like registry mapping IP prefixes to autonomous systems.

The paper determines the downstream ISP of each traceroute by running
``whois`` on the first non-EC2 hop.  We reproduce that interface: ISP
routers in the simulated Internet get addresses from prefixes registered
here, and the ISP-diversity analysis asks this registry which AS owns a
hop address.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional

from repro.net.ipv4 import IPv4Network
from repro.net.prefixset import PrefixSet


@dataclass(frozen=True)
class AutonomousSystem:
    """An AS: a number, a human name, and its announced prefixes."""

    number: int
    name: str
    prefixes: tuple = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.number <= 0:
            raise ValueError(f"AS number must be positive: {self.number}")


class ASRegistry:
    """Registry of autonomous systems supporting whois-style lookups."""

    def __init__(self) -> None:
        self._by_number: Dict[int, AutonomousSystem] = {}
        self._prefix_set = PrefixSet()
        self._dirty_blocks: list = []

    def register(
        self, number: int, name: str, prefixes: Iterable[IPv4Network | str]
    ) -> AutonomousSystem:
        """Register an AS announcing ``prefixes``; returns the AS object."""
        if number in self._by_number:
            raise ValueError(f"AS{number} already registered")
        nets = tuple(
            IPv4Network.parse(p) if isinstance(p, str) else p
            for p in prefixes
        )
        asys = AutonomousSystem(number, name, nets)
        self._by_number[number] = asys
        for net in nets:
            self._dirty_blocks.append((net, number))
        self._rebuild()
        return asys

    def _rebuild(self) -> None:
        self._prefix_set = PrefixSet(self._dirty_blocks)

    def get(self, number: int) -> Optional[AutonomousSystem]:
        return self._by_number.get(number)

    def __len__(self) -> int:
        return len(self._by_number)

    def __iter__(self):
        return iter(self._by_number.values())

    def whois(self, addr) -> Optional[AutonomousSystem]:
        """The AS announcing the prefix containing ``addr``, else None."""
        number = self._prefix_set.lookup(addr)
        if number is None:
            return None
        return self._by_number[number]
