"""Low-level network substrate: IPv4 addresses, CIDR blocks, prefix sets,
geographic coordinates, and an AS-number registry.

This package is the foundation everything else builds on.  It deliberately
re-implements the small slice of IP arithmetic the paper's methodology
needs (range matching against published cloud IP lists, /16 proximity,
address allocation) rather than leaning on :mod:`ipaddress`, so the whole
reproduction is self-contained and the performance-sensitive pieces
(interval-based prefix sets consulted millions of times during dataset
construction) are tuned for our access patterns.
"""

from repro.net.ipv4 import (
    IPv4Address,
    IPv4Network,
    ip_to_int,
    int_to_ip,
    parse_network,
)
from repro.net.prefixset import PrefixSet
from repro.net.geo import GeoPoint, haversine_km, propagation_delay_ms
from repro.net.asn import ASRegistry, AutonomousSystem

__all__ = [
    "IPv4Address",
    "IPv4Network",
    "ip_to_int",
    "int_to_ip",
    "parse_network",
    "PrefixSet",
    "GeoPoint",
    "haversine_km",
    "propagation_delay_ms",
    "ASRegistry",
    "AutonomousSystem",
]
