"""Geographic primitives for the wide-area latency model.

Latency between a client and a cloud region is grounded in great-circle
distance: light in fibre covers roughly 200 km/ms one-way, and observed
Internet RTTs run ~2x the geodesic minimum because routes are not
geodesics.  Those constants live here so the whole model is auditable in
one place.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

EARTH_RADIUS_KM = 6371.0
#: Speed of light in fibre, in km per millisecond (approximately 0.67c).
FIBRE_KM_PER_MS = 200.0
#: Multiplier capturing route circuitousness relative to the geodesic.
PATH_INFLATION = 2.0


@dataclass(frozen=True)
class GeoPoint:
    """A point on the Earth's surface in decimal degrees."""

    lat: float
    lon: float

    def __post_init__(self) -> None:
        if not -90.0 <= self.lat <= 90.0:
            raise ValueError(f"latitude out of range: {self.lat}")
        if not -180.0 <= self.lon <= 180.0:
            raise ValueError(f"longitude out of range: {self.lon}")

    def distance_km(self, other: "GeoPoint") -> float:
        return haversine_km(self, other)


def haversine_km(a: GeoPoint, b: GeoPoint) -> float:
    """Great-circle distance between two points, in kilometres."""
    lat1, lon1 = math.radians(a.lat), math.radians(a.lon)
    lat2, lon2 = math.radians(b.lat), math.radians(b.lon)
    dlat = lat2 - lat1
    dlon = lon2 - lon1
    h = (
        math.sin(dlat / 2.0) ** 2
        + math.cos(lat1) * math.cos(lat2) * math.sin(dlon / 2.0) ** 2
    )
    return 2.0 * EARTH_RADIUS_KM * math.asin(min(1.0, math.sqrt(h)))


def propagation_delay_ms(a: GeoPoint, b: GeoPoint) -> float:
    """Round-trip propagation delay in ms between two points.

    Distance is inflated by :data:`PATH_INFLATION` to account for
    non-geodesic routing, then doubled for the round trip.
    """
    one_way_km = haversine_km(a, b) * PATH_INFLATION
    return 2.0 * one_way_km / FIBRE_KM_PER_MS
