"""IPv4 addresses and CIDR networks as lightweight value objects.

Addresses are represented internally as unsigned 32-bit integers, which
makes range membership and allocation arithmetic cheap.  The classes are
hashable and totally ordered so they can serve as dictionary keys and be
sorted into interval tables by :class:`repro.net.prefixset.PrefixSet`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator

_MAX_IPV4 = 2**32 - 1
_DOTTED_QUAD = re.compile(r"^(\d{1,3})\.(\d{1,3})\.(\d{1,3})\.(\d{1,3})$")


def ip_to_int(text: str) -> int:
    """Parse dotted-quad ``text`` into an unsigned 32-bit integer.

    Raises :class:`ValueError` for malformed input, including octets
    outside ``0..255``.
    """
    match = _DOTTED_QUAD.match(text)
    if match is None:
        raise ValueError(f"not a dotted-quad IPv4 address: {text!r}")
    value = 0
    for octet_text in match.groups():
        octet = int(octet_text)
        if octet > 255:
            raise ValueError(f"octet out of range in {text!r}")
        value = (value << 8) | octet
    return value


def int_to_ip(value: int) -> str:
    """Format unsigned 32-bit integer ``value`` as a dotted quad."""
    if not 0 <= value <= _MAX_IPV4:
        raise ValueError(f"not a 32-bit unsigned value: {value}")
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


@dataclass(frozen=True, order=True, slots=True)
class IPv4Address:
    """A single IPv4 address.

    >>> IPv4Address.parse("10.0.0.1").value
    167772161
    """

    value: int

    def __post_init__(self) -> None:
        if not 0 <= self.value <= _MAX_IPV4:
            raise ValueError(f"not a 32-bit unsigned value: {self.value}")

    @classmethod
    def parse(cls, text: str) -> "IPv4Address":
        return cls(ip_to_int(text))

    def __str__(self) -> str:
        return int_to_ip(self.value)

    def __repr__(self) -> str:
        return f"IPv4Address({str(self)!r})"

    def __add__(self, offset: int) -> "IPv4Address":
        return IPv4Address(self.value + offset)

    def slash16(self) -> "IPv4Network":
        """The /16 network containing this address (used by the
        address-proximity cartography method)."""
        return IPv4Network(self.value & 0xFFFF0000, 16)


@dataclass(frozen=True, order=True, slots=True)
class IPv4Network:
    """A CIDR block, normalized so host bits are zero.

    >>> str(IPv4Network.parse("10.1.2.3/16"))
    '10.1.0.0/16'
    """

    network: int
    prefix_len: int

    def __post_init__(self) -> None:
        if not 0 <= self.prefix_len <= 32:
            raise ValueError(f"bad prefix length: {self.prefix_len}")
        mask = self.mask
        if self.network & ~mask & _MAX_IPV4:
            object.__setattr__(self, "network", self.network & mask)

    @classmethod
    def parse(cls, text: str) -> "IPv4Network":
        return parse_network(text)

    @property
    def mask(self) -> int:
        if self.prefix_len == 0:
            return 0
        return (_MAX_IPV4 << (32 - self.prefix_len)) & _MAX_IPV4

    @property
    def first(self) -> int:
        return self.network

    @property
    def last(self) -> int:
        return self.network | (~self.mask & _MAX_IPV4)

    @property
    def num_addresses(self) -> int:
        return self.last - self.first + 1

    def __contains__(self, addr: object) -> bool:
        if isinstance(addr, IPv4Address):
            value = addr.value
        elif isinstance(addr, int):
            value = addr
        elif isinstance(addr, str):
            value = ip_to_int(addr)
        else:
            return False
        return self.first <= value <= self.last

    def contains_network(self, other: "IPv4Network") -> bool:
        return self.first <= other.first and other.last <= self.last

    def overlaps(self, other: "IPv4Network") -> bool:
        return self.first <= other.last and other.first <= self.last

    def subnets(self, new_prefix: int) -> Iterator["IPv4Network"]:
        """Iterate the subnets of this block at ``new_prefix`` length."""
        if new_prefix < self.prefix_len:
            raise ValueError(
                f"new prefix /{new_prefix} is shorter than /{self.prefix_len}"
            )
        step = 1 << (32 - new_prefix)
        for start in range(self.first, self.last + 1, step):
            yield IPv4Network(start, new_prefix)

    def address_at(self, offset: int) -> IPv4Address:
        """The host address ``offset`` addresses into the block."""
        if not 0 <= offset < self.num_addresses:
            raise ValueError(f"offset {offset} outside {self}")
        return IPv4Address(self.first + offset)

    def __str__(self) -> str:
        return f"{int_to_ip(self.network)}/{self.prefix_len}"

    def __repr__(self) -> str:
        return f"IPv4Network({str(self)!r})"


def parse_network(text: str) -> IPv4Network:
    """Parse ``a.b.c.d/len`` (or a bare address, treated as /32)."""
    if "/" in text:
        addr_text, _, len_text = text.partition("/")
        prefix_len = int(len_text)
    else:
        addr_text, prefix_len = text, 32
    return IPv4Network(ip_to_int(addr_text), prefix_len)
