"""The on-disk artifact store: pickled payloads behind digest headers.

Layout: ``<root>/<kind>/<key>.pkl``, where ``key`` is the full
:func:`repro.artifacts.keys.artifact_key` hex digest.  Each file starts
with a one-line header naming the SHA-256 of the pickled payload;
:meth:`ArtifactStore.load` refuses (and deletes) any file whose payload
no longer matches — a truncated write, bit rot, a hand-edited file —
and reports a miss so the caller rebuilds.
"""

from __future__ import annotations

import hashlib
import logging
import os
import pickle
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

from repro.obs import NOOP, Observability

_HEADER_PREFIX = b"repro-artifact sha256="

log = logging.getLogger("repro.artifacts")


@dataclass
class ArtifactStats:
    """Hit/miss accounting for one store instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    #: Files present but rejected (bad header, digest mismatch,
    #: unpicklable payload); each also counts as a miss.
    invalid: int = 0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "invalid": self.invalid,
        }


class ArtifactStore:
    """A content-addressed cache of pickled pipeline artifacts."""

    def __init__(self, root, obs: Observability = NOOP) -> None:
        self.root = Path(root)
        self.stats = ArtifactStats()
        #: Observability plane: ``artifact`` spans around get/put plus
        #: volatile hit/miss/store counters (cache state is
        #: environmental, so the counters never join the deterministic
        #: metrics snapshot).
        self.obs = obs

    def path_for(self, kind: str, key: str) -> Path:
        return self.root / kind / f"{key}.pkl"

    def _count(self, outcome: str) -> None:
        if self.obs.metrics.enabled:
            self.obs.metrics.counter(
                f"artifact_cache_{outcome}_total", volatile=True
            ).inc()

    def load(self, kind: str, key: str) -> Optional[object]:
        """The cached artifact, or None (counted as a miss).

        Verification failures delete the offending file so the
        subsequent :meth:`store` starts clean.
        """
        with self.obs.tracer.span(
            f"artifact:{kind}", category="artifact", op="load"
        ):
            return self._load(kind, key)

    def _load(self, kind: str, key: str) -> Optional[object]:
        path = self.path_for(kind, key)
        try:
            raw = path.read_bytes()
        except OSError:
            self.stats.misses += 1
            self._count("misses")
            log.debug("artifact miss: %s/%s", kind, key[:12])
            return None
        header, _, payload = raw.partition(b"\n")
        artifact: Optional[object] = None
        if header.startswith(_HEADER_PREFIX):
            expected = header[len(_HEADER_PREFIX):].decode("ascii", "replace")
            if hashlib.sha256(payload).hexdigest() == expected:
                try:
                    artifact = pickle.loads(payload)
                except Exception:
                    artifact = None
        if artifact is None:
            self.stats.invalid += 1
            self.stats.misses += 1
            self._count("invalid")
            self._count("misses")
            log.warning(
                "artifact rejected (corrupt): %s/%s", kind, key[:12]
            )
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.stats.hits += 1
        self._count("hits")
        log.info("artifact hit: %s/%s", kind, key[:12])
        return artifact

    def store(self, kind: str, key: str, artifact: object) -> Path:
        """Write one artifact atomically (write-then-rename)."""
        with self.obs.tracer.span(
            f"artifact:{kind}", category="artifact", op="store"
        ):
            path = self.path_for(kind, key)
            path.parent.mkdir(parents=True, exist_ok=True)
            payload = pickle.dumps(
                artifact, protocol=pickle.HIGHEST_PROTOCOL
            )
            header = (
                _HEADER_PREFIX
                + hashlib.sha256(payload).hexdigest().encode("ascii")
                + b"\n"
            )
            tmp = path.with_suffix(f".tmp.{os.getpid()}")
            tmp.write_bytes(header + payload)
            os.replace(tmp, path)
            self.stats.stores += 1
            self._count("stores")
            log.info("artifact stored: %s/%s", kind, key[:12])
        return path
