"""Cache keys: canonical config encodings and a code fingerprint.

A key must change exactly when the artifact would: it hashes (a) the
artifact kind, (b) a canonical encoding of every configuration object
that feeds the build, and (c) a fingerprint of the ``repro`` package
sources.  Keys deliberately exclude execution knobs that are proven not
to affect outputs — worker counts, most prominently, since both parallel
campaigns are bit-identical to their sequential counterparts.
"""

from __future__ import annotations

import hashlib
from dataclasses import fields, is_dataclass
from pathlib import Path
from typing import Dict, Optional

_CODE_FINGERPRINT: Optional[str] = None


def canonical(value: object) -> str:
    """A stable, recursive text encoding of a configuration value.

    Dataclasses encode as ``ClassName(field=..., ...)`` in field order,
    mappings with sorted keys, sequences element-wise; everything else
    falls back to ``repr`` (deterministic for the primitives configs
    hold).  Unlike raw ``repr`` this never depends on object identity.
    """
    if is_dataclass(value) and not isinstance(value, type):
        parts = ", ".join(
            f"{f.name}={canonical(getattr(value, f.name))}"
            for f in fields(value)
        )
        return f"{type(value).__name__}({parts})"
    if isinstance(value, dict):
        parts = ", ".join(
            f"{canonical(k)}: {canonical(v)}"
            for k, v in sorted(value.items(), key=lambda kv: repr(kv[0]))
        )
        return "{" + parts + "}"
    if isinstance(value, (list, tuple)):
        inner = ", ".join(canonical(v) for v in value)
        return ("[%s]" if isinstance(value, list) else "(%s)") % inner
    if isinstance(value, (set, frozenset)):
        inner = ", ".join(sorted(canonical(v) for v in value))
        return "{" + inner + "}"
    return repr(value)


def code_fingerprint() -> str:
    """SHA-256 over every ``repro`` source file (paths and contents).

    Computed once per process.  Any edit to the package — a changed
    constant, a new answer function — yields a different fingerprint, so
    cached artifacts from older code can never be served for newer code.
    """
    global _CODE_FINGERPRINT
    if _CODE_FINGERPRINT is None:
        import repro

        package_root = Path(repro.__file__).resolve().parent
        digest = hashlib.sha256()
        for path in sorted(
            package_root.rglob("*.py"),
            key=lambda p: p.relative_to(package_root).as_posix(),
        ):
            digest.update(path.relative_to(package_root).as_posix().encode())
            digest.update(b"\x00")
            digest.update(path.read_bytes())
            digest.update(b"\x00")
        _CODE_FINGERPRINT = digest.hexdigest()
    return _CODE_FINGERPRINT


def artifact_key(
    kind: str,
    components: Dict[str, object],
    code: Optional[str] = None,
) -> str:
    """The content address for one artifact build."""
    digest = hashlib.sha256()
    digest.update(kind.encode())
    digest.update(b"\x00")
    for name in sorted(components):
        digest.update(name.encode())
        digest.update(b"=")
        digest.update(canonical(components[name]).encode())
        digest.update(b"\x00")
    digest.update((code if code is not None else code_fingerprint()).encode())
    return digest.hexdigest()
