"""Content-addressed caching for expensive pipeline artifacts.

The reproduction's costly products — the §2.1 Alexa subdomains dataset,
the §3 campus capture trace, the §5 WAN measurement matrices — are pure
functions of (configuration, code version).  This package caches them on
disk under keys derived from exactly those inputs, so repeat runs of the
same configuration skip the builds entirely while any change to a config
knob or to the ``repro`` sources naturally misses and rebuilds.

Payloads are digest-verified on load; stale or corrupt files are deleted
and treated as misses, falling back to a rebuild.
"""

from repro.artifacts.keys import artifact_key, canonical, code_fingerprint
from repro.artifacts.store import ArtifactStats, ArtifactStore

__all__ = [
    "ArtifactStats",
    "ArtifactStore",
    "artifact_key",
    "canonical",
    "code_fingerprint",
]
