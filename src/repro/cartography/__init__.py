"""Cloud cartography: identifying EC2 availability zones from outside.

Implements both techniques of §4.3 (after Ristenpart et al. CCS'09):

* **latency method** — TCP-ping each target from probe instances in
  every zone; the zone whose probe sees the smallest minimum RTT (below
  a threshold, with no tie) is the estimate;
* **address-proximity method** — sample many instances under multiple
  accounts, undo EC2's per-account zone-label permutation by matching
  /16 co-occupancy, then assign a target the zone of any sampled
  instance sharing its /16 internal prefix;
* **combined** — proximity where available, latency as fallback, with
  an accuracy cross-check (Table 13).
"""

from repro.cartography.latency_method import (
    LatencyZoneIdentifier,
    ZoneEstimate,
)
from repro.cartography.proximity_method import (
    ProximityZoneIdentifier,
    ZoneSample,
)
from repro.cartography.combined import CombinedZoneIdentifier, AccuracyReport

__all__ = [
    "LatencyZoneIdentifier",
    "ZoneEstimate",
    "ProximityZoneIdentifier",
    "ZoneSample",
    "CombinedZoneIdentifier",
    "AccuracyReport",
]
