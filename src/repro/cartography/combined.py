"""Combining the two zone-identification methods (§4.3, Table 13).

The two methods express estimates in different label spaces (each
account's zone labels are independently permuted).  The combiner first
aligns the latency method's label space to the proximity method's by
choosing, per region, the bijection that maximizes agreement over
targets both methods identified; it then prefers proximity estimates
and falls back to latency ones, and reports the latency method's error
rate against proximity-as-ground-truth exactly as Table 13 does.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import permutations
from typing import Dict, Optional, Sequence, Tuple

from repro.cartography.latency_method import LatencyZoneIdentifier
from repro.cartography.proximity_method import ProximityZoneIdentifier
from repro.net.ipv4 import IPv4Address


@dataclass
class AccuracyReport:
    """Table 13 row: latency method scored against proximity."""

    region: str
    count: int = 0
    match: int = 0
    unknown: int = 0
    mismatch: int = 0

    @property
    def error_rate(self) -> Optional[float]:
        denominator = self.count - self.unknown
        if denominator <= 0:
            return None
        return self.mismatch / denominator


@dataclass
class CombinedResult:
    """Zone identifications for one region's targets."""

    region: str
    #: target IP → merged-space zone label (proximity label space).
    zones: Dict[IPv4Address, Optional[int]] = field(default_factory=dict)
    accuracy: Optional[AccuracyReport] = None

    @property
    def identified_fraction(self) -> float:
        if not self.zones:
            return 0.0
        known = sum(1 for z in self.zones.values() if z is not None)
        return known / len(self.zones)


class CombinedZoneIdentifier:
    """Proximity-first zone identification with latency fallback."""

    def __init__(
        self,
        latency: LatencyZoneIdentifier,
        proximity: ProximityZoneIdentifier,
    ):
        self.latency = latency
        self.proximity = proximity
        self._alignment: Dict[str, Tuple[int, ...]] = {}

    def _align_label_spaces(
        self,
        region_name: str,
        latency_labels: Dict[IPv4Address, Optional[int]],
        proximity_labels: Dict[IPv4Address, Optional[int]],
    ) -> Tuple[int, ...]:
        """Bijection latency-label → proximity-label maximizing
        agreement over doubly identified targets."""
        num_zones = self.latency.ec2.region(region_name).num_zones
        pairs = [
            (latency_labels[t], proximity_labels[t])
            for t in latency_labels
            if latency_labels[t] is not None
            and proximity_labels.get(t) is not None
        ]
        best_perm = tuple(range(num_zones))
        best_score = -1
        for perm in permutations(range(num_zones)):
            score = sum(1 for lat, prox in pairs if perm[lat] == prox)
            if score > best_score:
                best_score = score
                best_perm = perm
        self._alignment[region_name] = best_perm
        return best_perm

    def identify_region(
        self, region_name: str, targets: Sequence[IPv4Address]
    ) -> CombinedResult:
        """Identify every target; score the latency method on the way."""
        latency_raw = {
            est.target: est.zone_label
            for est in self.latency.identify_all(region_name, targets)
        }
        proximity_labels = {
            target: self.proximity.identify(region_name, target)
            for target in targets
        }
        perm = self._align_label_spaces(
            region_name, latency_raw, proximity_labels
        )
        aligned_latency = {
            target: (perm[label] if label is not None else None)
            for target, label in latency_raw.items()
        }
        accuracy = AccuracyReport(region=region_name, count=len(targets))
        for target in targets:
            lat = aligned_latency.get(target)
            prox = proximity_labels.get(target)
            if lat is None or prox is None:
                accuracy.unknown += 1
            elif lat == prox:
                accuracy.match += 1
            else:
                accuracy.mismatch += 1
        result = CombinedResult(region=region_name, accuracy=accuracy)
        for target in targets:
            prox = proximity_labels.get(target)
            result.zones[target] = (
                prox if prox is not None else aligned_latency.get(target)
            )
        return result

    def label_to_physical(self, region_name: str, label: int) -> int:
        """Ground-truth translation of a combined (proximity-space)
        label (scoring only)."""
        return self.proximity.label_to_physical(region_name, label)
