"""Address-proximity availability-zone identification (§4.3).

Two instances sharing a /16 of EC2's internal 10/8 space are very
likely in the same zone.  We therefore launch sampling instances under
several accounts, collect (account, zone label, internal IP) triples,
undo the per-account zone-label permutation by finding, for each
account pair, the label bijection that maximizes /16 co-occupancy
agreement (the paper's greedy pairwise merge), and build a /16 → merged
zone label map.  A target instance is assigned the label of its /16 if
sampled, else unknown.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from itertools import permutations
from typing import Dict, List, Optional, Tuple

from repro.cloud.base import InstanceRole, InstanceType
from repro.cloud.ec2 import EC2Cloud
from repro.net.ipv4 import IPv4Address, IPv4Network

#: Accounts used for sampling (the paper aggregated 5,096 instances
#: launched under several accounts over years).
SAMPLE_ACCOUNTS = (
    "carto-sample-a", "carto-sample-b", "carto-sample-c",
    "carto-sample-d", "carto-sample-e",
)


@dataclass(frozen=True)
class ZoneSample:
    """One sampled data point: where one of our instances landed."""

    account_id: str
    region: str
    zone_label: int  # the account's own label position
    internal_ip: IPv4Address

    @property
    def slash16(self) -> IPv4Network:
        return self.internal_ip.slash16()


class ProximityZoneIdentifier:
    """Builds the /16 → zone map from samples and answers queries."""

    def __init__(
        self,
        ec2: EC2Cloud,
        samples_per_account_zone: int = 40,
    ):
        self.ec2 = ec2
        self.samples_per_account_zone = samples_per_account_zone
        self.samples: List[ZoneSample] = []
        #: (region, /16) → merged zone label.
        self._block_label: Dict[Tuple[str, IPv4Network], int] = {}
        self._merged_regions: set = set()

    # -- sampling -----------------------------------------------------------

    def collect_samples(self, region_name: str) -> List[ZoneSample]:
        """Launch sampling instances in every zone of every account."""
        region = self.ec2.region(region_name)
        new: List[ZoneSample] = []
        for account_id in SAMPLE_ACCOUNTS:
            self.ec2.create_account(account_id)
            for label_pos in range(region.num_zones):
                for _ in range(self.samples_per_account_zone):
                    instance = self.ec2.launch_instance(
                        account_id=account_id,
                        region_name=region_name,
                        zone_label_pos=label_pos,
                        itype=InstanceType.T1_MICRO,
                        role=InstanceRole.PROBE,
                        public=False,
                    )
                    new.append(ZoneSample(
                        account_id=account_id,
                        region=region_name,
                        zone_label=label_pos,
                        internal_ip=instance.internal_ip,
                    ))
        self.samples.extend(new)
        return new

    # -- merging account label spaces ---------------------------------------------

    def _account_blocks(
        self, region_name: str, account_id: str
    ) -> Dict[IPv4Network, Counter]:
        """/16 → Counter(zone label) for one account's samples."""
        blocks: Dict[IPv4Network, Counter] = defaultdict(Counter)
        for sample in self.samples:
            if sample.region == region_name and sample.account_id == account_id:
                blocks[sample.slash16][sample.zone_label] += 1
        return blocks

    def _best_permutation(
        self,
        reference: Dict[IPv4Network, Counter],
        other: Dict[IPv4Network, Counter],
        num_zones: int,
    ) -> Tuple[int, ...]:
        """The label bijection other→reference maximizing agreement on
        shared /16 blocks."""
        shared = set(reference) & set(other)
        best_perm = tuple(range(num_zones))
        best_score = -1
        for perm in permutations(range(num_zones)):
            score = 0
            for block in shared:
                ref_label = reference[block].most_common(1)[0][0]
                other_label = other[block].most_common(1)[0][0]
                if perm[other_label] == ref_label:
                    score += 1
            if score > best_score:
                best_score = score
                best_perm = perm
        return best_perm

    def merge_region(self, region_name: str) -> None:
        """Merge all accounts' samples into one label space (the first
        account's) and build the /16 → label map."""
        if region_name in self._merged_regions:
            return
        if not any(s.region == region_name for s in self.samples):
            self.collect_samples(region_name)
        num_zones = self.ec2.region(region_name).num_zones
        reference = self._account_blocks(region_name, SAMPLE_ACCOUNTS[0])
        merged: Dict[IPv4Network, Counter] = defaultdict(Counter)
        for block, counts in reference.items():
            merged[block].update(counts)
        for account_id in SAMPLE_ACCOUNTS[1:]:
            other = self._account_blocks(region_name, account_id)
            perm = self._best_permutation(merged, other, num_zones)
            for block, counts in other.items():
                for label, count in counts.items():
                    merged[block][perm[label]] += count
        for block, counts in merged.items():
            self._block_label[(region_name, block)] = (
                counts.most_common(1)[0][0]
            )
        self._merged_regions.add(region_name)

    # -- queries -----------------------------------------------------------------

    def identify(
        self, region_name: str, target_public_ip: IPv4Address
    ) -> Optional[int]:
        """Merged-space zone label for a target, or None if its /16 was
        never sampled or the target's internal address is unknown."""
        self.merge_region(region_name)
        internal = self.ec2.internal_ip_of(target_public_ip)
        if internal is None:
            return None
        return self._block_label.get((region_name, internal.slash16()))

    def coverage(self, region_name: str) -> int:
        """Number of /16 blocks mapped in a region."""
        self.merge_region(region_name)
        return sum(
            1 for (region, _block) in self._block_label
            if region == region_name
        )

    def label_to_physical(self, region_name: str, label: int) -> int:
        """Translate a merged-space label (= first sample account's
        label space) to the physical zone index (scoring only)."""
        account = self.ec2.account(SAMPLE_ACCOUNTS[0])
        return account.zone_permutation[region_name][label]

    def sample_points(
        self, region_name: str
    ) -> List[Tuple[IPv4Address, int]]:
        """(internal IP, merged label) pairs — the Figure 7 scatter."""
        self.merge_region(region_name)
        points = []
        for sample in self.samples:
            if sample.region != region_name:
                continue
            label = self._block_label.get((region_name, sample.slash16))
            if label is not None:
                points.append((sample.internal_ip, label))
        return points
