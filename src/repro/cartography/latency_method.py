"""Latency-based availability-zone identification (§4.3).

For each region we launch probe instances in every zone our
measurement account can reach, TCP-ping every target IP from each
probe (after mapping public to internal addresses through the region's
DNS, as the paper did), take the minimum RTT per probe zone over
several repetitions, and assign the target to the zone with the
uniquely smallest probe time when it is below a threshold ``T``
(1.1 ms in the paper).  Non-responding targets and ties are marked
unknown.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.cloud.base import Instance, InstanceRole, InstanceType
from repro.cloud.ec2 import EC2Cloud
from repro.net.ipv4 import IPv4Address
from repro.probing.ping import Prober

#: The paper's threshold: same-zone minimum RTTs sit near 0.5 ms and
#: cross-zone ones above ~1.3 ms.
DEFAULT_THRESHOLD_MS = 1.1
#: Probes per (probe instance, target) pair, and repetition count.
#: The paper used 10 pings x 5 repeats; the defaults are smaller for
#: tractability and configurable back up to paper scale.
PINGS_PER_PROBE = 4
REPEATS = 2

#: The measurement account the probes run under.
PROBE_ACCOUNT = "cartography-probes"


@dataclass
class ZoneEstimate:
    """The latency method's verdict for one target IP."""

    target: IPv4Address
    region: str
    #: Estimated zone as a *probe-account label position*, or None.
    zone_label: Optional[int]
    responded: bool
    probe_times_ms: Dict[int, float] = field(default_factory=dict)


class LatencyZoneIdentifier:
    """Runs the latency method over a set of target IPs per region."""

    def __init__(
        self,
        ec2: EC2Cloud,
        prober: Prober,
        threshold_ms: float = DEFAULT_THRESHOLD_MS,
        pings_per_probe: int = PINGS_PER_PROBE,
        repeats: int = REPEATS,
    ):
        self.ec2 = ec2
        self.prober = prober
        self.threshold_ms = threshold_ms
        self.pings_per_probe = pings_per_probe
        self.repeats = repeats
        self._probes: Dict[str, List[Instance]] = {}

    def probes_for_region(self, region_name: str) -> List[Instance]:
        """One probe instance per zone label the account can reach.

        us-east-1 gets extra probes per zone, as in the paper (the
        region is denser and noisier).
        """
        probes = self._probes.get(region_name)
        if probes is not None:
            return probes
        region = self.ec2.region(region_name)
        per_zone = 2 if region_name == "us-east-1" else 1
        probes = []
        for label_pos in range(region.num_zones):
            for _ in range(per_zone):
                probes.append(self.ec2.launch_instance(
                    account_id=PROBE_ACCOUNT,
                    region_name=region_name,
                    zone_label_pos=label_pos,
                    itype=InstanceType.M1_MEDIUM,
                    role=InstanceRole.PROBE,
                ))
        self._probes[region_name] = probes
        return probes

    def _probe_zone_label(self, probe: Instance, region_name: str) -> int:
        """Which account-label position a probe was launched in."""
        account = self.ec2.account(PROBE_ACCOUNT)
        perm = account.zone_permutation[region_name]
        return perm.index(probe.zone_index)

    def identify(
        self, region_name: str, target: IPv4Address
    ) -> ZoneEstimate:
        """Estimate one target's zone."""
        probes = self.probes_for_region(region_name)
        # Map the public address to the internal one via in-region DNS;
        # fall back to probing the public IP (both reach the instance).
        internal = self.ec2.internal_ip_of(target)
        probe_target = internal if internal is not None else target
        best_by_label: Dict[int, float] = {}
        responded = False
        for probe in probes:
            label = self._probe_zone_label(probe, region_name)
            for _ in range(self.repeats):
                result = self.prober.tcp_ping(
                    probe,
                    probe_target,
                    count=self.pings_per_probe,
                    region_hint=region_name,
                )
                if result.min_ms is None:
                    continue
                responded = True
                current = best_by_label.get(label)
                if current is None or result.min_ms < current:
                    best_by_label[label] = result.min_ms
        estimate = ZoneEstimate(
            target=target,
            region=region_name,
            zone_label=None,
            responded=responded,
            probe_times_ms=best_by_label,
        )
        if not responded or not best_by_label:
            return estimate
        ordered = sorted(best_by_label.items(), key=lambda kv: kv[1])
        best_label, best_time = ordered[0]
        tie = len(ordered) > 1 and abs(ordered[1][1] - best_time) < 1e-9
        if not tie and best_time < self.threshold_ms:
            estimate.zone_label = best_label
        return estimate

    def identify_all(
        self, region_name: str, targets: Sequence[IPv4Address]
    ) -> List[ZoneEstimate]:
        return [self.identify(region_name, t) for t in targets]

    def label_to_physical(self, region_name: str, label: int) -> int:
        """Translate a probe-account label position to the physical
        zone index (ground truth scoring only — a real measurement
        could not do this)."""
        account = self.ec2.account(PROBE_ACCOUNT)
        return account.zone_permutation[region_name][label]
