"""Synthetic workload generation.

Builds the population the measurement pipeline studies: an Alexa-like
top-site ranking, per-domain deployment plans drawn from paper-calibrated
mixtures (front-end patterns, providers, regions, zones, DNS hosting),
their materialization into cloud resources and DNS zones, customer
geo-distributions, and the campus packet capture.

The crucial discipline: generators write *ground truth* into the
simulated world; every reported statistic is then re-derived by the
measurement pipeline in :mod:`repro.analysis` using only external
observations (DNS answers, published IP ranges, probes).  Calibration
constants live in :mod:`repro.workload.mixtures` with their paper
sources annotated.
"""

from repro.workload.alexa import AlexaRanking, AlexaSite
from repro.workload.mixtures import Mixtures
from repro.workload.names import DomainNameFactory, SubdomainLabelFactory
from repro.workload.notable import NOTABLE_TENANTS, NotableSpec
from repro.workload.plans import DomainPlan, SubdomainPlan, PlanGenerator
from repro.workload.deploy import Deployer
from repro.workload.customers import CustomerModel

__all__ = [
    "AlexaRanking",
    "AlexaSite",
    "Mixtures",
    "DomainNameFactory",
    "SubdomainLabelFactory",
    "NOTABLE_TENANTS",
    "NotableSpec",
    "DomainPlan",
    "SubdomainPlan",
    "PlanGenerator",
    "Deployer",
    "CustomerModel",
]
