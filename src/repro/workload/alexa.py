"""The Alexa-like top-sites ranking.

A ranked list of registrable domains with the paper's notable tenants
planted at their true ranks (when the configured list size reaches that
deep).  The ranking is what the paper starts from: its *content* is
synthetic, but its *shape* (a popularity-ranked list of domains, 4% of
which turn out to be cloud-using with rank skew) is what the pipeline
consumes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.workload.names import DomainNameFactory
from repro.workload.notable import NotableSpec, alexa_notables


@dataclass(frozen=True, slots=True)
class AlexaSite:
    """One row of the top-sites list."""

    rank: int
    domain: str


class AlexaRanking:
    """A ranked top-``size`` domain list with notables planted."""

    def __init__(
        self,
        size: int,
        rng: random.Random,
        notables: Optional[Iterable[NotableSpec]] = None,
    ):
        if size <= 0:
            raise ValueError("ranking size must be positive")
        self.size = size
        specs = list(notables) if notables is not None else alexa_notables()
        planted: Dict[int, str] = {}
        for spec in specs:
            if spec.rank is not None and spec.rank <= size:
                planted[spec.rank] = spec.domain
        factory = DomainNameFactory(rng)
        for spec in specs:
            factory.reserve(spec.domain)
        self.sites: List[AlexaSite] = []
        self._rank_of: Dict[str, int] = {}
        for rank in range(1, size + 1):
            domain = planted.get(rank) or factory.fresh()
            self.sites.append(AlexaSite(rank=rank, domain=domain))
            self._rank_of[domain] = rank

    def __len__(self) -> int:
        return self.size

    def __iter__(self):
        return iter(self.sites)

    def domains(self) -> List[str]:
        return [site.domain for site in self.sites]

    def rank_of(self, domain: str) -> Optional[int]:
        return self._rank_of.get(domain)

    def quartile_of(self, rank: int) -> int:
        """0-based rank quartile (the paper reports cloud-usage skew by
        250K slices of the 1M list)."""
        if not 1 <= rank <= self.size:
            raise ValueError(f"rank {rank} outside 1..{self.size}")
        return min(3, (rank - 1) * 4 // self.size)
