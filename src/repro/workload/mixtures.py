"""Calibration constants for the synthetic population.

Every constant is annotated with the paper statistic it targets.  The
generator *samples* deployments from these mixtures; the measurement
pipeline then re-derives the statistics from DNS/probing observations,
so agreement with the paper is an end-to-end check of the pipeline, not
a tautology.
"""

from __future__ import annotations

import bisect
import random
from dataclasses import dataclass, field
from typing import Dict, List, Tuple


def sample_discrete(rng: random.Random, table: Dict[str, float]) -> str:
    """Sample a key from a {value: weight} table."""
    keys = list(table)
    weights = list(table.values())
    return rng.choices(keys, weights=weights, k=1)[0]


class PowerLawSampler:
    """Samples integers in [1, n_max] with P(n) ∝ n^-alpha.

    Precomputes the CDF once; sampling is a bisect.
    """

    def __init__(self, alpha: float, n_max: int):
        if n_max < 1:
            raise ValueError("n_max must be >= 1")
        self.alpha = alpha
        self.n_max = n_max
        weights = [n ** (-alpha) for n in range(1, n_max + 1)]
        total = sum(weights)
        self._cdf: List[float] = []
        acc = 0.0
        for w in weights:
            acc += w / total
            self._cdf.append(acc)

    def sample(self, rng: random.Random) -> int:
        return bisect.bisect_left(self._cdf, rng.random()) + 1

    def mean(self) -> float:
        prev = 0.0
        total = 0.0
        for n, cum in enumerate(self._cdf, start=1):
            total += n * (cum - prev)
            prev = cum
        return total


@dataclass
class Mixtures:
    """All population-level mixture parameters, paper-calibrated."""

    # ------------------------------------------------------------------
    # §3.2 — who is cloud-using.
    # ------------------------------------------------------------------
    #: P(domain uses EC2/Azure) per rank quartile.  Overall ≈4%; 42.3%
    #: of cloud-using domains fall in the top 250K and 16.2% in the
    #: bottom 250K.
    cloud_rate_by_quartile: Tuple[float, ...] = (0.068, 0.037, 0.030, 0.026)

    #: Domain-level provider mix over cloud-using domains (Table 3):
    #: EC2-only 8.1%, EC2+Other 86.1%, Azure-only 0.5%, Azure+Other
    #: 4.6%, EC2+Azure 0.7%.
    domain_category: Dict[str, float] = field(
        default_factory=lambda: {
            "ec2_only": 0.081,
            "ec2_other": 0.861,
            "azure_only": 0.005,
            "azure_other": 0.046,
            "ec2_azure": 0.007,
        }
    )

    #: Fraction of cloud subdomains that are hybrid — resolve to both a
    #: cloud IP and an external IP (Table 3: 3.0% EC2+Other subdomains).
    hybrid_subdomain_fraction: float = 0.030

    #: Cloud-subdomain count per domain: discrete power laws.  The EC2
    #: tail is heavy (713K subdomains over 40K domains, mean ≈ 17.7);
    #: Azure domains are small (6.6K over 2.3K, mean ≈ 2.8).
    ec2_subdomain_alpha: float = 1.55
    ec2_subdomain_max: int = 600
    azure_subdomain_alpha: float = 2.2
    azure_subdomain_max: int = 60

    #: Additional non-cloud subdomains for ``*_other`` category domains.
    other_subdomain_alpha: float = 1.8
    other_subdomain_max: int = 200

    #: Subdomain count for non-cloud-using domains (they still exist in
    #: DNS and are enumerated).
    noncloud_subdomain_alpha: float = 2.4
    noncloud_subdomain_max: int = 40

    #: Fraction of zones that permit AXFR (~80K of 1M domains).
    axfr_allowed_fraction: float = 0.08

    # ------------------------------------------------------------------
    # §4.1 — front-end deployment patterns.
    # ------------------------------------------------------------------
    #: Front-end mixture over EC2-using subdomains (Table 7): VM 71.5%,
    #: ELB 3.8% (standalone), Beanstalk <0.1%, Heroku w/ ELB 0.3%,
    #: Heroku 8.2%, other CNAMEs 16.3%.
    ec2_frontend: Dict[str, float] = field(
        default_factory=lambda: {
            "vm": 0.715,
            "elb": 0.036,
            "beanstalk": 0.0004,
            "heroku_elb": 0.0026,
            "heroku": 0.082,
            "other_cname": 0.163,
        }
    )

    #: Feature use is *domain-correlated*: Heroku's 58K subdomains sit
    #: in just 1.3K domains (mass-hosted apps), ELB is used by 26% of
    #: EC2 domains, Beanstalk by 0.5%, Azure TM by 2.2%.  A domain
    #: first rolls which features it uses at all; per-subdomain front
    #: ends are then drawn from the domain-conditional mixture.
    heroku_domain_fraction: float = 0.16
    heroku_sub_prob: float = 0.85
    heroku_elb_sub_prob: float = 0.03
    elb_domain_fraction: float = 0.26
    elb_sub_prob: float = 0.15
    beanstalk_domain_fraction: float = 0.006
    beanstalk_sub_prob: float = 0.30
    tm_domain_fraction: float = 0.022
    tm_sub_prob: float = 0.55

    #: Front-end mixture over Azure-using subdomains (§4.1): direct IP
    #: 17%, cloudapp CNAME ≈53%, Traffic Manager 1.5%, other 28.5%.
    azure_frontend: Dict[str, float] = field(
        default_factory=lambda: {
            "cs_direct": 0.17,
            "cs_cname": 0.53,
            "tm": 0.015,
            "other_cname": 0.285,
        }
    )

    #: Front-end VM count per VM-front subdomain (Figure 4a: ~half use
    #: 2, 15% use 3+), conditional weights by index 1..6.
    frontend_vm_weights: Tuple[float, ...] = (0.17, 0.575, 0.18, 0.05, 0.02, 0.005)

    #: Probability a domain is a "single-zone shop" (all of its
    #: subdomains keep their front ends in one zone), by domain size.
    #: Small domains rarely bother with zone redundancy — this is what
    #: makes 70% of domains single-zone (Figure 8b) while only a third
    #: of *subdomains* are (Figure 8a: subdomain mass sits in large,
    #: zone-spread domains).
    single_zone_domain_small: float = 0.80    # <= 2 cloud subdomains
    single_zone_domain_medium: float = 0.42   # 3-10
    single_zone_domain_large: float = 0.08    # > 10

    #: Physical ELB instances per ELB-using subdomain (Figure 4b: 95%
    #: have ≤5; a handful have dozens).
    elb_physical_weights: Dict[int, float] = field(
        default_factory=lambda: {
            1: 0.30, 2: 0.36, 3: 0.17, 4: 0.09, 5: 0.045,
            6: 0.02, 8: 0.008, 10: 0.004, 20: 0.002, 58: 0.0008,
            90: 0.0004,
        }
    )

    #: Probability that a CloudFront distribution fronts a given
    #: EC2-using *domain* (Table 7: 5,988 of 38K domains ≈ 15%).
    cloudfront_domain_fraction: float = 0.155
    #: Probability of a non-CloudFront CDN on an EC2 domain (163.com,
    #: hao123.com style).
    other_cdn_domain_fraction: float = 0.05
    #: Probability an Azure-using domain uses the Azure CDN (54/2.3K).
    azure_cdn_domain_fraction: float = 0.023

    # ------------------------------------------------------------------
    # §4.1 — DNS hosting for cloud-using domains.
    # ------------------------------------------------------------------
    #: Where a domain's authoritative servers live.  Calibrated to the
    #: server-level split 2,062 CloudFront(route53) / 1,239 EC2 VM / 22
    #: Azure / 19,788 outside.
    dns_hosting: Dict[str, float] = field(
        default_factory=lambda: {
            "route53": 0.055,
            "ec2_vm": 0.020,
            "azure_vm": 0.002,
            "external_provider": 0.56,
            "self_hosted_external": 0.363,
        }
    )

    #: Name servers per domain (Figure 5: ~80% of subdomains use 3-10).
    ns_count_weights: Dict[int, float] = field(
        default_factory=lambda: {
            2: 0.18, 3: 0.16, 4: 0.28, 5: 0.12, 6: 0.10,
            7: 0.06, 8: 0.05, 10: 0.03, 12: 0.02,
        }
    )

    # ------------------------------------------------------------------
    # §4.2 — regions.
    # ------------------------------------------------------------------
    #: Home-region weights for EC2 deployments (Table 9 subdomain
    #: counts): us-east-1 dominates at ~74%.
    ec2_region_weights: Dict[str, float] = field(
        default_factory=lambda: {
            "us-east-1": 0.655,
            "eu-west-1": 0.205,
            "us-west-1": 0.060,
            "ap-southeast-1": 0.029,
            "ap-northeast-1": 0.024,
            "us-west-2": 0.022,
            "sa-east-1": 0.021,
            "ap-southeast-2": 0.001,
        }
    )

    #: Home-region weights for Azure (Table 9): a much flatter spread,
    #: with US South / US North most used.
    azure_region_weights: Dict[str, float] = field(
        default_factory=lambda: {
            "us-east": 0.10,
            "us-west": 0.07,
            "us-north": 0.25,
            "us-south": 0.17,
            "eu-west": 0.13,
            "eu-north": 0.15,
            "ap-southeast": 0.07,
            "ap-east": 0.06,
        }
    )

    #: P(subdomain uses 1/2/3 regions).  97% of EC2-using and 92% of
    #: Azure-using subdomains are single-region.
    ec2_subdomain_region_count: Dict[int, float] = field(
        default_factory=lambda: {1: 0.97, 2: 0.025, 3: 0.005}
    )
    azure_subdomain_region_count: Dict[int, float] = field(
        default_factory=lambda: {1: 0.92, 2: 0.065, 3: 0.015}
    )

    #: Probability a subdomain re-uses its domain's home region rather
    #: than drawing a fresh region (keeps domains regionally coherent,
    #: Table 10).
    home_region_affinity: float = 0.85

    # ------------------------------------------------------------------
    # §4.3 — availability zones (EC2 only).
    # ------------------------------------------------------------------
    #: P(subdomain's front ends span 1/2/3 zones) (Figure 8a: 33.2% /
    #: 44.5% / 22.3%), before capping by the region's zone count.
    zone_count_weights: Dict[int, float] = field(
        default_factory=lambda: {1: 0.332, 2: 0.445, 3: 0.223}
    )

    #: Within-region zone popularity (Table 14's skew).  Keys are
    #: region names; values are per-physical-zone weights.
    zone_weights: Dict[str, Tuple[float, ...]] = field(
        default_factory=lambda: {
            "us-east-1": (0.48, 0.18, 0.34),
            "us-west-1": (0.47, 0.53),
            "us-west-2": (0.44, 0.32, 0.24),
            "eu-west-1": (0.32, 0.27, 0.41),
            "ap-northeast-1": (0.60, 0.40),
            "ap-southeast-1": (0.37, 0.63),
            "ap-southeast-2": (0.50, 0.50),
            "sa-east-1": (0.62, 0.38),
        }
    )

    # ------------------------------------------------------------------
    # §4.2 — customer geography.
    # ------------------------------------------------------------------
    #: Marginal customer-country distribution over domains.
    customer_country_weights: Dict[str, float] = field(
        default_factory=lambda: {
            "US": 0.42, "IN": 0.06, "BR": 0.05, "JP": 0.06, "GB": 0.05,
            "DE": 0.05, "CN": 0.05, "FR": 0.04, "RU": 0.04, "CA": 0.03,
            "IT": 0.03, "ES": 0.02, "KR": 0.03, "AU": 0.02, "NL": 0.02,
            "MX": 0.02, "SG": 0.01,
        }
    )
    #: Probability a domain's customer country is drawn *near* its
    #: hosting region (same country) instead of from the marginal —
    #: tunes the 47%-mismatch / 32%-different-continent result.
    customer_home_bias: float = 0.38
    #: Fraction of domains whose customer country Alexa can identify
    #: (the paper resolved 75% of subdomains).
    customer_identified_fraction: float = 0.75

    # ------------------------------------------------------------------
    # Derived samplers (built lazily).
    # ------------------------------------------------------------------
    def __post_init__(self) -> None:
        self._samplers: Dict[str, PowerLawSampler] = {}

    def power_law(self, name: str, alpha: float, n_max: int) -> PowerLawSampler:
        sampler = self._samplers.get(name)
        if sampler is None or sampler.alpha != alpha or sampler.n_max != n_max:
            sampler = PowerLawSampler(alpha, n_max)
            self._samplers[name] = sampler
        return sampler

    def sample_ec2_subdomain_count(self, rng: random.Random) -> int:
        return self.power_law(
            "ec2_subs", self.ec2_subdomain_alpha, self.ec2_subdomain_max
        ).sample(rng)

    def sample_azure_subdomain_count(self, rng: random.Random) -> int:
        return self.power_law(
            "azure_subs", self.azure_subdomain_alpha, self.azure_subdomain_max
        ).sample(rng)

    def sample_other_subdomain_count(self, rng: random.Random) -> int:
        return self.power_law(
            "other_subs", self.other_subdomain_alpha, self.other_subdomain_max
        ).sample(rng)

    def sample_noncloud_subdomain_count(self, rng: random.Random) -> int:
        return self.power_law(
            "noncloud_subs",
            self.noncloud_subdomain_alpha,
            self.noncloud_subdomain_max,
        ).sample(rng)

    def sample_frontend_vms(self, rng: random.Random, minimum: int = 1) -> int:
        counts = list(range(1, len(self.frontend_vm_weights) + 1))
        while True:
            n = rng.choices(counts, weights=self.frontend_vm_weights, k=1)[0]
            if n >= minimum:
                return n

    def sample_elb_physical(self, rng: random.Random) -> int:
        return int(sample_discrete(
            rng, {str(k): v for k, v in self.elb_physical_weights.items()}
        ))

    def sample_zone_count(self, rng: random.Random, max_zones: int) -> int:
        while True:
            k = int(sample_discrete(
                rng, {str(k): v for k, v in self.zone_count_weights.items()}
            ))
            if k <= max_zones:
                return k

    def pick_zones(
        self, rng: random.Random, region_name: str, count: int
    ) -> List[int]:
        """``count`` distinct physical zones in a region, skew-weighted."""
        weights = list(self.zone_weights.get(region_name, (1.0,)))
        indices = list(range(len(weights)))
        count = min(count, len(indices))
        chosen: List[int] = []
        while len(chosen) < count:
            pick = rng.choices(indices, weights=weights, k=1)[0]
            if pick not in chosen:
                chosen.append(pick)
        return sorted(chosen)
