"""Deterministic generation of plausible domain and subdomain names."""

from __future__ import annotations

import random
from typing import List, Set

from repro.dns.enumeration import default_wordlist

_SYLLABLES = (
    "ba", "bel", "bo", "cam", "car", "cen", "cor", "da", "del", "dex",
    "do", "el", "fa", "fin", "flex", "fo", "gen", "gra", "hub", "in",
    "jo", "ka", "ki", "lan", "len", "li", "lo", "lux", "ma", "mer",
    "mi", "mo", "na", "neo", "net", "no", "nu", "om", "pa", "pex",
    "pi", "plex", "po", "qua", "ra", "ren", "ri", "ro", "sa", "sen",
    "si", "so", "sta", "sun", "ta", "tek", "ti", "to", "tra", "tri",
    "u", "va", "ven", "vi", "vo", "wa", "web", "wi", "xo", "ya",
    "yo", "za", "zen", "zi", "zo",
)

#: Substrings that must never appear in generated names (syllable
#: concatenation can land on unfortunate words).
_BLOCKED_SUBSTRINGS = ("nazi", "sex", "porn", "rape", "hitler", "slut")

_TLDS = (
    (".com", 0.52), (".net", 0.10), (".org", 0.08), (".ru", 0.06),
    (".de", 0.05), (".co.uk", 0.04), (".jp", 0.04), (".cn", 0.03),
    (".br", 0.03), (".fr", 0.02), (".in", 0.02), (".io", 0.01),
)


class DomainNameFactory:
    """Generates unique registrable domain names."""

    def __init__(self, rng: random.Random):
        self.rng = rng
        self._used: Set[str] = set()
        self._tld_names = [t for t, _ in _TLDS]
        self._tld_weights = [w for _, w in _TLDS]
        self._counter = 0

    def reserve(self, name: str) -> None:
        """Mark an externally supplied name (a notable tenant) as used."""
        self._used.add(name.lower())

    def fresh(self) -> str:
        """A new unique domain name."""
        for _ in range(40):
            n_syllables = self.rng.choice((2, 2, 3, 3, 3, 4))
            stem = "".join(
                self.rng.choice(_SYLLABLES) for _ in range(n_syllables)
            )
            tld = self.rng.choices(
                self._tld_names, weights=self._tld_weights, k=1
            )[0]
            name = stem + tld
            if any(bad in name for bad in _BLOCKED_SUBSTRINGS):
                continue
            if name not in self._used:
                self._used.add(name)
                return name
        # Collision storm (tiny name space exhausted): fall back to a
        # counter suffix, still unique and deterministic.
        self._counter += 1
        name = f"site{self._counter}{self.rng.choice(self._tld_names)}"
        self._used.add(name)
        return name


class SubdomainLabelFactory:
    """Generates subdomain labels with the paper's observed skew.

    ``www`` is by far the most common prefix (3.3% of cloud-using
    subdomains), followed by m, ftp, cdn, mail, staging, blog, support,
    test, dev.  Most labels come from the brute-force wordlist (so the
    enumerator can find them); a configurable fraction are random
    strings that wordlist brute forcing misses — making discovered
    counts a lower bound, as in the paper.
    """

    #: Head labels, in the paper's reported popularity order.
    HEAD_LABELS = (
        "www", "m", "ftp", "cdn", "mail", "staging",
        "blog", "support", "test", "dev",
    )

    def __init__(self, rng: random.Random, hidden_fraction: float = 0.10):
        self.rng = rng
        self.hidden_fraction = hidden_fraction
        self._wordlist = default_wordlist()

    def _random_label(self) -> str:
        length = self.rng.randint(5, 10)
        return "x" + "".join(
            self.rng.choice("abcdefghijklmnopqrstuvwxyz0123456789")
            for _ in range(length)
        )

    def labels_for_domain(self, count: int) -> List[str]:
        """``count`` distinct labels for one domain.

        The first label is ``www`` with high probability; subsequent
        labels are drawn from the head list, then the wordlist, with a
        ``hidden_fraction`` chance of an unguessable label.
        """
        if count <= 0:
            return []
        labels: List[str] = []
        used: Set[str] = set()

        def push(label: str) -> None:
            if label not in used:
                used.add(label)
                labels.append(label)

        if self.rng.random() < 0.85:
            push("www")
        while len(labels) < count:
            roll = self.rng.random()
            if roll < self.hidden_fraction:
                push(self._random_label())
            elif roll < self.hidden_fraction + 0.35:
                push(self.rng.choice(self.HEAD_LABELS))
            else:
                push(self.rng.choice(self._wordlist))
            if len(used) > count + 60:
                # The wordlist is finite; synthesize the remainder.
                while len(labels) < count:
                    push(self._random_label())
        return labels[:count]
