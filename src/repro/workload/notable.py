"""The paper's named tenants, encoded as deployment specs.

The aggregate statistics of the reproduction come from sampled
mixtures, but the paper's per-domain tables (4, 5, 8, 10, 15) name real
domains.  We plant those domains in the synthetic population with
deployments shaped to match their table rows, so the top-domain
analyses recover recognisable results.

Where the paper's numbers exceed what the model supports (e.g.
amazon.com spanning 4 zones while our us-east-1 models 3), the spec is
capped and the discrepancy is noted in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class NotableSub:
    """One planned cloud-using subdomain of a notable domain.

    ``frontend`` is one of vm | elb | beanstalk | heroku | heroku_elb |
    other_cname | cs_direct | cs_cname | tm | cloudfront | other_cdn |
    azure_cdn.  ``regions`` lists provider region names (front ends are
    replicated to each).  ``zones`` is the number of distinct zones the
    front ends span in each region.
    """

    frontend: str
    regions: Tuple[str, ...]
    zones: int = 1
    n_vms: int = 1
    elb_physical: int = 0
    label: Optional[str] = None


@dataclass(frozen=True)
class NotableSpec:
    """A notable domain: identity, deployment, and capture traffic."""

    domain: str
    rank: Optional[int]
    provider: str  # 'ec2' | 'azure'
    total_subdomains: int
    subs: Tuple[NotableSub, ...]
    customer_country: str = "US"
    #: Share of the capture's total HTTP(S) bytes (Table 5), 0 if the
    #: domain was not observed at the campus border.
    capture_share: float = 0.0
    #: Of this domain's capture bytes, the fraction carried over HTTPS.
    https_fraction: float = 0.25
    #: Marks domains on DeepField's top-15 list (Table 5's "(d)").
    deepfield: bool = False

    @property
    def cloud_subdomains(self) -> int:
        return len(self.subs)

    @property
    def in_alexa(self) -> bool:
        return self.rank is not None


def _e(
    frontend: str,
    regions: Sequence[str] = ("us-east-1",),
    zones: int = 1,
    n_vms: int = 1,
    elb_physical: int = 0,
    label: Optional[str] = None,
) -> NotableSub:
    return NotableSub(
        frontend=frontend,
        regions=tuple(regions),
        zones=zones,
        n_vms=n_vms,
        elb_physical=elb_physical,
        label=label,
    )


def _repeat(sub: NotableSub, count: int) -> List[NotableSub]:
    return [sub] * count


NOTABLE_TENANTS: Tuple[NotableSpec, ...] = (
    # ------------------------------------------------------------------
    # Table 4 / 8 / 10 / 15: top EC2-using domains by Alexa rank.
    # ------------------------------------------------------------------
    NotableSpec(
        domain="amazon.com", rank=9, provider="ec2", total_subdomains=68,
        subs=(
            _e("beanstalk", zones=3, elb_physical=14),
            _e("elb", zones=3, elb_physical=13),
        ),
    ),
    NotableSpec(
        domain="linkedin.com", rank=13, provider="ec2",
        total_subdomains=142,
        subs=(
            _e("heroku", zones=1),
            _e("elb", zones=2, elb_physical=2),
            _e("vm", regions=("us-west-1",), zones=2, n_vms=2),
        ),
    ),
    NotableSpec(
        domain="163.com", rank=29, provider="ec2", total_subdomains=181,
        customer_country="CN",
        subs=tuple(_repeat(_e("other_cdn", zones=1), 4)),
    ),
    NotableSpec(
        domain="pinterest.com", rank=35, provider="ec2",
        total_subdomains=24, capture_share=0.59, deepfield=True,
        subs=tuple(
            _repeat(_e("vm", zones=1, n_vms=1), 3)
            + [_e("vm", zones=3, n_vms=3)]
            + _repeat(_e("other_cname", zones=1), 7)
            + _repeat(_e("other_cname", zones=3, n_vms=3), 7)
        ),
    ),
    NotableSpec(
        domain="fc2.com", rank=36, provider="ec2", total_subdomains=89,
        customer_country="JP",
        subs=tuple(
            [_e("vm", zones=2, n_vms=2) for _ in range(9)]
            + [_e("vm", regions=("ap-northeast-1",), zones=2, n_vms=2)]
            + [
                _e("elb", zones=2, elb_physical=17),
                _e("elb", zones=2, elb_physical=17),
                _e("elb", zones=3, elb_physical=17),
                _e("elb", regions=("ap-northeast-1",), zones=2,
                   elb_physical=17),
            ]
        ),
    ),
    NotableSpec(
        domain="conduit.com", rank=38, provider="ec2",
        total_subdomains=40,
        subs=(_e("beanstalk", zones=2, elb_physical=3),),
    ),
    NotableSpec(
        domain="ask.com", rank=42, provider="ec2", total_subdomains=97,
        subs=(_e("vm", zones=1, n_vms=1),),
    ),
    NotableSpec(
        domain="apple.com", rank=47, provider="ec2", total_subdomains=73,
        subs=(_e("vm", zones=1, n_vms=1),),
    ),
    NotableSpec(
        domain="imdb.com", rank=48, provider="ec2", total_subdomains=26,
        subs=(_e("vm", zones=1, n_vms=1), _e("cloudfront")),
    ),
    NotableSpec(
        domain="hao123.com", rank=51, provider="ec2",
        total_subdomains=45, customer_country="CN",
        subs=(_e("other_cdn", zones=1),),
    ),
    NotableSpec(
        domain="go.com", rank=59, provider="ec2", total_subdomains=21,
        subs=tuple(_repeat(_e("vm", zones=1, n_vms=2), 4)),
    ),
    # ------------------------------------------------------------------
    # Table 10: top Azure-using domains.
    # ------------------------------------------------------------------
    NotableSpec(
        domain="live.com", rank=7, provider="azure", total_subdomains=25,
        capture_share=1.35, https_fraction=0.55,
        subs=tuple(
            _repeat(_e("cs_cname", regions=("us-north",)), 6)
            + _repeat(_e("cs_cname", regions=("us-south",)), 5)
            + _repeat(_e("cs_cname", regions=("eu-north",)), 3)
            + _repeat(_e("other_cname", regions=("us-north",)), 4)
        ),
    ),
    NotableSpec(
        domain="msn.com", rank=18, provider="azure", total_subdomains=96,
        capture_share=2.39, https_fraction=0.15,
        subs=tuple(
            _repeat(_e("cs_cname", regions=("us-north",)), 20)
            + _repeat(_e("cs_cname", regions=("us-south",)), 16)
            + _repeat(_e("cs_cname", regions=("eu-west",)), 8)
            + _repeat(_e("cs_cname", regions=("eu-north",)), 5)
            + _repeat(_e("cs_cname", regions=("ap-east",)), 3)
            + _repeat(_e("other_cname", regions=("us-north",)), 14)
            + _repeat(_e("other_cname", regions=("us-south",)), 12)
            + _repeat(
                _e("tm", regions=("us-north", "us-south")), 11
            )
        ),
    ),
    NotableSpec(
        domain="bing.com", rank=20, provider="azure", total_subdomains=9,
        subs=(_e("cs_cname", regions=("us-north",)),),
    ),
    NotableSpec(
        domain="microsoft.com", rank=31, provider="azure",
        total_subdomains=11, capture_share=2.26, https_fraction=0.30,
        subs=tuple(
            _repeat(_e("cs_cname", regions=("us-north",)), 2)
            + _repeat(_e("cs_cname", regions=("us-south",)), 2)
            + [_e("other_cname", regions=("eu-west",))]
            + [_e("cs_cname", regions=("ap-southeast",))]
            + [_e("other_cname", regions=("us-north",))]
            + _repeat(_e("tm", regions=("us-north", "eu-west")), 4)
        ),
    ),
    # ------------------------------------------------------------------
    # Table 5: high-traffic capture domains (EC2).
    # ------------------------------------------------------------------
    NotableSpec(
        domain="dropbox.com", rank=119, provider="ec2",
        total_subdomains=16, capture_share=68.21, https_fraction=0.97,
        deepfield=True,
        subs=tuple(
            _repeat(_e("vm", zones=3, n_vms=4), 4)
            + _repeat(_e("elb", zones=3, elb_physical=6), 2)
        ),
    ),
    NotableSpec(
        domain="netflix.com", rank=92, provider="ec2",
        total_subdomains=30, capture_share=1.70, https_fraction=0.35,
        deepfield=True,
        subs=tuple(
            _repeat(_e("elb", zones=3, elb_physical=30, label="m"), 1)
            + _repeat(_e("elb", zones=3, elb_physical=8), 3)
            + _repeat(_e("vm", zones=2, n_vms=2), 4)
        ),
    ),
    NotableSpec(
        domain="truste.com", rank=15458, provider="ec2",
        total_subdomains=8, capture_share=1.06, https_fraction=0.20,
        deepfield=True,
        subs=(_e("vm", zones=2, n_vms=2), _e("elb", zones=2,
                                             elb_physical=3)),
    ),
    NotableSpec(
        domain="channel3000.com", rank=None, provider="ec2",
        total_subdomains=6, capture_share=0.74, https_fraction=0.05,
        subs=(_e("vm", zones=1, n_vms=2),),
    ),
    NotableSpec(
        domain="adsafeprotected.com", rank=None, provider="ec2",
        total_subdomains=5, capture_share=0.53, https_fraction=0.10,
        deepfield=True,
        subs=(_e("elb", zones=2, elb_physical=4),),
    ),
    NotableSpec(
        domain="zynga.com", rank=799, provider="ec2",
        total_subdomains=40, capture_share=0.44, https_fraction=0.20,
        subs=tuple(_repeat(_e("vm", zones=2, n_vms=2), 6)),
    ),
    NotableSpec(
        domain="sharefile.com", rank=None, provider="ec2",
        total_subdomains=12, capture_share=0.42, https_fraction=0.90,
        subs=tuple(_repeat(_e("vm", zones=2, n_vms=2), 5)),
    ),
    NotableSpec(
        domain="zoolz.com", rank=None, provider="ec2",
        total_subdomains=4, capture_share=0.36, https_fraction=0.92,
        subs=(_e("vm", zones=1, n_vms=1),),
    ),
    NotableSpec(
        domain="echoenabled.com", rank=None, provider="ec2",
        total_subdomains=4, capture_share=0.31, https_fraction=0.15,
        deepfield=True,
        subs=(_e("elb", zones=2, elb_physical=3),),
    ),
    NotableSpec(
        domain="vimeo.com", rank=137, provider="ec2",
        total_subdomains=18, capture_share=0.26, https_fraction=0.20,
        subs=tuple(_repeat(_e("vm", zones=2, n_vms=2), 4)),
    ),
    NotableSpec(
        domain="foursquare.com", rank=615, provider="ec2",
        total_subdomains=14, capture_share=0.25, https_fraction=0.40,
        subs=tuple(_repeat(_e("elb", zones=2, elb_physical=3), 2)),
    ),
    NotableSpec(
        domain="sourcefire.com", rank=None, provider="ec2",
        total_subdomains=6, capture_share=0.22, https_fraction=0.55,
        subs=(_e("vm", zones=1, n_vms=1),),
    ),
    NotableSpec(
        domain="instagram.com", rank=75, provider="ec2",
        total_subdomains=10, capture_share=0.17, https_fraction=0.45,
        deepfield=True,
        subs=tuple(_repeat(_e("elb", zones=3, elb_physical=5), 2)),
    ),
    NotableSpec(
        domain="copperegg.com", rank=None, provider="ec2",
        total_subdomains=5, capture_share=0.17, https_fraction=0.35,
        subs=(_e("vm", zones=2, n_vms=2),),
    ),
    NotableSpec(
        domain="outbrain.com", rank=543, provider="ec2",
        total_subdomains=12, capture_share=0.10, https_fraction=0.15,
        subs=(
            _e("elb", zones=3, elb_physical=58, label="dl"),
            _e("vm", zones=2, n_vms=2),
        ),
    ),
    # ------------------------------------------------------------------
    # Table 5: high-traffic capture domains (Azure).
    # ------------------------------------------------------------------
    NotableSpec(
        domain="atdmt.com", rank=11128, provider="azure",
        total_subdomains=6, capture_share=3.10, https_fraction=0.10,
        subs=tuple(_repeat(_e("cs_cname", regions=("us-north",)), 2)),
    ),
    NotableSpec(
        domain="msecnd.net", rank=4747, provider="azure",
        total_subdomains=5, capture_share=1.55, https_fraction=0.10,
        subs=tuple(_repeat(_e("azure_cdn", regions=("us-north",)), 3)),
    ),
    NotableSpec(
        domain="s-msn.com", rank=None, provider="azure",
        total_subdomains=4, capture_share=1.43, https_fraction=0.05,
        subs=tuple(_repeat(_e("cs_cname", regions=("us-south",)), 2)),
    ),
    NotableSpec(
        domain="virtualearth.net", rank=None, provider="azure",
        total_subdomains=4, capture_share=1.06, https_fraction=0.15,
        subs=tuple(_repeat(_e("cs_cname", regions=("us-north",)), 2)),
    ),
    NotableSpec(
        domain="dreamspark.com", rank=None, provider="azure",
        total_subdomains=3, capture_share=0.81, https_fraction=0.50,
        subs=(_e("cs_cname", regions=("us-south",)),),
    ),
    NotableSpec(
        domain="hotmail.com", rank=2346, provider="azure",
        total_subdomains=7, capture_share=0.72, https_fraction=0.70,
        subs=tuple(_repeat(_e("cs_cname", regions=("us-north",)), 2)),
    ),
    NotableSpec(
        domain="mesh.com", rank=None, provider="azure",
        total_subdomains=3, capture_share=0.52, https_fraction=0.60,
        subs=(_e("cs_cname", regions=("us-west",)),),
    ),
    NotableSpec(
        domain="wonderwall.com", rank=None, provider="azure",
        total_subdomains=3, capture_share=0.36, https_fraction=0.05,
        subs=(_e("cs_cname", regions=("us-south",)),),
    ),
    NotableSpec(
        domain="msads.net", rank=None, provider="azure",
        total_subdomains=3, capture_share=0.29, https_fraction=0.05,
        subs=(_e("cs_cname", regions=("us-south",)),),
    ),
    NotableSpec(
        domain="aspnetcdn.com", rank=None, provider="azure",
        total_subdomains=3, capture_share=0.26, https_fraction=0.10,
        subs=(_e("azure_cdn", regions=("us-north",)),),
    ),
    NotableSpec(
        domain="windowsphone.com", rank=1597, provider="azure",
        total_subdomains=5, capture_share=0.23, https_fraction=0.40,
        subs=tuple(_repeat(_e("cs_cname", regions=("us-north",)), 2)),
    ),
    NotableSpec(
        domain="windowsphone-int.com", rank=None, provider="azure",
        total_subdomains=3, capture_share=0.23, https_fraction=0.40,
        subs=(_e("cs_cname", regions=("us-north",)),),
    ),
)


def notable_by_domain(domain: str) -> Optional[NotableSpec]:
    for spec in NOTABLE_TENANTS:
        if spec.domain == domain:
            return spec
    return None


def alexa_notables() -> List[NotableSpec]:
    """Notables that appear in the Alexa ranking."""
    return [spec for spec in NOTABLE_TENANTS if spec.in_alexa]


def capture_notables() -> List[NotableSpec]:
    """Notables with campus capture traffic (Table 5)."""
    return [spec for spec in NOTABLE_TENANTS if spec.capture_share > 0]
