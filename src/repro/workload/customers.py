"""Customer geography: the simulated Alexa Web Information Service.

The paper asks whether services are deployed near their customers by
taking each domain's dominant client country from Alexa's web
information service and comparing it with the country hosting the
subdomain's front ends.  Our stand-in exposes the same two lookups —
customer country per domain (None when unidentified, 25% of the time)
and country/continent for a cloud region's location.
"""

from __future__ import annotations

from typing import Dict, Optional


#: Country → continent (two-letter country codes, as the model uses).
COUNTRY_CONTINENT: Dict[str, str] = {
    "US": "NA", "CA": "NA", "MX": "NA",
    "BR": "SA", "CL": "SA", "AR": "SA",
    "GB": "EU", "DE": "EU", "FR": "EU", "RU": "EU", "IT": "EU",
    "ES": "EU", "NL": "EU", "IE": "EU", "PT": "EU", "PL": "EU",
    "SE": "EU", "FI": "EU", "NO": "EU", "DK": "EU", "CH": "EU",
    "AT": "EU", "CZ": "EU", "GR": "EU", "TR": "EU", "BE": "EU",
    "IN": "AS", "CN": "AS", "JP": "AS", "KR": "AS", "SG": "AS",
    "HK": "AS", "TW": "AS", "MY": "AS", "TH": "AS", "IL": "AS",
    "AU": "OC", "NZ": "OC",
}

#: Cloud region → the country its data center sits in.
REGION_HOST_COUNTRY: Dict[str, str] = {
    # EC2
    "us-east-1": "US", "us-west-1": "US", "us-west-2": "US",
    "eu-west-1": "IE", "ap-southeast-1": "SG", "ap-northeast-1": "JP",
    "sa-east-1": "BR", "ap-southeast-2": "AU",
    # Azure
    "us-east": "US", "us-west": "US", "us-north": "US", "us-south": "US",
    "eu-west": "IE", "eu-north": "NL", "ap-southeast": "SG",
    "ap-east": "HK",
}


class CustomerModel:
    """Per-domain customer-country lookups over a set of plans."""

    def __init__(self, plans):
        self._country: Dict[str, Optional[str]] = {
            plan.domain: plan.customer_country for plan in plans
        }

    @classmethod
    def from_mapping(cls, country_by_domain) -> "CustomerModel":
        """A model over an already-collected domain → country mapping.

        The chunked world build releases plan objects as it goes, so it
        accumulates this mapping instead of keeping every plan alive.
        """
        model = cls(())
        model._country = dict(country_by_domain)
        return model

    def customer_country(self, domain: str) -> Optional[str]:
        """The domain's dominant client country, or None if the web
        information service has no data for it."""
        return self._country.get(domain)

    @staticmethod
    def continent_of(country: Optional[str]) -> Optional[str]:
        if country is None:
            return None
        return COUNTRY_CONTINENT.get(country)

    @staticmethod
    def region_country(region_name: str) -> Optional[str]:
        return REGION_HOST_COUNTRY.get(region_name)

    @staticmethod
    def region_continent(region_name: str) -> Optional[str]:
        country = REGION_HOST_COUNTRY.get(region_name)
        if country is None:
            return None
        return COUNTRY_CONTINENT.get(country)
