"""Materializing deployment plans into cloud resources and DNS.

The deployer is the only component that touches ground truth *and* the
world's mutable state: it launches instances, creates ELBs / PaaS apps /
Cloud Services / CDN endpoints, builds each domain's DNS zone, and
wires up name-server hosting.  Everything the measurement pipeline later
sees flows from what is created here.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.cloud.azure import AzureCloud, ServiceKind
from repro.cloud.base import Instance, InstanceRole, InstanceType
from repro.cloud.cdn import AzureCDN, CloudFront
from repro.cloud.ec2 import EC2Cloud
from repro.cloud.elb import ELBFleet
from repro.cloud.paas import BeanstalkPlatform, HerokuPlatform
from repro.cloud.route53 import Route53
from repro.dns.infrastructure import DnsInfrastructure, NameServer
from repro.dns.records import RRType, ResourceRecord
from repro.dns.zone import Zone
from repro.net.ipv4 import IPv4Address, IPv4Network
from repro.sim import StreamRegistry
from repro.workload.plans import DomainPlan, SubdomainPlan

#: Pool the external (non-cloud) Internet hands out hosting IPs from.
#: Sized for the paper tier: 1M domains consume ~8M cursor steps, and
#: widening the prefix keeps every address the narrower pool ever
#: issued (same base, same offsets) so smaller tiers are unchanged.
_EXTERNAL_POOL = IPv4Network.parse("93.0.0.0/8")
#: Number of shared third-party hosting zones ('other_cname' targets).
_NUM_HOST_PARTNERS = 20
#: Number of non-CloudFront CDN operators.
_NUM_OTHER_CDNS = 6
#: Number of external managed-DNS providers.
_NUM_DNS_PROVIDERS = 40


class ExternalAddressPool:
    """Allocates non-cloud hosting addresses, with shared-hosting reuse."""

    def __init__(self, rng, reuse_probability: float = 0.3):
        self.rng = rng
        self.reuse_probability = reuse_probability
        self._cursor = 10
        self._issued: List[IPv4Address] = []

    def allocate(self) -> IPv4Address:
        if self._issued and self.rng.random() < self.reuse_probability:
            return self.rng.choice(self._issued)
        address = _EXTERNAL_POOL.address_at(self._cursor)
        self._cursor += self.rng.randint(1, 5)
        if self._cursor >= _EXTERNAL_POOL.num_addresses:
            raise RuntimeError("external address pool exhausted")
        self._issued.append(address)
        return address

    def allocate_fresh(self) -> IPv4Address:
        address = _EXTERNAL_POOL.address_at(self._cursor)
        self._cursor += self.rng.randint(1, 5)
        self._issued.append(address)
        return address


@dataclass
class DeployedDomain:
    """Bookkeeping for one materialized domain."""

    plan: DomainPlan
    zone: Zone
    nameservers: List[NameServer] = field(default_factory=list)
    instances: List[Instance] = field(default_factory=list)


class Deployer:
    """Builds the world's tenant state from plans."""

    def __init__(
        self,
        streams: StreamRegistry,
        dns: DnsInfrastructure,
        ec2: EC2Cloud,
        azure: AzureCloud,
        elb_fleet: ELBFleet,
        beanstalk: BeanstalkPlatform,
        heroku: HerokuPlatform,
        cloudfront: CloudFront,
        azure_cdn: AzureCDN,
        route53: Route53,
    ):
        self.streams = streams
        self.dns = dns
        self.ec2 = ec2
        self.azure = azure
        self.elb_fleet = elb_fleet
        self.beanstalk = beanstalk
        self.heroku = heroku
        self.cloudfront = cloudfront
        self.azure_cdn = azure_cdn
        self.route53 = route53
        self.rng = streams.stream("deploy")
        self.external_pool = ExternalAddressPool(
            streams.stream("deploy", "external")
        )
        self.deployed: Dict[str, DeployedDomain] = {}
        self._partner_counter = itertools.count(1)
        #: Front-end pools: subdomains of one domain share front-end
        #: VMs / Cloud Services heavily (the paper found 505K VM-front
        #: subdomains over just 28K instances).
        self._vm_pools: Dict[Tuple[str, str], List[Instance]] = {}
        self._vm_pool_caps: Dict[str, int] = {}
        self._cs_pools: Dict[Tuple[str, str], List] = {}
        self._host_partners = self._build_host_partners()
        self._other_cdns = self._build_other_cdns()
        self._dns_providers = self._build_dns_providers()

    # -- shared third parties -----------------------------------------------

    def _build_host_partners(self) -> List[Zone]:
        zones = []
        for i in range(1, _NUM_HOST_PARTNERS + 1):
            zone = Zone(f"hostpartner{i}.net")
            self.dns.add_zone(zone)
            zones.append(zone)
        return zones

    def _build_other_cdns(self) -> List[Tuple[Zone, List[IPv4Address]]]:
        cdns = []
        for i in range(1, _NUM_OTHER_CDNS + 1):
            zone = Zone(f"othercdn{i}.net")
            self.dns.add_zone(zone)
            edges = [
                self.external_pool.allocate_fresh() for _ in range(6)
            ]
            cdns.append((zone, edges))
        return cdns

    def _build_dns_providers(self) -> List[List[NameServer]]:
        providers = []
        for i in range(1, _NUM_DNS_PROVIDERS + 1):
            zone = Zone(f"dnsprovider{i}.com")
            self.dns.add_zone(zone)
            servers = []
            for j in range(1, self.rng.randint(2, 8) + 1):
                hostname = f"ns{j}.dnsprovider{i}.com"
                address = self.external_pool.allocate_fresh()
                zone.add(ResourceRecord(hostname, RRType.A, address, ttl=3600))
                server = NameServer(hostname=hostname, address=address)
                self.dns.register_nameserver(server)
                servers.append(server)
            providers.append(servers)
        return providers

    # -- top level --------------------------------------------------------------

    def deploy_all(self, plans: List[DomainPlan]) -> List[DeployedDomain]:
        return [self.deploy_domain(plan) for plan in plans]

    def release_domains(self, domains) -> None:
        """Drop per-domain bookkeeping once a chunked build is done
        measuring the domains.

        Launched instances and value-added services stay — the WAN
        campaigns probe them and the capture's background traffic
        targets them — only the deployer's own indexes (the deployed
        map, front-end VM / Cloud Service pools and their caps) are
        reclaimed.  One batch pass, so releasing a whole rank chunk
        costs one scan of the pool tables, not one per domain.
        """
        dropped = set(domains)
        if not dropped:
            return
        for domain in dropped:
            self.deployed.pop(domain, None)
            self._vm_pool_caps.pop(domain, None)
        self._vm_pools = {
            key: pool for key, pool in self._vm_pools.items()
            if key[0] not in dropped
        }
        self._cs_pools = {
            key: pool for key, pool in self._cs_pools.items()
            if key[0] not in dropped
        }

    def deploy_domain(self, plan: DomainPlan) -> DeployedDomain:
        # A notable domain can coincide with a service zone the clouds
        # already own (msecnd.net is the Azure CDN); extend that zone.
        zone = self.dns.get_zone(plan.domain)
        if zone is None:
            zone = Zone(plan.domain, axfr_allowed=plan.axfr_allowed)
            self.dns.add_zone(zone)
        deployed = DeployedDomain(plan=plan, zone=zone)
        self.deployed[plan.domain] = deployed
        zone.add(ResourceRecord(
            plan.domain, RRType.A, self.external_pool.allocate(), ttl=3600
        ))
        self._wire_nameservers(deployed)
        for sub in plan.subdomains:
            self._deploy_subdomain(deployed, sub)
        return deployed

    # -- name servers ---------------------------------------------------------------

    def _wire_nameservers(self, deployed: DeployedDomain) -> None:
        plan = deployed.plan
        servers: List[NameServer] = []
        if plan.dns_hosting == "route53":
            servers = self.route53.create_delegation(count=4)
        elif plan.dns_hosting == "ec2_vm":
            region = plan.home_region_ec2 or "us-east-1"
            for i in range(1, min(plan.ns_count, 4) + 1):
                instance = self.ec2.launch_instance(
                    account_id=f"acct-{plan.domain}",
                    region_name=region,
                    itype=InstanceType.M1_SMALL,
                    role=InstanceRole.NAME_SERVER,
                    rng=self.rng,
                )
                deployed.instances.append(instance)
                hostname = f"ns{i}.{plan.domain}"
                deployed.zone.add(ResourceRecord(
                    hostname, RRType.A, instance.public_ip, ttl=3600
                ))
                server = NameServer(
                    hostname=hostname, address=instance.public_ip
                )
                self.dns.register_nameserver(server)
                servers.append(server)
        elif plan.dns_hosting == "azure_vm":
            region = plan.home_region_azure or "us-north"
            for i in range(1, 3):
                service = self.azure.create_cloud_service(
                    region_name=region,
                    kind=ServiceKind.SINGLE_VM,
                    account_id=f"acct-{plan.domain}",
                )
                hostname = f"ns{i}.{plan.domain}"
                deployed.zone.add(ResourceRecord(
                    hostname, RRType.A, service.public_ip, ttl=3600
                ))
                server = NameServer(
                    hostname=hostname, address=service.public_ip
                )
                self.dns.register_nameserver(server)
                servers.append(server)
        elif plan.dns_hosting == "external_provider":
            provider = self.rng.choice(self._dns_providers)
            want = max(2, min(plan.ns_count, len(provider)))
            servers = provider[:want]
        else:  # self_hosted_external
            for i in range(1, min(plan.ns_count, 4) + 1):
                hostname = f"ns{i}.{plan.domain}"
                address = self.external_pool.allocate_fresh()
                deployed.zone.add(ResourceRecord(
                    hostname, RRType.A, address, ttl=3600
                ))
                server = NameServer(hostname=hostname, address=address)
                self.dns.register_nameserver(server)
                servers.append(server)
        # Pad with a secondary provider when the plan wants more
        # servers than the primary hosting offers (common in practice).
        if len(servers) < plan.ns_count:
            extra = self.rng.choice(self._dns_providers)
            for server in extra:
                if len(servers) >= plan.ns_count:
                    break
                if server not in servers:
                    servers.append(server)
        deployed.nameservers = servers
        for server in servers:
            deployed.zone.add(ResourceRecord(
                deployed.plan.domain, RRType.NS, server.hostname, ttl=3600
            ))

    # -- subdomains ---------------------------------------------------------------------

    def _deploy_subdomain(
        self, deployed: DeployedDomain, sub: SubdomainPlan
    ) -> None:
        if sub.kind == "external" and sub.frontend == "other_cdn":
            self._deploy_other_cdn(deployed, sub)
            return
        if sub.kind == "external":
            deployed.zone.add(ResourceRecord(
                sub.fqdn, RRType.A, self.external_pool.allocate(), ttl=3600
            ))
            return
        handler = {
            "vm": self._deploy_vm,
            "elb": self._deploy_elb,
            "beanstalk": self._deploy_beanstalk,
            "heroku": self._deploy_heroku,
            "heroku_elb": self._deploy_heroku_elb,
            "other_cname": self._deploy_other_cname,
            "cs_direct": self._deploy_cs_direct,
            "cs_cname": self._deploy_cs_cname,
            "tm": self._deploy_tm,
            "cloudfront": self._deploy_cloudfront,
            "azure_cdn": self._deploy_azure_cdn,
            "other_cdn": self._deploy_other_cdn,
        }.get(sub.frontend)
        if handler is None:
            raise ValueError(f"unknown frontend {sub.frontend!r}")
        handler(deployed, sub)

    def _launch_front_vms(
        self, deployed: DeployedDomain, sub: SubdomainPlan
    ) -> List[Instance]:
        """Front-end VMs across the subdomain's regions and zones.

        Subdomains of the same domain share a per-region VM pool: once
        the pool reaches the domain's cap, further subdomains reuse
        pooled instances (matching the planned zones where possible).
        Mass-hosting domains with hundreds of subdomains therefore run
        on a handful of front ends, as the paper observed.
        """
        domain = deployed.plan.domain
        account = f"acct-{domain}"
        cap = self._vm_pool_caps.get(domain)
        if cap is None:
            cap = self.rng.randint(3, 8)
            self._vm_pool_caps[domain] = cap
        instances: List[Instance] = []
        for region_name, zones in zip(sub.regions, sub.zone_indices):
            pool = self._vm_pools.setdefault((domain, region_name), [])
            chosen: List[Instance] = []
            for i in range(max(sub.n_vms, len(zones))):
                zone = zones[i % len(zones)]
                candidates = [
                    p for p in pool
                    if p.zone_index == zone and p not in chosen
                ]
                reuse = candidates and (
                    len(pool) >= cap or self.rng.random() < 0.5
                )
                if reuse:
                    chosen.append(self.rng.choice(candidates))
                    continue
                instance = self.ec2.launch_instance(
                    account_id=account,
                    region_name=region_name,
                    physical_zone=zone,
                    itype=InstanceType.M1_MEDIUM,
                    role=InstanceRole.WEB,
                    rng=self.rng,
                )
                if len(pool) < cap:
                    pool.append(instance)
                chosen.append(instance)
            instances.extend(chosen)
        deployed.instances.extend(instances)
        return instances

    def _deploy_vm(self, deployed: DeployedDomain, sub: SubdomainPlan) -> None:
        for instance in self._launch_front_vms(deployed, sub):
            deployed.zone.add(ResourceRecord(
                sub.fqdn, RRType.A, instance.public_ip, ttl=300
            ))
        if sub.kind == "hybrid":
            deployed.zone.add(ResourceRecord(
                sub.fqdn, RRType.A, self.external_pool.allocate(), ttl=300
            ))

    def _deploy_elb(self, deployed: DeployedDomain, sub: SubdomainPlan) -> None:
        region_name = sub.regions[0]
        elb = self.elb_fleet.create_load_balancer(
            region_name=region_name,
            zone_indices=list(sub.zone_indices[0]),
            total_proxies=sub.elb_physical,
        )
        deployed.zone.add(ResourceRecord(
            sub.fqdn, RRType.CNAME, elb.cname, ttl=300
        ))

    def _deploy_beanstalk(
        self, deployed: DeployedDomain, sub: SubdomainPlan
    ) -> None:
        cname = self.beanstalk.create_environment(
            region_name=sub.regions[0],
            zone_indices=list(sub.zone_indices[0]),
        )
        deployed.zone.add(ResourceRecord(
            sub.fqdn, RRType.CNAME, cname, ttl=300
        ))

    def _deploy_heroku(
        self, deployed: DeployedDomain, sub: SubdomainPlan
    ) -> None:
        cname = self.heroku.create_app(use_elb=False)
        deployed.zone.add(ResourceRecord(
            sub.fqdn, RRType.CNAME, cname, ttl=300
        ))

    def _deploy_heroku_elb(
        self, deployed: DeployedDomain, sub: SubdomainPlan
    ) -> None:
        cname = self.heroku.create_app(use_elb=True)
        deployed.zone.add(ResourceRecord(
            sub.fqdn, RRType.CNAME, cname, ttl=300
        ))

    def _deploy_other_cname(
        self, deployed: DeployedDomain, sub: SubdomainPlan
    ) -> None:
        """A CNAME the paper's filters don't recognize, still backed by
        cloud front ends (managed-hosting partners, white-label CDNs)."""
        partner = self.rng.choice(self._host_partners)
        target = f"w{next(self._partner_counter)}.{partner.origin}"
        if sub.provider == "ec2":
            for instance in self._launch_front_vms(deployed, sub):
                partner.add(ResourceRecord(
                    target, RRType.A, instance.public_ip, ttl=300
                ))
        else:
            service = self.azure.create_cloud_service(
                region_name=sub.regions[0],
                kind=ServiceKind.VM_GROUP,
                account_id=f"acct-{deployed.plan.domain}",
            )
            partner.add(ResourceRecord(
                target, RRType.A, service.public_ip, ttl=300
            ))
        deployed.zone.add(ResourceRecord(
            sub.fqdn, RRType.CNAME, target, ttl=300
        ))

    def _cloud_service_for(self, domain: str, region_name: str):
        """A Cloud Service for one subdomain, shared within the domain
        (Azure's 4.5K CS-front subdomains mapped to just 790 services)."""
        pool = self._cs_pools.setdefault((domain, region_name), [])
        if pool and (len(pool) >= 2 or self.rng.random() < 0.6):
            return self.rng.choice(pool)
        service = self.azure.create_cloud_service(
            region_name=region_name,
            kind=self._cs_kind(),
            account_id=f"acct-{domain}",
        )
        if len(pool) < 2:
            pool.append(service)
        return service

    def _deploy_cs_direct(
        self, deployed: DeployedDomain, sub: SubdomainPlan
    ) -> None:
        for region_name in sub.regions:
            service = self._cloud_service_for(
                deployed.plan.domain, region_name
            )
            deployed.zone.add(ResourceRecord(
                sub.fqdn, RRType.A, service.public_ip, ttl=300
            ))

    def _deploy_cs_cname(
        self, deployed: DeployedDomain, sub: SubdomainPlan
    ) -> None:
        service = self._cloud_service_for(
            deployed.plan.domain, sub.regions[0]
        )
        deployed.zone.add(ResourceRecord(
            sub.fqdn, RRType.CNAME, service.cname, ttl=300
        ))

    def _cs_kind(self) -> str:
        return self.rng.choices(
            (ServiceKind.SINGLE_VM, ServiceKind.VM_GROUP, ServiceKind.PAAS),
            weights=(0.45, 0.25, 0.30),
            k=1,
        )[0]

    def _deploy_tm(self, deployed: DeployedDomain, sub: SubdomainPlan) -> None:
        services = [
            self.azure.create_cloud_service(
                region_name=region_name,
                kind=self._cs_kind(),
                account_id=f"acct-{deployed.plan.domain}",
            )
            for region_name in sub.regions
        ]
        policy = self.rng.choices(
            (
                AzureCloud.POLICY_PERFORMANCE,
                AzureCloud.POLICY_FAILOVER,
                AzureCloud.POLICY_ROUND_ROBIN,
            ),
            weights=(0.5, 0.25, 0.25),
            k=1,
        )[0]
        profile = self.azure.create_traffic_manager(services, policy=policy)
        deployed.zone.add(ResourceRecord(
            sub.fqdn, RRType.CNAME, profile.cname, ttl=300
        ))

    def _deploy_cloudfront(
        self, deployed: DeployedDomain, sub: SubdomainPlan
    ) -> None:
        cname = self.cloudfront.create_distribution()
        deployed.zone.add(ResourceRecord(
            sub.fqdn, RRType.CNAME, cname, ttl=300
        ))

    def _deploy_azure_cdn(
        self, deployed: DeployedDomain, sub: SubdomainPlan
    ) -> None:
        cname = self.azure_cdn.create_endpoint()
        deployed.zone.add(ResourceRecord(
            sub.fqdn, RRType.CNAME, cname, ttl=300
        ))

    def _deploy_other_cdn(
        self, deployed: DeployedDomain, sub: SubdomainPlan
    ) -> None:
        zone, edges = self.rng.choice(self._other_cdns)
        target = f"c{next(self._partner_counter)}.{zone.origin}"
        if not zone.has_name(target):
            for edge in self.rng.sample(edges, k=2):
                zone.add(ResourceRecord(target, RRType.A, edge, ttl=300))
        deployed.zone.add(ResourceRecord(
            sub.fqdn, RRType.CNAME, target, ttl=300
        ))
