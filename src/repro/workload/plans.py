"""Deployment plans: the sampled ground truth for every domain.

A :class:`DomainPlan` says everything about how one domain is deployed
— provider mix, subdomain front ends, regions, physical zones, DNS
hosting.  Plans are pure data: :class:`repro.workload.deploy.Deployer`
turns them into cloud resources and DNS zones.  Keeping the two phases
separate makes plans unit-testable against the mixtures and gives
validation tests a ground-truth object to compare pipeline output with.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.sim import StreamRegistry
from repro.workload.alexa import AlexaRanking
from repro.workload.mixtures import Mixtures, sample_discrete
from repro.workload.names import SubdomainLabelFactory
from repro.workload.notable import NotableSpec, notable_by_domain

#: Front ends that cannot span multiple regions in DNS (a name can have
#: only one CNAME, and these are single-region constructs).
_SINGLE_REGION_FRONTENDS = {
    "elb", "beanstalk", "heroku", "heroku_elb",
    "cs_cname", "cloudfront", "azure_cdn", "other_cdn",
}


@dataclass(slots=True)
class SubdomainPlan:
    """Ground truth for one subdomain."""

    fqdn: str
    kind: str  # 'cloud' | 'external' | 'hybrid'
    provider: Optional[str] = None  # 'ec2' | 'azure' | None
    frontend: Optional[str] = None
    regions: Tuple[str, ...] = ()
    #: Physical zone indices used in each region (parallel to regions).
    zone_indices: Tuple[Tuple[int, ...], ...] = ()
    n_vms: int = 0
    elb_physical: int = 0

    @property
    def num_zones(self) -> int:
        return sum(len(z) for z in self.zone_indices)


@dataclass(slots=True)
class DomainPlan:
    """Ground truth for one domain."""

    domain: str
    rank: Optional[int]
    category: str  # 'none' | 'ec2_only' | 'ec2_other' | ...
    axfr_allowed: bool
    dns_hosting: str
    ns_count: int
    customer_country: Optional[str]
    home_region_ec2: Optional[str] = None
    home_region_azure: Optional[str] = None
    subdomains: List[SubdomainPlan] = field(default_factory=list)
    notable: Optional[NotableSpec] = None

    @property
    def is_cloud_using(self) -> bool:
        return self.category != "none"

    def cloud_subdomains(self) -> List[SubdomainPlan]:
        return [s for s in self.subdomains if s.kind in ("cloud", "hybrid")]


class PlanGenerator:
    """Samples a :class:`DomainPlan` for every Alexa domain."""

    def __init__(
        self,
        mixtures: Mixtures,
        streams: StreamRegistry,
        alexa: AlexaRanking,
    ):
        self.mixtures = mixtures
        self.alexa = alexa
        self.rng = streams.stream("plans")
        self.labels = SubdomainLabelFactory(streams.stream("plans", "labels"))

    # -- public API -------------------------------------------------------

    def generate(self) -> List[DomainPlan]:
        """Plans for the whole ranking, notables included."""
        return [self.plan_site(site) for site in self.alexa]

    def plan_site(self, site) -> DomainPlan:
        """The plan for one ranked site.

        Sampling consumes the shared ``plans`` stream, so callers must
        visit sites in rank order — the chunked world build does, one
        rank window at a time, and gets the exact plans a whole-list
        :meth:`generate` would have produced.
        """
        notable = notable_by_domain(site.domain)
        if notable is not None:
            return self._plan_notable(site.rank, notable)
        return self._plan_sampled(site.rank, site.domain)

    def plan_capture_only_domain(self, spec: NotableSpec) -> DomainPlan:
        """A plan for a notable seen only in the capture (no Alexa rank)."""
        return self._plan_notable(None, spec)

    def plan_offlist_cloud_domain(self, domain: str) -> DomainPlan:
        """A cloud-using domain outside the Alexa list (the capture saw
        ~6.7K such domains beyond the top 1M)."""
        return self._plan_cloud(None, domain)

    # -- shared helpers ------------------------------------------------------

    def _sample_dns(self) -> Tuple[str, int]:
        hosting = sample_discrete(self.rng, self.mixtures.dns_hosting)
        ns_count = int(sample_discrete(
            self.rng,
            {str(k): v for k, v in self.mixtures.ns_count_weights.items()},
        ))
        return hosting, ns_count

    def _customer_country(self, home_region: Optional[str]) -> Optional[str]:
        if self.rng.random() >= self.mixtures.customer_identified_fraction:
            return None
        if (
            home_region is not None
            and self.rng.random() < self.mixtures.customer_home_bias
        ):
            country = _REGION_COUNTRY.get(home_region)
            if country is not None:
                return country
        return sample_discrete(
            self.rng, self.mixtures.customer_country_weights
        )

    def _pick_regions(
        self, provider: str, home: str, count: int
    ) -> List[str]:
        weights = (
            self.mixtures.ec2_region_weights
            if provider == "ec2"
            else self.mixtures.azure_region_weights
        )
        regions = [home]
        names = list(weights)
        w = list(weights.values())
        while len(regions) < count:
            pick = self.rng.choices(names, weights=w, k=1)[0]
            if pick not in regions:
                regions.append(pick)
        return regions

    def _zone_plan(
        self,
        provider: str,
        regions: Sequence[str],
        frontend: str,
        max_spread: Optional[int] = None,
        force_spread: bool = False,
    ) -> Tuple[Tuple[int, ...], ...]:
        """Physical zones per region for a subdomain's front ends.

        With ``force_spread`` the front ends use exactly
        ``max_spread`` zones (capped by the region); otherwise the
        count is drawn from the Figure 8a mixture.
        """
        if provider != "ec2":
            return tuple((0,) for _ in regions)
        per_region = []
        for region_name in regions:
            max_zones = len(
                self.mixtures.zone_weights.get(region_name, (1.0,))
            )
            if max_spread is not None:
                max_zones = min(max_zones, max_spread)
            if force_spread:
                count = max_zones
            elif frontend in ("heroku", "heroku_elb", "beanstalk"):
                # Platform-managed placement: spread over 1-2 zones.
                count = self.rng.choice((1, 2))
                count = min(count, max_zones)
            else:
                count = self.mixtures.sample_zone_count(self.rng, max_zones)
            per_region.append(
                tuple(self.mixtures.pick_zones(self.rng, region_name, count))
            )
        return tuple(per_region)

    # -- sampled domains --------------------------------------------------------

    def _plan_sampled(self, rank: int, domain: str) -> DomainPlan:
        quartile = self.alexa.quartile_of(rank)
        cloud_rate = self.mixtures.cloud_rate_by_quartile[quartile]
        if self.rng.random() >= cloud_rate:
            return self._plan_noncloud(rank, domain)
        return self._plan_cloud(rank, domain)

    def _plan_cloud(self, rank: Optional[int], domain: str) -> DomainPlan:
        category = sample_discrete(self.rng, self.mixtures.domain_category)
        uses_ec2 = category in ("ec2_only", "ec2_other", "ec2_azure")
        uses_azure = category in ("azure_only", "azure_other", "ec2_azure")
        home_ec2 = (
            sample_discrete(self.rng, self.mixtures.ec2_region_weights)
            if uses_ec2 else None
        )
        home_azure = (
            sample_discrete(self.rng, self.mixtures.azure_region_weights)
            if uses_azure else None
        )
        hosting, ns_count = self._sample_dns()
        plan = DomainPlan(
            domain=domain,
            rank=rank,
            category=category,
            axfr_allowed=(
                self.rng.random() < self.mixtures.axfr_allowed_fraction
            ),
            dns_hosting=hosting,
            ns_count=ns_count,
            customer_country=self._customer_country(home_ec2 or home_azure),
            home_region_ec2=home_ec2,
            home_region_azure=home_azure,
        )
        n_cloud = 0
        if uses_ec2:
            n_cloud += self.mixtures.sample_ec2_subdomain_count(self.rng)
        if uses_azure:
            n_cloud += self.mixtures.sample_azure_subdomain_count(self.rng)
        n_external = 0
        if category.endswith("_other") or category == "ec2_azure":
            n_external = self.mixtures.sample_other_subdomain_count(self.rng)
        labels = self.labels.labels_for_domain(n_cloud + n_external)
        cloud_labels = labels[:n_cloud]
        external_labels = labels[n_cloud:]
        ec2_share = 0
        if uses_ec2 and uses_azure:
            # EC2+Azure domains are rare; split their subdomains.
            ec2_share = max(1, n_cloud - max(1, n_cloud // 3))
        elif uses_ec2:
            ec2_share = n_cloud
        single_zone_domain = self._is_single_zone_domain(n_cloud)
        features = self._domain_features(n_cloud)
        for i, label in enumerate(cloud_labels):
            provider = "ec2" if i < ec2_share else "azure"
            home = home_ec2 if provider == "ec2" else home_azure
            plan.subdomains.append(
                self._plan_cloud_subdomain(
                    domain, label, provider, home,
                    single_zone=single_zone_domain,
                    features=features,
                )
            )
        for label in external_labels:
            plan.subdomains.append(
                SubdomainPlan(fqdn=f"{label}.{domain}", kind="external")
            )
        self._maybe_add_cdn_subdomains(plan, uses_ec2, uses_azure)
        return plan

    def _plan_noncloud(self, rank: int, domain: str) -> DomainPlan:
        hosting, ns_count = self._sample_dns()
        # Non-cloud domains never use Route53/EC2-hosted DNS in our
        # model (the paper only surveys DNS of cloud-using subdomains,
        # so this simplification is invisible to the pipeline).
        if hosting in ("route53", "ec2_vm", "azure_vm"):
            hosting = "external_provider"
        plan = DomainPlan(
            domain=domain,
            rank=rank,
            category="none",
            axfr_allowed=(
                self.rng.random() < self.mixtures.axfr_allowed_fraction
            ),
            dns_hosting=hosting,
            ns_count=ns_count,
            customer_country=self._customer_country(None),
        )
        count = self.mixtures.sample_noncloud_subdomain_count(self.rng)
        for label in self.labels.labels_for_domain(count):
            plan.subdomains.append(
                SubdomainPlan(fqdn=f"{label}.{domain}", kind="external")
            )
        return plan

    def _is_single_zone_domain(self, n_cloud_subdomains: int) -> bool:
        if n_cloud_subdomains <= 2:
            p = self.mixtures.single_zone_domain_small
        elif n_cloud_subdomains <= 10:
            p = self.mixtures.single_zone_domain_medium
        else:
            p = self.mixtures.single_zone_domain_large
        return self.rng.random() < p

    def _domain_features(self, n_cloud_subdomains: int) -> Dict[str, bool]:
        """Which value-added features this domain uses at all.

        Heroku shops are small-to-medium app domains; the heavy-tailed
        mass hosters (hundreds of subdomains) run their own VMs, so
        capping Heroku to modest domains keeps its subdomain share near
        the paper's 8% instead of exploding whenever a mass hoster
        rolls Heroku.
        """
        m = self.mixtures
        heroku_eligible = n_cloud_subdomains <= 60
        return {
            "heroku": heroku_eligible
            and self.rng.random() < m.heroku_domain_fraction,
            "elb": self.rng.random() < m.elb_domain_fraction,
            "beanstalk": self.rng.random() < m.beanstalk_domain_fraction,
            "tm": self.rng.random() < m.tm_domain_fraction,
        }

    def _sample_frontend(
        self, provider: str, features: Optional[Dict[str, bool]]
    ) -> str:
        """Domain-conditional front-end choice for one subdomain."""
        m = self.mixtures
        if features is None:
            mixture = (
                m.ec2_frontend if provider == "ec2" else m.azure_frontend
            )
            return sample_discrete(self.rng, mixture)
        roll = self.rng.random()
        if provider == "ec2":
            if features["heroku"]:
                if roll < m.heroku_sub_prob:
                    return "heroku"
                if roll < m.heroku_sub_prob + m.heroku_elb_sub_prob:
                    return "heroku_elb"
            elif features["beanstalk"] and roll < m.beanstalk_sub_prob:
                return "beanstalk"
            elif features["elb"] and roll < m.elb_sub_prob:
                return "elb"
            # The rest split between plain VM fronts and unrecognized
            # CNAMEs in the marginal ratio.
            vm_weight = m.ec2_frontend["vm"]
            other_weight = m.ec2_frontend["other_cname"]
            if self.rng.random() < vm_weight / (vm_weight + other_weight):
                return "vm"
            return "other_cname"
        if features["tm"] and roll < m.tm_sub_prob:
            return "tm"
        remaining = {
            k: v for k, v in m.azure_frontend.items() if k != "tm"
        }
        return sample_discrete(self.rng, remaining)

    def _plan_cloud_subdomain(
        self,
        domain: str,
        label: str,
        provider: str,
        home_region: str,
        single_zone: bool = False,
        features: Optional[Dict[str, bool]] = None,
    ) -> SubdomainPlan:
        frontend = self._sample_frontend(provider, features)
        region_table = (
            self.mixtures.ec2_subdomain_region_count
            if provider == "ec2"
            else self.mixtures.azure_subdomain_region_count
        )
        region_count = int(sample_discrete(
            self.rng, {str(k): v for k, v in region_table.items()}
        ))
        if frontend in _SINGLE_REGION_FRONTENDS:
            region_count = 1
        if frontend == "tm":
            region_count = max(2, region_count)
        if self.rng.random() < self.mixtures.home_region_affinity:
            first = home_region
        else:
            weights = (
                self.mixtures.ec2_region_weights
                if provider == "ec2"
                else self.mixtures.azure_region_weights
            )
            first = sample_discrete(self.rng, weights)
        regions = self._pick_regions(provider, first, region_count)
        n_vms = 0
        elb_physical = 0
        if frontend in ("vm", "other_cname"):
            # Sample the VM count first (Figure 4a's distribution);
            # tenants running k front-end VMs overwhelmingly spread
            # them one per zone (that is what multiple front ends are
            # *for*), so the zone count follows the VM count with a
            # small collapse probability — jointly reproducing
            # Figures 4a and 8a.
            n_vms = self.mixtures.sample_frontend_vms(self.rng)
            spread = n_vms
            if single_zone:
                spread = 1
            elif n_vms > 1 and self.rng.random() < 0.12:
                spread = n_vms - 1
            zone_indices = self._zone_plan(
                provider, regions, frontend, max_spread=spread,
                force_spread=True,
            )
        elif single_zone and frontend in ("elb", "beanstalk"):
            zone_indices = self._zone_plan(
                provider, regions, frontend, max_spread=1,
                force_spread=True,
            )
        else:
            zone_indices = self._zone_plan(provider, regions, frontend)
        max_span = max(len(z) for z in zone_indices)
        if frontend in ("elb", "beanstalk", "heroku_elb"):
            elb_physical = max(
                max_span, self.mixtures.sample_elb_physical(self.rng)
            )
        kind = "cloud"
        if (
            provider == "ec2"
            and frontend == "vm"
            and self.rng.random() < self.mixtures.hybrid_subdomain_fraction
        ):
            kind = "hybrid"
        return SubdomainPlan(
            fqdn=f"{label}.{domain}",
            kind=kind,
            provider=provider,
            frontend=frontend,
            regions=tuple(regions),
            zone_indices=zone_indices,
            n_vms=n_vms,
            elb_physical=elb_physical,
        )

    def _maybe_add_cdn_subdomains(
        self, plan: DomainPlan, uses_ec2: bool, uses_azure: bool
    ) -> None:
        if uses_ec2:
            if self.rng.random() < self.mixtures.cloudfront_domain_fraction:
                plan.subdomains.append(SubdomainPlan(
                    fqdn=f"cdn.{plan.domain}", kind="cloud",
                    provider="ec2", frontend="cloudfront",
                    regions=(plan.home_region_ec2,),
                    zone_indices=((0,),),
                ))
            elif self.rng.random() < self.mixtures.other_cdn_domain_fraction:
                plan.subdomains.append(SubdomainPlan(
                    fqdn=f"static.{plan.domain}", kind="external",
                    provider=None, frontend="other_cdn",
                ))
        if uses_azure and (
            self.rng.random() < self.mixtures.azure_cdn_domain_fraction
        ):
            plan.subdomains.append(SubdomainPlan(
                fqdn=f"cdn.{plan.domain}", kind="cloud",
                provider="azure", frontend="azure_cdn",
                regions=(plan.home_region_azure,),
                zone_indices=((0,),),
            ))

    # -- notable domains ------------------------------------------------------

    def _plan_notable(
        self, rank: Optional[int], spec: NotableSpec
    ) -> DomainPlan:
        category = (
            "ec2_other" if spec.provider == "ec2" else "azure_other"
        )
        hosting, ns_count = self._sample_dns()
        home = spec.subs[0].regions[0] if spec.subs else None
        plan = DomainPlan(
            domain=spec.domain,
            rank=rank,
            category=category,
            axfr_allowed=False,
            dns_hosting=hosting,
            ns_count=ns_count,
            customer_country=spec.customer_country,
            home_region_ec2=home if spec.provider == "ec2" else None,
            home_region_azure=home if spec.provider == "azure" else None,
            notable=spec,
        )
        n_external = max(0, spec.total_subdomains - len(spec.subs))
        labels = self.labels.labels_for_domain(
            len(spec.subs) + n_external
        )
        label_iter = iter(labels)
        used = set()
        for sub in spec.subs:
            label = sub.label
            if label is None or label in used:
                label = next(label_iter)
                while label in used:
                    label = next(label_iter)
            used.add(label)
            zone_indices = tuple(
                tuple(self.mixtures.pick_zones(
                    self.rng, region_name, sub.zones
                )) if spec.provider == "ec2" else (0,)
                for region_name in sub.regions
            )
            plan.subdomains.append(SubdomainPlan(
                fqdn=f"{label}.{spec.domain}",
                kind="cloud",
                provider=spec.provider,
                frontend=sub.frontend,
                regions=sub.regions,
                zone_indices=zone_indices,
                n_vms=max(sub.n_vms, max(len(z) for z in zone_indices)),
                elb_physical=sub.elb_physical,
            ))
        for label in label_iter:
            if label in used:
                continue
            used.add(label)
            plan.subdomains.append(
                SubdomainPlan(fqdn=f"{label}.{spec.domain}", kind="external")
            )
            if len(plan.subdomains) >= spec.total_subdomains:
                break
        return plan


#: Country most associated with each cloud region (for the customer
#: home-bias draw).
_REGION_COUNTRY: Dict[str, str] = {
    "us-east-1": "US", "us-west-1": "US", "us-west-2": "US",
    "eu-west-1": "GB", "ap-southeast-1": "SG", "ap-northeast-1": "JP",
    "sa-east-1": "BR", "ap-southeast-2": "AU",
    "us-east": "US", "us-west": "US", "us-north": "US", "us-south": "US",
    "eu-west": "GB", "eu-north": "NL", "ap-southeast": "SG",
    "ap-east": "CN",
}
