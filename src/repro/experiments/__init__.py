"""The experiment harness — the study's *results plane*.

Each experiment is an :class:`ExperimentSpec`: a measure callable that
regenerates its table or figure from a shared
:class:`ExperimentContext` (which builds the world and the datasets
once), plus the paper's expected values with explicit tolerance
bands.  Running a spec yields an :class:`ExperimentResult` scored into
per-key ``match``/``drift``/``divergent`` verdicts; a whole run rolls
up into a :class:`FidelityReport` and, with ``--out-dir``, a
:class:`RunManifest` on disk.
"""

from repro.experiments.base import ExperimentResult
from repro.experiments.fidelity import (
    ExperimentFidelity,
    FidelityReport,
    KeyVerdict,
)
from repro.experiments.spec import (
    Expectation,
    ExperimentSpec,
    Measurement,
    Tolerance,
)
from repro.experiments.context import ExperimentContext
from repro.experiments.manifest import (
    MANIFEST_SCHEMA_VERSION,
    LoadedRun,
    RunManifest,
    UnsupportedSchemaError,
    iter_run_manifests,
    load_manifest,
)
from repro.experiments.registry import (
    all_experiments,
    get_experiment,
    experiment_ids,
)

__all__ = [
    "ExperimentSpec",
    "Expectation",
    "Tolerance",
    "Measurement",
    "ExperimentResult",
    "ExperimentContext",
    "ExperimentFidelity",
    "FidelityReport",
    "KeyVerdict",
    "RunManifest",
    "LoadedRun",
    "MANIFEST_SCHEMA_VERSION",
    "UnsupportedSchemaError",
    "iter_run_manifests",
    "load_manifest",
    "all_experiments",
    "get_experiment",
    "experiment_ids",
]
