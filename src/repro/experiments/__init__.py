"""The experiment harness: one runnable unit per paper table/figure.

Each experiment regenerates its table or figure from a shared
:class:`ExperimentContext` (which builds the world and the datasets
once) and reports the measured values next to the paper's, so that
EXPERIMENTS.md can record paper-vs-measured for every artifact.
"""

from repro.experiments.base import Experiment, ExperimentResult
from repro.experiments.context import ExperimentContext
from repro.experiments.registry import (
    all_experiments,
    get_experiment,
    experiment_ids,
)

__all__ = [
    "Experiment",
    "ExperimentResult",
    "ExperimentContext",
    "all_experiments",
    "get_experiment",
    "experiment_ids",
]
