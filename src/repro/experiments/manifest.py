"""Run manifests: every experiments run leaves a machine-readable trail.

A :class:`RunManifest` captures one ``repro-experiments`` invocation:
a deterministic run id (content-addressed on the configuration, the
code fingerprint, the scenario, and the experiment subset — *not* on
wall-clock time, so the same run always lands in the same directory),
the full configuration, per-experiment measured/paper/delta/verdict
records, the fidelity rollup, and the deterministic metrics snapshot.

``write`` lays out the run directory::

    <out-dir>/<run-id>/
        manifest.json     # everything deterministic, machine-readable
        timings.json      # wall-clock sidecar: stage/campaign/step
                          # times, per-experiment elapsed, volatile
                          # metrics (cache hits, rates, RNG draws)
        summaries.txt     # the rendered tables/figures + comparisons
        fidelity.txt      # the human-facing fidelity report
        fidelity.json     # the same rollup, for the CI gate
        release/          # the §2.1 TSV export (subdomains,
                          # nameservers, published ranges)

``manifest.json`` is byte-identical run over run for a given
(seed, config, code): every wall-clock or environment-dependent
quantity lives in the ``timings.json`` sidecar, never in the manifest.
"""

from __future__ import annotations

import json
import logging
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro.artifacts import artifact_key
from repro.artifacts.keys import code_fingerprint
from repro.experiments.base import ExperimentResult
from repro.experiments.fidelity import FidelityReport
from repro.experiments.spec import ExperimentSpec

logger = logging.getLogger(__name__)

#: Version of the ``manifest.json`` layout this code writes.  Bumped
#: whenever a consumer (the service repository layer, most prominently)
#: could misread an older or newer file; loaders accept every version
#: up to and including this one (files written before versioning count
#: as version 0) and refuse unknown newer ones with a clear error.
MANIFEST_SCHEMA_VERSION = 1


class UnsupportedSchemaError(ValueError):
    """A manifest/series file declares a schema newer than this code.

    The repository index must never guess at fields it does not know;
    upgrading ``repro`` is the fix, not ignoring the version.
    """


def check_schema_version(
    payload: dict, current: int, path: Union[str, Path, None] = None
) -> int:
    """Validate ``payload``'s ``schema_version`` against ``current``.

    Missing fields read as version 0 (pre-versioning files remain
    loadable); versions above ``current`` — or non-integer values —
    raise :class:`UnsupportedSchemaError`.
    """
    version = payload.get("schema_version", 0)
    where = f" in {path}" if path is not None else ""
    if not isinstance(version, int) or isinstance(version, bool):
        raise UnsupportedSchemaError(
            f"schema_version {version!r}{where} is not an integer"
        )
    if version > current:
        raise UnsupportedSchemaError(
            f"schema_version {version}{where} is newer than this "
            f"repro's supported version {current}; upgrade repro to "
            f"read it"
        )
    return version


def run_identifier(context, experiment_ids: Tuple[str, ...]) -> str:
    """The deterministic run id for one (config, code, subset) tuple."""
    # Worker counts never change outputs (the campaigns are
    # bit-identical), so sequential and parallel runs share an id.
    components = {
        "world": context.world_config,
        "wan": replace(context.wan_config, workers=0),
        "experiments": tuple(experiment_ids),
    }
    if context.scenario is not None:
        components["scenario"] = context.scenario.name
    # Epoch 0 must land in exactly the single-shot run directory (it
    # *is* that run), so the epoch joins the id only when evolved.
    epoch = getattr(context, "epoch", None)
    if epoch is not None and epoch.index > 0:
        components["epoch"] = (epoch.plan_name, epoch.index)
    return "run-" + artifact_key("run-manifest", components)[:12]


@dataclass
class RunManifest:
    """One run's complete, machine-readable record."""

    run_id: str
    config: Dict[str, object]
    code_fingerprint: str
    scenario: Optional[str]
    experiments: List[Dict[str, object]]
    fidelity: FidelityReport
    #: Deterministic metrics snapshot (probe/retry/loss counters);
    #: pure function of (seed, config, code), safe for manifest.json.
    metrics: Dict[str, object] = field(default_factory=dict)
    #: Wall-clock sidecar: stage/step/campaign timings, per-experiment
    #: elapsed, volatile metrics.  Written as ``timings.json``; never
    #: part of :meth:`as_dict` — the manifest must stay byte-identical
    #: run over run.
    timings: Dict[str, object] = field(default_factory=dict)

    @classmethod
    def from_run(
        cls,
        context,
        runs: List[Tuple[ExperimentSpec, ExperimentResult, float]],
    ) -> "RunManifest":
        """Assemble the manifest from executed (spec, result, elapsed)
        triples sharing one context."""
        scenario = (
            context.scenario.name if context.scenario is not None
            else None
        )
        experiments = []
        experiments_s: Dict[str, float] = {}
        for spec, result, elapsed in runs:
            fidelity = result.fidelity
            experiments_s[spec.experiment_id] = round(elapsed, 3)
            experiments.append({
                "id": spec.experiment_id,
                "title": spec.headline,
                "section": spec.paper_section,
                "status": (
                    fidelity.status if fidelity is not None else None
                ),
                "keys": (
                    [v.as_dict() for v in fidelity.verdicts]
                    if fidelity is not None else []
                ),
                **({"notes": result.notes} if result.notes else {}),
            })
        epoch = getattr(context, "epoch", None)
        epoch_index = (
            epoch.index if epoch is not None and epoch.index > 0 else None
        )
        report = FidelityReport(
            [result.fidelity for _, result, _ in runs
             if result.fidelity is not None],
            scenario=scenario,
            epoch=epoch_index,
        )
        world = context.world_config
        wan = context.wan_config
        obs = getattr(context, "obs", None)
        metrics: Dict[str, object] = {}
        timings: Dict[str, object] = dict(context.telemetry())
        timings["experiments_s"] = experiments_s
        if obs is not None and obs.metrics.enabled:
            metrics = obs.metrics.deterministic_snapshot()
            timings["volatile_metrics"] = obs.metrics.volatile_snapshot()
        return cls(
            run_id=run_identifier(
                context, tuple(spec.experiment_id for spec, _, _ in runs)
            ),
            config={
                "seed": world.seed,
                "domains": world.num_domains,
                "wan_rounds": wan.rounds,
                "workers": context.workers,
                "scenario": scenario,
                # Only evolved epochs mark the config: epoch 0's
                # manifest must stay byte-identical to a single-shot
                # run's.
                **({"epoch": {"plan": epoch.plan_name,
                              "index": epoch.index}}
                   if epoch_index is not None else {}),
                "experiments": [
                    spec.experiment_id for spec, _, _ in runs
                ],
            },
            code_fingerprint=code_fingerprint(),
            scenario=scenario,
            experiments=experiments,
            fidelity=report,
            metrics=metrics,
            timings=timings,
        )

    def as_dict(self) -> dict:
        """The deterministic manifest payload (no wall-clock keys)."""
        return {
            "schema_version": MANIFEST_SCHEMA_VERSION,
            "run_id": self.run_id,
            "config": self.config,
            "code_fingerprint": self.code_fingerprint,
            "scenario": self.scenario,
            "experiments": self.experiments,
            "fidelity": self.fidelity.as_dict(),
            "metrics": self.metrics,
        }

    def write(
        self,
        out_dir: Union[str, Path],
        results: Optional[List[ExperimentResult]] = None,
        context=None,
    ) -> Dict[str, Path]:
        """Write the run directory; returns {name: path}.

        ``results`` feeds ``summaries.txt``; ``context`` (when given)
        adds the §2.1 TSV release under ``release/``.
        """
        from repro.analysis.export import export_dataset

        run_dir = Path(out_dir) / self.run_id
        run_dir.mkdir(parents=True, exist_ok=True)
        paths: Dict[str, Path] = {"run_dir": run_dir}

        paths["manifest"] = run_dir / "manifest.json"
        with paths["manifest"].open("w") as fh:
            json.dump(self.as_dict(), fh, indent=2, sort_keys=False)
            fh.write("\n")

        paths["timings"] = run_dir / "timings.json"
        with paths["timings"].open("w") as fh:
            json.dump(self.timings, fh, indent=2, sort_keys=False)
            fh.write("\n")

        if results is not None:
            paths["summaries"] = run_dir / "summaries.txt"
            paths["summaries"].write_text(
                "\n\n".join(r.summary() for r in results) + "\n"
            )

        paths["fidelity_text"] = run_dir / "fidelity.txt"
        paths["fidelity_text"].write_text(
            self.fidelity.render_text() + "\n"
        )
        paths["fidelity_json"] = run_dir / "fidelity.json"
        with paths["fidelity_json"].open("w") as fh:
            json.dump(self.fidelity.as_dict(), fh, indent=2)
            fh.write("\n")

        if context is not None:
            release = export_dataset(
                context.world, context.dataset, run_dir / "release"
            )
            paths.update({
                f"release_{name}": path
                for name, path in release.items()
            })
        return paths


# -- reading runs back ------------------------------------------------
#
# The manifest plane used to be write-only: runs were emitted and only
# ``ls`` could find them again.  The service layer (repro.service)
# needs the reverse direction — load one run directory, or iterate a
# whole tree of them — with schema versioning so the index can evolve
# safely.


def load_manifest(path: Union[str, Path]) -> dict:
    """Load and validate one ``manifest.json`` (or run directory).

    Accepts the file itself or its ``run-<hash>`` directory.  Raises
    ``FileNotFoundError``/``json.JSONDecodeError`` for unreadable
    files, ``ValueError`` for JSON that is not a run manifest, and
    :class:`UnsupportedSchemaError` for versions newer than
    :data:`MANIFEST_SCHEMA_VERSION`.
    """
    path = Path(path)
    expected_id = None
    if path.is_dir():
        expected_id = path.name
        path = path / "manifest.json"
    with path.open() as fh:
        payload = json.load(fh)
    if not isinstance(payload, dict) or "run_id" not in payload:
        raise ValueError(f"{path} is not a run manifest (no run_id)")
    if expected_id is not None and payload["run_id"] != expected_id:
        # Run ids are content addresses; a directory holding somebody
        # else's manifest is corrupt, not merely misnamed.
        raise ValueError(
            f"{path} declares run_id {payload['run_id']!r} but lives "
            f"in {expected_id!r}"
        )
    check_schema_version(payload, MANIFEST_SCHEMA_VERSION, path)
    return payload


@dataclass(frozen=True)
class LoadedRun:
    """One run directory read back from disk.

    ``manifest`` is the validated ``manifest.json`` payload; the
    volatile sidecars (``timings.json``, ``fidelity.json``) load
    lazily-ish via :meth:`from_dir` and default to empty when absent —
    a partially written run directory is still loadable as long as the
    manifest itself is intact.
    """

    run_dir: Path
    manifest: Dict[str, object]
    timings: Dict[str, object] = field(default_factory=dict)
    fidelity: Dict[str, object] = field(default_factory=dict)

    @property
    def run_id(self) -> str:
        return str(self.manifest["run_id"])

    @classmethod
    def from_dir(cls, run_dir: Union[str, Path]) -> "LoadedRun":
        run_dir = Path(run_dir)
        manifest = load_manifest(run_dir)
        sidecars: Dict[str, Dict[str, object]] = {}
        for name in ("timings", "fidelity"):
            sidecar = run_dir / f"{name}.json"
            try:
                with sidecar.open() as fh:
                    loaded = json.load(fh)
                sidecars[name] = loaded if isinstance(loaded, dict) else {}
            except (OSError, json.JSONDecodeError):
                sidecars[name] = {}
        return cls(run_dir=run_dir, manifest=manifest, **sidecars)


def iter_run_manifests(
    root: Union[str, Path]
) -> Iterator[Tuple[Path, dict]]:
    """Yield ``(run_dir, manifest)`` for every ``run-*`` directory
    under ``root``, in sorted (deterministic) order.

    Corrupt or partial directories — unreadable JSON, missing
    ``manifest.json``, unknown schema versions — are skipped with a
    warning, never raised: one damaged run must not hide the rest of
    the tree.
    """
    root = Path(root)
    if not root.is_dir():
        return
    for run_dir in sorted(root.glob("run-*")):
        if not run_dir.is_dir():
            continue
        try:
            yield run_dir, load_manifest(run_dir)
        except (OSError, ValueError) as error:
            logger.warning("skipping run dir %s: %s", run_dir, error)
