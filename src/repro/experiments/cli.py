"""Command-line entry point: regenerate paper tables and figures.

Usage::

    repro-experiments                      # run everything
    repro-experiments table03 figure12     # run a subset
    repro-experiments --domains 5000 --seed 11 table09
    repro-experiments --out-dir runs/      # leave a run manifest

The ``repro`` console script is the same entry point plus the service
subcommands (``repro serve``, ``repro jobs …``, ``repro runs …``) —
those route into :mod:`repro.service.cli`; anything else runs the
experiments directly, exactly as ``repro-experiments`` always has.

Exit codes are part of the contract (and documented in ``--help``):
0 success, 2 usage error, ``EXIT_DIVERGENT`` (3) when
``--fidelity-gate`` trips, ``EXIT_SERVICE`` (4) for service-layer
failures.

With ``--out-dir`` the run writes a content-addressed run directory
(JSON manifest with per-experiment measured/paper/delta/verdict,
fidelity report in text and JSON, the rendered summaries, and the
§2.1 TSV release) — see :mod:`repro.experiments.manifest`.
``--fidelity-gate`` turns any ``divergent`` verdict into a non-zero
exit, the regression gate CI runs at seed scale.

``--epochs N`` switches to longitudinal mode (see :mod:`repro.epochs`):
the experiments re-run at N epochs of an evolving world timeline under
a named ``--epoch-plan``, writing one ``run-<hash>`` directory per
epoch plus a ``series-<hash>/series.json`` with cross-epoch trend
tables.  Epoch 0 is byte-identical to a single-shot run and is the
only epoch the fidelity gate judges.

Observability (see :mod:`repro.obs` and docs/OBSERVABILITY.md):
``--trace-out`` exports the span tree as Chrome ``trace_event`` JSON,
``--metrics-out`` the Prometheus text exposition, ``--events-out`` the
probe-level NDJSON event log; ``-v``/``-q`` steer the package logger.
None of them change a single output byte — instrumented runs produce
the same digests, manifests, and artifacts as bare ones.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import List, Optional

from repro.experiments.context import ExperimentContext
from repro.experiments.fidelity import FidelityReport
from repro.experiments.registry import (
    all_experiments,
    experiment_ids,
    get_experiment,
)
from repro.obs import Observability, configure_logging
from repro.service.cli import (
    EXIT_CODES_HELP,
    EXIT_SERVICE,
    SERVICE_COMMANDS,
)
from repro.world import WorldConfig

#: Exit status when ``--fidelity-gate`` trips (distinct from usage
#: errors, 2, and service-layer errors, :data:`EXIT_SERVICE` = 4).
EXIT_DIVERGENT = 3


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Regenerate the tables and figures of 'Next Stop, the "
            "Cloud' (IMC 2013) from the simulated measurement study. "
            "The 'repro' alias adds service subcommands: repro serve, "
            "repro jobs submit|list|show, repro runs "
            "list|show|compare|rebuild-index."
        ),
        epilog=EXIT_CODES_HELP,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="ID",
        help=f"experiment ids to run (default: all). Known: "
             f"{', '.join(experiment_ids())}",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--domains", type=int, default=6000,
        help="Alexa list size (the paper's 1M, scaled)",
    )
    parser.add_argument(
        "--wan-rounds", type=int, default=36,
        help="measurement rounds for the §5 campaign (paper: 288)",
    )
    parser.add_argument(
        "--workers", type=int, default=0,
        help="forked workers for the parallel campaigns — both the "
             "§2.1 dataset shards and the §5 WAN rounds (0 = "
             "sequential; any value yields bit-identical results)",
    )
    parser.add_argument(
        "--scenario", metavar="NAME", default=None,
        help="run every campaign under a named outage drill, e.g. "
             "ec2.us-east-1-outage, ec2.us-east-1#0-outage, elb-outage, "
             "isp-outage-7018, or compositions like "
             "ec2.us-east-1-outage+elb-outage (resolved from the "
             "repro.faults registry); drilled runs are exempt from "
             "paper comparison",
    )
    parser.add_argument(
        "--epochs", type=int, default=None, metavar="N",
        help="longitudinal mode: run the experiments at N epochs of an "
             "evolving world timeline (epoch 0 is byte-identical to a "
             "single-shot run; later epochs reuse every cached "
             "artifact their evolution steps left untouched) and "
             "write a series.json with cross-epoch trend tables",
    )
    parser.add_argument(
        "--epoch-plan", metavar="NAME", default=None,
        help="named evolution recipe for --epochs (default: "
             "steady-growth; see repro.epochs.named_epoch_plans). "
             "Implies --epochs 3 when given alone",
    )
    parser.add_argument(
        "--artifact-dir", metavar="DIR", default=".repro-artifacts",
        help="directory for the content-addressed artifact cache "
             "(dataset / capture / WAN products, keyed on config + "
             "code version)",
    )
    parser.add_argument(
        "--no-artifact-cache", action="store_true",
        help="always rebuild; neither read nor write the artifact cache",
    )
    parser.add_argument(
        "--list", action="store_true", help="list experiment ids and exit"
    )
    parser.add_argument(
        "--out", metavar="FILE", default=None,
        help="also write the summaries to FILE",
    )
    parser.add_argument(
        "--out-dir", metavar="DIR", default=None,
        help="write a run directory under DIR: JSON manifest with "
             "per-experiment measured/paper/delta/verdict, fidelity "
             "report (text + JSON), rendered summaries, and the §2.1 "
             "TSV release",
    )
    parser.add_argument(
        "--fidelity-gate", action="store_true",
        help=f"exit {EXIT_DIVERGENT} if any measured key is judged "
             f"divergent from the paper (no effect on --scenario "
             f"runs, which are exempt)",
    )
    obs = parser.add_argument_group(
        "observability",
        "structured tracing, metrics, and probe-level event logs; "
        "none of these flags change any output byte",
    )
    obs.add_argument(
        "--trace-out", metavar="FILE", default=None,
        help="write the hierarchical span tree as Chrome trace_event "
             "JSON (load via chrome://tracing or Perfetto)",
    )
    obs.add_argument(
        "--metrics-out", metavar="FILE", default=None,
        help="write the metrics registry as Prometheus text exposition",
    )
    obs.add_argument(
        "--events-out", metavar="FILE", default=None,
        help="write the probe-level NDJSON event log (one JSON object "
             "per probe, in deterministic grid order regardless of "
             "--workers)",
    )
    obs.add_argument(
        "-v", "--verbose", action="count", default=0,
        help="log progress to stderr (-v: INFO, -vv: DEBUG)",
    )
    obs.add_argument(
        "-q", "--quiet", action="store_true",
        help="only log errors to stderr",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] in SERVICE_COMMANDS:
        from repro.service.cli import service_main

        return service_main(argv)
    args = build_parser().parse_args(argv)
    if args.list:
        for exp in all_experiments():
            print(f"{exp.experiment_id:10s} §{exp.paper_section:4s} "
                  f"{exp.title}")
        return 0
    from repro.analysis.wan import WanConfig
    from repro.artifacts import ArtifactStore
    from repro.experiments.manifest import RunManifest
    from repro.faults import resolve_scenario
    from repro.sim import set_rng_observer

    configure_logging(verbose=args.verbose, quiet=args.quiet)
    scenario = None
    if args.scenario:
        try:
            scenario = resolve_scenario(args.scenario)
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        print(f"outage drill: {scenario.name}\n")
    obs = Observability.collecting(events=bool(args.events_out))
    store = (
        None if args.no_artifact_cache
        else ArtifactStore(args.artifact_dir, obs=obs)
    )
    if args.epochs is not None or args.epoch_plan is not None:
        return _run_epoch_series(args, scenario, obs, store)
    context = ExperimentContext(
        WorldConfig(seed=args.seed, num_domains=args.domains),
        WanConfig(rounds=args.wan_rounds, workers=args.workers),
        workers=args.workers,
        artifact_store=store,
        scenario=scenario,
        obs=obs,
    )
    if args.experiments:
        experiments = [get_experiment(e) for e in args.experiments]
    else:
        experiments = all_experiments()
    runs = []
    summaries = []
    previous_observer = obs.install_rng_counter()
    try:
        for exp in experiments:
            start = time.time()
            result = exp.run(context)
            elapsed = time.time() - start
            runs.append((exp, result, elapsed))
            summary = result.summary()
            summaries.append(summary)
            print(summary)
            print(f"({elapsed:.1f}s)\n")
    finally:
        set_rng_observer(previous_observer)
    report = FidelityReport(
        [result.fidelity for _, result, _ in runs
         if result.fidelity is not None],
        scenario=scenario.name if scenario is not None else None,
    )
    print(report.render_text())
    if store is not None:
        stats = store.stats
        print(
            f"\nartifact cache [{args.artifact_dir}]: "
            f"{stats.hits} hits, {stats.misses} misses, "
            f"{stats.stores} stored"
        )
    if args.out:
        with open(args.out, "w") as fh:
            fh.write("\n\n".join(summaries) + "\n")
        print(f"wrote {args.out}")
    if args.out_dir:
        manifest = RunManifest.from_run(context, runs)
        paths = manifest.write(
            args.out_dir,
            results=[result for _, result, _ in runs],
            context=context,
        )
        print(f"run {manifest.run_id}: wrote {paths['manifest']}")
    _export_obs(args, obs)
    if args.fidelity_gate and report.divergent_keys:
        for experiment_id, key in report.divergent_keys:
            print(
                f"fidelity gate: {experiment_id}.{key} is divergent",
                file=sys.stderr,
            )
        return EXIT_DIVERGENT
    return 0


def _export_obs(args, obs: Observability) -> None:
    """Write the --trace-out/--metrics-out/--events-out exports."""
    if args.trace_out:
        obs.tracer.write_chrome(args.trace_out)
        print(f"wrote trace {args.trace_out}")
    if args.metrics_out:
        metrics_parent = os.path.dirname(args.metrics_out)
        if metrics_parent:
            os.makedirs(metrics_parent, exist_ok=True)
        with open(args.metrics_out, "w") as fh:
            fh.write(obs.metrics.render_prometheus())
        print(f"wrote metrics {args.metrics_out}")
    if args.events_out:
        obs.events.write(args.events_out)
        print(f"wrote events {args.events_out}")


def _run_epoch_series(args, scenario, obs, store) -> int:
    """The --epochs branch: one world timeline, N runs.

    Composes with --workers, --scenario, --out-dir, and
    --fidelity-gate (the gate judges epoch 0 only — later epochs
    measure a deliberately evolved world and are exempt).
    """
    from repro.analysis.wan import WanConfig
    from repro.epochs import DEFAULT_EPOCH_PLAN, resolve_epoch_plan
    from repro.epochs.series import run_series
    from repro.sim import set_rng_observer

    try:
        plan = resolve_epoch_plan(args.epoch_plan or DEFAULT_EPOCH_PLAN)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    epochs = args.epochs if args.epochs is not None else 3
    if epochs < 1:
        print(f"error: --epochs must be >= 1, got {epochs}",
              file=sys.stderr)
        return 2
    if args.experiments:
        specs = [get_experiment(e) for e in args.experiments]
    else:
        specs = all_experiments()
    print(f"epoch plan: {plan.name} — {plan.description}\n")
    previous_observer = obs.install_rng_counter()
    try:
        series = run_series(
            specs,
            WorldConfig(seed=args.seed, num_domains=args.domains),
            WanConfig(rounds=args.wan_rounds, workers=args.workers),
            plan,
            epochs,
            workers=args.workers,
            artifact_store=store,
            scenario=scenario,
            obs=obs,
            out_dir=args.out_dir,
        )
    finally:
        set_rng_observer(previous_observer)
    for run in series.epochs:
        changes = sum(
            len(diff.domains) + len(diff.subdomains)
            for diff in run.epoch.diffs
        )
        cache = run.cache_delta
        cache_note = (
            f", cache {cache.get('hits', 0)} hits / "
            f"{cache.get('misses', 0)} misses"
            if cache else ""
        )
        print(
            f"epoch {run.epoch.index}: {run.run_id} — "
            f"{len(run.epoch.steps())} steps, {changes} changes"
            f"{cache_note} ({run.elapsed_s:.1f}s)"
        )
    print()
    print(series.render_trends())
    epoch0 = series.epochs[0].manifest.fidelity
    print()
    print(epoch0.render_text())
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(series.render_trends() + "\n")
        print(f"wrote {args.out}")
    if args.out_dir:
        from pathlib import Path

        series_path = (
            Path(args.out_dir) / series.series_id / "series.json"
        )
        print(f"series {series.series_id}: wrote {series_path}")
    _export_obs(args, obs)
    if args.fidelity_gate and epoch0.divergent_keys:
        for experiment_id, key in epoch0.divergent_keys:
            print(
                f"fidelity gate: epoch 0 {experiment_id}.{key} is "
                f"divergent",
                file=sys.stderr,
            )
        return EXIT_DIVERGENT
    return 0


if __name__ == "__main__":
    sys.exit(main())
