"""Registry of all experiments, keyed by id."""

from __future__ import annotations

from typing import Dict, List

from repro.experiments.base import Experiment
from repro.experiments.extensions import EXTENSION_EXPERIMENTS
from repro.experiments.figures import FIGURE_EXPERIMENTS
from repro.experiments.tables import TABLE_EXPERIMENTS

_ALL: Dict[str, Experiment] = {
    exp.experiment_id: exp
    for exp in (
        TABLE_EXPERIMENTS + FIGURE_EXPERIMENTS + EXTENSION_EXPERIMENTS
    )
}


def all_experiments() -> List[Experiment]:
    return list(_ALL.values())


def experiment_ids() -> List[str]:
    return list(_ALL)


def get_experiment(experiment_id: str) -> Experiment:
    try:
        return _ALL[experiment_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; "
            f"known: {sorted(_ALL)}"
        ) from None
