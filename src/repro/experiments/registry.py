"""Registry of all experiment specs, keyed by id.

Registered once here; the CLI, the run manifest, the fidelity report,
and the docs generator all consume the same spec objects, so the
paper's expected values have exactly one home.
"""

from __future__ import annotations

from typing import Dict, List

from repro.experiments.extensions import EXTENSION_EXPERIMENTS
from repro.experiments.figures import FIGURE_EXPERIMENTS
from repro.experiments.spec import ExperimentSpec
from repro.experiments.tables import TABLE_EXPERIMENTS

_ALL: Dict[str, ExperimentSpec] = {
    exp.experiment_id: exp
    for exp in (
        TABLE_EXPERIMENTS + FIGURE_EXPERIMENTS + EXTENSION_EXPERIMENTS
    )
}


def all_experiments() -> List[ExperimentSpec]:
    return list(_ALL.values())


def experiment_ids() -> List[str]:
    return list(_ALL)


def get_experiment(experiment_id: str) -> ExperimentSpec:
    try:
        return _ALL[experiment_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; "
            f"known: {sorted(_ALL)}"
        ) from None
