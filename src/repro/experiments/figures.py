"""Figure experiments: one per figure in the paper's evaluation.

As with the tables, the run functions only render and measure; every
paper expectation lives in the :data:`FIGURE_EXPERIMENTS` specs.
"""

from __future__ import annotations

from collections import Counter

from repro.experiments.context import ExperimentContext
from repro.experiments.spec import (
    Measurement,
    absolute,
    at_least,
    exact,
    expect,
    info,
    relative,
    spec,
)
from repro.report.ascii_plot import ascii_cdf, ascii_series
from repro.report.format import fmt_ms, fmt_num
from repro.report.table import TextTable


# -- Figure 3: flow count and size CDFs ---------------------------------------

def run_figure03(ctx: ExperimentContext) -> Measurement:
    parts = []
    measured = {}
    for provider in ("ec2", "azure"):
        for protocol in ("http", "https"):
            counts = ctx.traffic.flow_count_cdf(provider, protocol)
            sizes = ctx.traffic.flow_size_cdf(provider, protocol)
            if counts:
                parts.append(ascii_cdf(
                    counts.points(), log_x=True,
                    label=f"{provider} {protocol} flows/domain CDF",
                ))
            if provider == "ec2" and sizes:
                measured[f"{protocol}_median_flow_bytes"] = int(
                    sizes.median
                )
    http_sizes = ctx.traffic.flow_size_cdf("ec2", "http")
    https_sizes = ctx.traffic.flow_size_cdf("ec2", "https")
    measured["https_flows_larger"] = bool(
        http_sizes and https_sizes
        and https_sizes.median > http_sizes.median
    )
    measured["top100_http_flow_share_pct"] = round(
        100.0 * ctx.traffic.analyzer.top_domain_flow_concentration(
            ctx.traffic.trace, "ec2", 100
        ), 1
    )
    return Measurement("\n\n".join(parts), measured)


# -- Figure 4: feature instances per subdomain ---------------------------------

def run_figure04(ctx: ExperimentContext) -> Measurement:
    vm_cdf = ctx.patterns.vm_instances_cdf()
    elb_cdf = ctx.patterns.elb_instances_cdf()
    parts = []
    if vm_cdf:
        parts.append(ascii_cdf(
            vm_cdf.points(), label="front-end VMs per subdomain CDF"
        ))
    if elb_cdf:
        parts.append(ascii_cdf(
            elb_cdf.points(), label="physical ELBs per subdomain CDF"
        ))
    measured = {
        "vm_two_or_fewer_pct": (
            round(100.0 * vm_cdf.at(2), 1) if vm_cdf else None
        ),
        "vm_three_plus_pct": (
            round(100.0 * (1 - vm_cdf.at(2)), 1) if vm_cdf else None
        ),
        "elb_five_or_fewer_pct": (
            round(100.0 * elb_cdf.at(5), 1) if elb_cdf else None
        ),
        "elb_max": int(elb_cdf.quantile(1.0)) if elb_cdf else None,
    }
    return Measurement("\n\n".join(parts), measured)


# -- Figure 5: DNS servers per subdomain ----------------------------------------

def run_figure05(ctx: ExperimentContext) -> Measurement:
    stats = ctx.patterns.dns_statistics()
    cdf = stats["ns_per_subdomain_cdf"]
    rendered = ascii_cdf(
        cdf.points(), label="name servers per subdomain CDF"
    ) if cdf else "(no data)"
    in_3_10 = (cdf.at(10) - cdf.at(2)) if cdf else 0.0
    location = stats["location_counts"]
    total_ns = stats["total_nameservers"] or 1
    measured = {
        "three_to_ten_pct": round(100.0 * in_3_10, 1),
        "cloudfront_ns_share_pct": round(
            100.0 * location.get("cloudfront", 0) / total_ns, 1
        ),
        "ec2_vm_ns_share_pct": round(
            100.0 * location.get("ec2_vm", 0) / total_ns, 1
        ),
        "outside_ns_share_pct": round(
            100.0 * location.get("outside", 0) / total_ns, 1
        ),
    }
    return Measurement(rendered, measured)


# -- Figure 6: regions per subdomain / domain --------------------------------------

def run_figure06(ctx: ExperimentContext) -> Measurement:
    parts = []
    measured = {}
    for provider in ("ec2", "azure"):
        sub_cdf = ctx.regions.regions_per_subdomain_cdf(provider)
        dom_cdf = ctx.regions.regions_per_domain_cdf(provider)
        if sub_cdf:
            parts.append(ascii_cdf(
                sub_cdf.points(),
                label=f"{provider} regions per subdomain CDF",
            ))
            measured[f"{provider}_single_region_pct"] = round(
                100.0 * sub_cdf.at(1), 1
            )
        if dom_cdf:
            measured[f"{provider}_single_region_domain_pct"] = round(
                100.0 * dom_cdf.at(1), 1
            )
    return Measurement("\n\n".join(parts), measured)


# -- Figure 7: proximity sampling scatter --------------------------------------------

def run_figure07(ctx: ExperimentContext) -> Measurement:
    points = ctx.zones.proximity_scatter("us-east-1")
    # Render as zone bands over the internal address space.
    by_zone: Counter = Counter(label for _, label in points)
    table = TextTable(
        ["Zone label", "Samples", "Distinct /16s"],
        title="Figure 7: proximity samples per zone (us-east-1)",
    )
    slash16s = {}
    for ip_value, label in points:
        slash16s.setdefault(label, set()).add(ip_value >> 16)
    for label in sorted(by_zone):
        table.add_row([
            label, by_zone[label], len(slash16s.get(label, ())),
        ])
    overlap = 0
    seen = {}
    for ip_value, label in points:
        block = ip_value >> 16
        if block in seen and seen[block] != label:
            overlap += 1
        seen[block] = label
    measured = {
        "zones_sampled": len(by_zone),
        "slash16_zone_conflicts": overlap,
    }
    return Measurement(
        table.render(), measured,
        notes="Our us-east-1 models 3 zones (the paper sampled 4).",
    )


# -- Figure 8: zones per subdomain / domain --------------------------------------------

def run_figure08(ctx: ExperimentContext) -> Measurement:
    sub_cdf = ctx.zones.zones_per_subdomain_cdf()
    dom_cdf = ctx.zones.zones_per_domain_cdf()
    parts = []
    measured = {}
    if sub_cdf:
        parts.append(ascii_cdf(
            sub_cdf.points(), label="zones per subdomain CDF"
        ))
        measured["one_zone_pct"] = round(100.0 * sub_cdf.at(1), 1)
        measured["two_zone_pct"] = round(
            100.0 * (sub_cdf.at(2) - sub_cdf.at(1)), 1
        )
        measured["three_plus_zone_pct"] = round(
            100.0 * (1.0 - sub_cdf.at(2)), 1
        )
    if dom_cdf:
        measured["domains_single_zone_pct"] = round(
            100.0 * dom_cdf.at(1), 1
        )
    measured["multi_zone_cross_region_pct"] = round(
        100.0 * ctx.zones.multi_region_zone_fraction(), 1
    )
    return Measurement("\n\n".join(parts), measured)


# -- Figures 9 and 10: per-client US-region performance --------------------------------

def _client_region_table(ctx: ExperimentContext, metric: str) -> TextTable:
    rows = ctx.wan.per_client_region_averages(max_clients=15)
    prefix = "latency_ms" if metric == "latency" else "throughput_kbps"
    unit = "ms" if metric == "latency" else "KB/s"
    table = TextTable(
        ["Client", f"us-east-1 ({unit})", f"us-west-1 ({unit})",
         f"us-west-2 ({unit})"],
        title=f"Per-client average {metric} to US regions",
    )
    for row in rows:
        table.add_row([
            row["client"],
            fmt_num(row[f"{prefix}:us-east-1"]),
            fmt_num(row[f"{prefix}:us-west-1"]),
            fmt_num(row[f"{prefix}:us-west-2"]),
        ])
    return table


def run_figure09(ctx: ExperimentContext) -> Measurement:
    table = _client_region_table(ctx, "throughput")
    west1 = ctx.wan.region_average("us-west-1", "throughput")
    west2 = ctx.wan.region_average("us-west-2", "throughput")
    seattle = next(
        (
            row for row in ctx.wan.per_client_region_averages(
                max_clients=40
            )
            if "seattle" in row["client"]
        ),
        None,
    )
    seattle_gain = None
    if seattle:
        east = seattle["throughput_kbps:us-east-1"] or 1.0
        west = seattle["throughput_kbps:us-west-2"]
        seattle_gain = round(west / east, 1)
    measured = {
        "us_west_1_avg_kbps": round(west1, 0),
        "us_west_2_avg_kbps": round(west2, 0),
        "west1_beats_west2": west1 > west2,
        "seattle_west2_vs_east_factor": seattle_gain,
    }
    return Measurement(table.render(), measured)


def run_figure10(ctx: ExperimentContext) -> Measurement:
    table = _client_region_table(ctx, "latency")
    west1 = ctx.wan.region_average("us-west-1", "latency")
    west2 = ctx.wan.region_average("us-west-2", "latency")
    seattle = next(
        (
            row for row in ctx.wan.per_client_region_averages(
                max_clients=40
            )
            if "seattle" in row["client"]
        ),
        None,
    )
    seattle_gain = None
    if seattle:
        west = seattle["latency_ms:us-west-2"] or 1.0
        east = seattle["latency_ms:us-east-1"]
        seattle_gain = round(east / west, 1)
    measured = {
        "us_west_1_avg_ms": round(west1, 0),
        "us_west_2_avg_ms": round(west2, 0),
        "west1_beats_west2": west1 < west2,
        "seattle_east_vs_west2_factor": seattle_gain,
    }
    return Measurement(table.render(), measured)


# -- Figure 11: best region changes over time ---------------------------------------------

def run_figure11(ctx: ExperimentContext) -> Measurement:
    boulder = next(
        c.name for c in ctx.wan.clients if "boulder" in c.name
    )
    seattle = next(
        c.name for c in ctx.wan.clients if "seattle" in c.name
    )
    series = [
        (region, ctx.wan.latency_series(boulder, region))
        for region in ("us-east-1", "us-west-1", "us-west-2")
    ]
    rendered = ascii_series(series)
    boulder_flips = ctx.wan.best_region_flips(boulder)
    seattle_flips = ctx.wan.best_region_flips(seattle)
    measured = {
        "boulder_best_region_flips": boulder_flips["flips"],
        "boulder_distinct_best": boulder_flips["distinct_best"],
        "seattle_distinct_best": seattle_flips["distinct_best"],
    }
    return Measurement(rendered, measured)


# -- Figure 12: optimal k-region deployments ------------------------------------------------

def run_figure12(ctx: ExperimentContext) -> Measurement:
    latency_frontier = ctx.wan.optimal_k_regions("latency")
    throughput_frontier = ctx.wan.optimal_k_regions("throughput")
    table = TextTable(
        ["k", "Best latency ms", "Latency regions",
         "Best throughput KB/s"],
        title="Figure 12: optimal k-region deployments",
    )
    for lat_row, thr_row in zip(latency_frontier, throughput_frontier):
        table.add_row([
            lat_row["k"],
            fmt_ms(lat_row["score"], 1),
            ",".join(lat_row["regions"]),
            fmt_num(thr_row["score"]),
        ])
    k3 = ctx.wan.improvement_at_k(latency_frontier, 3)
    k4 = ctx.wan.improvement_at_k(latency_frontier, 4)
    k8 = ctx.wan.improvement_at_k(
        latency_frontier, len(latency_frontier)
    )
    measured = {
        "latency_gain_at_k3_pct": round(100.0 * k3, 1),
        "latency_gain_at_k4_pct": round(100.0 * k4, 1),
        "diminishing_after_k3": bool((k4 - k3) < k3 / 2),
        "k1_best_region": latency_frontier[0]["regions"][0],
        "total_gain_pct": round(100.0 * k8, 1),
    }
    return Measurement(table.render(), measured)


FIGURE_EXPERIMENTS = [
    spec(
        "figure03", "Flow CDFs",
        "HTTP/HTTPS flow count and size CDFs", "3.3", run_figure03,
        expect("http_median_flow_bytes", 2000, relative(0.15, 0.6)),
        expect("https_median_flow_bytes", 10000, relative(0.6, 2.5),
               note="HTTPS sizes over-disperse at reduced capture "
                    "scale"),
        expect("https_flows_larger", True, exact()),
        expect("top100_http_flow_share_pct", 80.0, absolute(8, 20)),
    ),
    spec(
        "figure04", "Feature instance CDFs",
        "Feature instances per subdomain", "4.1", run_figure04,
        expect("vm_two_or_fewer_pct", 85.0, absolute(8, 25),
               note="jointly over-constrained with Figure 8 (see "
                    "EXPERIMENTS.md)"),
        expect("vm_three_plus_pct", 15.0, absolute(8, 25)),
        expect("elb_five_or_fewer_pct", 95.0, absolute(5, 15)),
        expect("elb_max", 90, relative(0.4, 0.8)),
    ),
    spec(
        "figure05", "DNS server CDF",
        "DNS servers per subdomain", "4.1", run_figure05,
        expect("three_to_ten_pct", 80.0, absolute(5, 15)),
        expect("cloudfront_ns_share_pct", 8.9, absolute(2, 6)),
        expect("ec2_vm_ns_share_pct", 5.4, absolute(2, 6)),
        expect("outside_ns_share_pct", 85.6, absolute(3, 10)),
    ),
    spec(
        "figure06", "Region CDFs",
        "Regions per subdomain and per domain", "4.2", run_figure06,
        expect("ec2_single_region_pct", 97.0, absolute(2, 6)),
        expect("azure_single_region_pct", 92.0, absolute(4, 10)),
        expect("azure_single_region_domain_pct", 83.0, absolute(8, 20)),
        expect("ec2_single_region_domain_pct", None, info(),
               note="not reported by the paper"),
    ),
    spec(
        "figure07", "Proximity scatter",
        "Internal-address banding by zone", "4.3", run_figure07,
        expect("zones_sampled", 4, absolute(0, 2),
               note="our us-east-1 models 3 zones"),
        expect("slash16_zone_conflicts", 0, absolute(0, 3)),
    ),
    spec(
        "figure08", "Zone CDFs",
        "Zones per subdomain and per domain", "4.3", run_figure08,
        expect("one_zone_pct", 33.2, absolute(6, 18)),
        expect("two_zone_pct", 44.5, absolute(6, 18)),
        expect("three_plus_zone_pct", 22.3, absolute(6, 18)),
        expect("domains_single_zone_pct", 70.0, absolute(12, 30)),
        expect("multi_zone_cross_region_pct", 3.1, absolute(1.5, 5)),
    ),
    spec(
        "figure09", "US throughput",
        "Average throughput to US regions", "5.1", run_figure09,
        expect("us_west_1_avg_kbps", 1143, relative(0.2, 0.5)),
        expect("us_west_2_avg_kbps", 895, relative(0.2, 0.6)),
        expect("west1_beats_west2", True, exact()),
        expect("seattle_west2_vs_east_factor", 5.0, relative(0.25, 0.8)),
    ),
    spec(
        "figure10", "US latency",
        "Average latency to US regions", "5.1", run_figure10,
        expect("us_west_1_avg_ms", 130, relative(0.25, 0.6)),
        expect("us_west_2_avg_ms", 145, relative(0.25, 0.6)),
        expect("west1_beats_west2", True, exact()),
        expect("seattle_east_vs_west2_factor", 6.0, relative(0.3, 0.9)),
    ),
    spec(
        "figure11", "Best-region flips",
        "Boulder's best US region changes over time", "5.1",
        run_figure11,
        expect("boulder_best_region_flips", ">0 (changes over time)",
               at_least(1)),
        expect("boulder_distinct_best", ">=2", at_least(2, 1)),
        expect("seattle_distinct_best", 1, absolute(0, 1)),
    ),
    spec(
        "figure12", "Optimal k regions",
        "Optimal k-region latency/throughput", "5.1", run_figure12,
        expect("latency_gain_at_k3_pct", 33.0, absolute(15, 40),
               note="our client set is more dispersed than 2013 "
                    "PlanetLab"),
        expect("latency_gain_at_k4_pct", 39.0, absolute(15, 40)),
        expect("diminishing_after_k3", True, exact()),
        expect("k1_best_region", "us-east-1", exact()),
        expect("total_gain_pct", "~45", absolute(10, 35, target=45)),
    ),
]
