"""Experiment plumbing: results that pair measured values with the
paper's reported ones."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict


@dataclass
class ExperimentResult:
    """The outcome of regenerating one table or figure."""

    experiment_id: str
    title: str
    #: Rendered table / ASCII figure, ready to print.
    rendered: str
    #: Key measured quantities (scale-free where possible).
    measured: Dict[str, object] = field(default_factory=dict)
    #: The paper's corresponding values, same keys where comparable.
    paper: Dict[str, object] = field(default_factory=dict)
    notes: str = ""

    def summary(self) -> str:
        lines = [f"[{self.experiment_id}] {self.title}", self.rendered]
        if self.paper:
            lines.append("paper vs measured:")
            for key, paper_value in self.paper.items():
                measured = self.measured.get(key, "—")
                lines.append(f"  {key}: paper={paper_value} measured={measured}")
        if self.notes:
            lines.append(f"notes: {self.notes}")
        return "\n".join(lines)


@dataclass(frozen=True)
class Experiment:
    """A registered, runnable experiment."""

    experiment_id: str
    title: str
    paper_section: str
    runner: Callable[["ExperimentContext"], ExperimentResult]

    def run(self, context) -> ExperimentResult:
        return self.runner(context)
