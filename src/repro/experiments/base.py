"""Experiment plumbing: results that pair measured values with the
paper's reported ones.

The expectations themselves (paper values, tolerance bands) live in
:mod:`repro.experiments.spec`; this module only defines the result
record the rest of the results plane consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional


@dataclass
class ExperimentResult:
    """The outcome of regenerating one table or figure."""

    experiment_id: str
    title: str
    #: Rendered table / ASCII figure, ready to print.
    rendered: str
    #: Key measured quantities (scale-free where possible).
    measured: Dict[str, object] = field(default_factory=dict)
    #: The paper's corresponding values, same keys where comparable.
    paper: Dict[str, object] = field(default_factory=dict)
    notes: str = ""
    #: Per-key verdicts vs the spec's tolerance bands (attached by
    #: :meth:`ExperimentSpec.run`; ``None`` for hand-built results).
    fidelity: Optional["ExperimentFidelity"] = None

    def missing_keys(self) -> list:
        """Paper keys the measurement failed to produce."""
        return [key for key in self.paper if key not in self.measured
                or self.measured[key] is None]

    def unexpected_keys(self) -> list:
        """Measured keys with no paper counterpart (specs declare
        these explicitly as unreported, so here they signal drift
        between a hand-built result's two dicts)."""
        return [key for key in self.measured if key not in self.paper]

    def summary(self) -> str:
        verdicts = {}
        if self.fidelity is not None:
            verdicts = {v.key: v for v in self.fidelity.verdicts}
        lines = [f"[{self.experiment_id}] {self.title}", self.rendered]
        if self.paper:
            lines.append("paper vs measured:")
            for key, paper_value in self.paper.items():
                if key in self.measured and self.measured[key] is not None:
                    measured = self.measured[key]
                else:
                    measured = "MISSING"
                line = f"  {key}: paper={paper_value} measured={measured}"
                verdict = verdicts.get(key)
                if verdict is not None and verdict.verdict != "info":
                    line += f" [{verdict.verdict}]"
                lines.append(line)
        missing = self.missing_keys()
        if missing:
            lines.append(
                "key mismatch: no measured value for "
                + ", ".join(missing)
            )
        unexpected = self.unexpected_keys()
        if unexpected and self.fidelity is None:
            lines.append(
                "key mismatch: measured without paper counterpart: "
                + ", ".join(unexpected)
            )
        if self.notes:
            lines.append(f"notes: {self.notes}")
        return "\n".join(lines)
