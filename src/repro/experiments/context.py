"""Shared, lazily built state for experiment runs.

Building the world, the Alexa dataset, the capture, and the WAN
campaign dominates runtime; experiments share one context so each
expensive artifact is produced exactly once per configuration.

With an :class:`~repro.artifacts.ArtifactStore` attached, the context
first consults the content-addressed cache: dataset, capture trace, and
WAN matrices are keyed on their configurations plus the code
fingerprint, so a warm cache skips those builds entirely — including
the world build, which only the cache misses need.

One ordering subtlety is load-bearing: the capture generator resolves
traffic domains through live DNS, so the trace depends on the rotation
counters and resolver caches the dataset build leaves behind.  When the
trace must be rebuilt, the context therefore always runs the real
dataset build against its world first — even if the dataset *product*
was itself a cache hit — keeping every cached artifact identical to a
cold sequential pipeline.

More generally, the cache must be a *pure accelerator* even for
consumers that bypass the cached products and read world state
directly (probing experiments, zone analyses): each build has world
side effects — dataset: rotation counters and resolver caches;
capture: the campus resolver digs and the generator's draws; WAN: the
measurement fleet and the jitter/noise stream positions.  A cache hit
therefore queues a *side-effect replay*; if (and only if) the world is
later materialized, the queued replays run first, in the order the
products were served, leaving the world exactly where a cold run's
call sequence would.  A fully warm product-only run never materializes
the world and pays for none of this.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, List, Optional

from repro.analysis.dataset import AlexaSubdomainsDataset, DatasetBuilder
from repro.analysis.clouduse import CloudUseAnalysis
from repro.analysis.patterns import PatternAnalysis
from repro.analysis.regions import RegionAnalysis
from repro.analysis.traffic import TrafficAnalysis
from repro.analysis.wan import WanAnalysis, WanConfig
from repro.artifacts import ArtifactStore, artifact_key
from repro.analysis.zones import ZoneAnalysis
from repro.capture.flow import Trace
from repro.cloud.ec2 import ec2_region_names
from repro.faults.scenarios import OutageScenario
from repro.internet.vantage import planetlab_sites
from repro.obs import Observability
from repro.world import World, WorldConfig


class ExperimentContext:
    """Caches the world and every derived dataset/analysis."""

    def __init__(
        self,
        world_config: Optional[WorldConfig] = None,
        wan_config: Optional[WanConfig] = None,
        workers: int = 0,
        artifact_store: Optional[ArtifactStore] = None,
        scenario: Optional[OutageScenario] = None,
        obs: Optional[Observability] = None,
        epoch=None,
    ):
        self.world_config = world_config or WorldConfig()
        self.wan_config = wan_config or WanConfig()
        #: Shard count for the dataset build (the WAN campaign reads its
        #: own ``wan_config.workers``; the CLI sets both from one flag).
        self.workers = workers
        self.artifacts = artifact_store
        #: Outage drill threaded into every engine campaign this context
        #: runs (and into the dataset/WAN artifact keys — a drilled run
        #: must never be served a healthy run's products).
        self.scenario = scenario
        #: Point on a world timeline (:class:`repro.epochs.plan.Epoch`)
        #: or ``None`` for the classic single-shot pipeline.  When set,
        #: the world is built through the epoch timeline and artifact
        #: keys gain a per-kind epoch fingerprint — omitted whenever no
        #: step through this epoch touched the kind, so those artifacts
        #: keep their epoch-0 keys and hit the store.
        self.epoch = epoch
        #: Observability plane threaded into every build, campaign, and
        #: artifact-store call this context owns.  Defaults to a
        #: collecting tracer+metrics (events off) so :meth:`telemetry`
        #: keeps its historical stage/campaign timing report.
        self.obs = obs if obs is not None else Observability.collecting()
        if artifact_store is not None and not artifact_store.obs.enabled:
            artifact_store.obs = self.obs
        self._world: Optional[World] = None
        self._dataset_builder: Optional[DatasetBuilder] = None
        #: Side-effect replays queued by cache hits, run (in serve
        #: order) the moment the world materializes — see the module
        #: docstring's pure-accelerator rule.
        self._replays: List[Callable[[], None]] = []
        self._dataset: Optional[AlexaSubdomainsDataset] = None
        self._dataset_built_in_world = False
        self._trace: Optional[Trace] = None
        self._clouduse: Optional[CloudUseAnalysis] = None
        self._patterns: Optional[PatternAnalysis] = None
        self._regions: Optional[RegionAnalysis] = None
        self._zones: Optional[ZoneAnalysis] = None
        self._traffic: Optional[TrafficAnalysis] = None
        self._wan: Optional[WanAnalysis] = None

    # -- artifact keys -------------------------------------------------

    def _key(self, kind: str, **extra: object) -> str:
        # The scenario joins the key only when set, so healthy-run keys
        # are unchanged across revisions that predate scenarios.
        if self.scenario is not None:
            extra["scenario"] = self.scenario.name
        # Same join-only-when-set rule for the epoch axis: the
        # fingerprint is None both for epoch 0 and for kinds no step
        # touched, so those keys equal the single-shot keys and the
        # cached artifacts are reused across the series.
        if self.epoch is not None:
            fingerprint = self.epoch.fingerprint(kind)
            if fingerprint is not None:
                extra["epoch"] = fingerprint
        return artifact_key(
            kind, {"world": self.world_config, **extra}
        )

    def _dataset_key(self) -> str:
        return self._key("dataset", range_coverage=1.0)

    def _capture_key(self) -> str:
        return self._key("capture")

    def _wan_key(self) -> str:
        # Worker counts never change outputs (the campaigns are
        # bit-identical), so sequential and parallel runs share entries.
        return self._key("wan", wan=replace(self.wan_config, workers=0))

    # -- expensive artifacts -------------------------------------------

    @property
    def world(self) -> World:
        if self._world is None:
            with self.obs.tracer.span("world", category="stage"):
                if self.epoch is not None:
                    # The epoch timeline owns world construction: base
                    # world plus every evolution step through this
                    # epoch, memoized on the Epoch.
                    self._world = self.epoch.build_world()
                else:
                    self._world = World(self.world_config)
            pending, self._replays = self._replays, []
            for replay in pending:
                replay()
        return self._world

    def _replay_or_defer(self, replay: Callable[[], None]) -> None:
        """Run a cache hit's side-effect replay now if the world
        already exists, else queue it for world materialization."""
        if self._world is not None:
            replay()
        else:
            self._replays.append(replay)

    def _replay_dataset_build(self) -> None:
        if not self._dataset_built_in_world:
            self._build_dataset()

    def _replay_capture(self) -> None:
        # The capture's own side effects presuppose the dataset
        # build's (the same ordering rule the miss path enforces).
        self._replay_dataset_build()
        self.world.capture_trace()

    def _build_dataset(self) -> AlexaSubdomainsDataset:
        """Run the real §2.1 build against this context's world.

        Needed even when the dataset product came from the cache: the
        build's DNS side effects are part of the state the capture
        generator consumes.
        """
        with self.obs.tracer.span("dataset", category="stage"):
            builder = DatasetBuilder(
                self.world, scenario=self.scenario, obs=self.obs
            )
            dataset = builder.build(workers=self.workers)
        self._dataset_builder = builder
        self._dataset_built_in_world = True
        return dataset

    @property
    def dataset(self) -> AlexaSubdomainsDataset:
        if self._dataset is None:
            if self.artifacts is not None:
                key = self._dataset_key()
                cached = self.artifacts.load("dataset", key)
                if cached is not None:
                    self._dataset = cached
                    self._replay_or_defer(self._replay_dataset_build)
                    return self._dataset
                self._dataset = self._build_dataset()
                self.artifacts.store("dataset", key, self._dataset)
            else:
                self._dataset = self._build_dataset()
        return self._dataset

    @property
    def trace(self) -> Trace:
        """The campus capture trace (cache-aware)."""
        if self._trace is None:
            if self.artifacts is not None:
                key = self._capture_key()
                cached = self.artifacts.load("capture", key)
                if cached is not None:
                    self._trace = cached
                    self._replay_or_defer(self._replay_capture)
                    return self._trace
                world = self.world  # drains any queued replays first
                if not self._dataset_built_in_world:
                    dataset = self._build_dataset()
                    if self._dataset is None:
                        self._dataset = dataset
                self._trace = self._capture(world)
                self.artifacts.store("capture", key, self._trace)
            else:
                self._trace = self._capture(self.world)
        return self._trace

    def _capture(self, world: World) -> Trace:
        with self.obs.tracer.span("capture", category="stage"):
            return world.capture_trace()

    @property
    def wan(self) -> WanAnalysis:
        if self._wan is None:
            analysis = WanAnalysis(
                lambda: self.world,
                self.wan_config,
                clients=planetlab_sites(
                    self.world_config.num_probe_vantages
                ),
                regions=ec2_region_names(),
                scenario=self.scenario,
                obs=self.obs,
            )
            if self.artifacts is not None:
                key = self._wan_key()
                cached = self.artifacts.load("wan", key)
                if cached is not None:
                    analysis.preload_measurements(*cached)
                    self._replay_or_defer(analysis.replay_side_effects)
                else:
                    store = self.artifacts

                    def save(latency, throughput, _key=key):
                        store.store("wan", _key, (latency, throughput))

                    analysis.on_measured = save
            self._wan = analysis
        return self._wan

    # -- derived analyses ----------------------------------------------

    @property
    def clouduse(self) -> CloudUseAnalysis:
        if self._clouduse is None:
            self._clouduse = CloudUseAnalysis(self.world, self.dataset)
        return self._clouduse

    @property
    def patterns(self) -> PatternAnalysis:
        if self._patterns is None:
            self._patterns = PatternAnalysis(self.world, self.dataset)
        return self._patterns

    @property
    def regions(self) -> RegionAnalysis:
        if self._regions is None:
            self._regions = RegionAnalysis(self.world, self.dataset)
        return self._regions

    @property
    def zones(self) -> ZoneAnalysis:
        if self._zones is None:
            self._zones = ZoneAnalysis(
                self.world, self.dataset, self.patterns
            )
        return self._zones

    @property
    def traffic(self) -> TrafficAnalysis:
        if self._traffic is None:
            self._traffic = TrafficAnalysis(self.world, trace=self.trace)
        return self._traffic

    # -- run telemetry -------------------------------------------------

    def telemetry(self) -> dict:
        """Per-stage wall times and campaign telemetry for this
        context's builds, aggregated from the tracer's span tree.  Only
        stages that actually ran appear; a fully warm artifact-cache
        run reports none, and a :data:`~repro.obs.NOOP` plane reports
        empty sections."""
        tracer = self.obs.tracer
        telemetry = {
            "stages_s": {
                f"{name}_s": round(seconds, 3)
                for name, seconds in sorted(
                    tracer.seconds_by_name("stage").items()
                )
            },
            "dataset_steps_s": {
                name: round(seconds, 3)
                for name, seconds in sorted(
                    tracer.seconds_by_name("dataset-step").items()
                )
            },
            "campaigns_s": {
                name: round(seconds, 3)
                for name, seconds in sorted(
                    tracer.seconds_by_name("campaign").items()
                )
            },
        }
        if self.artifacts is not None:
            telemetry["artifact_cache"] = self.artifacts.stats.as_dict()
        return telemetry
