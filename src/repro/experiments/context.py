"""Shared, lazily built state for experiment runs.

Building the world, the Alexa dataset, the capture, and the WAN
campaign dominates runtime; experiments share one context so each
expensive artifact is produced exactly once per configuration.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.dataset import AlexaSubdomainsDataset, DatasetBuilder
from repro.analysis.clouduse import CloudUseAnalysis
from repro.analysis.patterns import PatternAnalysis
from repro.analysis.regions import RegionAnalysis
from repro.analysis.traffic import TrafficAnalysis
from repro.analysis.wan import WanAnalysis, WanConfig
from repro.analysis.zones import ZoneAnalysis
from repro.world import World, WorldConfig


class ExperimentContext:
    """Caches the world and every derived dataset/analysis."""

    def __init__(
        self,
        world_config: Optional[WorldConfig] = None,
        wan_config: Optional[WanConfig] = None,
    ):
        self.world_config = world_config or WorldConfig()
        self.wan_config = wan_config or WanConfig()
        self._world: Optional[World] = None
        self._dataset: Optional[AlexaSubdomainsDataset] = None
        self._clouduse: Optional[CloudUseAnalysis] = None
        self._patterns: Optional[PatternAnalysis] = None
        self._regions: Optional[RegionAnalysis] = None
        self._zones: Optional[ZoneAnalysis] = None
        self._traffic: Optional[TrafficAnalysis] = None
        self._wan: Optional[WanAnalysis] = None

    @property
    def world(self) -> World:
        if self._world is None:
            self._world = World(self.world_config)
        return self._world

    @property
    def dataset(self) -> AlexaSubdomainsDataset:
        if self._dataset is None:
            self._dataset = DatasetBuilder(self.world).build()
        return self._dataset

    @property
    def clouduse(self) -> CloudUseAnalysis:
        if self._clouduse is None:
            self._clouduse = CloudUseAnalysis(self.world, self.dataset)
        return self._clouduse

    @property
    def patterns(self) -> PatternAnalysis:
        if self._patterns is None:
            self._patterns = PatternAnalysis(self.world, self.dataset)
        return self._patterns

    @property
    def regions(self) -> RegionAnalysis:
        if self._regions is None:
            self._regions = RegionAnalysis(self.world, self.dataset)
        return self._regions

    @property
    def zones(self) -> ZoneAnalysis:
        if self._zones is None:
            self._zones = ZoneAnalysis(
                self.world, self.dataset, self.patterns
            )
        return self._zones

    @property
    def traffic(self) -> TrafficAnalysis:
        if self._traffic is None:
            self._traffic = TrafficAnalysis(self.world)
        return self._traffic

    @property
    def wan(self) -> WanAnalysis:
        if self._wan is None:
            self._wan = WanAnalysis(self.world, self.wan_config)
        return self._wan
