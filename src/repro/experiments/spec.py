"""Declarative experiment specs: the paper's expectations, in one place.

Every table/figure/extension experiment is an :class:`ExperimentSpec`:
an id, a title, the paper section, a *measure* callable that renders
the artifact and returns scale-free measured quantities, and — the
point of the module — the paper's expected values as a tuple of
:class:`Expectation` objects, each with an explicit tolerance band.

The run functions in ``tables.py``/``figures.py``/``extensions.py``
contain **no** paper numbers; they return a :class:`Measurement`
(rendered text + measured dict) and the spec supplies everything the
registry, the CLI, the run manifest, and the docs generator need:
the paper dict, the per-key verdicts, and the fidelity rollup.

Tolerance vocabulary (half of the keys are percentages of something,
so bands come in two currencies):

* :func:`absolute` — |measured − paper| judged in the key's own units
  (percentage *points* for ``*_pct`` keys);
* :func:`relative` — |measured − paper| / |paper|, for raw counts and
  physical quantities whose scale the paper fixes;
* :func:`exact` — equality, for booleans, names, and exact counts;
* :func:`at_least` / :func:`at_most` — one-sided paper statements
  ("at least 2.3%", "small");
* :func:`between` — the paper printed a range ("1.4-2.0 ms");
* :func:`info` — the paper's value is not comparable at this scale
  (absolute counts that shrink with ``--domains``); recorded in every
  report but never scored.

Each band yields one of three verdicts: ``match`` (inside the band),
``drift`` (outside it but inside the declared drift band), or
``divergent`` (outside both) — the vocabulary the fidelity report and
the CI gate consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from repro.experiments.base import ExperimentResult
from repro.obs import NOOP

#: Verdicts a scored key can receive, in increasing order of badness.
SCORED_VERDICTS = ("match", "drift", "divergent")
#: Verdicts that carry no score: the paper value is informational, the
#: measured value is absent, or the run is an outage drill.
UNSCORED_VERDICTS = ("info", "missing", "exempt")


class SpecError(ValueError):
    """A spec is internally inconsistent (bad band, misaligned keys)."""


@dataclass(frozen=True)
class Tolerance:
    """How far a measured value may sit from the paper's.

    ``kind`` selects the rule; ``match``/``drift`` are the band edges
    (same currency as the rule); ``lo``/``hi`` bound range rules;
    ``target`` overrides the numeric anchor when the expectation's
    display value is qualitative ("12 of 14" → target 12).
    """

    kind: str
    match: float = 0.0
    drift: float = 0.0
    lo: Optional[float] = None
    hi: Optional[float] = None
    target: Optional[float] = None

    def judge(self, paper: object, measured: object):
        """Return ``(delta, verdict)`` for one measured value."""
        if self.kind == "info":
            return None, "info"
        if measured is None:
            return None, "missing"
        if self.kind == "exact":
            return None, ("match" if measured == paper else "divergent")
        value = _as_number(measured)
        if value is None:
            # Present but not a number under a numeric band: a type
            # mismatch, which is worse than an absent key.
            return None, "divergent"
        if self.kind in ("absolute", "relative"):
            anchor = self._anchor(paper)
            delta = value - anchor
            span = abs(delta)
            if self.kind == "relative":
                span = span / max(abs(anchor), 1e-9)
            return delta, _banded(span, self.match, self.drift)
        if self.kind == "at_least":
            delta = value - self.lo
            if value >= self.lo:
                return delta, "match"
            return delta, ("drift" if value >= self.lo - self.drift
                           else "divergent")
        if self.kind == "at_most":
            delta = value - self.hi
            if value <= self.hi:
                return delta, "match"
            return delta, ("drift" if value <= self.hi + self.drift
                           else "divergent")
        if self.kind == "between":
            if self.lo <= value <= self.hi:
                return 0.0, "match"
            delta = (value - self.hi) if value > self.hi else (value - self.lo)
            return delta, ("drift" if abs(delta) <= self.drift
                           else "divergent")
        raise SpecError(f"unknown tolerance kind {self.kind!r}")

    def _anchor(self, paper: object) -> float:
        if self.target is not None:
            return self.target
        value = _as_number(paper)
        if value is None:
            raise SpecError(
                f"{self.kind} band needs a numeric anchor but the paper "
                f"value is {paper!r} and no target= was given"
            )
        return value

    def describe(self) -> str:
        """A human-readable band, for the fidelity report."""
        if self.kind == "absolute":
            return f"±{self.match:g} (drift ±{self.drift:g})"
        if self.kind == "relative":
            return (f"±{100 * self.match:g}% "
                    f"(drift ±{100 * self.drift:g}%)")
        if self.kind == "exact":
            return "exact"
        if self.kind == "at_least":
            return f">= {self.lo:g} (drift -{self.drift:g})"
        if self.kind == "at_most":
            return f"<= {self.hi:g} (drift +{self.drift:g})"
        if self.kind == "between":
            return f"[{self.lo:g}, {self.hi:g}] (drift ±{self.drift:g})"
        return self.kind


def _as_number(value: object) -> Optional[float]:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return None
    return float(value)


def _banded(span: float, match: float, drift: float) -> str:
    if span <= match:
        return "match"
    return "drift" if span <= drift else "divergent"


def absolute(match: float, drift: Optional[float] = None,
             target: Optional[float] = None) -> Tolerance:
    """|measured − paper| ≤ ``match`` in the key's own units."""
    return Tolerance("absolute", match,
                     drift if drift is not None else 3 * match,
                     target=target)


def relative(match: float, drift: Optional[float] = None,
             target: Optional[float] = None) -> Tolerance:
    """|measured − paper| / |paper| ≤ ``match`` (fractions, not %)."""
    return Tolerance("relative", match,
                     drift if drift is not None else 3 * match,
                     target=target)


def exact() -> Tolerance:
    return Tolerance("exact")


def at_least(lo: float, drift: float = 0.0) -> Tolerance:
    return Tolerance("at_least", lo=lo, drift=drift)


def at_most(hi: float, drift: float = 0.0) -> Tolerance:
    return Tolerance("at_most", hi=hi, drift=drift)


def between(lo: float, hi: float, drift: float = 0.0) -> Tolerance:
    return Tolerance("between", lo=lo, hi=hi, drift=drift)


def info() -> Tolerance:
    return Tolerance("info")


@dataclass(frozen=True)
class Expectation:
    """One paper value: the display form plus its tolerance band.

    ``paper`` is the value exactly as the paper prints it (a number
    where the paper gives one; the quoted phrase otherwise).  ``paper``
    may be ``None`` for keys we measure but the paper never reports —
    they render as unreported and are never scored.
    """

    key: str
    paper: object
    band: Tolerance = field(default_factory=info)
    note: str = ""

    def __post_init__(self):
        if self.paper is None and self.band.kind != "info":
            raise SpecError(
                f"expectation {self.key!r} has no paper value; "
                f"its band must be info()"
            )
        # Fail at registration, not mid-run: numeric bands must be able
        # to resolve their anchor.
        if self.band.kind in ("absolute", "relative"):
            self.band._anchor(self.paper)

    def judge(self, measured: object):
        return self.band.judge(self.paper, measured)


def expect(key: str, paper: object, band: Optional[Tolerance] = None,
           note: str = "") -> Expectation:
    return Expectation(key, paper, band if band is not None else info(),
                       note)


@dataclass(frozen=True)
class Measurement:
    """What a measure callable returns: the rendered artifact plus the
    scale-free measured quantities (no paper values — those live in
    the spec)."""

    rendered: str
    measured: Dict[str, object]
    notes: str = ""


@dataclass(frozen=True)
class ExperimentSpec:
    """A registered, runnable experiment with declared expectations."""

    experiment_id: str
    title: str
    #: Long title used on the rendered result (the registry listing
    #: uses the short ``title``).
    headline: str
    paper_section: str
    measure: Callable[["ExperimentContext"], Measurement]
    expectations: Tuple[Expectation, ...] = ()

    def __post_init__(self):
        keys = [e.key for e in self.expectations]
        if len(keys) != len(set(keys)):
            raise SpecError(
                f"{self.experiment_id}: duplicate expectation keys"
            )

    @property
    def keys(self) -> Tuple[str, ...]:
        return tuple(e.key for e in self.expectations)

    @property
    def paper(self) -> Dict[str, object]:
        """The paper dict, for summaries and EXPERIMENTS.md."""
        return {
            e.key: e.paper for e in self.expectations
            if e.paper is not None
        }

    def run(self, context) -> ExperimentResult:
        """Measure, assert key alignment, and score fidelity.

        Measured keys must all be declared in the spec (an undeclared
        key is a programming error and raises); declared keys the
        measurement failed to produce are flagged ``missing`` rather
        than silently rendered as ``—``.  Runs under an outage
        scenario are exempted from paper comparison entirely.
        """
        from repro.experiments.fidelity import score_experiment

        obs = getattr(context, "obs", NOOP)
        epoch = getattr(context, "epoch", None)
        with obs.tracer.span(
            f"experiment:{self.experiment_id}", category="experiment",
            section=self.paper_section,
            **({"epoch": epoch.index} if epoch is not None else {}),
        ):
            measurement = self.measure(context)
        unknown = set(measurement.measured) - set(self.keys)
        if unknown:
            raise SpecError(
                f"{self.experiment_id}: measured keys not declared in "
                f"the spec: {sorted(unknown)}"
            )
        scenario = getattr(context, "scenario", None)
        fidelity = score_experiment(
            self, measurement.measured,
            scenario=scenario.name if scenario is not None else None,
            # Epoch 0 is the paper's world and stays scored; evolved
            # epochs are exempt from paper comparison.
            epoch=(
                epoch.index
                if epoch is not None and epoch.index > 0 else None
            ),
        )
        return ExperimentResult(
            experiment_id=self.experiment_id,
            title=self.headline,
            rendered=measurement.rendered,
            measured=dict(measurement.measured),
            paper=self.paper,
            notes=measurement.notes,
            fidelity=fidelity,
        )


def spec(experiment_id: str, title: str, headline: str,
         paper_section: str, measure: Callable,
         *expectations: Expectation) -> ExperimentSpec:
    """Terse constructor used by the spec tables."""
    return ExperimentSpec(
        experiment_id, title, headline, paper_section, measure,
        tuple(expectations),
    )
