"""Extension experiments: claims the paper states but does not run.

These are not reproductions of printed tables/figures; they execute
the paper's availability hypotheticals (§4.2/§4.3), its routing
proposals (§5.1), its compression implication (§3.3), and regenerate
the abstract's headline numbers.
"""

from __future__ import annotations

from repro.analysis.availability import AvailabilityAnalysis
from repro.analysis.compression import CompressionAnalysis
from repro.analysis.headline import measure_headline
from repro.analysis.scheduling import RequestScheduler
from repro.experiments.base import Experiment, ExperimentResult
from repro.experiments.context import ExperimentContext
from repro.faults import region_outage, service_outage
from repro.report.table import TextTable


def run_ext_outages(ctx: ExperimentContext) -> ExperimentResult:
    availability = AvailabilityAnalysis(
        ctx.world, ctx.dataset, ctx.patterns, ctx.zones
    )
    table = TextTable(
        ["Scenario", "Dark", "Degraded", "% of ranking hit"],
        title="Outage drills over the measured deployments",
    )
    us_east = availability.evaluate(region_outage("ec2", "us-east-1"))
    table.add_row([
        us_east.scenario_name, us_east.unavailable, us_east.degraded,
        f"{100 * us_east.alexa_share_hit:.2f}",
    ])
    zone_reports = availability.zone_blast_radius("us-east-1")
    for zone, report in sorted(zone_reports.items()):
        table.add_row([
            report.scenario_name, report.unavailable, report.degraded,
            f"{100 * report.alexa_share_hit:.2f}",
        ])
    elb = availability.evaluate(service_outage("elb"))
    table.add_row([
        elb.scenario_name, elb.unavailable, elb.degraded,
        f"{100 * elb.alexa_share_hit:.2f}",
    ])
    zone_counts = [r.unavailable for r in zone_reports.values()]
    measured = {
        "us_east_ranking_hit_pct": round(
            100 * us_east.alexa_share_hit, 2
        ),
        "zone_blast_asymmetric": max(zone_counts) > min(zone_counts),
        "elb_smaller_than_region": elb.unavailable < us_east.unavailable,
    }
    paper = {
        "us_east_ranking_hit_pct": ">= 2.3 (stated lower bound)",
        "zone_blast_asymmetric": True,
        "elb_smaller_than_region": True,
    }
    return ExperimentResult(
        "ext-outages", "Availability hypotheticals, executed",
        table.render(), measured, paper,
    )


def run_ext_scheduling(ctx: ExperimentContext) -> ExperimentResult:
    scheduler = RequestScheduler(ctx.wan)
    outcomes = scheduler.compare()
    table = TextTable(
        ["Policy", "Mean ms", "p95 ms", "Server load"],
        title="Request-routing policies over the Figure 12 campaign",
    )
    for outcome in outcomes:
        table.add_row([
            outcome.policy,
            f"{outcome.mean_latency_ms:.1f}",
            f"{outcome.p95_latency_ms:.1f}",
            f"x{outcome.server_load_factor:.0f}",
        ])
    by_name = {o.policy: o for o in outcomes}
    measured = {
        "multi_region_beats_static": (
            by_name["geo-nearest"].mean_latency_ms
            < by_name["static-home"].mean_latency_ms
        ),
        "parallel_load_factor": by_name["parallel-k"].server_load_factor,
        "oracle_gain_over_geo_pct": round(
            100 * scheduler.geo_penalty(by_name["geo-nearest"].regions), 1
        ),
    }
    paper = {
        "multi_region_beats_static": True,
        "parallel_load_factor": "k (the stated cost of racing)",
        "oracle_gain_over_geo_pct": "small unless paths are congested",
    }
    return ExperimentResult(
        "ext-scheduling", "Global scheduling vs parallel requests",
        table.render(), measured, paper,
    )


def run_ext_compression(ctx: ExperimentContext) -> ExperimentResult:
    analysis = CompressionAnalysis(ctx.traffic.analyzer)
    report = analysis.report(ctx.traffic.trace)
    table = TextTable(
        ["Content type", "MB", "Saved MB", "Saving"],
        title="Compression opportunity in the capture's HTTP bytes",
    )
    for opportunity in report.per_type[:8]:
        table.add_row([
            opportunity.content_type,
            f"{opportunity.original_bytes / 1e6:.1f}",
            f"{opportunity.saved_bytes / 1e6:.1f}",
            f"{100 * opportunity.saving_fraction:.0f}%",
        ])
    measured = {
        "overall_saving_pct": round(
            100 * report.overall_saving_fraction, 1
        ),
        "text_is_top_saver": report.per_type[0].content_type.startswith(
            "text/"
        ),
    }
    paper = {
        "overall_saving_pct": "substantial (implied by §3.3)",
        "text_is_top_saver": True,
    }
    return ExperimentResult(
        "ext-compression", "WAN savings from compressing text",
        table.render(), measured, paper,
    )


def run_ext_headline(ctx: ExperimentContext) -> ExperimentResult:
    numbers = measure_headline(ctx.world, ctx.dataset, ctx.wan)
    measured = {
        "cloud_share_pct": round(numbers.cloud_share_pct, 1),
        "vm_front_share_pct": round(numbers.vm_front_share_pct, 1),
        "single_region_pct": round(numbers.single_region_pct, 1),
        "k3_latency_gain_pct": round(numbers.k3_latency_gain_pct, 1),
    }
    paper = {
        "cloud_share_pct": 4.0,
        "vm_front_share_pct": 71.5,
        "single_region_pct": 97.0,
        "k3_latency_gain_pct": 33.0,
    }
    return ExperimentResult(
        "ext-headline", "The abstract, regenerated",
        numbers.render_abstract(), measured, paper,
    )


EXTENSION_EXPERIMENTS = [
    Experiment("ext-outages", "Outage drills", "4.2/4.3", run_ext_outages),
    Experiment("ext-scheduling", "Routing policies", "5.1",
               run_ext_scheduling),
    Experiment("ext-compression", "Compression opportunity", "3.3",
               run_ext_compression),
    Experiment("ext-headline", "Abstract regenerated", "abstract",
               run_ext_headline),
]
