"""Extension experiments: claims the paper states but does not run.

These are not reproductions of printed tables/figures; they execute
the paper's availability hypotheticals (§4.2/§4.3), its routing
proposals (§5.1), its compression implication (§3.3), and regenerate
the abstract's headline numbers.  The paper's stated claims — bounds
and qualitative statements more often than point values — live in the
:data:`EXTENSION_EXPERIMENTS` specs.
"""

from __future__ import annotations

from repro.analysis.availability import AvailabilityAnalysis
from repro.analysis.compression import CompressionAnalysis
from repro.analysis.headline import measure_headline
from repro.analysis.scheduling import RequestScheduler
from repro.experiments.context import ExperimentContext
from repro.experiments.spec import (
    Measurement,
    absolute,
    at_least,
    at_most,
    exact,
    expect,
    info,
    spec,
)
from repro.faults import region_outage, service_outage
from repro.report.format import fmt_mb, fmt_ms, fmt_share
from repro.report.table import TextTable


def run_ext_outages(ctx: ExperimentContext) -> Measurement:
    availability = AvailabilityAnalysis(
        ctx.world, ctx.dataset, ctx.patterns, ctx.zones
    )
    table = TextTable(
        ["Scenario", "Dark", "Degraded", "% of ranking hit"],
        title="Outage drills over the measured deployments",
    )
    us_east = availability.evaluate(region_outage("ec2", "us-east-1"))
    table.add_row([
        us_east.scenario_name, us_east.unavailable, us_east.degraded,
        fmt_share(us_east.alexa_share_hit),
    ])
    zone_reports = availability.zone_blast_radius("us-east-1")
    for zone, report in sorted(zone_reports.items()):
        table.add_row([
            report.scenario_name, report.unavailable, report.degraded,
            fmt_share(report.alexa_share_hit),
        ])
    elb = availability.evaluate(service_outage("elb"))
    table.add_row([
        elb.scenario_name, elb.unavailable, elb.degraded,
        fmt_share(elb.alexa_share_hit),
    ])
    zone_counts = [r.unavailable for r in zone_reports.values()]
    measured = {
        "us_east_ranking_hit_pct": round(
            100 * us_east.alexa_share_hit, 2
        ),
        "zone_blast_asymmetric": max(zone_counts) > min(zone_counts),
        "elb_smaller_than_region": elb.unavailable < us_east.unavailable,
    }
    return Measurement(table.render(), measured)


def run_ext_scheduling(ctx: ExperimentContext) -> Measurement:
    scheduler = RequestScheduler(ctx.wan)
    outcomes = scheduler.compare()
    table = TextTable(
        ["Policy", "Mean ms", "p95 ms", "Server load"],
        title="Request-routing policies over the Figure 12 campaign",
    )
    for outcome in outcomes:
        table.add_row([
            outcome.policy,
            fmt_ms(outcome.mean_latency_ms, 1),
            fmt_ms(outcome.p95_latency_ms, 1),
            f"x{outcome.server_load_factor:.0f}",
        ])
    by_name = {o.policy: o for o in outcomes}
    measured = {
        "multi_region_beats_static": (
            by_name["geo-nearest"].mean_latency_ms
            < by_name["static-home"].mean_latency_ms
        ),
        "parallel_load_factor": by_name["parallel-k"].server_load_factor,
        "oracle_gain_over_geo_pct": round(
            100 * scheduler.geo_penalty(by_name["geo-nearest"].regions), 1
        ),
    }
    return Measurement(table.render(), measured)


def run_ext_compression(ctx: ExperimentContext) -> Measurement:
    analysis = CompressionAnalysis(ctx.traffic.analyzer)
    report = analysis.report(ctx.traffic.trace)
    table = TextTable(
        ["Content type", "MB", "Saved MB", "Saving"],
        title="Compression opportunity in the capture's HTTP bytes",
    )
    for opportunity in report.per_type[:8]:
        table.add_row([
            opportunity.content_type,
            fmt_mb(opportunity.original_bytes),
            fmt_mb(opportunity.saved_bytes),
            f"{100 * opportunity.saving_fraction:.0f}%",
        ])
    measured = {
        "overall_saving_pct": round(
            100 * report.overall_saving_fraction, 1
        ),
        "text_is_top_saver": report.per_type[0].content_type.startswith(
            "text/"
        ),
    }
    return Measurement(table.render(), measured)


def run_ext_headline(ctx: ExperimentContext) -> Measurement:
    numbers = measure_headline(ctx.world, ctx.dataset, ctx.wan)
    measured = {
        "cloud_share_pct": round(numbers.cloud_share_pct, 1),
        "vm_front_share_pct": round(numbers.vm_front_share_pct, 1),
        "single_region_pct": round(numbers.single_region_pct, 1),
        "k3_latency_gain_pct": round(numbers.k3_latency_gain_pct, 1),
    }
    return Measurement(numbers.render_abstract(), measured)


EXTENSION_EXPERIMENTS = [
    spec(
        "ext-outages", "Outage drills",
        "Availability hypotheticals, executed", "4.2/4.3",
        run_ext_outages,
        expect("us_east_ranking_hit_pct",
               ">= 2.3 (stated lower bound)", at_least(2.3, 1.0)),
        expect("zone_blast_asymmetric", True, exact()),
        expect("elb_smaller_than_region", True, exact()),
    ),
    spec(
        "ext-scheduling", "Routing policies",
        "Global scheduling vs parallel requests", "5.1",
        run_ext_scheduling,
        expect("multi_region_beats_static", True, exact()),
        expect("parallel_load_factor",
               "k (the stated cost of racing)", info()),
        expect("oracle_gain_over_geo_pct",
               "small unless paths are congested", at_most(5, 10)),
    ),
    spec(
        "ext-compression", "Compression opportunity",
        "WAN savings from compressing text", "3.3",
        run_ext_compression,
        expect("overall_saving_pct",
               "substantial (implied by §3.3)", at_least(20, 10)),
        expect("text_is_top_saver", True, exact()),
    ),
    spec(
        "ext-headline", "Abstract regenerated",
        "The abstract, regenerated", "abstract", run_ext_headline,
        expect("cloud_share_pct", 4.0, absolute(0.75, 2.5)),
        expect("vm_front_share_pct", 71.5, absolute(4, 12)),
        expect("single_region_pct", 97.0, absolute(2, 6)),
        expect("k3_latency_gain_pct", 33.0, absolute(15, 40),
               note="see figure12"),
    ),
]
