"""Table experiments: one per table in the paper's evaluation.

The run functions render each table and return the scale-free
measured quantities; the paper's expected values — with their
tolerance bands — live only in the :data:`TABLE_EXPERIMENTS` specs at
the bottom of the module.
"""

from __future__ import annotations

from repro.experiments.context import ExperimentContext
from repro.experiments.spec import (
    Measurement,
    absolute,
    at_least,
    between,
    exact,
    expect,
    info,
    relative,
    spec,
)
from repro.report.format import fmt_kb, fmt_mb, fmt_pct, fmt_share
from repro.report.table import TextTable


# -- Table 1 ------------------------------------------------------------------

def run_table01(ctx: ExperimentContext) -> Measurement:
    shares = ctx.traffic.table1()
    table = TextTable(
        ["Cloud", "Bytes %", "Flows %"],
        title="Table 1: traffic share per cloud (campus capture)",
    )
    for provider in ("ec2", "azure"):
        bytes_pct, flows_pct = shares.get(provider, (0.0, 0.0))
        table.add_row([provider.upper(), fmt_pct(bytes_pct),
                       fmt_pct(flows_pct)])
    measured = {
        "ec2_bytes_pct": round(shares.get("ec2", (0, 0))[0], 2),
        "ec2_flows_pct": round(shares.get("ec2", (0, 0))[1], 2),
        "azure_bytes_pct": round(shares.get("azure", (0, 0))[0], 2),
        "azure_flows_pct": round(shares.get("azure", (0, 0))[1], 2),
    }
    return Measurement(table.render(), measured)


# -- Table 2 ------------------------------------------------------------------

def run_table02(ctx: ExperimentContext) -> Measurement:
    mix = ctx.traffic.table2()
    table = TextTable(
        ["Protocol", "EC2 B%", "EC2 F%", "Azure B%", "Azure F%",
         "All B%", "All F%"],
        title="Table 2: protocol mix (campus capture)",
    )
    for label in (
        "ICMP", "HTTP (TCP)", "HTTPS (TCP)", "DNS (UDP)",
        "Other (TCP)", "Other (UDP)",
    ):
        row = [label]
        for scope in ("ec2", "azure", "overall"):
            bytes_pct, flows_pct = mix.get(scope, {}).get(
                label, (0.0, 0.0)
            )
            row.extend([fmt_pct(bytes_pct), fmt_pct(flows_pct)])
        table.add_row(row)
    overall = mix.get("overall", {})
    measured = {
        "https_bytes_pct": round(
            overall.get("HTTPS (TCP)", (0, 0))[0], 2
        ),
        "http_flows_pct": round(
            overall.get("HTTP (TCP)", (0, 0))[1], 2
        ),
        "dns_flows_pct": round(overall.get("DNS (UDP)", (0, 0))[1], 2),
        "ec2_https_bytes_pct": round(
            mix.get("ec2", {}).get("HTTPS (TCP)", (0, 0))[0], 2
        ),
        "azure_http_bytes_pct": round(
            mix.get("azure", {}).get("HTTP (TCP)", (0, 0))[0], 2
        ),
    }
    return Measurement(
        table.render(), measured,
        notes=(
            "Paper flow columns do not sum to 100 as printed; targets "
            "use the normalized columns."
        ),
    )


# -- Table 3 ------------------------------------------------------------------

def run_table03(ctx: ExperimentContext) -> Measurement:
    report = ctx.clouduse.report()
    table = TextTable(
        ["Provider mix", "Domains", "Dom %", "Subdomains", "Sub %"],
        title="Table 3: domains/subdomains by provider mix",
    )
    for category in (
        "EC2 only", "EC2 + Other", "Azure only", "Azure + Other",
        "EC2 + Azure",
    ):
        domains = report.domain_counts.get(category, 0)
        subs = report.subdomain_counts.get(category, 0)
        table.add_row([
            category,
            domains,
            fmt_pct(100.0 * domains / (report.total_domains or 1)),
            subs,
            fmt_pct(100.0 * subs / (report.total_subdomains or 1)),
        ])
    table.add_row([
        "Total", report.total_domains, "100.00",
        report.total_subdomains, "100.00",
    ])
    total_alexa = len(ctx.world.alexa)
    measured = {
        "cloud_domain_pct_of_alexa": round(
            100.0 * report.total_domains / total_alexa, 2
        ),
        "ec2_domain_share_pct": round(
            100.0 * report.ec2_total_domains
            / (report.total_domains or 1), 1
        ),
        "azure_domain_share_pct": round(
            100.0 * report.azure_total_domains
            / (report.total_domains or 1), 1
        ),
        "ec2_only_sub_pct": round(
            100.0 * report.subdomain_counts.get("EC2 only", 0)
            / (report.total_subdomains or 1), 1
        ),
        "top_quartile_share_pct": round(
            100.0 * report.quartile_shares[0], 1
        ),
    }
    return Measurement(table.render(), measured)


# -- Table 4 ------------------------------------------------------------------

def run_table04(ctx: ExperimentContext) -> Measurement:
    rows = ctx.clouduse.top_cloud_domains("ec2", 10)
    table = TextTable(
        ["Rank", "Domain", "Total subs", "EC2 subs"],
        title="Table 4: top-10 EC2-using domains by Alexa rank",
    )
    for row in rows:
        table.add_row([
            row["rank"], row["domain"],
            row["total_subdomains"], row["cloud_subdomains"],
        ])
    planted = {
        row["domain"] for row in rows
    } & {
        "amazon.com", "linkedin.com", "163.com", "pinterest.com",
        "fc2.com", "conduit.com", "ask.com", "apple.com", "imdb.com",
        "hao123.com",
    }
    measured = {"paper_top10_recovered": len(planted)}
    return Measurement(
        table.render(), measured,
        notes=(
            "Synthetic domains can interleave with the paper's named "
            "tenants at small list sizes."
        ),
    )


# -- Table 5 ------------------------------------------------------------------

def run_table05(ctx: ExperimentContext) -> Measurement:
    top = ctx.traffic.table5()
    table = TextTable(
        ["Cloud", "Domain", "Rank", "% of HTTP(S)"],
        title="Table 5: top capture domains by HTTP(S) volume",
    )
    for provider in ("ec2", "azure"):
        for row in top[provider][:8]:
            table.add_row([
                provider.upper(), row["domain"],
                row["rank"] if row["rank"] is not None else "-",
                fmt_pct(row["percent_of_httpx"]),
            ])
    ec2_top = top["ec2"][0] if top["ec2"] else {}
    measured = {
        "top_ec2_domain": ec2_top.get("domain"),
        "top_ec2_share_pct": round(
            ec2_top.get("percent_of_httpx", 0.0), 1
        ),
        "unique_cloud_domains": ctx.traffic.unique_cloud_domains()[
            "total"
        ],
    }
    return Measurement(table.render(), measured)


# -- Table 6 ------------------------------------------------------------------

def run_table06(ctx: ExperimentContext) -> Measurement:
    rows = ctx.traffic.table6()
    total_bytes = sum(row["bytes"] for row in rows) or 1
    table = TextTable(
        ["Content type", "Bytes %", "Mean KB", "Max MB"],
        title="Table 6: HTTP content types",
    )
    for row in rows:
        table.add_row([
            row["content_type"],
            fmt_pct(100.0 * row["bytes"] / total_bytes),
            fmt_kb(row["mean_bytes"]),
            fmt_mb(row["max_bytes"]),
        ])
    top_two = {row["content_type"] for row in rows[:2]}
    measured = {
        "text_dominates": top_two <= {"text/html", "text/plain"},
        "top_type": rows[0]["content_type"] if rows else None,
    }
    return Measurement(table.render(), measured)


# -- Table 7 ------------------------------------------------------------------

def run_table07(ctx: ExperimentContext) -> Measurement:
    summary = ctx.patterns.feature_summary()
    report = ctx.clouduse.report()
    ec2_subs = report.ec2_total_subdomains or 1
    azure_subs = report.azure_total_subdomains or 1
    table = TextTable(
        ["Cloud", "Feature", "Domains", "Subdomains", "Sub %", "Inst."],
        title="Table 7: cloud feature usage",
    )
    label_map = [
        ("EC2", "VM", "vm", ec2_subs),
        ("EC2", "ELB", "elb", ec2_subs),
        ("EC2", "Beanstalk (w/ ELB)", "beanstalk_elb", ec2_subs),
        ("EC2", "Heroku (w/ ELB)", "heroku_elb", ec2_subs),
        ("EC2", "Heroku (no ELB)", "heroku_no_elb", ec2_subs),
        ("Azure", "CS", "cs", azure_subs),
        ("Azure", "TM", "tm", azure_subs),
    ]
    for cloud, label, key, denom in label_map:
        entry = summary[key]
        table.add_row([
            cloud, label, entry["domains"], entry["subdomains"],
            fmt_pct(100.0 * entry["subdomains"] / denom),
            entry["instances"],
        ])
    measured = {
        "vm_sub_pct": round(
            100.0 * summary["vm"]["subdomains"] / ec2_subs, 1
        ),
        "elb_sub_pct": round(
            100.0 * summary["elb"]["subdomains"] / ec2_subs, 1
        ),
        "heroku_sub_pct": round(
            100.0 * summary["heroku_no_elb"]["subdomains"] / ec2_subs, 1
        ),
        "cs_sub_pct": round(
            100.0 * summary["cs"]["subdomains"] / azure_subs, 1
        ),
        "heroku_unique_ips": ctx.patterns.heroku_statistics()[
            "unique_ips"
        ],
    }
    return Measurement(table.render(), measured)


# -- Table 8 ------------------------------------------------------------------

def run_table08(ctx: ExperimentContext) -> Measurement:
    rows = ctx.patterns.top_domain_features(10)
    table = TextTable(
        ["Rank", "Domain", "Subs", "VM", "PaaS", "ELB", "ELB IPs", "CDN"],
        title="Table 8: feature usage of top EC2-using domains",
    )
    for row in rows:
        cdn = str(row["cdn"]) + ("*" if row["cdn_other"] else "")
        table.add_row([
            row["rank"], row["domain"], row["cloud_subdomains"],
            row["vm"], row["paas"], row["elb"], row["elb_ips"], cdn,
        ])
    by_domain = {row["domain"]: row for row in rows}
    measured = {
        "amazon_uses_elb": by_domain.get("amazon.com", {}).get("elb", 0) > 0,
        "pinterest_vm_only": (
            by_domain.get("pinterest.com", {}).get("elb", 1) == 0
        ),
        "fc2_elb_ips": by_domain.get("fc2.com", {}).get("elb_ips", 0),
    }
    return Measurement(table.render(), measured)


# -- Table 9 ------------------------------------------------------------------

def run_table09(ctx: ExperimentContext) -> Measurement:
    counts = ctx.regions.region_counts()
    table = TextTable(
        ["Region", "Domains", "Subdomains"],
        title="Table 9: EC2 and Azure region usage",
    )
    ec2_total = sum(
        v["subdomains"] for (p, _), v in counts.items() if p == "ec2"
    ) or 1
    for (provider, region), value in sorted(
        counts.items(),
        key=lambda kv: (kv[0][0], -kv[1]["subdomains"]),
    ):
        table.add_row([
            f"{provider}.{region}", value["domains"], value["subdomains"],
        ])
    us_east = counts.get(("ec2", "us-east-1"), {"subdomains": 0})
    eu_west = counts.get(("ec2", "eu-west-1"), {"subdomains": 0})
    measured = {
        "us_east_share_pct": round(
            100.0 * us_east["subdomains"] / ec2_total, 1
        ),
        "eu_west_share_pct": round(
            100.0 * eu_west["subdomains"] / ec2_total, 1
        ),
    }
    return Measurement(table.render(), measured)


# -- Table 10 ------------------------------------------------------------------

def run_table10(ctx: ExperimentContext) -> Measurement:
    rows = ctx.regions.top_domain_regions(14)
    table = TextTable(
        ["Rank", "Domain", "Subs", "Regions", "k=1", "k=2"],
        title="Table 10: region usage of top cloud-using domains",
    )
    single = 0
    for row in rows:
        table.add_row([
            row["rank"], row["domain"], row["cloud_subdomains"],
            row["total_regions"], row["k1"], row["k2"],
        ])
        if row["cloud_subdomains"] and row["k1"] == row["cloud_subdomains"]:
            single += 1
    measured = {
        "domains_reported": len(rows),
        "all_single_region_domains": single,
        "max_regions_per_subdomain": max(
            (2 if row["k2"] else 1 for row in rows), default=0
        ),
    }
    return Measurement(table.render(), measured)


# -- Table 11 ------------------------------------------------------------------

def run_table11(ctx: ExperimentContext) -> Measurement:
    cells = ctx.zones.rtt_calibration()
    table = TextTable(
        ["Instance type", "Zone", "min ms", "median ms"],
        title="Table 11: intra-region RTTs from a us-east-1 probe",
    )
    same_zone = []
    cross_zone = []
    for cell in cells:
        table.add_row([
            cell.instance_type, cell.zone_label,
            f"{cell.min_ms:.2f}", f"{cell.median_ms:.2f}",
        ])
        if cell.zone_label == 0:
            same_zone.append(cell.min_ms)
        else:
            cross_zone.append(cell.min_ms)
    measured = {
        "same_zone_min_ms": round(
            sum(same_zone) / len(same_zone), 2
        ) if same_zone else None,
        "cross_zone_min_ms": round(
            sum(cross_zone) / len(cross_zone), 2
        ) if cross_zone else None,
        "separation_holds": bool(
            same_zone and cross_zone
            and max(same_zone) < min(cross_zone)
        ),
    }
    return Measurement(table.render(), measured)


# -- Table 12 ------------------------------------------------------------------

def run_table12(ctx: ExperimentContext) -> Measurement:
    table = TextTable(
        ["Region", "Targets", "Responded", "Zones", "Unknown %"],
        title="Table 12: latency-method zone estimates",
    )
    measured_rows = {}
    for region in sorted(ctx.zones.targets_by_region()):
        est = ctx.zones.latency_estimates(region)
        zones = "/".join(
            str(est["zone_counts"].get(z, 0))
            for z in range(ctx.world.ec2.region(region).num_zones)
        )
        table.add_row([
            region, est["targets"], est["responded"], zones,
            fmt_share(est["unknown_fraction"]),
        ])
        measured_rows[region] = est
    us_east = measured_rows.get("us-east-1", {})
    responded = us_east.get("responded", 0)
    targets = us_east.get("targets", 1)
    measured = {
        "us_east_response_rate_pct": round(
            100.0 * responded / (targets or 1), 1
        ),
        "regions_estimated": len(measured_rows),
    }
    return Measurement(table.render(), measured)


# -- Table 13 ------------------------------------------------------------------

def run_table13(ctx: ExperimentContext) -> Measurement:
    rows = ctx.zones.accuracy_table()
    table = TextTable(
        ["Region", "Count", "Match", "Unknown", "Mismatch", "Error %"],
        title="Table 13: latency method vs proximity ground truth",
    )
    total = match = unknown = mismatch = 0
    for row in rows:
        error = row["error_rate"]
        table.add_row([
            row["region"], row["count"], row["match"], row["unknown"],
            row["mismatch"],
            fmt_share(error) if error is not None else "n/a",
        ])
        total += row["count"]
        match += row["match"]
        unknown += row["unknown"]
        mismatch += row["mismatch"]
    overall_error = (
        mismatch / (total - unknown) if total > unknown else 0.0
    )
    by_region = {row["region"]: row for row in rows}
    eu_error = by_region.get("eu-west-1", {}).get("error_rate")
    measured = {
        "overall_error_pct": round(100.0 * overall_error, 1),
        "eu_west_error_pct": (
            round(100.0 * eu_error, 1) if eu_error is not None else None
        ),
        "eu_west_is_worst": eu_error == max(
            (r["error_rate"] for r in rows if r["error_rate"] is not None),
            default=None,
        ),
    }
    return Measurement(table.render(), measured)


# -- Table 14 ------------------------------------------------------------------

def run_table14(ctx: ExperimentContext) -> Measurement:
    usage = ctx.zones.zone_usage_table()
    table = TextTable(
        ["Region", "Zone", "Domains", "Subdomains"],
        title="Table 14: (sub)domains per availability zone",
    )
    skews = {}
    for region in sorted(usage):
        counts = []
        for zone in sorted(usage[region]):
            entry = usage[region][zone]
            table.add_row([
                region, zone, entry["domains"], entry["subdomains"],
            ])
            counts.append(entry["subdomains"])
        if len(counts) >= 2 and max(counts) > 0:
            skews[region] = 1.0 - min(counts) / max(counts)
    us_east_skew = skews.get("us-east-1", 0.0)
    measured = {
        "us_east_zone_skew_pct": round(100.0 * us_east_skew, 1),
        "regions_with_skew": sum(1 for s in skews.values() if s > 0.1),
    }
    return Measurement(table.render(), measured)


# -- Table 15 ------------------------------------------------------------------

def run_table15(ctx: ExperimentContext) -> Measurement:
    rows = ctx.zones.top_domain_zones(10)
    table = TextTable(
        ["Rank", "Domain", "Subs", "Zones", "k=1", "k=2", "k=3"],
        title="Table 15: zone usage of top EC2-using domains",
    )
    single_zone_subs = total_subs = 0
    for row in rows:
        table.add_row([
            row["rank"], row["domain"], row["cloud_subdomains"],
            row["total_zones"], row["k1"], row["k2"], row["k3"],
        ])
        single_zone_subs += row["k1"]
        total_subs += row["k1"] + row["k2"] + row["k3"]
    measured = {
        "single_zone_fraction_pct": round(
            100.0 * single_zone_subs / (total_subs or 1), 1
        ),
    }
    return Measurement(table.render(), measured)


# -- Table 16 ------------------------------------------------------------------

def run_table16(ctx: ExperimentContext) -> Measurement:
    diversity = ctx.wan.isp_diversity()
    table = TextTable(
        ["Region", "Per-zone ISPs", "Region total", "Top-ISP share %"],
        title="Table 16: downstream ISPs per EC2 region and zone",
    )
    for region, data in sorted(
        diversity.items(), key=lambda kv: -kv[1]["region_total"]
    ):
        per_zone = "/".join(
            str(data["per_zone"][z]) for z in sorted(data["per_zone"])
        )
        table.add_row([
            region, per_zone, data["region_total"],
            fmt_share(data["top_isp_route_share"]),
        ])
    totals = {r: d["region_total"] for r, d in diversity.items()}
    measured = {
        "us_east_isps": totals.get("us-east-1"),
        "sa_east_isps": totals.get("sa-east-1"),
        "ap_southeast_2_isps": totals.get("ap-southeast-2"),
        "max_top_isp_share_pct": round(
            100.0 * max(
                (
                    d["top_isp_route_share"]
                    for d in diversity.values()
                    if d["region_total"] >= 10
                ),
                default=0.0,
            ), 1
        ),
    }
    return Measurement(
        table.render(), measured,
        notes=(
            "Counts observed over the configured vantage set; the "
            "paper used 200 destinations."
        ),
    )


TABLE_EXPERIMENTS = [
    spec(
        "table01", "Traffic per cloud",
        "Traffic volume and flows per cloud", "3.1", run_table01,
        expect("ec2_bytes_pct", 81.73, absolute(3, 10)),
        expect("ec2_flows_pct", 80.70, absolute(3, 10)),
        expect("azure_bytes_pct", 18.27, absolute(3, 10)),
        expect("azure_flows_pct", 19.30, absolute(3, 10)),
    ),
    spec(
        "table02", "Protocol mix",
        "Protocol mix by bytes and flows", "3.1", run_table02,
        expect("https_bytes_pct", 72.94, absolute(4, 12)),
        expect("http_flows_pct", 69.48, absolute(10, 20)),
        expect("dns_flows_pct", 10.58, absolute(3, 8)),
        expect("ec2_https_bytes_pct", 80.90, absolute(4, 12)),
        expect("azure_http_bytes_pct", 59.97, absolute(5, 15)),
    ),
    spec(
        "table03", "Cloud-use breakdown",
        "Cloud-use breakdown by provider", "3.2", run_table03,
        expect("cloud_domain_pct_of_alexa", 4.0, absolute(0.75, 2.5)),
        expect("ec2_domain_share_pct", 94.9, absolute(3, 10)),
        expect("azure_domain_share_pct", 5.8, absolute(3, 12),
               note="planted Azure tenants dominate at small scale"),
        expect("ec2_only_sub_pct", 96.1, absolute(3, 10)),
        expect("top_quartile_share_pct", 42.3, absolute(6, 18)),
    ),
    spec(
        "table04", "Top EC2 domains",
        "Top EC2-using domains", "3.2", run_table04,
        expect("paper_top10_recovered", 10, at_least(8, 4),
               note="synthetic domains interleave at small list sizes"),
    ),
    spec(
        "table05", "Top capture domains",
        "High traffic volume domains", "3.2", run_table05,
        expect("top_ec2_domain", "dropbox.com", exact()),
        expect("top_ec2_share_pct", 68.21, absolute(5, 15)),
        expect("unique_cloud_domains",
               "13,604 (at full capture scale)", info(),
               note="absolute count; shrinks with --domains"),
    ),
    spec(
        "table06", "HTTP content types",
        "HTTP content types by byte count", "3.3", run_table06,
        expect("text_dominates", True, exact()),
        expect("top_type", "text/html", exact()),
    ),
    spec(
        "table07", "Feature usage",
        "Summary of cloud feature usage", "4.1", run_table07,
        expect("vm_sub_pct", 71.5, absolute(4, 12)),
        expect("elb_sub_pct", 3.8, absolute(1.5, 5)),
        expect("heroku_sub_pct", 8.2, absolute(2.5, 8)),
        expect("cs_sub_pct", 68.3, absolute(6, 20),
               note="converges from above as --domains grows"),
        expect("heroku_unique_ips", 94, relative(0.1, 0.5)),
    ),
    spec(
        "table08", "Top-domain features",
        "Cloud feature usage for top EC2 domains", "4.1", run_table08,
        expect("amazon_uses_elb", True, exact()),
        expect("pinterest_vm_only", True, exact()),
        expect("fc2_elb_ips", 68, relative(0.35, 0.8)),
    ),
    spec(
        "table09", "Region usage",
        "Region usage of Alexa subdomains", "4.2", run_table09,
        expect("us_east_share_pct", 74.0, absolute(4, 12)),
        expect("eu_west_share_pct", 16.0, absolute(4, 10)),
    ),
    spec(
        "table10", "Top-domain regions",
        "Region usage for the top cloud-using domains", "4.2",
        run_table10,
        expect("domains_reported", 14, exact()),
        expect("all_single_region_domains", "12 of 14",
               absolute(1, 3, target=12)),
        expect("max_regions_per_subdomain", 2, absolute(0, 1)),
    ),
    spec(
        "table11", "RTT calibration",
        "Same-zone vs cross-zone RTTs by instance type", "4.3",
        run_table11,
        expect("same_zone_min_ms", 0.5, absolute(0.2, 0.6)),
        expect("cross_zone_min_ms", "1.4-2.0", between(1.4, 2.0, 0.8)),
        expect("separation_holds", True, exact()),
    ),
    spec(
        "table12", "Latency zone estimates",
        "Latency-method zone estimates per region", "4.3", run_table12,
        expect("us_east_response_rate_pct", 73.4, absolute(8, 20)),
        expect("regions_estimated", 8, absolute(1, 3)),
    ),
    spec(
        "table13", "Zone-ID accuracy",
        "Veracity of latency-based zone identification", "4.3",
        run_table13,
        expect("overall_error_pct", 5.7, absolute(5, 15)),
        expect("eu_west_error_pct", 25.0, absolute(15, 30),
               note="few eu-west targets at reduced scale"),
        expect("eu_west_is_worst", True, info(),
               note="at reduced scale every region's error rate sits "
                    "within a few points, so the worst-region ordering "
                    "is noise"),
    ),
    spec(
        "table14", "Zone usage",
        "Zone usage per region", "4.3", run_table14,
        expect("us_east_zone_skew_pct", 63.0, absolute(20, 55),
               note="skew flattens at reduced subdomain counts"),
        expect("regions_with_skew", "all but ap-southeast-2", info()),
    ),
    spec(
        "table15", "Top-domain zones",
        "Zone usage for top domains", "4.3", run_table15,
        expect("single_zone_fraction_pct",
               "large (e.g. 56% of pinterest.com's subdomains)",
               between(30, 70, 15)),
    ),
    spec(
        "table16", "ISP diversity",
        "Downstream ISP diversity", "5.2", run_table16,
        expect("us_east_isps", 36, relative(0.3, 0.7)),
        expect("sa_east_isps", 4, absolute(1, 3)),
        expect("ap_southeast_2_isps", 4, absolute(1, 3)),
        expect("max_top_isp_share_pct",
               "31-33 for well-connected regions", between(31, 33, 12)),
    ),
]
