"""Fidelity scoring: how close is the reproduction to the paper?

Every measured key is judged against its spec's tolerance band —
``match`` / ``drift`` / ``divergent`` — and the per-key verdicts roll
up into a per-experiment status (the worst key verdict) and a
whole-run :class:`FidelityReport` (text + JSON).  Outage-scenario runs
are *exempt*: a drilled world is deliberately not the paper's, so its
keys carry the ``exempt`` verdict and never count against fidelity.
Evolved epochs (index >= 1 of a longitudinal series) are exempt for
the same reason: the world has deliberately moved on from the paper's
2013 crawl, so only epoch 0 is scored against the paper.

The CI gate consumes the JSON form: a seed-scale run must produce
zero ``divergent`` verdicts.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

#: Experiment/run status ladder; the rollup takes the worst present.
_STATUS_ORDER = ("match", "drift", "missing", "divergent")


@dataclass(frozen=True)
class KeyVerdict:
    """One key's judgement: paper vs measured under a tolerance band."""

    key: str
    paper: object
    measured: object
    delta: Optional[float]
    verdict: str
    band: str = ""
    note: str = ""

    def as_dict(self) -> dict:
        return {
            "key": self.key,
            "paper": self.paper,
            "measured": self.measured,
            "delta": (
                round(self.delta, 6) if self.delta is not None else None
            ),
            "verdict": self.verdict,
            "band": self.band,
            **({"note": self.note} if self.note else {}),
        }


@dataclass(frozen=True)
class ExperimentFidelity:
    """All key verdicts for one experiment, plus the rollup."""

    experiment_id: str
    verdicts: Tuple[KeyVerdict, ...]
    scenario: Optional[str] = None
    #: Evolved-epoch index (>= 1) when this run measured a world that
    #: has moved past the paper's; ``None`` for single-shot and epoch-0
    #: runs, which stay scored.
    epoch: Optional[int] = None

    @property
    def exempt(self) -> bool:
        return self.scenario is not None or self.epoch is not None

    @property
    def counts(self) -> Counter:
        return Counter(v.verdict for v in self.verdicts)

    @property
    def status(self) -> str:
        """The experiment's verdict: the worst of its keys' verdicts.

        ``missing`` ranks between drift and divergent — a key we could
        not measure is worse than drift but is not evidence the
        reproduction is wrong.  Purely informational experiments come
        out as ``match``; drilled runs as ``exempt``.
        """
        if self.exempt:
            return "exempt"
        present = self.counts
        for status in reversed(_STATUS_ORDER):
            if present.get(status):
                return status
        return "match"

    def as_dict(self) -> dict:
        return {
            "experiment_id": self.experiment_id,
            "status": self.status,
            **({"scenario": self.scenario}
               if self.scenario is not None else {}),
            **({"epoch": self.epoch} if self.epoch is not None else {}),
            "keys": [v.as_dict() for v in self.verdicts],
        }


def score_experiment(spec, measured: Dict[str, object],
                     scenario: Optional[str] = None,
                     epoch: Optional[int] = None) -> ExperimentFidelity:
    """Judge every declared expectation against the measured values."""
    verdicts = []
    for expectation in spec.expectations:
        value = measured.get(expectation.key)
        if scenario is not None or epoch is not None:
            delta, verdict = None, "exempt"
        else:
            delta, verdict = expectation.judge(value)
        verdicts.append(KeyVerdict(
            key=expectation.key,
            paper=expectation.paper,
            measured=value,
            delta=delta,
            verdict=verdict,
            band=expectation.band.describe(),
            note=expectation.note,
        ))
    return ExperimentFidelity(
        spec.experiment_id, tuple(verdicts), scenario=scenario,
        epoch=epoch,
    )


@dataclass
class FidelityReport:
    """The whole-run rollup across every experiment that ran."""

    experiments: List[ExperimentFidelity]
    scenario: Optional[str] = None
    #: Evolved-epoch index (>= 1) when the whole run measured an
    #: evolved world; ``None`` keeps the run scored.
    epoch: Optional[int] = None

    @property
    def exempt(self) -> bool:
        return self.scenario is not None or self.epoch is not None

    @property
    def counts(self) -> Counter:
        total: Counter = Counter()
        for fidelity in self.experiments:
            total.update(fidelity.counts)
        return total

    @property
    def status(self) -> str:
        if self.exempt:
            return "exempt"
        present = self.counts
        for status in reversed(_STATUS_ORDER):
            if present.get(status):
                return status
        return "match"

    @property
    def divergent_keys(self) -> List[Tuple[str, str]]:
        """(experiment_id, key) pairs the CI gate trips on."""
        return [
            (fidelity.experiment_id, verdict.key)
            for fidelity in self.experiments
            for verdict in fidelity.verdicts
            if verdict.verdict == "divergent"
        ]

    def as_dict(self) -> dict:
        return {
            "status": self.status,
            "exempt": self.exempt,
            **({"scenario": self.scenario}
               if self.scenario is not None else {}),
            **({"epoch": self.epoch} if self.epoch is not None else {}),
            "counts": dict(self.counts),
            "experiments": [f.as_dict() for f in self.experiments],
        }

    def render_text(self) -> str:
        """The human-facing fidelity report."""
        from repro.report.table import TextTable

        if self.scenario is not None:
            return (
                f"fidelity: exempt — outage drill "
                f"'{self.scenario}' runs are not comparable to the "
                f"paper's healthy-world numbers"
            )
        if self.epoch is not None:
            return (
                f"fidelity: exempt — epoch {self.epoch} measures a "
                f"deliberately evolved world; only epoch 0 is scored "
                f"against the paper's 2013 crawl"
            )
        table = TextTable(
            ["Experiment", "Status", "Match", "Drift", "Divergent",
             "Worst key"],
            title="Fidelity vs the paper",
        )
        for fidelity in self.experiments:
            counts = fidelity.counts
            worst = _worst_key(fidelity)
            table.add_row([
                fidelity.experiment_id,
                fidelity.status,
                counts.get("match", 0),
                counts.get("drift", 0),
                counts.get("divergent", 0),
                worst or "-",
            ])
        counts = self.counts
        summary = (
            f"run fidelity: {self.status} — "
            f"{counts.get('match', 0)} match, "
            f"{counts.get('drift', 0)} drift, "
            f"{counts.get('divergent', 0)} divergent, "
            f"{counts.get('missing', 0)} missing, "
            f"{counts.get('info', 0)} informational"
        )
        return table.render() + "\n\n" + summary


def _worst_key(fidelity: ExperimentFidelity) -> Optional[str]:
    for status in reversed(_STATUS_ORDER):
        if status == "match":
            return None
        for verdict in fidelity.verdicts:
            if verdict.verdict == status:
                return f"{verdict.key} ({status})"
    return None
